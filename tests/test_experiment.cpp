#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include "core/lynceus.hpp"
#include "test_helpers.hpp"

namespace lynceus::eval {
namespace {

TEST(MakeProblem, FollowsPaperBudgetRule) {
  const auto ds = testing::tiny_dataset();
  const auto p = make_problem(ds, 3.0);
  EXPECT_EQ(p.bootstrap_samples, core::default_bootstrap_samples(ds.space()));
  EXPECT_NEAR(p.budget,
              static_cast<double>(p.bootstrap_samples) * ds.mean_cost() * 3.0,
              1e-9);
  EXPECT_DOUBLE_EQ(p.tmax_seconds, ds.tmax_seconds());
  EXPECT_THROW((void)make_problem(ds, 0.0), std::invalid_argument);
}

TEST(RunExperiment, ProducesOneSummaryPerRun) {
  const auto ds = testing::tiny_dataset();
  ExperimentConfig cfg;
  cfg.runs = 5;
  const auto result = run_experiment(ds, rnd_spec(), cfg);
  EXPECT_EQ(result.runs.size(), 5U);
  EXPECT_EQ(result.dataset, ds.job_name());
  EXPECT_EQ(result.optimizer, "RND");
  for (const auto& r : result.runs) {
    EXPECT_GE(r.cno, 1.0);
    EXPECT_GT(r.nex, 0U);
    EXPECT_EQ(r.cno_trace.size(), r.nex);
  }
}

TEST(RunExperiment, SeedsAreDistinctAcrossRunsAndPairedAcrossOptimizers) {
  const auto ds = testing::tiny_dataset();
  ExperimentConfig cfg;
  cfg.runs = 4;
  const auto a = run_experiment(ds, rnd_spec(), cfg);
  const auto b = run_experiment(ds, bo_spec(), cfg);
  for (std::size_t i = 0; i < cfg.runs; ++i) {
    EXPECT_EQ(a.runs[i].seed, b.runs[i].seed);  // paired comparisons
    for (std::size_t j = i + 1; j < cfg.runs; ++j) {
      EXPECT_NE(a.runs[i].seed, a.runs[j].seed);
    }
  }
}

TEST(RunExperiment, DeterministicAcrossInvocations) {
  const auto ds = testing::tiny_dataset();
  ExperimentConfig cfg;
  cfg.runs = 3;
  const auto a = run_experiment(ds, bo_spec(), cfg);
  const auto b = run_experiment(ds, bo_spec(), cfg);
  for (std::size_t i = 0; i < cfg.runs; ++i) {
    EXPECT_DOUBLE_EQ(a.runs[i].cno, b.runs[i].cno);
    EXPECT_EQ(a.runs[i].nex, b.runs[i].nex);
  }
}

TEST(RunExperiment, ParallelMatchesSequential) {
  const auto ds = testing::tiny_dataset();
  ExperimentConfig seq_cfg;
  seq_cfg.runs = 4;
  ExperimentConfig par_cfg = seq_cfg;
  util::ThreadPool pool(3);
  par_cfg.pool = &pool;
  const auto a = run_experiment(ds, bo_spec(), seq_cfg);
  const auto b = run_experiment(ds, bo_spec(), par_cfg);
  for (std::size_t i = 0; i < seq_cfg.runs; ++i) {
    EXPECT_DOUBLE_EQ(a.runs[i].cno, b.runs[i].cno);
  }
}

TEST(ExperimentResult, AggregationHelpers) {
  ExperimentResult r;
  r.runs.resize(3);
  r.runs[0].cno = 1.0;
  r.runs[0].nex = 10;
  r.runs[0].cno_trace = {3.0, 2.0, 1.0};
  r.runs[1].cno = 2.0;
  r.runs[1].nex = 20;
  r.runs[1].cno_trace = {4.0, 4.0};
  r.runs[2].cno = 3.0;
  r.runs[2].nex = 30;
  r.runs[2].cno_trace = {5.0};
  EXPECT_EQ(r.cnos(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(r.mean_nex(), 20.0);
  const auto trace = r.p90_cno_by_exploration();
  ASSERT_EQ(trace.size(), 3U);
  // At index 2: run0 contributes 1.0, run1 its final 4.0, run2 its final
  // 5.0 → p90 of {1,4,5}.
  EXPECT_NEAR(trace[2], 4.8, 1e-9);
}

TEST(ExperimentResult, DecisionSecondsAveragedOverDecisions) {
  ExperimentResult r;
  r.runs.resize(2);
  r.runs[0].decision_seconds = 1.0;
  r.runs[0].decisions = 10;
  r.runs[1].decision_seconds = 3.0;
  r.runs[1].decisions = 10;
  EXPECT_DOUBLE_EQ(r.mean_decision_seconds(), 0.2);
}

TEST(OptimizerSpecs, LabelsAndFactories) {
  EXPECT_EQ(rnd_spec().label, "RND");
  EXPECT_EQ(bo_spec().label, "BO");
  EXPECT_EQ(lynceus_spec(2).label, "Lynceus(LA=2)");
  const auto opt = lynceus_spec(1, 8, 4).make();
  const auto* lyn = dynamic_cast<core::LynceusOptimizer*>(opt.get());
  ASSERT_NE(lyn, nullptr);
  EXPECT_EQ(lyn->options().lookahead, 1U);
  EXPECT_EQ(lyn->options().screen_width, 8U);
  EXPECT_EQ(lyn->options().gh_points, 4U);
}

}  // namespace
}  // namespace lynceus::eval

#include "eval/results_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "eval/report.hpp"
#include "test_helpers.hpp"

namespace lynceus::eval {
namespace {

class ResultsCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/lynceus_cache_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ResultsCacheTest, StoreLoadRoundTrip) {
  ExperimentResult r;
  r.dataset = "tinybowl";
  r.optimizer = "RND";
  r.budget_multiplier = 3.0;
  RunSummary s;
  s.seed = 42;
  s.cno = 1.25;
  s.nex = 17;
  s.budget_spent = 0.5;
  s.decision_seconds = 0.001;
  s.decisions = 15;
  s.cno_trace = {3.0, 2.0, 1.25};
  r.runs.push_back(s);

  ensure_directory(dir_);
  const std::string path = dir_ + "/entry.csv";
  ResultsCache::store(path, r);
  const auto loaded = ResultsCache::load(path);
  EXPECT_EQ(loaded.dataset, "tinybowl");
  EXPECT_EQ(loaded.optimizer, "RND");
  EXPECT_DOUBLE_EQ(loaded.budget_multiplier, 3.0);
  ASSERT_EQ(loaded.runs.size(), 1U);
  EXPECT_EQ(loaded.runs[0].seed, 42U);
  EXPECT_NEAR(loaded.runs[0].cno, 1.25, 1e-9);
  EXPECT_EQ(loaded.runs[0].nex, 17U);
  ASSERT_EQ(loaded.runs[0].cno_trace.size(), 3U);
  EXPECT_NEAR(loaded.runs[0].cno_trace[1], 2.0, 1e-9);
}

TEST_F(ResultsCacheTest, GetOrRunComputesThenReuses) {
  const auto ds = testing::tiny_dataset();
  ResultsCache cache(dir_);
  ExperimentConfig cfg;
  cfg.runs = 3;
  const auto first = cache.get_or_run(ds, rnd_spec(), cfg);
  EXPECT_EQ(first.runs.size(), 3U);
  EXPECT_TRUE(std::filesystem::exists(cache.entry_path(ds, rnd_spec(), cfg)));

  // Second fetch loads from disk and must agree exactly.
  const auto second = cache.get_or_run(ds, rnd_spec(), cfg);
  ASSERT_EQ(second.runs.size(), first.runs.size());
  for (std::size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.runs[i].cno, first.runs[i].cno);
    EXPECT_EQ(second.runs[i].nex, first.runs[i].nex);
  }
}

TEST_F(ResultsCacheTest, DistinctConfigsGetDistinctEntries) {
  const auto ds = testing::tiny_dataset();
  ResultsCache cache(dir_);
  ExperimentConfig a;
  a.runs = 2;
  a.budget_multiplier = 1.0;
  ExperimentConfig b = a;
  b.budget_multiplier = 5.0;
  EXPECT_NE(cache.entry_path(ds, rnd_spec(), a),
            cache.entry_path(ds, rnd_spec(), b));
  EXPECT_NE(cache.entry_path(ds, rnd_spec(), a),
            cache.entry_path(ds, bo_spec(), a));
}

TEST_F(ResultsCacheTest, RunCountMismatchTriggersRecompute) {
  const auto ds = testing::tiny_dataset();
  ResultsCache cache(dir_);
  ExperimentConfig small;
  small.runs = 2;
  (void)cache.get_or_run(ds, rnd_spec(), small);
  ExperimentConfig big = small;
  big.runs = 4;
  const auto result = cache.get_or_run(ds, rnd_spec(), big);
  EXPECT_EQ(result.runs.size(), 4U);
}

TEST_F(ResultsCacheTest, LoadMissingFileThrows) {
  EXPECT_THROW((void)ResultsCache::load(dir_ + "/missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace lynceus::eval

#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace lynceus::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"one", "two", "three"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t x \n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Human, MagnitudeSuffixes) {
  EXPECT_EQ(human(123.456, 2), "123.46");
  EXPECT_EQ(human(12345.0, 1), "12.3k");
  EXPECT_EQ(human(2500000.0, 1), "2.5M");
}

}  // namespace
}  // namespace lynceus::util

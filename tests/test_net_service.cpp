/// End-to-end tests for the TCP front-end (src/net/): the network
/// determinism contract (remote sessions byte-identical to solo
/// in-process runs, across shards and concurrent connections), protocol
/// hardening (malformed frames get a typed error and a closed connection,
/// never a crash), snapshot/restore over the wire, and shard
/// partitioning. Runs under the `net` ctest label; the stressy cases are
/// also in the TSan CI leg via the `concurrency` label.

#include "net/tuning_server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "eval/runner.hpp"
#include "net/binary_codec.hpp"
#include "net/tuning_client.hpp"
#include "test_helpers.hpp"

namespace lynceus::net {
namespace {

using core::ConfigId;
using core::OptimizerResult;

double tiny_energy(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn tiny_metrics() {
  const auto sp = lynceus::testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{tiny_energy(*sp, id)};
  };
}

core::ConstraintDef tiny_constraint(double cap) {
  core::ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

/// Same fields the in-process service tests pin: trajectory, spend and
/// recommendation. decision_seconds is wall clock and deliberately
/// excluded.
void expect_identical(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "step " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost) << "step " << i;
    EXPECT_EQ(a.history[i].feasible, b.history[i].feasible) << "step " << i;
  }
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.recommendation_feasible, b.recommendation_feasible);
  EXPECT_EQ(a.decisions, b.decisions);
}

core::LynceusOptions lynceus_options_for(std::uint64_t seed) {
  core::LynceusOptions o;
  o.lookahead = seed % 2 == 0 ? 1U : 0U;
  o.incremental_refit = false;
  o.branch_parallel = false;
  return o;
}

service::SessionSpec remote_lynceus_spec(std::uint64_t seed) {
  service::SessionSpec spec;
  spec.optimizer = "lynceus";
  spec.seed = seed;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  const core::LynceusOptions o = lynceus_options_for(seed);
  spec.lookahead = o.lookahead;
  spec.incremental_refit = false;
  spec.branch_parallel = false;
  return spec;
}

/// The acceptance gate of the redesign: 64 remote sessions, 8 concurrent
/// client connections, 2 shards, shared per-shard root caches — every
/// session's trajectory must be byte-identical to its solo in-process
/// run.
TEST(NetService, SixtyFourConcurrentRemoteSessionsMatchTheirSoloRuns) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  TuningServer::Options opts;
  opts.shards = 2;
  opts.root_cache_capacity = 16;
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  constexpr std::uint64_t kSessions = 64;
  constexpr std::uint64_t kClients = 8;
  std::vector<OptimizerResult> remote(kSessions);
  std::vector<std::string> errors(kClients);

  std::vector<std::thread> drivers;
  for (std::uint64_t c = 0; c < kClients; ++c) {
    drivers.emplace_back([&, c] {
      try {
        TuningClient client("127.0.0.1", server.port());
        eval::AsyncTableRunner runner(ds);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> opened;  // seed,id
        for (std::uint64_t k = 0; k < kSessions / kClients; ++k) {
          const std::uint64_t seed = 1 + c * (kSessions / kClients) + k;
          opened.emplace_back(seed, client.open(remote_lynceus_spec(seed)));
        }
        client.drain(runner);
        for (const auto& [seed, id] : opened) {
          const TuningClient::ResultReply reply = client.result(id);
          if (!reply.finished) {
            throw std::runtime_error("session for seed " +
                                     std::to_string(seed) + " not finished");
          }
          remote[seed - 1] = reply.result;
          client.close_session(id);
        }
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  for (std::uint64_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
  }

  for (std::uint64_t seed = 1; seed <= kSessions; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    eval::TableRunner solo(ds);
    auto stepper = core::LynceusOptimizer(lynceus_options_for(seed))
                       .make_stepper(problem, seed);
    expect_identical(remote[seed - 1], core::drive(*stepper, solo));
  }

  // Both shards carried sessions, and together they carried all of them.
  const std::vector<std::size_t> counts = server.shard_session_counts();
  ASSERT_EQ(counts.size(), 2U);
  EXPECT_GT(counts[0], 0U);
  EXPECT_GT(counts[1], 0U);
  EXPECT_EQ(counts[0] + counts[1], kSessions);
}

/// All four optimizer kinds over the wire on one connection — exercises
/// the metrics array + constraint codecs end to end.
TEST(NetService, MixedOptimizerKindsOverTheWireMatchSolo) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer::Options opts;
  opts.shards = 2;
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  TuningClient client("127.0.0.1", server.port());
  eval::AsyncTableRunner runner(ds, tiny_metrics());

  std::vector<std::uint64_t> ids;
  std::vector<std::function<OptimizerResult()>> solos;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    service::SessionSpec ly = remote_lynceus_spec(seed);
    ly.lookahead = 1;
    ids.push_back(client.open(ly));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      core::LynceusOptions o = lynceus_options_for(seed);
      o.lookahead = 1;
      auto stepper = core::LynceusOptimizer(o).make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    service::SessionSpec mc;
    mc.optimizer = "multi_constraint";
    mc.seed = seed;
    mc.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    mc.lookahead = 1;
    mc.incremental_refit = false;
    mc.branch_parallel = false;
    service::ConstraintSpec cs;
    cs.name = "energy";
    cs.metric_index = 0;
    cs.threshold = 26.0;
    mc.constraints.push_back(cs);
    ids.push_back(client.open(mc));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      core::MultiConstraintOptions o;
      o.lookahead = 1;
      o.incremental_refit = false;
      o.branch_parallel = false;
      auto stepper = core::MultiConstraintLynceus({tiny_constraint(26.0)}, o)
                         .make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    service::SessionSpec bo;
    bo.optimizer = "bo";
    bo.seed = seed;
    bo.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    ids.push_back(client.open(bo));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::BayesianOptimizer().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    service::SessionSpec rnd;
    rnd.optimizer = "random";
    rnd.seed = seed;
    rnd.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    ids.push_back(client.open(rnd));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::RandomSearch().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });
  }

  client.drain(runner);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(ids[i]));
    const TuningClient::ResultReply reply = client.result(ids[i]);
    ASSERT_TRUE(reply.finished);
    EXPECT_FALSE(reply.stop_reason.empty());
    expect_identical(reply.result, solos[i]());
  }
}

TEST(NetService, SnapshotRestoreOverTheWireFinishesByteIdentically) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer server;
  server.register_problem("test", "tinybowl", problem);

  service::SessionSpec spec = remote_lynceus_spec(23);
  spec.lookahead = 1;

  eval::TableRunner solo(ds);
  core::LynceusOptions o = lynceus_options_for(23);
  o.lookahead = 1;
  auto ref = core::LynceusOptimizer(o).make_stepper(problem, 23);
  const OptimizerResult golden = core::drive(*ref, solo);

  // Resolve half of the bootstrap batch, snapshot mid-flight, hang up.
  std::string snap;
  {
    TuningClient client("127.0.0.1", server.port());
    const std::uint64_t id = client.open(spec);
    std::vector<service::PendingRun> batch;
    for (std::size_t i = 0; i < problem.bootstrap_samples; ++i) {
      const auto run = client.take_run(/*wait=*/true);
      ASSERT_TRUE(run.has_value());
      batch.push_back(*run);
    }
    for (std::size_t i = 0; i < problem.bootstrap_samples / 2; ++i) {
      core::RunResult r;
      r.runtime_seconds = ds.observation(batch[i].config).runtime_seconds;
      r.cost = ds.observation(batch[i].config).cost();
      const auto status = client.tell(id, batch[i].config, r);
      ASSERT_FALSE(status.finished);
    }
    snap = client.snapshot(id);
    client.close_session(id);
  }

  // Restore on a fresh connection: the still-in-flight half is re-pushed,
  // the told half is not, and the trajectory lands exactly on the solo
  // run's bytes.
  TuningClient revived("127.0.0.1", server.port());
  const std::uint64_t rid = revived.restore(spec, snap);
  eval::AsyncTableRunner runner(ds);
  revived.drain(runner);
  const TuningClient::ResultReply reply = revived.result(rid);
  ASSERT_TRUE(reply.finished);
  expect_identical(reply.result, golden);
}

TEST(NetService, SequentialSessionIdsPartitionEvenlyAcrossShards) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer::Options opts;
  opts.shards = 4;
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  TuningClient client("127.0.0.1", server.port());
  eval::AsyncTableRunner runner(ds);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    service::SessionSpec spec;
    spec.optimizer = "random";
    spec.seed = seed;
    spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    ids.push_back(client.open(spec));
  }
  client.drain(runner);
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(client.result(id).finished) << "session " << id;
  }

  // Ids come from one global counter, so 8 opens land 2 per shard.
  const std::vector<std::size_t> counts = server.shard_session_counts();
  ASSERT_EQ(counts.size(), 4U);
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_EQ(counts[s], 2U) << "shard " << s;
  }
}

/// Reads messages until the connection drops, returning the last error
/// frame seen (the server flushes the typed error before closing).
ServerMessage last_error_before_close(TuningClient& client) {
  ServerMessage last;
  last.type = ServerMessage::Type::Closed;  // sentinel: no error seen
  try {
    for (;;) {
      const ServerMessage m = client.read_message();
      if (m.type == ServerMessage::Type::Error) last = m;
    }
  } catch (const SocketError&) {
    // Connection closed — exactly what a fatal error promises.
  }
  return last;
}

void expect_fatal_error(const std::string& raw_bytes,
                        const std::string& expected_code,
                        std::uint16_t port) {
  SCOPED_TRACE("expecting " + expected_code);
  // WireMode::kJson skips the hello handshake, so `raw_bytes` is the
  // connection's FIRST frame — the legacy pre-negotiation path.
  TuningClient client("127.0.0.1", port, kDefaultMaxFrameBytes,
                      TuningClient::WireMode::kJson);
  client.send_raw(raw_bytes);
  const ServerMessage err = last_error_before_close(client);
  ASSERT_EQ(err.type, ServerMessage::Type::Error);
  EXPECT_EQ(err.code, expected_code);
  EXPECT_TRUE(err.fatal);
}

TEST(NetService, MalformedInputGetsTypedErrorAndClosedConnection) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer server;
  server.register_problem("test", "tinybowl", problem);
  const std::uint16_t port = server.port();

  // Framing violations → "bad_frame".
  expect_fatal_error(std::string(4, '\0'), "bad_frame", port);  // zero length
  expect_fatal_error(std::string(4, '\xff'), "bad_frame", port);  // 4 GiB
  {
    // Declared length just past the server's cap.
    std::string header(4, '\0');
    const std::uint32_t len = kDefaultMaxFrameBytes + 1;
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<char>((len >> (24 - 8 * i)) & 0xff);
    }
    expect_fatal_error(header, "bad_frame", port);
  }

  // Well-framed garbage → "bad_message".
  expect_fatal_error(encode_frame("this is not json"), "bad_message", port);
  expect_fatal_error(encode_frame("{\"type\":\"frobnicate\",\"req\":1}"),
                     "bad_message", port);
  expect_fatal_error(encode_frame("{\"req\":1}"), "bad_message", port);
  // 300 nesting levels blows util/json's depth bound, not the stack.
  expect_fatal_error(encode_frame(std::string(300, '[') +
                                  std::string(300, ']')),
                     "bad_message", port);

  // Well-formed requests the service rejects → "bad_request", also fatal.
  {
    TuningClient client("127.0.0.1", port);
    core::RunResult r;
    try {
      client.tell(9999, 0, r);  // tell before any open
      FAIL() << "tell for an unknown session did not error";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), "bad_request");
    }
    EXPECT_THROW((void)client.read_message(), SocketError);
  }
  {
    TuningClient client("127.0.0.1", port);
    service::SessionSpec spec;
    spec.optimizer = "lynceus";
    spec.problem_ref = service::ProblemRef{"no-such-suite", "nope", 3.0};
    try {
      (void)client.open(spec);  // unresolvable problem reference
      FAIL() << "open with an unresolvable problem did not error";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), "bad_request");
    }
  }

  // A peer that vanishes mid-frame is dropped without ceremony.
  {
    TuningClient client("127.0.0.1", port);
    client.send_raw(std::string("\x00\x00", 2));  // half a header, then gone
  }

  // Through all of that, the server never crashed and still serves: a
  // full session on a fresh connection completes normally.
  TuningClient survivor("127.0.0.1", port);
  service::SessionSpec spec;
  spec.optimizer = "random";
  spec.seed = 5;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  const std::uint64_t id = survivor.open(spec);
  eval::AsyncTableRunner runner(ds);
  survivor.drain(runner);
  EXPECT_TRUE(survivor.result(id).finished);
}

/// The wire-tax contract: the SAME session driven over JSON frames and
/// over negotiated binary frames lands on identical bytes — and both on
/// the solo in-process run. A snapshot taken over one encoding restores
/// over the other.
TEST(NetService, CrossEncodingTrajectoriesAreByteIdentical) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer server;
  server.register_problem("test", "tinybowl", problem);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    OptimizerResult by_enc[2];
    for (const TuningClient::WireMode mode :
         {TuningClient::WireMode::kJson, TuningClient::WireMode::kBinary}) {
      TuningClient client("127.0.0.1", server.port(), kDefaultMaxFrameBytes,
                          mode);
      ASSERT_EQ(client.encoding(), mode == TuningClient::WireMode::kBinary
                                       ? WireEncoding::kBinary
                                       : WireEncoding::kJson);
      const std::uint64_t id = client.open(remote_lynceus_spec(seed));
      eval::AsyncTableRunner runner(ds);
      client.drain(runner);
      const TuningClient::ResultReply reply = client.result(id);
      ASSERT_TRUE(reply.finished);
      by_enc[mode == TuningClient::WireMode::kBinary ? 1 : 0] = reply.result;
      client.close_session(id);
    }
    expect_identical(by_enc[0], by_enc[1]);
    eval::TableRunner solo(ds);
    auto stepper = core::LynceusOptimizer(lynceus_options_for(seed))
                       .make_stepper(problem, seed);
    expect_identical(by_enc[1], core::drive(*stepper, solo));
  }

  // Snapshot over JSON, restore over binary: mid-flight state crosses
  // the encoding boundary intact.
  service::SessionSpec spec = remote_lynceus_spec(23);
  spec.lookahead = 1;
  eval::TableRunner solo(ds);
  core::LynceusOptions o = lynceus_options_for(23);
  o.lookahead = 1;
  auto ref = core::LynceusOptimizer(o).make_stepper(problem, 23);
  const OptimizerResult golden = core::drive(*ref, solo);

  std::string snap;
  {
    TuningClient json_side("127.0.0.1", server.port(), kDefaultMaxFrameBytes,
                           TuningClient::WireMode::kJson);
    const std::uint64_t id = json_side.open(spec);
    for (std::size_t i = 0; i < problem.bootstrap_samples / 2; ++i) {
      const auto run = json_side.take_run(/*wait=*/true);
      ASSERT_TRUE(run.has_value());
      core::RunResult r;
      r.runtime_seconds = ds.observation(run->config).runtime_seconds;
      r.cost = ds.observation(run->config).cost();
      (void)json_side.tell(id, run->config, r);
    }
    snap = json_side.snapshot(id);
    json_side.close_session(id);
  }
  TuningClient bin_side("127.0.0.1", server.port(), kDefaultMaxFrameBytes,
                        TuningClient::WireMode::kBinary);
  const std::uint64_t rid = bin_side.restore(spec, snap);
  eval::AsyncTableRunner runner(ds);
  bin_side.drain(runner);
  const TuningClient::ResultReply reply = bin_side.result(rid);
  ASSERT_TRUE(reply.finished);
  expect_identical(reply.result, golden);
}

TEST(NetService, NegotiationRejectionsAreTypedErrors) {
  const auto problem = lynceus::testing::tiny_problem();

  // A binary-demanding client against a JSON-only server: the typed
  // rejection surfaces from the constructor, not a mystery disconnect.
  {
    TuningServer::Options opts;
    opts.wire = TuningServer::WirePolicy::kJsonOnly;
    TuningServer server(opts);
    try {
      TuningClient client("127.0.0.1", server.port(), kDefaultMaxFrameBytes,
                          TuningClient::WireMode::kBinary);
      FAIL() << "binary-only negotiation against a JSON-only server passed";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), "bad_negotiation");
    }
    // Negotiate mode falls back to JSON and works.
    TuningClient fallback("127.0.0.1", server.port());
    EXPECT_EQ(fallback.encoding(), WireEncoding::kJson);
  }

  // A binary-only server rejects a legacy client that never negotiates.
  {
    TuningServer::Options opts;
    opts.wire = TuningServer::WirePolicy::kBinaryOnly;
    TuningServer server(opts);
    server.register_problem("test", "tinybowl", problem);
    TuningClient legacy("127.0.0.1", server.port(), kDefaultMaxFrameBytes,
                        TuningClient::WireMode::kJson);
    try {
      (void)legacy.open(remote_lynceus_spec(1));
      FAIL() << "legacy JSON open against a binary-only server passed";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), "bad_negotiation");
    }
    // And accepts one that does negotiate.
    TuningClient modern("127.0.0.1", server.port(), kDefaultMaxFrameBytes,
                        TuningClient::WireMode::kBinary);
    EXPECT_EQ(modern.encoding(), WireEncoding::kBinary);
  }

  TuningServer server;
  const std::uint16_t port = server.port();

  // Unsupported protocol version.
  expect_fatal_error(
      encode_frame(encode_hello_request(1, 99, {"binary", "json"})),
      "bad_negotiation", port);

  // An offer with no encoding the server knows.
  expect_fatal_error(
      encode_frame(encode_hello_request(1, kProtocolVersion, {"pigeon"})),
      "bad_negotiation", port);

  // Negotiation replay: a second hello after the handshake is fatal.
  {
    TuningClient client("127.0.0.1", port, kDefaultMaxFrameBytes,
                        TuningClient::WireMode::kJson);
    client.send_raw(
        encode_frame(encode_hello_request(1, kProtocolVersion, {"json"})));
    const ServerMessage hello = client.read_message();
    ASSERT_EQ(hello.type, ServerMessage::Type::Hello);
    EXPECT_EQ(hello.encoding, "json");
    client.send_raw(
        encode_frame(encode_hello_request(2, kProtocolVersion, {"json"})));
    const ServerMessage err = last_error_before_close(client);
    ASSERT_EQ(err.type, ServerMessage::Type::Error);
    EXPECT_EQ(err.code, "bad_negotiation");
  }
}

/// Hostile bytes on an already-negotiated binary connection: every entry
/// of the malformed matrix must produce a typed fatal error and a closed
/// connection, and the server must keep serving afterwards.
TEST(NetService, MalformedBinaryFramesGetTypedErrors) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer server;
  server.register_problem("test", "tinybowl", problem);
  const std::uint16_t port = server.port();

  const auto expect_binary_fatal = [&](const std::string& body,
                                       const std::string& expected_code) {
    SCOPED_TRACE("expecting " + expected_code);
    // The constructor negotiates binary; the hostile frame follows it.
    TuningClient client("127.0.0.1", port, kDefaultMaxFrameBytes,
                        TuningClient::WireMode::kBinary);
    client.send_raw(encode_frame(body));
    const ServerMessage err = last_error_before_close(client);
    ASSERT_EQ(err.type, ServerMessage::Type::Error);
    EXPECT_EQ(err.code, expected_code);
    EXPECT_TRUE(err.fatal);
  };

  // Unknown tag.
  expect_binary_fatal(std::string(1, '\x7e'), "bad_message");
  // JSON on a binary connection is just another unknown tag.
  expect_binary_fatal("{\"type\":\"next_runs\",\"req\":1}", "bad_message");
  // Truncated varint (continue bit, then end of frame).
  expect_binary_fatal(std::string("\x04\xff", 2), "bad_message");
  // Over-long varint (10 continuation bytes).
  expect_binary_fatal(std::string(1, '\x04') + std::string(10, '\xff') + '\x01',
                      "bad_message");
  // Wrong length: a close request with trailing bytes.
  expect_binary_fatal(binary_encode_close(1, 2) + '\x00', "bad_message");
  // A frame cut inside a double.
  {
    core::RunResult r;
    std::string tell = binary_encode_tell(1, 2, 3, r);
    tell.resize(tell.size() - 4);
    expect_binary_fatal(tell, "bad_message");
  }

  // Still serving: a full binary session completes after the abuse.
  TuningClient survivor("127.0.0.1", port, kDefaultMaxFrameBytes,
                        TuningClient::WireMode::kBinary);
  service::SessionSpec spec;
  spec.optimizer = "random";
  spec.seed = 7;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  const std::uint64_t id = survivor.open(spec);
  eval::AsyncTableRunner runner(ds);
  survivor.drain(runner);
  EXPECT_TRUE(survivor.result(id).finished);
}

/// Backpressure correctness: with the smallest possible lanes every
/// request parks its connection sooner or later, and trajectories must
/// STILL land byte-identical — parking pauses reads, it never reorders
/// or drops. The saturation must be visible in request_lane_stats().
TEST(NetService, TinyLanesParkReadersWithoutCorruptingTrajectories) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer::Options opts;
  opts.shards = 2;
  opts.lane_capacity = 1;  // every burst overflows
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  constexpr std::uint64_t kSessions = 8;
  TuningClient client("127.0.0.1", server.port());
  eval::AsyncTableRunner runner(ds);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> opened;
  for (std::uint64_t seed = 1; seed <= kSessions; ++seed) {
    opened.emplace_back(seed, client.open(remote_lynceus_spec(seed)));
  }
  client.drain(runner);
  for (const auto& [seed, id] : opened) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const TuningClient::ResultReply reply = client.result(id);
    ASSERT_TRUE(reply.finished);
    eval::TableRunner solo(ds);
    auto stepper = core::LynceusOptimizer(lynceus_options_for(seed))
                       .make_stepper(problem, seed);
    expect_identical(reply.result, core::drive(*stepper, solo));
  }

  const std::vector<TuningServer::LaneStats> stats =
      server.request_lane_stats();
  ASSERT_EQ(stats.size(), 4U);  // 2 transports x 2 shards
  std::size_t total_high_water = 0;
  for (const TuningServer::LaneStats& ls : stats) {
    EXPECT_EQ(ls.capacity, 1U);
    EXPECT_LE(ls.high_water, ls.capacity);
    total_high_water += ls.high_water;
  }
  // Traffic flowed through at least one lane of the connection's
  // transport; stall counts are load-dependent and only asserted >= 0
  // implicitly by type.
  EXPECT_GT(total_high_water, 0U);
}

TEST(NetService, StopClosesClientConnections) {
  const auto problem = lynceus::testing::tiny_problem();
  auto server = std::make_unique<TuningServer>();
  server->register_problem("test", "tinybowl", problem);
  TuningClient client("127.0.0.1", server->port());
  service::SessionSpec spec;
  spec.optimizer = "random";
  spec.seed = 1;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  (void)client.open(spec);
  server->stop();
  // Reads now terminate instead of hanging forever.
  EXPECT_THROW(
      {
        for (;;) (void)client.read_message();
      },
      SocketError);
}

}  // namespace
}  // namespace lynceus::net

/// End-to-end tests for the TCP front-end (src/net/): the network
/// determinism contract (remote sessions byte-identical to solo
/// in-process runs, across shards and concurrent connections), protocol
/// hardening (malformed frames get a typed error and a closed connection,
/// never a crash), snapshot/restore over the wire, and shard
/// partitioning. Runs under the `net` ctest label; the stressy cases are
/// also in the TSan CI leg via the `concurrency` label.

#include "net/tuning_server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "eval/runner.hpp"
#include "net/tuning_client.hpp"
#include "test_helpers.hpp"

namespace lynceus::net {
namespace {

using core::ConfigId;
using core::OptimizerResult;

double tiny_energy(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn tiny_metrics() {
  const auto sp = lynceus::testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{tiny_energy(*sp, id)};
  };
}

core::ConstraintDef tiny_constraint(double cap) {
  core::ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

/// Same fields the in-process service tests pin: trajectory, spend and
/// recommendation. decision_seconds is wall clock and deliberately
/// excluded.
void expect_identical(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "step " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost) << "step " << i;
    EXPECT_EQ(a.history[i].feasible, b.history[i].feasible) << "step " << i;
  }
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.recommendation_feasible, b.recommendation_feasible);
  EXPECT_EQ(a.decisions, b.decisions);
}

core::LynceusOptions lynceus_options_for(std::uint64_t seed) {
  core::LynceusOptions o;
  o.lookahead = seed % 2 == 0 ? 1U : 0U;
  o.incremental_refit = false;
  o.branch_parallel = false;
  return o;
}

service::SessionSpec remote_lynceus_spec(std::uint64_t seed) {
  service::SessionSpec spec;
  spec.optimizer = "lynceus";
  spec.seed = seed;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  const core::LynceusOptions o = lynceus_options_for(seed);
  spec.lookahead = o.lookahead;
  spec.incremental_refit = false;
  spec.branch_parallel = false;
  return spec;
}

/// The acceptance gate of the redesign: 64 remote sessions, 8 concurrent
/// client connections, 2 shards, shared per-shard root caches — every
/// session's trajectory must be byte-identical to its solo in-process
/// run.
TEST(NetService, SixtyFourConcurrentRemoteSessionsMatchTheirSoloRuns) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  TuningServer::Options opts;
  opts.shards = 2;
  opts.root_cache_capacity = 16;
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  constexpr std::uint64_t kSessions = 64;
  constexpr std::uint64_t kClients = 8;
  std::vector<OptimizerResult> remote(kSessions);
  std::vector<std::string> errors(kClients);

  std::vector<std::thread> drivers;
  for (std::uint64_t c = 0; c < kClients; ++c) {
    drivers.emplace_back([&, c] {
      try {
        TuningClient client("127.0.0.1", server.port());
        eval::AsyncTableRunner runner(ds);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> opened;  // seed,id
        for (std::uint64_t k = 0; k < kSessions / kClients; ++k) {
          const std::uint64_t seed = 1 + c * (kSessions / kClients) + k;
          opened.emplace_back(seed, client.open(remote_lynceus_spec(seed)));
        }
        client.drain(runner);
        for (const auto& [seed, id] : opened) {
          const TuningClient::ResultReply reply = client.result(id);
          if (!reply.finished) {
            throw std::runtime_error("session for seed " +
                                     std::to_string(seed) + " not finished");
          }
          remote[seed - 1] = reply.result;
          client.close_session(id);
        }
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  for (std::uint64_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
  }

  for (std::uint64_t seed = 1; seed <= kSessions; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    eval::TableRunner solo(ds);
    auto stepper = core::LynceusOptimizer(lynceus_options_for(seed))
                       .make_stepper(problem, seed);
    expect_identical(remote[seed - 1], core::drive(*stepper, solo));
  }

  // Both shards carried sessions, and together they carried all of them.
  const std::vector<std::size_t> counts = server.shard_session_counts();
  ASSERT_EQ(counts.size(), 2U);
  EXPECT_GT(counts[0], 0U);
  EXPECT_GT(counts[1], 0U);
  EXPECT_EQ(counts[0] + counts[1], kSessions);
}

/// All four optimizer kinds over the wire on one connection — exercises
/// the metrics array + constraint codecs end to end.
TEST(NetService, MixedOptimizerKindsOverTheWireMatchSolo) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer::Options opts;
  opts.shards = 2;
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  TuningClient client("127.0.0.1", server.port());
  eval::AsyncTableRunner runner(ds, tiny_metrics());

  std::vector<std::uint64_t> ids;
  std::vector<std::function<OptimizerResult()>> solos;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    service::SessionSpec ly = remote_lynceus_spec(seed);
    ly.lookahead = 1;
    ids.push_back(client.open(ly));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      core::LynceusOptions o = lynceus_options_for(seed);
      o.lookahead = 1;
      auto stepper = core::LynceusOptimizer(o).make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    service::SessionSpec mc;
    mc.optimizer = "multi_constraint";
    mc.seed = seed;
    mc.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    mc.lookahead = 1;
    mc.incremental_refit = false;
    mc.branch_parallel = false;
    service::ConstraintSpec cs;
    cs.name = "energy";
    cs.metric_index = 0;
    cs.threshold = 26.0;
    mc.constraints.push_back(cs);
    ids.push_back(client.open(mc));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      core::MultiConstraintOptions o;
      o.lookahead = 1;
      o.incremental_refit = false;
      o.branch_parallel = false;
      auto stepper = core::MultiConstraintLynceus({tiny_constraint(26.0)}, o)
                         .make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    service::SessionSpec bo;
    bo.optimizer = "bo";
    bo.seed = seed;
    bo.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    ids.push_back(client.open(bo));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::BayesianOptimizer().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    service::SessionSpec rnd;
    rnd.optimizer = "random";
    rnd.seed = seed;
    rnd.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    ids.push_back(client.open(rnd));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::RandomSearch().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });
  }

  client.drain(runner);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(ids[i]));
    const TuningClient::ResultReply reply = client.result(ids[i]);
    ASSERT_TRUE(reply.finished);
    EXPECT_FALSE(reply.stop_reason.empty());
    expect_identical(reply.result, solos[i]());
  }
}

TEST(NetService, SnapshotRestoreOverTheWireFinishesByteIdentically) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer server;
  server.register_problem("test", "tinybowl", problem);

  service::SessionSpec spec = remote_lynceus_spec(23);
  spec.lookahead = 1;

  eval::TableRunner solo(ds);
  core::LynceusOptions o = lynceus_options_for(23);
  o.lookahead = 1;
  auto ref = core::LynceusOptimizer(o).make_stepper(problem, 23);
  const OptimizerResult golden = core::drive(*ref, solo);

  // Resolve half of the bootstrap batch, snapshot mid-flight, hang up.
  std::string snap;
  {
    TuningClient client("127.0.0.1", server.port());
    const std::uint64_t id = client.open(spec);
    std::vector<service::PendingRun> batch;
    for (std::size_t i = 0; i < problem.bootstrap_samples; ++i) {
      const auto run = client.take_run(/*wait=*/true);
      ASSERT_TRUE(run.has_value());
      batch.push_back(*run);
    }
    for (std::size_t i = 0; i < problem.bootstrap_samples / 2; ++i) {
      core::RunResult r;
      r.runtime_seconds = ds.observation(batch[i].config).runtime_seconds;
      r.cost = ds.observation(batch[i].config).cost();
      const auto status = client.tell(id, batch[i].config, r);
      ASSERT_FALSE(status.finished);
    }
    snap = client.snapshot(id);
    client.close_session(id);
  }

  // Restore on a fresh connection: the still-in-flight half is re-pushed,
  // the told half is not, and the trajectory lands exactly on the solo
  // run's bytes.
  TuningClient revived("127.0.0.1", server.port());
  const std::uint64_t rid = revived.restore(spec, snap);
  eval::AsyncTableRunner runner(ds);
  revived.drain(runner);
  const TuningClient::ResultReply reply = revived.result(rid);
  ASSERT_TRUE(reply.finished);
  expect_identical(reply.result, golden);
}

TEST(NetService, SequentialSessionIdsPartitionEvenlyAcrossShards) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer::Options opts;
  opts.shards = 4;
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  TuningClient client("127.0.0.1", server.port());
  eval::AsyncTableRunner runner(ds);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    service::SessionSpec spec;
    spec.optimizer = "random";
    spec.seed = seed;
    spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    ids.push_back(client.open(spec));
  }
  client.drain(runner);
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(client.result(id).finished) << "session " << id;
  }

  // Ids come from one global counter, so 8 opens land 2 per shard.
  const std::vector<std::size_t> counts = server.shard_session_counts();
  ASSERT_EQ(counts.size(), 4U);
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_EQ(counts[s], 2U) << "shard " << s;
  }
}

/// Reads messages until the connection drops, returning the last error
/// frame seen (the server flushes the typed error before closing).
ServerMessage last_error_before_close(TuningClient& client) {
  ServerMessage last;
  last.type = ServerMessage::Type::Closed;  // sentinel: no error seen
  try {
    for (;;) {
      const ServerMessage m = client.read_message();
      if (m.type == ServerMessage::Type::Error) last = m;
    }
  } catch (const SocketError&) {
    // Connection closed — exactly what a fatal error promises.
  }
  return last;
}

void expect_fatal_error(const std::string& raw_bytes,
                        const std::string& expected_code,
                        std::uint16_t port) {
  SCOPED_TRACE("expecting " + expected_code);
  TuningClient client("127.0.0.1", port);
  client.send_raw(raw_bytes);
  const ServerMessage err = last_error_before_close(client);
  ASSERT_EQ(err.type, ServerMessage::Type::Error);
  EXPECT_EQ(err.code, expected_code);
  EXPECT_TRUE(err.fatal);
}

TEST(NetService, MalformedInputGetsTypedErrorAndClosedConnection) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningServer server;
  server.register_problem("test", "tinybowl", problem);
  const std::uint16_t port = server.port();

  // Framing violations → "bad_frame".
  expect_fatal_error(std::string(4, '\0'), "bad_frame", port);  // zero length
  expect_fatal_error(std::string(4, '\xff'), "bad_frame", port);  // 4 GiB
  {
    // Declared length just past the server's cap.
    std::string header(4, '\0');
    const std::uint32_t len = kDefaultMaxFrameBytes + 1;
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<char>((len >> (24 - 8 * i)) & 0xff);
    }
    expect_fatal_error(header, "bad_frame", port);
  }

  // Well-framed garbage → "bad_message".
  expect_fatal_error(encode_frame("this is not json"), "bad_message", port);
  expect_fatal_error(encode_frame("{\"type\":\"frobnicate\",\"req\":1}"),
                     "bad_message", port);
  expect_fatal_error(encode_frame("{\"req\":1}"), "bad_message", port);
  // 300 nesting levels blows util/json's depth bound, not the stack.
  expect_fatal_error(encode_frame(std::string(300, '[') +
                                  std::string(300, ']')),
                     "bad_message", port);

  // Well-formed requests the service rejects → "bad_request", also fatal.
  {
    TuningClient client("127.0.0.1", port);
    core::RunResult r;
    try {
      client.tell(9999, 0, r);  // tell before any open
      FAIL() << "tell for an unknown session did not error";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), "bad_request");
    }
    EXPECT_THROW((void)client.read_message(), SocketError);
  }
  {
    TuningClient client("127.0.0.1", port);
    service::SessionSpec spec;
    spec.optimizer = "lynceus";
    spec.problem_ref = service::ProblemRef{"no-such-suite", "nope", 3.0};
    try {
      (void)client.open(spec);  // unresolvable problem reference
      FAIL() << "open with an unresolvable problem did not error";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), "bad_request");
    }
  }

  // A peer that vanishes mid-frame is dropped without ceremony.
  {
    TuningClient client("127.0.0.1", port);
    client.send_raw(std::string("\x00\x00", 2));  // half a header, then gone
  }

  // Through all of that, the server never crashed and still serves: a
  // full session on a fresh connection completes normally.
  TuningClient survivor("127.0.0.1", port);
  service::SessionSpec spec;
  spec.optimizer = "random";
  spec.seed = 5;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  const std::uint64_t id = survivor.open(spec);
  eval::AsyncTableRunner runner(ds);
  survivor.drain(runner);
  EXPECT_TRUE(survivor.result(id).finished);
}

TEST(NetService, StopClosesClientConnections) {
  const auto problem = lynceus::testing::tiny_problem();
  auto server = std::make_unique<TuningServer>();
  server->register_problem("test", "tinybowl", problem);
  TuningClient client("127.0.0.1", server->port());
  service::SessionSpec spec;
  spec.optimizer = "random";
  spec.seed = 1;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  (void)client.open(spec);
  server->stop();
  // Reads now terminate instead of hanging forever.
  EXPECT_THROW(
      {
        for (;;) (void)client.read_message();
      },
      SocketError);
}

}  // namespace
}  // namespace lynceus::net

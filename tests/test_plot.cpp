#include "eval/plot.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lynceus::eval {
namespace {

Series line(const std::string& label, double slope, std::size_t n) {
  Series s;
  s.label = label;
  for (std::size_t i = 0; i < n; ++i) {
    s.xs.push_back(static_cast<double>(i));
    s.ys.push_back(slope * static_cast<double>(i) + 1.0);
  }
  return s;
}

TEST(Plot, RendersTitleAxesAndLegend) {
  PlotOptions opts;
  opts.title = "My Title";
  opts.x_label = "xaxis";
  opts.y_label = "yaxis";
  const auto text = render_plot({line("up", 1.0, 10)}, opts);
  EXPECT_NE(text.find("My Title"), std::string::npos);
  EXPECT_NE(text.find("xaxis"), std::string::npos);
  EXPECT_NE(text.find("yaxis"), std::string::npos);
  EXPECT_NE(text.find("* up"), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(Plot, DistinctMarkersPerSeries) {
  const auto text =
      render_plot({line("a", 1.0, 5), line("b", -1.0, 5)}, PlotOptions{});
  EXPECT_NE(text.find("* a"), std::string::npos);
  EXPECT_NE(text.find("+ b"), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(Plot, IncreasingSeriesRendersTopRight) {
  PlotOptions opts;
  opts.width = 20;
  opts.height = 8;
  const auto text = render_plot({line("up", 1.0, 20)}, opts);
  // The first grid line (top) must contain a marker near its right end,
  // the last grid line (bottom) near its left end.
  const auto lines = [&] {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == '\n') {
        out.push_back(text.substr(start, i - start));
        start = i + 1;
      }
    }
    return out;
  }();
  std::string top;
  std::string bottom;
  for (const auto& l : lines) {
    if (l.find('|') == std::string::npos) continue;
    if (top.empty()) top = l;
    bottom = l;
  }
  EXPECT_NE(top.find('*', top.size() - 4), std::string::npos);
  const auto bar = bottom.find('|');
  EXPECT_NE(bottom.find('*', bar), std::string::npos);
  EXPECT_LT(bottom.find('*', bar), bar + 4);
}

TEST(Plot, LogScaleHandlesWideRanges) {
  Series s;
  s.label = "spread";
  for (int i = 0; i <= 6; ++i) {
    s.xs.push_back(i);
    s.ys.push_back(std::pow(10.0, i));
  }
  PlotOptions opts;
  opts.log_y = true;
  const auto text = render_plot({s}, opts);
  EXPECT_NE(text.find("(log scale)"), std::string::npos);
  // y tick labels must show the extremes (1 and 1e+06).
  EXPECT_NE(text.find("1e+06"), std::string::npos);
}

TEST(Plot, SkipsNonFiniteAndNonPositiveUnderLog) {
  Series s;
  s.label = "partial";
  s.xs = {0, 1, 2, 3};
  s.ys = {1.0, -5.0, std::nan(""), 10.0};
  PlotOptions opts;
  opts.log_y = true;
  EXPECT_NO_THROW((void)render_plot({s}, opts));
}

TEST(Plot, Validation) {
  EXPECT_THROW((void)render_plot({}, PlotOptions{}), std::invalid_argument);
  Series bad;
  bad.label = "bad";
  bad.xs = {1.0};
  EXPECT_THROW((void)render_plot({bad}, PlotOptions{}),
               std::invalid_argument);
  PlotOptions tiny;
  tiny.width = 2;
  EXPECT_THROW((void)render_plot({line("a", 1.0, 3)}, tiny),
               std::invalid_argument);
  Series empty_series;
  empty_series.label = "empty";
  EXPECT_THROW((void)render_plot({empty_series}, PlotOptions{}),
               std::invalid_argument);
}

TEST(CdfSeries, MonotoneFromZeroToOne) {
  const auto s = cdf_series("cdf", {3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(s.xs.size(), 4U);
  EXPECT_DOUBLE_EQ(s.xs.front(), 1.0);
  EXPECT_DOUBLE_EQ(s.xs.back(), 3.0);
  EXPECT_DOUBLE_EQ(s.ys.back(), 1.0);
  for (std::size_t i = 1; i < s.ys.size(); ++i) {
    EXPECT_GE(s.ys[i], s.ys[i - 1]);
  }
}

}  // namespace
}  // namespace lynceus::eval

#include "util/alloc_count.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lynceus::util {
namespace {

/// The test binary compiles src/util/alloc_count.cpp in, so the counting
/// operator new/delete replacements must be active here.
TEST(AllocCount, HooksAreLinkedIntoTheTestBinary) {
  EXPECT_TRUE(alloc_count_available());
}

TEST(AllocCount, CountsHeapAllocations) {
  AllocCountGuard guard;
  std::vector<double> v(256);
  v[0] = 1.0;
  EXPECT_GE(guard.delta(), 1U);
}

TEST(AllocCount, CounterIsMonotone_DeleteDoesNotDecrement) {
  AllocCountGuard guard;
  {
    auto p = std::make_unique<std::vector<int>>(64);
    (*p)[0] = 1;
  }  // freed here
  const std::uint64_t after_free = guard.delta();
  EXPECT_GE(after_free, 1U);
  // Freeing must never roll the counter back below a previous reading.
  EXPECT_EQ(guard.delta(), after_free);
}

TEST(AllocCount, NestedGuardsComposeAsDeltas) {
  AllocCountGuard outer;
  std::vector<double> a(128);
  a[0] = 1.0;
  const std::uint64_t outer_before_inner = outer.delta();
  ASSERT_GE(outer_before_inner, 1U);

  AllocCountGuard inner;
  std::vector<double> b(128);
  b[0] = 2.0;
  const std::uint64_t inner_delta = inner.delta();
  EXPECT_GE(inner_delta, 1U);
  // The outer guard saw both regions; the inner one only its own.
  EXPECT_EQ(outer.delta(), outer_before_inner + inner_delta);
}

TEST(AllocCount, SurvivesExceptionUnwind) {
  AllocCountGuard guard;
  std::uint64_t at_throw = 0;
  try {
    std::vector<double> v(512);
    v[0] = 3.0;
    at_throw = guard.delta();
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
    // The allocation made before the throw stays counted after its memory
    // was released by stack unwinding; guards created before the try are
    // still usable.
    EXPECT_GE(at_throw, 1U);
    EXPECT_GE(guard.delta(), at_throw);
  }
  std::vector<double> w(16);
  w[0] = 4.0;
  EXPECT_GT(guard.delta(), at_throw);
}

TEST(AllocCount, CountersArePerThread) {
  std::atomic<std::uint64_t> worker_delta{0};
  std::thread t([&] {
    AllocCountGuard guard;
    std::vector<double> v(1024);
    v[0] = 5.0;
    worker_delta = guard.delta();
  });
  t.join();
  // The worker observed its own allocations on its own counter.
  EXPECT_GE(worker_delta.load(), 1U);
}

}  // namespace
}  // namespace lynceus::util

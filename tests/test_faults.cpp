/// Seeded fault-replay golden suite: non-ok tells at the stepper layer,
/// byte-deterministic replay of whole fault scenarios through the tuning
/// service, retry/backoff/quarantine policy behavior, and the
/// crash-recovery drill (kill a service mid-flight, restore every session
/// from its journal, finish byte-identically).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/lynceus.hpp"
#include "core/random_search.hpp"
#include "core/stepper.hpp"
#include "eval/runner.hpp"
#include "service/tuning_service.hpp"
#include "test_helpers.hpp"

namespace lynceus {
namespace {

using core::ConfigId;
using core::OptimizerResult;
using core::RunOutcome;
using core::RunResult;
using service::PendingRun;
using service::RunPolicy;
using service::SessionId;
using service::TuningService;

core::LynceusOptions fast_lynceus() {
  core::LynceusOptions opts;
  opts.lookahead = 0;
  opts.incremental_refit = false;
  return opts;
}

/// Everything OptimizerResult carries, including the failure ledger.
void expect_identical_with_failures(const OptimizerResult& a,
                                    const OptimizerResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "step " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost) << "step " << i;
    EXPECT_EQ(a.history[i].feasible, b.history[i].feasible) << "step " << i;
  }
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].id, b.failures[i].id) << "failure " << i;
    EXPECT_EQ(a.failures[i].cost, b.failures[i].cost) << "failure " << i;
    EXPECT_EQ(a.failures[i].after_samples, b.failures[i].after_samples)
        << "failure " << i;
  }
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.budget_spent_on_failures, b.budget_spent_on_failures);
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.recommendation_feasible, b.recommendation_feasible);
  EXPECT_EQ(a.decisions, b.decisions);
}

// ---------------------------------------------------------------------------
// Stepper layer: non-ok tells.

TEST(FaultStepper, FailedTellRecordsFailureAndBlacklists) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  auto stepper = core::LynceusOptimizer(fast_lynceus()).make_stepper(
      problem, 5);

  const core::StepAction& action = stepper->ask();
  ASSERT_EQ(action.kind, core::StepAction::Kind::Profile);
  ASSERT_GE(action.configs.size(), 2U);
  const std::vector<ConfigId> batch = action.configs;
  const ConfigId doomed = batch[1];

  for (const ConfigId id : batch) {
    RunResult r;
    if (id == doomed) {
      r.outcome = RunOutcome::kFailed;
      r.runtime_seconds = 12.5;  // partial progress before the crash
      r.cost = 0.05;
    } else {
      r.runtime_seconds = ds.observation(id).runtime_seconds;
      r.cost = ds.observation(id).cost();
    }
    stepper->tell(id, r);
  }

  eval::TableRunner rest(ds);
  core::drive(*stepper, rest);
  ASSERT_TRUE(stepper->finished());
  const OptimizerResult res = stepper->result();

  ASSERT_EQ(res.failures.size(), 1U);
  EXPECT_EQ(res.failures[0].id, doomed);
  EXPECT_EQ(res.failures[0].cost, 0.05);
  // Canonical apply order: the batch is applied in ask order, so the
  // failure landed after exactly the sample preceding it in the batch.
  EXPECT_EQ(res.failures[0].after_samples, 1U);
  EXPECT_EQ(res.budget_spent_on_failures, 0.05);
  // The failed config is blacklisted: it never re-enters the history.
  for (const auto& s : res.history) EXPECT_NE(s.id, doomed);
  // Its partial cost is billed to the shared budget.
  double sampled = 0.0;
  for (const auto& s : res.history) sampled += s.cost;
  EXPECT_NEAR(res.budget_spent, sampled + 0.05, 1e-9);
}

TEST(FaultStepper, TimedOutTellIsACensoredSample) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  auto stepper = core::LynceusOptimizer(fast_lynceus()).make_stepper(
      problem, 5);

  const std::vector<ConfigId> batch = stepper->ask().configs;
  const double cap = 30.0;
  for (const ConfigId id : batch) {
    RunResult r;
    r.runtime_seconds = ds.observation(id).runtime_seconds;
    r.cost = ds.observation(id).cost();
    if (id == batch[0]) {
      r.outcome = RunOutcome::kTimedOut;
      r.timed_out = true;
      r.runtime_seconds = cap;  // censored at the kill cap
      r.cost = ds.observation(id).cost() * 0.25;
    }
    stepper->tell(id, r);
  }
  eval::TableRunner runner(ds);
  const OptimizerResult res = core::drive(*stepper, runner);

  // The timed-out run is a real (infeasible) sample, not a failure.
  EXPECT_TRUE(res.failures.empty());
  EXPECT_EQ(res.budget_spent_on_failures, 0.0);
  bool saw = false;
  for (const auto& s : res.history) {
    if (s.id == batch[0]) {
      saw = true;
      EXPECT_FALSE(s.feasible);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(FaultStepper, AllBootstrapFailuresStopWithNoSuccessfulRuns) {
  const auto problem = lynceus::testing::tiny_problem();
  auto stepper = core::LynceusOptimizer(fast_lynceus()).make_stepper(
      problem, 9);
  const std::vector<ConfigId> batch = stepper->ask().configs;
  for (const ConfigId id : batch) {
    RunResult r;
    r.outcome = RunOutcome::kFailed;
    r.cost = 0.01;
    stepper->tell(id, r);
  }
  ASSERT_TRUE(stepper->finished());
  EXPECT_EQ(stepper->stop_reason(), "no_successful_runs");
  const OptimizerResult res = stepper->result();
  EXPECT_TRUE(res.history.empty());
  EXPECT_EQ(res.failures.size(), batch.size());
  EXPECT_FALSE(res.recommendation.has_value());
  EXPECT_NEAR(res.budget_spent, 0.01 * static_cast<double>(batch.size()),
              1e-9);
  EXPECT_EQ(res.budget_spent, res.budget_spent_on_failures);
}

TEST(FaultStepper, AbortFinishesMidFlightAndIsIdempotent) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  auto stepper = core::LynceusOptimizer(fast_lynceus()).make_stepper(
      problem, 5);
  const std::vector<ConfigId> batch = stepper->ask().configs;
  RunResult r;
  r.runtime_seconds = ds.observation(batch[0]).runtime_seconds;
  r.cost = ds.observation(batch[0]).cost();
  stepper->tell(batch[0], r);

  // Aborting mid-batch discards the buffered (not yet applied) tells:
  // applied samples are the resumable truth, partial batches are not.
  stepper->abort("runner_failed");
  ASSERT_TRUE(stepper->finished());
  EXPECT_EQ(stepper->stop_reason(), "runner_failed");
  EXPECT_TRUE(stepper->outstanding_configs().empty());
  EXPECT_TRUE(stepper->result().history.empty());
  stepper->abort("something_else");  // idempotent: first reason wins
  EXPECT_EQ(stepper->stop_reason(), "runner_failed");
  EXPECT_EQ(stepper->ask().kind, core::StepAction::Kind::Finished);

  // Applied batches survive an abort: finish the bootstrap on a second
  // stepper, then abort during the decision phase.
  auto second = core::LynceusOptimizer(fast_lynceus()).make_stepper(
      problem, 5);
  const std::vector<ConfigId> boot = second->ask().configs;
  for (const ConfigId id : boot) {
    RunResult ok;
    ok.runtime_seconds = ds.observation(id).runtime_seconds;
    ok.cost = ds.observation(id).cost();
    second->tell(id, ok);
  }
  ASSERT_EQ(second->ask().kind, core::StepAction::Kind::Profile);
  second->abort("runner_failed");
  ASSERT_TRUE(second->finished());
  EXPECT_EQ(second->result().history.size(), boot.size());
}

TEST(FaultStepper, SnapshotWithFailuresRestoresByteIdentically) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  const core::LynceusOptions opts = fast_lynceus();

  // One bootstrap failure and one decision-phase failure, so the snapshot
  // carries failure records interleaved with samples.
  auto run_partial = [&](core::OptimizerStepper& stepper) {
    const std::vector<ConfigId> batch = stepper.ask().configs;
    for (const ConfigId id : batch) {
      RunResult r;
      r.runtime_seconds = ds.observation(id).runtime_seconds;
      r.cost = ds.observation(id).cost();
      if (id == batch[1]) {
        r = RunResult{};
        r.outcome = RunOutcome::kFailed;
        r.cost = 0.02;
      }
      stepper.tell(id, r);
    }
    const core::StepAction& decision = stepper.ask();
    ASSERT_EQ(decision.kind, core::StepAction::Kind::Profile);
    RunResult crash;
    crash.outcome = RunOutcome::kFailed;
    crash.cost = 0.02;
    stepper.tell(decision.configs.front(), crash);
  };

  auto original = core::LynceusOptimizer(opts).make_stepper(problem, 31);
  run_partial(*original);
  const std::string snap = original->snapshot();

  auto revived = core::LynceusOptimizer(opts).make_stepper(problem, 31);
  revived->restore(snap);
  // The failure ledger round-trips: re-snapshotting emits the same bytes.
  EXPECT_EQ(revived->snapshot(), snap);

  // Both finish identically, failures and blacklist included.
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const OptimizerResult a = core::drive(*original, r1);
  const OptimizerResult b = core::drive(*revived, r2);
  expect_identical_with_failures(a, b);
  ASSERT_EQ(a.failures.size(), 2U);
}

// ---------------------------------------------------------------------------
// Service layer: retry / backoff / timeout / quarantine policy.

TEST(RunPolicyTest, ValidatesItsKnobs) {
  RunPolicy p;
  p.validate();  // defaults are fine
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RunPolicy{};
  p.backoff_base_seconds = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RunPolicy{};
  p.backoff_multiplier = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RunPolicy{};
  p.run_timeout_seconds = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RunPolicy{};
  p.timeout_tmax_factor = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  TuningService::Options bad;
  bad.run_policy.max_attempts = 0;
  EXPECT_THROW(TuningService{bad}, std::invalid_argument);
}

TEST(RunPolicyTest, RetriesUseExponentialBackoffThenExhaust) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningService::Options sopts;
  sopts.run_policy.max_attempts = 3;
  sopts.run_policy.backoff_base_seconds = 7.0;
  sopts.run_policy.backoff_multiplier = 3.0;
  sopts.run_policy.run_timeout_seconds = 123.0;
  TuningService service(sopts);
  const SessionId id = service.open_random(problem, 4);

  const std::vector<PendingRun> batch = service.next_runs();
  ASSERT_FALSE(batch.empty());
  for (const PendingRun& run : batch) {
    EXPECT_EQ(run.attempt, 0U);
    EXPECT_EQ(run.timeout_seconds, 123.0);
    EXPECT_EQ(run.start_delay, 0.0);
  }
  const ConfigId flaky = batch.front().config;

  RunResult failed;
  failed.outcome = RunOutcome::kFailed;
  failed.cost = 0.01;

  // First failure: retried with delay 7, attempt 1; the stepper is not
  // told, so the run is still outstanding.
  service.tell(id, flaky, failed);
  EXPECT_TRUE(service.result(id).failures.empty());
  std::vector<PendingRun> retries = service.next_runs();
  ASSERT_EQ(retries.size(), 1U);
  EXPECT_EQ(retries[0].config, flaky);
  EXPECT_EQ(retries[0].attempt, 1U);
  EXPECT_EQ(retries[0].start_delay, 7.0);
  EXPECT_EQ(retries[0].timeout_seconds, 123.0);

  // Second failure: the backoff delay grows geometrically.
  service.tell(id, flaky, failed);
  retries = service.next_runs();
  ASSERT_EQ(retries.size(), 1U);
  EXPECT_EQ(retries[0].attempt, 2U);
  EXPECT_EQ(retries[0].start_delay, 21.0);  // 7 × 3^1

  // Third failure exhausts max_attempts: the failure goes to the stepper.
  service.tell(id, flaky, failed);
  EXPECT_TRUE(service.next_runs().empty());  // no retry; batch in flight
  EXPECT_FALSE(service.quarantined(id));
  // Finish the rest of the batch; the applied batch carries the failure.
  for (std::size_t i = 1; i < batch.size(); ++i) {
    RunResult ok;
    ok.runtime_seconds = ds.observation(batch[i].config).runtime_seconds;
    ok.cost = ds.observation(batch[i].config).cost();
    service.tell(id, batch[i].config, ok);
  }
  ASSERT_EQ(service.result(id).failures.size(), 1U);
  EXPECT_EQ(service.result(id).failures[0].id, flaky);
}

TEST(RunPolicyTest, TellForRetryPendingConfigThrowsWithoutStateChange) {
  const auto problem = lynceus::testing::tiny_problem();
  TuningService::Options sopts;
  sopts.run_policy.max_attempts = 2;
  TuningService service(sopts);
  const SessionId id = service.open_random(problem, 4);
  const auto batch = service.next_runs();
  ASSERT_FALSE(batch.empty());
  RunResult failed;
  failed.outcome = RunOutcome::kFailed;
  service.tell(id, batch.front().config, failed);
  // The retry is queued; a second result for the config is not due.
  EXPECT_THROW(service.tell(id, batch.front().config, failed),
               std::invalid_argument);
  // State is intact: the retry still comes out exactly once.
  const auto retries = service.next_runs();
  ASSERT_EQ(retries.size(), 1U);
  EXPECT_EQ(retries[0].config, batch.front().config);
  EXPECT_EQ(retries[0].attempt, 1U);
}

TEST(RunPolicyTest, TmaxFactorCapsTheEffectiveTimeout) {
  const auto problem = lynceus::testing::tiny_problem();
  TuningService::Options sopts;
  sopts.run_policy.run_timeout_seconds = 1e9;
  sopts.run_policy.timeout_tmax_factor = 2.0;
  TuningService service(sopts);
  (void)service.open_random(problem, 4);
  const auto batch = service.next_runs();
  ASSERT_FALSE(batch.empty());
  for (const PendingRun& run : batch) {
    EXPECT_EQ(run.timeout_seconds, 2.0 * problem.tmax_seconds);
  }
}

TEST(RunPolicyTest, QuarantineAfterConsecutiveFailures) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningService::Options sopts;
  sopts.run_policy.quarantine_after = 2;
  TuningService service(sopts);
  eval::AsyncTableRunner async(ds);
  eval::FaultPlan plan;
  plan.seed = 1;
  plan.fail_rate = 1.0;  // a broken runner: every attempt crashes
  async.set_fault_plan(plan);

  const SessionId sick = service.open_random(problem, 4);
  const SessionId healthy = service.open_lynceus(problem, fast_lynceus(), 6);
  service::drain(service, async);

  EXPECT_TRUE(service.idle());
  EXPECT_TRUE(service.quarantined(sick));
  EXPECT_TRUE(service.quarantined(healthy));
  EXPECT_TRUE(service.finished(sick));
  EXPECT_EQ(service.stop_reason(sick), "runner_failed");
  EXPECT_EQ(service.quarantined_sessions(),
            (std::vector<SessionId>{sick, healthy}));
  // The quarantining failure itself never reaches the stepper (tell
  // aborts first), so the ledger holds fewer than the streak.
  EXPECT_LT(service.result(sick).failures.size(),
            sopts.run_policy.quarantine_after);
  // Late completions for a quarantined session are dropped, not errors.
  RunResult late;
  late.outcome = RunOutcome::kFailed;
  EXPECT_NO_THROW(service.tell(sick, 0, late));
}

TEST(RunPolicyTest, ActivePolicyWithInertPlanKeepsTrajectoriesBitIdentical) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  const core::LynceusOptions opts = fast_lynceus();

  eval::TableRunner solo(ds);
  auto ref = core::LynceusOptimizer(opts).make_stepper(problem, 23);
  const OptimizerResult golden = core::drive(*ref, solo);

  TuningService::Options sopts;
  sopts.run_policy.max_attempts = 4;
  sopts.run_policy.backoff_base_seconds = 10.0;
  sopts.run_policy.run_timeout_seconds = 1e12;
  sopts.run_policy.quarantine_after = 2;
  TuningService service(sopts);
  eval::AsyncTableRunner async(ds);  // no fault plan
  const SessionId id = service.open_lynceus(problem, opts, 23);
  service::drain(service, async);
  ASSERT_TRUE(service.finished(id));
  EXPECT_FALSE(service.quarantined(id));
  expect_identical_with_failures(service.result(id), golden);
}

// ---------------------------------------------------------------------------
// Whole-scenario byte determinism and the crash-recovery drill.

struct ScenarioOutcome {
  std::vector<OptimizerResult> results;
  std::vector<std::string> stop_reasons;
  std::vector<bool> quarantined;
  std::size_t runs_served = 0;
};

eval::FaultPlan stormy_plan() {
  eval::FaultPlan plan;
  plan.seed = 99;
  plan.fail_rate = 0.4;
  plan.hang_rate = 0.05;
  plan.straggler_rate = 0.25;
  plan.straggler_factor = 3.0;
  return plan;
}

TuningService::Options stormy_options() {
  TuningService::Options sopts;
  sopts.run_policy.max_attempts = 2;
  sopts.run_policy.backoff_base_seconds = 5.0;
  sopts.run_policy.run_timeout_seconds = 600.0;  // resolves hangs
  sopts.run_policy.quarantine_after = 4;
  return sopts;
}

/// Opens the scenario's fixed session mix; returns the session ids.
std::vector<SessionId> open_stormy_sessions(
    TuningService& service, const core::OptimizationProblem& problem) {
  std::vector<SessionId> ids;
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    ids.push_back(service.open_lynceus(problem, fast_lynceus(), seed));
  }
  ids.push_back(service.open_random(problem, 11));
  return ids;
}

ScenarioOutcome run_stormy_scenario() {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningService service(stormy_options());
  eval::AsyncTableRunner async(ds);
  async.set_fault_plan(stormy_plan());
  const std::vector<SessionId> ids = open_stormy_sessions(service, problem);
  service::drain(service, async);
  ScenarioOutcome out;
  for (const SessionId id : ids) {
    EXPECT_TRUE(service.finished(id));
    out.results.push_back(service.result(id));
    out.stop_reasons.push_back(service.stop_reason(id));
    out.quarantined.push_back(service.quarantined(id));
  }
  out.runs_served = async.runs_served();
  return out;
}

TEST(FaultReplay, StormyScenarioIsByteDeterministic) {
  const ScenarioOutcome a = run_stormy_scenario();
  const ScenarioOutcome b = run_stormy_scenario();
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(a.runs_served, b.runs_served);
  EXPECT_EQ(a.stop_reasons, b.stop_reasons);
  EXPECT_EQ(a.quarantined, b.quarantined);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    expect_identical_with_failures(a.results[i], b.results[i]);
  }
  // The storm actually did something: at least one fault was injected
  // (retries make runs_served exceed the told results) and at least one
  // session carries failures or censored samples.
  std::size_t failures = 0;
  for (const auto& r : a.results) failures += r.failures.size();
  EXPECT_GT(failures, 0U);
}

TEST(FaultReplay, RecordedFailuresAreDeterministicCrashers) {
  // Retry correctness, checked against the fault contract directly: a
  // failure only reaches a stepper once every allowed attempt's draw
  // failed — any config with a succeeding draw inside the retry budget
  // must never appear in a failure ledger.
  const auto ds = lynceus::testing::tiny_dataset();
  const ScenarioOutcome out = run_stormy_scenario();
  const eval::FaultPlan plan = stormy_plan();
  const TuningService::Options sopts = stormy_options();
  std::size_t checked = 0;
  for (const OptimizerResult& r : out.results) {
    for (const core::FailureRecord& f : r.failures) {
      for (std::uint64_t attempt = 0;
           attempt < sopts.run_policy.max_attempts; ++attempt) {
        core::RunResult base;
        base.runtime_seconds = ds.observation(f.id).runtime_seconds;
        base.cost = ds.observation(f.id).cost();
        const eval::InjectedRun injected =
            eval::inject_faults(plan, f.id, attempt, base);
        EXPECT_TRUE(injected.result.failed())
            << "config " << f.id << " attempt " << attempt
            << " would have succeeded — the retry layer gave up early";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0U);
}

TEST(FaultReplay, CrashRecoveryDrillFinishesByteIdentically) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  // Golden: the same stormy scenario, never interrupted.
  const ScenarioOutcome golden = run_stormy_scenario();

  // Crash run: journal every session, process a prefix of the schedule,
  // then drop the service on the floor mid-flight.
  std::map<SessionId, std::string> journal;
  TuningService::Options sopts = stormy_options();
  sopts.journal = [&journal](SessionId id, const std::string& snap) {
    journal[id] = snap;
  };
  auto crashed = std::make_unique<TuningService>(sopts);
  eval::AsyncTableRunner async(ds);
  async.set_fault_plan(stormy_plan());
  const std::vector<SessionId> ids =
      open_stormy_sessions(*crashed, problem);
  std::size_t processed = 0;
  while (processed < 11) {
    for (const PendingRun& run : crashed->next_runs()) {
      eval::AsyncTableRunner::SubmitOptions opts;
      opts.timeout_seconds = run.timeout_seconds;
      opts.attempt = run.attempt;
      opts.start_delay = run.start_delay;
      async.submit(run.session, run.config, opts);
    }
    const auto c = async.next_completion();
    ASSERT_TRUE(c.has_value()) << "scenario too small for the drill";
    crashed->tell(c->tag, c->config, c->result);
    ++processed;
  }
  ASSERT_FALSE(crashed->idle());
  ASSERT_EQ(journal.size(), ids.size());
  crashed.reset();  // the "kill -9"

  // Recovery: a fresh service (fresh process in spirit) restores every
  // session from its last journal entry and finishes against a fresh
  // runner with the same fault plan. In-flight runs lost in the crash are
  // re-launched with their original attempt numbers, so every fault draw
  // replays and each session ends byte-identical to the uninterrupted run.
  TuningService revived(stormy_options());
  eval::AsyncTableRunner async2(ds);
  async2.set_fault_plan(stormy_plan());
  std::vector<SessionId> revived_ids;
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    revived_ids.push_back(revived.restore_lynceus(
        problem, fast_lynceus(), seed, journal.at(seed - 11)));
  }
  revived_ids.push_back(revived.restore(
      core::RandomSearch().make_stepper(problem, 11), journal.at(3)));
  service::drain(revived, async2);

  for (std::size_t i = 0; i < revived_ids.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    ASSERT_TRUE(revived.finished(revived_ids[i]));
    EXPECT_EQ(revived.stop_reason(revived_ids[i]), golden.stop_reasons[i]);
    EXPECT_EQ(revived.quarantined(revived_ids[i]), golden.quarantined[i]);
    expect_identical_with_failures(revived.result(revived_ids[i]),
                                   golden.results[i]);
  }
}

TEST(FaultReplay, SessionEnvelopeRoundTripsRetriesAndQuarantine) {
  const auto problem = lynceus::testing::tiny_problem();
  TuningService::Options sopts;
  sopts.run_policy.max_attempts = 3;
  sopts.run_policy.backoff_base_seconds = 2.0;
  TuningService service(sopts);
  const SessionId id = service.open_random(problem, 8);
  const auto batch = service.next_runs();
  ASSERT_GE(batch.size(), 2U);
  RunResult failed;
  failed.outcome = RunOutcome::kFailed;
  failed.cost = 0.01;
  service.tell(id, batch[0].config, failed);  // queues a retry

  const std::string envelope = service.snapshot_session(id);
  EXPECT_NE(envelope.find("lynceus-service-session"), std::string::npos);

  // Restore into a second service: the envelope round-trips byte-for-byte
  // and the queued retry is re-emitted exactly once, with its attempt
  // number and backoff delay.
  TuningService revived(sopts);
  const SessionId rid = revived.restore(
      core::RandomSearch().make_stepper(problem, 8), envelope);
  EXPECT_EQ(revived.snapshot_session(rid), envelope);
  const auto runs = revived.next_runs();
  std::size_t retry_count = 0;
  for (const PendingRun& run : runs) {
    if (run.config == batch[0].config) {
      ++retry_count;
      EXPECT_EQ(run.attempt, 1U);
      EXPECT_EQ(run.start_delay, 2.0);
    } else {
      EXPECT_EQ(run.attempt, 0U);
    }
  }
  EXPECT_EQ(retry_count, 1U);

  // Quarantined sessions restore quarantined and emit nothing.
  TuningService::Options qopts;
  qopts.run_policy.quarantine_after = 1;
  TuningService qservice(qopts);
  const SessionId qid = qservice.open_random(problem, 8);
  (void)qservice.next_runs();
  qservice.tell(qid, batch[0].config, failed);
  ASSERT_TRUE(qservice.quarantined(qid));
  const std::string qenvelope = qservice.snapshot_session(qid);
  TuningService qrevived(qopts);
  const SessionId qrid = qrevived.restore(
      core::RandomSearch().make_stepper(problem, 8), qenvelope);
  EXPECT_TRUE(qrevived.quarantined(qrid));
  EXPECT_TRUE(qrevived.finished(qrid));
  EXPECT_EQ(qrevived.stop_reason(qrid), "runner_failed");
  EXPECT_TRUE(qrevived.next_runs().empty());
}

}  // namespace
}  // namespace lynceus

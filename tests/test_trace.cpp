#include "core/trace.hpp"

#include <gtest/gtest.h>

#include "core/lynceus.hpp"
#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

TEST(TraceRecorder, CollectsAllPhases) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem(5.0);
  TraceRecorder trace;
  LynceusOptions opts;
  opts.lookahead = 1;
  opts.observer = &trace;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  const auto result = lyn.optimize(problem, runner, 3);

  EXPECT_EQ(trace.bootstrap_samples().size(), problem.bootstrap_samples);
  EXPECT_EQ(trace.decisions().size(), result.decisions);
  EXPECT_EQ(trace.runs().size() + trace.bootstrap_samples().size(),
            result.explorations());
  EXPECT_FALSE(trace.stop_reason().empty());
}

TEST(TraceRecorder, DecisionEventsAreInternallyConsistent) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem(5.0);
  TraceRecorder trace;
  LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 4;
  opts.observer = &trace;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  (void)lyn.optimize(problem, runner, 5);

  for (std::size_t i = 0; i < trace.decisions().size(); ++i) {
    const auto& e = trace.decisions()[i];
    EXPECT_EQ(e.iteration, i + 1);
    EXPECT_GT(e.viable_count, 0U);
    EXPECT_LE(e.simulated_roots, e.viable_count);
    EXPECT_LE(e.simulated_roots, 4U);  // screen width
    EXPECT_GT(e.predicted_cost, 0.0);
    EXPECT_GT(e.incumbent, 0.0);
    // The chosen configuration is the one profiled right after.
    EXPECT_EQ(e.chosen, trace.runs()[i].id);
  }
}

TEST(TraceRecorder, BudgetDecreasesMonotonically) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem(5.0);
  TraceRecorder trace;
  LynceusOptions opts;
  opts.lookahead = 0;
  opts.observer = &trace;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  (void)lyn.optimize(problem, runner, 7);
  for (std::size_t i = 1; i < trace.decisions().size(); ++i) {
    EXPECT_LT(trace.decisions()[i].remaining_budget,
              trace.decisions()[i - 1].remaining_budget);
  }
}

TEST(TraceRecorder, PredictionErrorsComputable) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem(5.0);
  TraceRecorder trace;
  LynceusOptions opts;
  opts.lookahead = 0;
  opts.observer = &trace;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  (void)lyn.optimize(problem, runner, 9);
  const auto errors = trace.relative_prediction_errors();
  EXPECT_EQ(errors.size(), trace.decisions().size());
  for (double e : errors) EXPECT_GE(e, 0.0);
}

TEST(TraceRecorder, StopReasonReflectsEiThreshold) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.budget = 1e9;
  TraceRecorder trace;
  LynceusOptions opts;
  opts.lookahead = 0;
  opts.ei_stop_fraction = 0.10;
  opts.observer = &trace;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  (void)lyn.optimize(problem, runner, 11);
  EXPECT_NE(trace.stop_reason().find("expected improvement"),
            std::string::npos);
}

TEST(TraceRecorder, StopReasonBudget) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem(1.0);  // tight budget
  TraceRecorder trace;
  LynceusOptions opts;
  opts.lookahead = 0;
  opts.observer = &trace;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  (void)lyn.optimize(problem, runner, 13);
  EXPECT_NE(trace.stop_reason().find("budget"), std::string::npos);
}

TEST(ObserverDefaultMethods, AreNoOps) {
  OptimizerObserver base;
  Sample s;
  DecisionEvent e;
  EXPECT_NO_THROW(base.on_bootstrap(s));
  EXPECT_NO_THROW(base.on_decision(e));
  EXPECT_NO_THROW(base.on_run(s));
  EXPECT_NO_THROW(base.on_stop("x"));
}

}  // namespace
}  // namespace lynceus::core

#include <gtest/gtest.h>

#include "model/regressor.hpp"

namespace lynceus::model {
namespace {

space::ConfigSpace demo_space() {
  return space::ConfigSpace(
      "demo", {space::numeric_param("lr", {1e-3, 1e-4, 1e-5}),
               space::numeric_param("batch", {16, 256}),
               space::categorical_param("mode", {"sync", "async"})});
}

TEST(FeatureMatrix, ShapeMatchesSpace) {
  const auto sp = demo_space();
  const FeatureMatrix fm(sp);
  EXPECT_EQ(fm.rows(), sp.size());
  EXPECT_EQ(fm.cols(), 3U);
  EXPECT_EQ(fm.level_count(0), 3U);
  EXPECT_EQ(fm.level_count(1), 2U);
  EXPECT_EQ(fm.max_level_count(), 3U);
}

TEST(FeatureMatrix, CodesMatchSpaceLevels) {
  const auto sp = demo_space();
  const FeatureMatrix fm(sp);
  for (space::ConfigId id = 0; id < sp.size(); ++id) {
    for (std::size_t d = 0; d < sp.dim_count(); ++d) {
      EXPECT_EQ(fm.code(id, d), sp.levels(id)[d]);
    }
  }
}

TEST(FeatureMatrix, LevelValuesMatchDomains) {
  const auto sp = demo_space();
  const FeatureMatrix fm(sp);
  EXPECT_DOUBLE_EQ(fm.level_value(0, 1), 1e-4);
  EXPECT_DOUBLE_EQ(fm.level_value(1, 1), 256.0);
  EXPECT_DOUBLE_EQ(fm.level_value(2, 0), 0.0);
}

TEST(FeatureMatrix, NormalizedFeaturesInUnitRange) {
  const auto sp = demo_space();
  const FeatureMatrix fm(sp);
  for (space::ConfigId id = 0; id < sp.size(); ++id) {
    const auto f = fm.normalized_features(id);
    ASSERT_EQ(f.size(), 3U);
    for (double v : f) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  // Extremes map to 0 and 1: lr dimension values are 1e-3 (max) and 1e-5
  // (min).
  const auto lo = sp.find({2, 0, 0});
  const auto hi = sp.find({0, 0, 0});
  ASSERT_TRUE(lo && hi);
  EXPECT_DOUBLE_EQ(fm.normalized_features(*lo)[0], 0.0);
  EXPECT_DOUBLE_EQ(fm.normalized_features(*hi)[0], 1.0);
}

}  // namespace
}  // namespace lynceus::model

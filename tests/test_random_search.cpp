#include "core/random_search.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

TEST(RandomSearch, RunsUntilBudgetDepleted) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  RandomSearch rnd;
  const auto result = rnd.optimize(problem, runner, 1);
  EXPECT_GE(result.budget_spent, problem.budget);
  // Only the last run may overshoot: without it, spend is under budget.
  EXPECT_LT(result.budget_spent - result.history.back().cost, problem.budget);
}

TEST(RandomSearch, NeverRepeatsConfigs) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  RandomSearch rnd;
  const auto result = rnd.optimize(problem, runner, 2);
  std::set<ConfigId> seen;
  for (const auto& s : result.history) {
    EXPECT_TRUE(seen.insert(s.id).second) << "config repeated";
  }
}

TEST(RandomSearch, DeterministicGivenSeed) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  RandomSearch rnd;
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto a = rnd.optimize(problem, r1, 5);
  const auto b = rnd.optimize(problem, r2, 5);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id);
  }
  EXPECT_EQ(a.recommendation, b.recommendation);
}

TEST(RandomSearch, RecommendationIsBestFeasibleTried) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  RandomSearch rnd;
  const auto result = rnd.optimize(problem, runner, 3);
  ASSERT_TRUE(result.recommendation.has_value());
  for (const auto& s : result.history) {
    if (s.feasible) {
      EXPECT_LE(ds.cost(*result.recommendation), s.cost + 1e-12);
    }
  }
}

TEST(RandomSearch, StopsWhenSpaceExhausted) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.budget = 1e9;  // effectively unlimited
  eval::TableRunner runner(ds);
  RandomSearch rnd;
  const auto result = rnd.optimize(problem, runner, 4);
  EXPECT_EQ(result.history.size(), problem.space->size());
}

TEST(RandomSearch, ExploresMoreWithBiggerBudget) {
  const auto ds = testing::tiny_dataset();
  RandomSearch rnd;
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto low = rnd.optimize(testing::tiny_problem(1.0), r1, 6);
  const auto high = rnd.optimize(testing::tiny_problem(5.0), r2, 6);
  EXPECT_GT(high.explorations(), low.explorations());
}

TEST(RandomSearch, NameIsRnd) {
  EXPECT_EQ(RandomSearch().name(), "RND");
}

}  // namespace
}  // namespace lynceus::core

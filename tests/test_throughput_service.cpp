/// Throughput-mode scheduler tests (service/throughput.cpp): the
/// bit-pinning half of the "Throughput mode" contract — every session's
/// trajectory byte-identical to its solo/FIFO run for any worker count,
/// including under fault injection — plus option validation, stall
/// handling for un-capped hangs, and journaling from worker threads.
/// Part of the `concurrency` ctest label (run under -fsanitize=thread in
/// the debug-tsan CI leg).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "eval/runner.hpp"
#include "service/tuning_service.hpp"
#include "test_helpers.hpp"

namespace lynceus::service {
namespace {

using core::ConfigId;
using core::OptimizerResult;

double tiny_energy(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn tiny_metrics() {
  const auto sp = lynceus::testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{tiny_energy(*sp, id)};
  };
}

core::ConstraintDef tiny_constraint(double cap) {
  core::ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

void expect_identical(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "step " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost) << "step " << i;
    EXPECT_EQ(a.history[i].feasible, b.history[i].feasible) << "step " << i;
  }
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].id, b.failures[i].id) << "failure " << i;
    EXPECT_EQ(a.failures[i].cost, b.failures[i].cost) << "failure " << i;
    EXPECT_EQ(a.failures[i].after_samples, b.failures[i].after_samples)
        << "failure " << i;
  }
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.budget_spent_on_failures, b.budget_spent_on_failures);
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.recommendation_feasible, b.recommendation_feasible);
  EXPECT_EQ(a.decisions, b.decisions);
}

TuningService::Options throughput_options(std::size_t workers) {
  TuningService::Options o;
  o.throughput_workers = workers;
  return o;
}

TEST(ThroughputService, OptionValidationAndModeDispatch) {
  {
    TuningService::Options o = throughput_options(2);
    o.root_cache_capacity = 8;
    EXPECT_THROW(TuningService{o}, std::invalid_argument);
  }
  {
    TuningService::Options o = throughput_options(2);
    o.pool_workers = 2;
    EXPECT_THROW(TuningService{o}, std::invalid_argument);
  }
  // run_throughput on a FIFO-mode service is a logic error, not a silent
  // fall-through.
  const auto ds = lynceus::testing::tiny_dataset();
  TuningService fifo;
  eval::AsyncTableRunner async(ds);
  EXPECT_THROW(fifo.run_throughput(async), std::logic_error);
  // A throughput service with no sessions drains trivially.
  TuningService empty(throughput_options(2));
  eval::AsyncTableRunner async2(ds);
  drain(empty, async2);
  EXPECT_TRUE(empty.idle());
}

TEST(ThroughputService, SixtyFourSessionsMatchTheirSoloRuns) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  TuningService service(throughput_options(4));
  eval::AsyncTableRunner async(ds);

  std::vector<SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    core::LynceusOptions opts;
    opts.lookahead = seed % 2 == 0 ? 1U : 0U;
    opts.incremental_refit = false;
    ids.push_back(service.open_lynceus(problem, opts, seed));
  }
  drain(service, async);  // dispatches to run_throughput

  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    core::LynceusOptions opts;
    opts.lookahead = seed % 2 == 0 ? 1U : 0U;
    opts.incremental_refit = false;
    eval::TableRunner solo(ds);
    auto stepper = core::LynceusOptimizer(opts).make_stepper(problem, seed);
    const OptimizerResult golden = core::drive(*stepper, solo);
    ASSERT_TRUE(service.finished(ids[seed - 1]));
    expect_identical(service.result(ids[seed - 1]), golden);
  }
  EXPECT_TRUE(service.idle());
}

TEST(ThroughputService, MixedOptimizerKindsMatchTheirSoloRuns) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  TuningService service(throughput_options(3));
  eval::AsyncTableRunner async(ds, tiny_metrics());

  std::vector<SessionId> ids;
  std::vector<std::function<OptimizerResult()>> solos;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    core::LynceusOptions lopts;
    lopts.lookahead = 1;
    lopts.incremental_refit = false;
    ids.push_back(service.open_lynceus(problem, lopts, seed));
    solos.push_back([&, lopts, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::LynceusOptimizer(lopts).make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    core::MultiConstraintOptions mopts;
    mopts.lookahead = 1;
    mopts.incremental_refit = false;
    ids.push_back(service.open_multi_constraint(
        problem, {tiny_constraint(26.0)}, mopts, seed));
    solos.push_back([&, mopts, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::MultiConstraintLynceus({tiny_constraint(26.0)},
                                                  mopts)
                         .make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    ids.push_back(service.open_bo(problem, core::BoOptions{}, seed));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::BayesianOptimizer().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    ids.push_back(service.open_random(problem, seed));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::RandomSearch().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });
  }

  drain(service, async);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(ids[i]));
    ASSERT_TRUE(service.finished(ids[i]));
    expect_identical(service.result(ids[i]), solos[i]());
  }
}

/// The cross-mode half of the contract under faults: same sessions, same
/// fault plan and retry policy, FIFO service vs throughput service —
/// per-session results (histories, failure ledgers, budgets) must match
/// byte-for-byte. quarantine_after stays 0: streak accounting is
/// wave-canonical in throughput mode (see the header contract), so
/// quarantine triggering is the one policy feature not pinned cross-mode.
TEST(ThroughputService, FaultyRunsMatchFifoModeByteForByte) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  eval::FaultPlan plan;
  plan.seed = 99;
  plan.fail_rate = 0.45;
  plan.hang_rate = 0.1;
  plan.straggler_rate = 0.2;
  plan.straggler_factor = 3.0;

  RunPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_seconds = 5.0;
  policy.run_timeout_seconds = 600.0;

  const auto run_mode = [&](std::size_t workers) {
    TuningService::Options o;
    o.throughput_workers = workers;
    o.run_policy = policy;
    TuningService service(o);
    eval::AsyncTableRunner async(ds);
    async.set_fault_plan(plan);
    std::vector<SessionId> ids;
    for (std::uint64_t seed = 21; seed <= 28; ++seed) {
      core::LynceusOptions opts;
      opts.lookahead = seed % 2;
      opts.incremental_refit = false;
      ids.push_back(service.open_lynceus(problem, opts, seed));
    }
    drain(service, async);
    std::vector<OptimizerResult> results;
    std::vector<std::string> reasons;
    for (const SessionId id : ids) {
      EXPECT_TRUE(service.finished(id));
      results.push_back(service.result(id));
      reasons.push_back(service.stop_reason(id));
    }
    return std::make_pair(results, reasons);
  };

  const auto fifo = run_mode(0);
  const auto tp4 = run_mode(4);
  const auto tp1 = run_mode(1);  // worker count must not matter either
  ASSERT_EQ(fifo.first.size(), tp4.first.size());
  for (std::size_t i = 0; i < fifo.first.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    expect_identical(fifo.first[i], tp4.first[i]);
    expect_identical(fifo.first[i], tp1.first[i]);
    EXPECT_EQ(fifo.second[i], tp4.second[i]);
    EXPECT_EQ(fifo.second[i], tp1.second[i]);
  }
}

TEST(ThroughputService, FailEverythingQuarantinesIdenticallyToFifo) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  eval::FaultPlan plan;
  plan.seed = 7;
  plan.fail_rate = 1.0;

  const auto run_mode = [&](std::size_t workers) {
    TuningService::Options o;
    o.throughput_workers = workers;
    o.run_policy.max_attempts = 2;
    o.run_policy.quarantine_after = 3;
    TuningService service(o);
    eval::AsyncTableRunner async(ds);
    async.set_fault_plan(plan);
    std::vector<SessionId> ids;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      ids.push_back(service.open_random(problem, seed));
    }
    drain(service, async);
    return std::make_pair(std::move(service), std::move(ids));
  };

  auto [fifo, fifo_ids] = run_mode(0);
  auto [tp, tp_ids] = run_mode(3);
  for (std::size_t i = 0; i < fifo_ids.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    EXPECT_TRUE(fifo.quarantined(fifo_ids[i]));
    EXPECT_TRUE(tp.quarantined(tp_ids[i]));
    EXPECT_EQ(tp.stop_reason(tp_ids[i]), "runner_failed");
    expect_identical(fifo.result(fifo_ids[i]), tp.result(tp_ids[i]));
  }
  EXPECT_TRUE(tp.idle());
}

/// Un-capped hangs leave runs outstanding forever. The worker pool must
/// prove the stall and return — mirroring the FIFO drain() — instead of
/// polling forever, leaving the hung sessions unfinished and in flight.
TEST(ThroughputService, UncappedHangsStallCleanly) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  eval::FaultPlan plan;
  plan.seed = 3;
  plan.hang_rate = 1.0;  // every run hangs; no run policy timeout

  TuningService service(throughput_options(2));
  eval::AsyncTableRunner async(ds);
  async.set_fault_plan(plan);
  std::vector<SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ids.push_back(service.open_random(problem, seed));
  }
  drain(service, async);  // must return despite nothing ever completing

  EXPECT_FALSE(service.idle());
  for (const SessionId id : ids) {
    EXPECT_FALSE(service.finished(id));
    EXPECT_FALSE(service.quarantined(id));
  }
}

/// Journaling from worker threads: the callback sees a serial per-session
/// stream (thread-safe across sessions), and the final envelope restores
/// — into either mode — to the same byte-identical result.
TEST(ThroughputService, JournaledSessionsRestoreIntoEitherMode) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  std::mutex journal_mutex;
  std::map<SessionId, std::string> last_envelope;
  std::map<SessionId, std::size_t> envelope_count;

  TuningService::Options o = throughput_options(4);
  o.journal = [&](SessionId id, const std::string& snap) {
    std::lock_guard<std::mutex> lk(journal_mutex);
    last_envelope[id] = snap;
    ++envelope_count[id];
  };
  TuningService service(o);
  eval::AsyncTableRunner async(ds);

  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.incremental_refit = false;
  std::vector<SessionId> ids;
  for (std::uint64_t seed = 31; seed <= 38; ++seed) {
    ids.push_back(service.open_lynceus(problem, opts, seed));
  }
  drain(service, async);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(ids[i]));
    ASSERT_TRUE(service.finished(ids[i]));
    // open() journals once, then once per applied wave.
    EXPECT_GE(envelope_count[ids[i]], 2U);
    const std::uint64_t seed = 31 + i;
    // The final envelope restores to the finished state in FIFO mode…
    TuningService fifo;
    eval::AsyncTableRunner a1(ds);
    const SessionId r1 =
        fifo.restore_lynceus(problem, opts, seed, last_envelope[ids[i]]);
    drain(fifo, a1);
    expect_identical(fifo.result(r1), service.result(ids[i]));
    // …and in throughput mode.
    TuningService tp(throughput_options(2));
    eval::AsyncTableRunner a2(ds);
    const SessionId r2 =
        tp.restore_lynceus(problem, opts, seed, last_envelope[ids[i]]);
    drain(tp, a2);
    expect_identical(tp.result(r2), service.result(ids[i]));
  }
}

/// A FIFO-journaled envelope that carries a *queued retry* restores into
/// throughput mode mid-batch: the saved attempt number (and hence fault
/// draw) and the rest of the outstanding batch are relaunched, finishing
/// byte-identically to the FIFO restore.
TEST(ThroughputService, RestoresFifoEnvelopeWithQueuedRetries) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  eval::FaultPlan plan;
  plan.seed = 99;
  plan.fail_rate = 0.45;

  TuningService::Options o;
  o.run_policy.max_attempts = 3;
  o.run_policy.backoff_base_seconds = 5.0;
  o.run_policy.run_timeout_seconds = 600.0;
  TuningService fifo(o);
  eval::AsyncTableRunner async(ds);
  async.set_fault_plan(plan);

  core::LynceusOptions opts;
  opts.lookahead = 0;
  opts.incremental_refit = false;
  const SessionId id = fifo.open_lynceus(problem, opts, 21);

  // Drive FIFO until a retry is queued, then snapshot that envelope.
  std::string envelope;
  while (envelope.empty() && !fifo.finished(id)) {
    for (const PendingRun& run : fifo.next_runs()) {
      eval::AsyncTableRunner::SubmitOptions so;
      so.timeout_seconds = run.timeout_seconds;
      so.attempt = run.attempt;
      so.start_delay = run.start_delay;
      async.submit(run.session, run.config, so);
    }
    const auto c = async.next_completion();
    ASSERT_TRUE(c.has_value());
    fifo.tell(c->tag, c->config, c->result);
    const std::string snap = fifo.snapshot_session(id);
    if (snap.find("\"retries\":[{") != std::string::npos) envelope = snap;
  }
  ASSERT_FALSE(envelope.empty()) << "fault plan never queued a retry";

  // Finish the FIFO original for the golden result.
  drain(fifo, async);
  ASSERT_TRUE(fifo.finished(id));

  TuningService tp(throughput_options(2));
  eval::AsyncTableRunner a2(ds);
  a2.set_fault_plan(plan);
  const SessionId rid = tp.restore_lynceus(problem, opts, 21, envelope);
  drain(tp, a2);
  ASSERT_TRUE(tp.finished(rid));
  expect_identical(tp.result(rid), fifo.result(id));
}

}  // namespace
}  // namespace lynceus::service

/// \file test_soa_predict.cpp
/// Differential suite for the flat (structure-of-arrays) batch-prediction
/// layout: predict_batch / accumulate_batch — and the ensemble batch entry
/// points built on them — must be *bitwise* equal to the scalar node-walk
/// predict() / predict_stats() across every tree state (freshly fitted,
/// incremental-appended, serialization round-tripped, assign_fitted) and
/// every batch shape (identity, permuted, sparse, duplicated rows), with
/// leaf variance both on and off. Runs under `ctest -L simd`: the same
/// binary is built and re-run in the Release, ASan and LYNCEUS_SIMD=ON CI
/// legs, so the AVX2 kernel is pinned against the scalar sweep by the
/// exact tests that pin the scalar sweep against the node walk.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "model/bagging.hpp"
#include "model/decision_tree.hpp"
#include "util/alloc_count.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace lynceus::model {
namespace {

space::ConfigSpace grid_space(std::size_t a_levels, std::size_t b_levels) {
  std::vector<double> a(a_levels);
  std::vector<double> b(b_levels);
  for (std::size_t i = 0; i < a_levels; ++i) a[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < b_levels; ++i) b[i] = static_cast<double>(i);
  return space::ConfigSpace("grid", {space::numeric_param("a", a),
                                     space::numeric_param("b", b)});
}

/// Distinct noisy targets over every row → a fully grown, non-trivial tree.
void fit_noisy(DecisionTree& tree, const FeatureMatrix& fm,
               std::uint64_t seed) {
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(seed);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    rows.push_back(r);
    y.push_back(noise.normal());
  }
  util::Rng rng(seed + 1);
  tree.fit(fm, rows, y, rng);
}

/// The batch shapes the engines produce, all over one FeatureMatrix:
/// identity (nullptr rows), the same rows listed explicitly, a permutation,
/// a dup-free dense subset, a sparse subset, repeated ids, one row.
std::vector<std::vector<std::uint32_t>> batch_shapes(const FeatureMatrix& fm) {
  const auto n = static_cast<std::uint32_t>(fm.rows());
  std::vector<std::vector<std::uint32_t>> shapes;
  std::vector<std::uint32_t> ascending;
  for (std::uint32_t r = 0; r < n; ++r) ascending.push_back(r);
  shapes.push_back(ascending);
  std::vector<std::uint32_t> permuted(ascending.rbegin(), ascending.rend());
  shapes.push_back(permuted);
  std::vector<std::uint32_t> dense_subset;
  for (std::uint32_t r = 0; r < n; r += 2) dense_subset.push_back(r);
  shapes.push_back(dense_subset);
  std::vector<std::uint32_t> sparse;
  for (std::uint32_t r = 0; r < n; r += 7) sparse.push_back(r);
  shapes.push_back(sparse);
  shapes.push_back({0, n - 1, 0, n / 2, n - 1, n / 2});  // duplicates
  shapes.push_back({n / 3});
  return shapes;
}

/// Bitwise check of both batch entry points against the scalar node walk,
/// for an explicit row list (or the identity batch when `rows` is null).
void expect_batch_matches_scalar(const DecisionTree& tree,
                                 const FeatureMatrix& fm,
                                 const std::uint32_t* rows, std::size_t n,
                                 PredictScratch* scratch) {
  std::vector<float> value(n, -1.0F);
  std::vector<float> variance(n, -1.0F);
  tree.predict_batch(fm, rows, n, value.data(), variance.data(), scratch);
  // Non-zero starting accumulators: += must hit the same leaves and add in
  // the same (double) precision as the scalar loop would.
  std::vector<double> sum(n);
  std::vector<double> sumsq(n);
  std::vector<double> var_sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = 0.25 * static_cast<double>(i);
    sumsq[i] = 1.0 + static_cast<double>(i);
    var_sum[i] = 0.5;
  }
  tree.accumulate_batch(fm, rows, n, sum.data(), sumsq.data(),
                        var_sum.data(), scratch);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = rows != nullptr ? rows[i] : static_cast<std::uint32_t>(i);
    const DecisionTree::LeafStats st = tree.predict_stats(fm, r);
    const double v = tree.predict(fm, r);
    EXPECT_EQ(value[i], static_cast<float>(v)) << "row " << r;
    EXPECT_EQ(variance[i], static_cast<float>(st.variance)) << "row " << r;
    EXPECT_EQ(sum[i], 0.25 * static_cast<double>(i) + v) << "row " << r;
    EXPECT_EQ(sumsq[i], 1.0 + static_cast<double>(i) + v * v) << "row " << r;
    EXPECT_EQ(var_sum[i], 0.5 + st.variance) << "row " << r;
  }
  // Value-only form (null variance pointer) routes identically.
  std::vector<float> value_only(n, -1.0F);
  tree.predict_batch(fm, rows, n, value_only.data(), nullptr, scratch);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(value_only[i], value[i]);
}

void expect_all_shapes_match(const DecisionTree& tree,
                             const FeatureMatrix& fm,
                             PredictScratch* scratch) {
  expect_batch_matches_scalar(tree, fm, nullptr, fm.rows(), scratch);
  for (const auto& shape : batch_shapes(fm)) {
    expect_batch_matches_scalar(tree, fm, shape.data(), shape.size(),
                                scratch);
  }
}

TEST(SoaPredict, TreeBatchMatchesScalarAcrossShapes) {
  const auto sp = grid_space(9, 7);
  const FeatureMatrix fm(sp);
  for (const bool leaf_variance : {true, false}) {
    TreeOptions opts;
    opts.leaf_variance = leaf_variance;
    DecisionTree tree(opts);
    fit_noisy(tree, fm, 11);
    PredictScratch scratch;
    expect_all_shapes_match(tree, fm, &scratch);
    // And with function-local scratch (the nullptr default).
    expect_all_shapes_match(tree, fm, nullptr);
  }
}

TEST(SoaPredict, IncrementalAppendKeepsBatchScalarAgreement) {
  const auto sp = grid_space(8, 8);
  const FeatureMatrix fm(sp);
  for (const bool leaf_variance : {true, false}) {
    TreeOptions opts;
    opts.leaf_variance = leaf_variance;
    DecisionTree tree(opts);
    tree.set_incremental(true, 8);
    // Fit on a strict subset so appends introduce genuinely new rows.
    std::vector<std::uint32_t> rows;
    std::vector<double> y;
    util::Rng noise(23);
    for (std::uint32_t r = 0; r < fm.rows(); r += 2) {
      rows.push_back(r);
      y.push_back(noise.normal());
    }
    util::Rng rng(24);
    tree.fit(fm, rows, y, rng);
    // The flat layout must be patched after *every* append — check after
    // each one, not just at the end.
    util::Rng append_rng(25);
    for (std::uint32_t r = 1; r < 12; r += 2) {
      tree.append_incremental(fm, r, noise.normal(), append_rng);
      expect_all_shapes_match(tree, fm, nullptr);
    }
  }
}

TEST(SoaPredict, SaveLoadRoundTripKeepsBatchScalarAgreement) {
  const auto sp = grid_space(7, 9);
  const FeatureMatrix fm(sp);
  DecisionTree tree;
  fit_noisy(tree, fm, 31);

  util::JsonWriter w;
  tree.save_state(w);
  DecisionTree back;
  back.load_state(util::parse_json(w.str()));

  expect_all_shapes_match(back, fm, nullptr);
  // And the loaded tree's batches equal the original's scalar walk.
  std::vector<float> value(fm.rows());
  back.predict_batch(fm, nullptr, fm.rows(), value.data());
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_EQ(value[r], static_cast<float>(tree.predict(fm, r)));
  }
}

TEST(SoaPredict, AssignFittedRebuildsFlatLayout) {
  const auto sp = grid_space(9, 9);
  const FeatureMatrix fm(sp);
  DecisionTree src;
  fit_noisy(src, fm, 41);

  DecisionTree fresh;
  fresh.assign_fitted(src);
  expect_all_shapes_match(fresh, fm, nullptr);

  // A destination holding a *different* fitted tree (same options — the
  // assign_fitted contract — but another shape from another fit seed)
  // must drop its stale flat mirror, not serve leaves of the old tree.
  DecisionTree reused;
  fit_noisy(reused, fm, 42);
  reused.assign_fitted(src);
  expect_all_shapes_match(reused, fm, nullptr);
}

TEST(SoaPredict, EnsembleBatchRoutesAreBitwiseEqualToScalar) {
  const auto sp = grid_space(8, 9);
  const FeatureMatrix fm(sp);
  for (const VarianceMode mode :
       {VarianceMode::BetweenTrees, VarianceMode::TotalVariance}) {
    BaggingOptions opts;
    opts.variance_mode = mode;
    BaggingEnsemble ens(opts);
    std::vector<std::uint32_t> rows;
    std::vector<double> y;
    util::Rng noise(51);
    for (std::uint32_t r = 0; r < fm.rows(); ++r) {
      rows.push_back(r);
      y.push_back(noise.normal());
    }
    ens.fit(fm, rows, y, 52);

    std::vector<Prediction> all;
    ens.predict_all(fm, all);
    for (std::uint32_t r = 0; r < fm.rows(); ++r) {
      const Prediction p = ens.predict(fm, r);
      EXPECT_EQ(all[r].mean, p.mean) << "row " << r;
      EXPECT_EQ(all[r].stddev, p.stddev) << "row " << r;
    }
    std::vector<Prediction> out;
    for (const auto& shape : batch_shapes(fm)) {
      ens.predict_subset(fm, shape, out);
      ASSERT_EQ(out.size(), shape.size());
      for (std::size_t i = 0; i < shape.size(); ++i) {
        EXPECT_EQ(out[i].mean, all[shape[i]].mean);
        EXPECT_EQ(out[i].stddev, all[shape[i]].stddev);
      }
    }
  }
}

TEST(SoaPredict, TreeBatchIsAllocationFreeWithWarmScratch) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  const auto sp = grid_space(9, 8);
  const FeatureMatrix fm(sp);
  DecisionTree tree;
  fit_noisy(tree, fm, 61);
  const auto shapes = batch_shapes(fm);

  PredictScratch scratch;
  std::vector<float> value(fm.rows());
  std::vector<float> variance(fm.rows());
  std::vector<double> sum(fm.rows());
  std::vector<double> sumsq(fm.rows());
  std::vector<double> var_sum(fm.rows());
  // Warm-up: ONE call, deliberately via the *sparse* route — the
  // scratch-warming contract says the first batch sizes every buffer to
  // the space bound, so later dense / identity / bigger batches must not
  // allocate even though warm-up never took their route.
  const auto& sparse = shapes[3];
  tree.predict_batch(fm, sparse.data(), sparse.size(), value.data(),
                     variance.data(), &scratch);

  util::AllocCountGuard guard;
  tree.predict_batch(fm, nullptr, fm.rows(), value.data(), variance.data(),
                     &scratch);
  for (const auto& shape : shapes) {
    tree.predict_batch(fm, shape.data(), shape.size(), value.data(),
                       variance.data(), &scratch);
    tree.accumulate_batch(fm, shape.data(), shape.size(), sum.data(),
                          sumsq.data(), var_sum.data(), &scratch);
  }
  EXPECT_EQ(guard.delta(), 0U)
      << "batch prediction touched the heap after scratch warm-up";
}

TEST(SoaPredict, EnsembleSteadyStateIsAllocationFree) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  const auto sp = grid_space(9, 9);
  const FeatureMatrix fm(sp);
  BaggingEnsemble ens;
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(71);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    rows.push_back(r);
    y.push_back(noise.normal());
  }
  ens.fit(fm, rows, y, 72);
  const auto shapes = batch_shapes(fm);

  // Warm-up: one sparse-subset call only (see the tree-level test); the
  // dense predict_subset route and predict_all must then run without a
  // single allocation, route switches included.
  std::vector<Prediction> out;
  out.reserve(fm.rows());
  std::vector<Prediction> all;
  all.reserve(fm.rows());
  ens.predict_subset(fm, shapes[3], out);

  util::AllocCountGuard guard;
  ens.predict_all(fm, all);
  for (const auto& shape : shapes) {
    ens.predict_subset(fm, shape, out);
  }
  EXPECT_EQ(guard.delta(), 0U)
      << "ensemble batch prediction touched the heap after warm-up";
}

}  // namespace
}  // namespace lynceus::model

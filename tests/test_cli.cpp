#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace lynceus::util {
namespace {

CliFlags parse(std::vector<const char*> argv,
               std::vector<std::string> spec) {
  argv.insert(argv.begin(), "prog");
  return CliFlags(static_cast<int>(argv.size()), argv.data(), spec);
}

TEST(CliFlags, EqualsForm) {
  const auto flags = parse({"--runs=50"}, {"runs"});
  EXPECT_EQ(flags.get_int("runs", 0), 50);
}

TEST(CliFlags, SpaceForm) {
  const auto flags = parse({"--runs", "7"}, {"runs"});
  EXPECT_EQ(flags.get_int("runs", 0), 7);
}

TEST(CliFlags, BooleanForms) {
  const auto flags = parse({"--fast", "--no-cache"}, {"fast", "cache"});
  EXPECT_TRUE(flags.get_bool("fast", false));
  EXPECT_FALSE(flags.get_bool("cache", true));
}

TEST(CliFlags, Defaults) {
  const auto flags = parse({}, {"runs", "b"});
  EXPECT_EQ(flags.get_int("runs", 100), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("b", 3.0), 3.0);
  EXPECT_EQ(flags.get_string("missing-not-in-spec-ok", "x"), "x");
  EXPECT_FALSE(flags.has("runs"));
}

TEST(CliFlags, DoubleParsing) {
  const auto flags = parse({"--b=2.5"}, {"b"});
  EXPECT_DOUBLE_EQ(flags.get_double("b", 0.0), 2.5);
}

TEST(CliFlags, StringValue) {
  const auto flags = parse({"--job", "cnn"}, {"job"});
  EXPECT_EQ(flags.get_string("job", ""), "cnn");
}

TEST(CliFlags, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus=1"}, {"runs"}), std::invalid_argument);
}

TEST(CliFlags, MalformedIntThrowsInformatively) {
  // A bare std::stoll used to escape as an uncaught "stoll" exception on
  // these; the checked parse must throw invalid_argument naming the flag.
  for (const char* arg : {"--runs=abc", "--runs=", "--runs=2x", "--runs=1.5"}) {
    const auto flags = parse({arg}, {"runs"});
    try {
      (void)flags.get_int("runs", 0);
      FAIL() << "expected invalid_argument for " << arg;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--runs"), std::string::npos)
          << "message should name the flag: " << e.what();
    }
  }
}

TEST(CliFlags, MalformedDoubleThrowsInformatively) {
  for (const char* arg : {"--b=abc", "--b=", "--b=2.5zz"}) {
    const auto flags = parse({arg}, {"b"});
    try {
      (void)flags.get_double("b", 0.0);
      FAIL() << "expected invalid_argument for " << arg;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--b"), std::string::npos)
          << "message should name the flag: " << e.what();
    }
  }
}

TEST(CliFlags, CheckedParsesStillAcceptValidValues) {
  const auto flags = parse({"--runs=-3", "--b=-2.5e-1"}, {"runs", "b"});
  EXPECT_EQ(flags.get_int("runs", 0), -3);
  EXPECT_DOUBLE_EQ(flags.get_double("b", 0.0), -0.25);
}

TEST(CliFlags, RepeatedFlagIsAHardError) {
  // Last-one-wins silence hides typos in long command lines.
  EXPECT_THROW(parse({"--runs=1", "--runs=2"}, {"runs"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--runs", "1", "--runs=1"}, {"runs"}),
               std::invalid_argument);
}

TEST(CliFlags, ConflictingBooleanFormsAreAHardError) {
  EXPECT_THROW(parse({"--fast", "--no-fast"}, {"fast"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--no-fast", "--fast=true"}, {"fast"}),
               std::invalid_argument);
}

TEST(CliFlags, MalformedBoolThrows) {
  const auto flags = parse({"--fast=maybe"}, {"fast"});
  EXPECT_THROW((void)flags.get_bool("fast", false), std::invalid_argument);
}

TEST(CliFlags, FaultFlagsParseAndConflictCheck) {
  // The lynceus_tune fault-injection flags go through the same spec
  // machinery: hyphenated names parse in both forms and repeats are hard
  // errors, not last-one-wins.
  const std::vector<std::string> spec{"fault-rate", "fault-seed",
                                      "straggler-factor", "max-retries",
                                      "run-timeout"};
  const auto flags = parse({"--fault-rate=0.25", "--fault-seed", "9",
                            "--straggler-factor=3", "--max-retries=2",
                            "--run-timeout", "600"},
                           spec);
  EXPECT_DOUBLE_EQ(flags.get_double("fault-rate", 0.0), 0.25);
  EXPECT_EQ(flags.get_int("fault-seed", 1), 9);
  EXPECT_DOUBLE_EQ(flags.get_double("straggler-factor", 2.0), 3.0);
  EXPECT_EQ(flags.get_int("max-retries", 0), 2);
  EXPECT_DOUBLE_EQ(flags.get_double("run-timeout", 0.0), 600.0);
  EXPECT_THROW(parse({"--fault-rate=0.1", "--fault-rate=0.2"}, spec),
               std::invalid_argument);
  EXPECT_THROW(parse({"--fault-rates=0.1"}, spec), std::invalid_argument);
}

TEST(CliFlags, PositionalArguments) {
  const auto flags = parse({"alpha", "--runs=2", "beta"}, {"runs"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"alpha", "beta"}));
}

}  // namespace
}  // namespace lynceus::util

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lynceus::util {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0U);
  std::vector<int> out(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 5 * 4950);
}

TEST(DefaultWorkerCount, SizingRuleCoversTheSingleCoreEdge) {
  // hardware_concurrency() == 1 (the 1-core dev box behind the
  // BENCH_micro.json `workers: 0` entry) and == 0 (unknown, which the
  // standard permits) both size the default pool to zero workers — an
  // inline pool, explicitly *not* a scaling configuration; the bench
  // records `workers` so tools/compare_bench.py can skip such entries.
  EXPECT_EQ(worker_count_for(0), 0U);
  EXPECT_EQ(worker_count_for(1), 0U);
  // Multi-core hosts keep one thread for the caller.
  EXPECT_EQ(worker_count_for(2), 1U);
  EXPECT_EQ(worker_count_for(8), 7U);
}

TEST(DefaultWorkerCount, MatchesTheRuleOnThisHost) {
  EXPECT_EQ(default_worker_count(),
            worker_count_for(std::thread::hardware_concurrency()));
}

TEST(MaybeParallelFor, NullPoolRunsSequentially) {
  std::vector<int> order;
  maybe_parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MaybeParallelFor, WithPool) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  maybe_parallel_for(&pool, 50, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace lynceus::util

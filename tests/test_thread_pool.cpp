#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/alloc_count.hpp"

namespace lynceus::util {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0U);
  std::vector<int> out(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 5 * 4950);
}

// ---------------------------------------------------------------------------
// parallel_ranges: the deterministic, allocation-free static partition the
// branch-parallel lookahead engines fan out with.
// ---------------------------------------------------------------------------

struct RangeLog {
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> hits;
  explicit RangeLog(std::size_t n) : hits(n) {}
  static void body(void* ctx, std::size_t, std::size_t begin,
                   std::size_t end) {
    auto& log = *static_cast<RangeLog*>(ctx);
    log.calls.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = begin; i < end; ++i) {
      log.hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  }
};

TEST(ParallelRanges, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  ThreadPool::RangeSection section;
  for (int round = 0; round < 20; ++round) {  // also: reusable section
    RangeLog log(17);
    pool.parallel_ranges(section, 17, 4, &RangeLog::body, &log);
    for (std::size_t i = 0; i < 17; ++i) {
      EXPECT_EQ(log.hits[i].load(), 1) << "round " << round << " i " << i;
    }
    EXPECT_LE(log.calls.load(), 4);
    EXPECT_GE(log.calls.load(), 1);
  }
}

TEST(ParallelRanges, PartitionIsStaticIndexArithmetic) {
  // The (part -> range) map must be pure arithmetic on (n, parts) — the
  // determinism contract callers reduce under. Record which part covered
  // each index and check against p*n/parts boundaries.
  ThreadPool pool(3);
  ThreadPool::RangeSection section;
  const std::size_t n = 11;
  struct Cover {
    std::array<std::atomic<int>, 11> part_of;
  } cover;
  for (auto& p : cover.part_of) p.store(-1);
  pool.parallel_ranges(
      section, n, 4,
      [](void* ctx, std::size_t part, std::size_t begin, std::size_t end) {
        auto& c = *static_cast<Cover*>(ctx);
        for (std::size_t i = begin; i < end; ++i) {
          c.part_of[i].store(static_cast<int>(part));
        }
      },
      &cover);
  const std::size_t parts = 4;  // min(max_parts, n, workers + 1)
  for (std::size_t i = 0; i < n; ++i) {
    const int expected_part = [&] {
      for (std::size_t p = 0; p < parts; ++p) {
        if (i >= p * n / parts && i < (p + 1) * n / parts) {
          return static_cast<int>(p);
        }
      }
      return -1;
    }();
    EXPECT_EQ(cover.part_of[i].load(), expected_part) << "index " << i;
  }
}

TEST(ParallelRanges, WorkerlessPoolRunsInlineAsOnePart) {
  ThreadPool pool(0);
  ThreadPool::RangeSection section;
  RangeLog log(8);
  pool.parallel_ranges(section, 8, 4, &RangeLog::body, &log);
  EXPECT_EQ(log.calls.load(), 1);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(log.hits[i].load(), 1);
}

TEST(ParallelRanges, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  ThreadPool::RangeSection section;
  RangeLog log(1);
  pool.parallel_ranges(section, 0, 4, &RangeLog::body, &log);
  EXPECT_EQ(log.calls.load(), 0);
}

TEST(ParallelRanges, PropagatesException) {
  ThreadPool pool(2);
  ThreadPool::RangeSection section;
  EXPECT_THROW(pool.parallel_ranges(
                   section, 8, 3,
                   [](void*, std::size_t part, std::size_t, std::size_t) {
                     if (part == 1) throw std::runtime_error("boom");
                   },
                   nullptr),
               std::runtime_error);
  // The section must be reusable after a throwing run.
  RangeLog log(8);
  pool.parallel_ranges(section, 8, 3, &RangeLog::body, &log);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(log.hits[i].load(), 1);
}

TEST(ParallelRanges, NestsInsideParallelFor) {
  // The engines call parallel_ranges from inside pool tasks (root fan-out
  // via parallel_for, branch fan-out via sections, same pool). Distinct
  // concurrent sections must compose without deadlock.
  ThreadPool pool(3);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<ThreadPool::RangeSection> sections(kOuter);
  std::vector<std::atomic<int>> total(kOuter);
  struct Inner {
    std::atomic<int>* slot;
  };
  pool.parallel_for(kOuter, [&](std::size_t o) {
    Inner in{&total[o]};
    pool.parallel_ranges(
        sections[o], kInner, 4,
        [](void* ctx, std::size_t, std::size_t begin, std::size_t end) {
          static_cast<Inner*>(ctx)->slot->fetch_add(
              static_cast<int>(end - begin), std::memory_order_relaxed);
        },
        &in);
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(total[o].load(), static_cast<int>(kInner)) << "outer " << o;
  }
}

TEST(ParallelRanges, AllocationFree) {
  if (!alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  ThreadPool pool(2);
  ThreadPool::RangeSection section;
  RangeLog warm(64);
  // One warm-up round lets the pool threads finish any lazy one-time
  // initialization of their own.
  pool.parallel_ranges(section, 64, 3, &RangeLog::body, &warm);
  // Measure the dispatch alone with a no-op body and no per-round state.
  AllocCountAllThreadsGuard dispatch_guard;
  for (int round = 0; round < 50; ++round) {
    pool.parallel_ranges(
        section, 64, 3, [](void*, std::size_t, std::size_t, std::size_t) {},
        nullptr);
  }
  EXPECT_EQ(dispatch_guard.delta(), 0U)
      << "parallel_ranges touched the heap";
}

TEST(DefaultWorkerCount, SizingRuleCoversTheSingleCoreEdge) {
  // hardware_concurrency() == 1 (the 1-core dev box behind the
  // BENCH_micro.json `workers: 0` entry) and == 0 (unknown, which the
  // standard permits) both size the default pool to zero workers — an
  // inline pool, explicitly *not* a scaling configuration; the bench
  // records `workers` so tools/compare_bench.py can skip such entries.
  EXPECT_EQ(worker_count_for(0), 0U);
  EXPECT_EQ(worker_count_for(1), 0U);
  // Multi-core hosts keep one thread for the caller.
  EXPECT_EQ(worker_count_for(2), 1U);
  EXPECT_EQ(worker_count_for(8), 7U);
}

TEST(DefaultWorkerCount, MatchesTheRuleOnThisHost) {
  EXPECT_EQ(default_worker_count(),
            worker_count_for(std::thread::hardware_concurrency()));
}

TEST(MaybeParallelFor, NullPoolRunsSequentially) {
  std::vector<int> order;
  maybe_parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MaybeParallelFor, WithPool) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  maybe_parallel_for(&pool, 50, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace lynceus::util

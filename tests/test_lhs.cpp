#include "math/lhs.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace lynceus::math {
namespace {

TEST(LatinHypercube, RejectsEmptyDimensionList) {
  util::Rng rng(1);
  EXPECT_THROW((void)latin_hypercube({}, 3, rng), std::invalid_argument);
}

TEST(LatinHypercube, RejectsEmptyDimension) {
  util::Rng rng(1);
  EXPECT_THROW((void)latin_hypercube({3, 0}, 2, rng), std::invalid_argument);
}

TEST(LatinHypercube, RejectsOversizedUniqueRequest) {
  util::Rng rng(1);
  EXPECT_THROW((void)latin_hypercube({2, 2}, 5, rng, true),
               std::invalid_argument);
}

TEST(LatinHypercube, ZeroSamples) {
  util::Rng rng(1);
  EXPECT_TRUE(latin_hypercube({3, 4}, 0, rng).empty());
}

TEST(LatinHypercube, RowShapeAndRange) {
  util::Rng rng(2);
  const std::vector<std::size_t> levels = {3, 2, 5};
  const auto rows = latin_hypercube(levels, 6, rng);
  ASSERT_EQ(rows.size(), 6U);
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), 3U);
    for (std::size_t d = 0; d < 3; ++d) ASSERT_LT(row[d], levels[d]);
  }
}

/// The defining LHS property: per dimension, levels are covered as evenly
/// as possible — each level appears floor(n/L) or ceil(n/L) times.
class LhsBalanceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LhsBalanceTest, PerDimensionStratification) {
  const auto [levels, n] = GetParam();
  util::Rng rng(7 + levels * 100 + n);
  const auto rows =
      latin_hypercube({levels, 4, 7}, n, rng, /*unique=*/false);
  std::map<std::size_t, std::size_t> counts;
  for (const auto& row : rows) counts[row[0]]++;
  const std::size_t lo = n / levels;
  const std::size_t hi = (n + levels - 1) / levels;
  for (const auto& [level, count] : counts) {
    EXPECT_GE(count, lo) << "level " << level;
    EXPECT_LE(count, hi) << "level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LhsBalanceTest,
    ::testing::Values(std::make_tuple(3, 12), std::make_tuple(4, 10),
                      std::make_tuple(8, 8), std::make_tuple(5, 17),
                      std::make_tuple(2, 9)));

TEST(LatinHypercube, UniqueRowsWhenRequested) {
  util::Rng rng(11);
  const auto rows = latin_hypercube({4, 4, 4}, 20, rng, /*unique=*/true);
  std::set<std::vector<std::size_t>> distinct(rows.begin(), rows.end());
  EXPECT_EQ(distinct.size(), rows.size());
}

TEST(LatinHypercube, UniqueFullGridEnumeration) {
  // Asking for exactly as many unique samples as grid cells must cover the
  // whole grid.
  util::Rng rng(13);
  const auto rows = latin_hypercube({2, 3}, 6, rng, /*unique=*/true);
  std::set<std::vector<std::size_t>> distinct(rows.begin(), rows.end());
  EXPECT_EQ(distinct.size(), 6U);
}

TEST(LatinHypercube, DeterministicGivenSeed) {
  util::Rng rng1(99);
  util::Rng rng2(99);
  EXPECT_EQ(latin_hypercube({3, 5, 2}, 8, rng1),
            latin_hypercube({3, 5, 2}, 8, rng2));
}

TEST(LatinHypercube, DifferentSeedsUsuallyDiffer) {
  util::Rng rng1(1);
  util::Rng rng2(2);
  EXPECT_NE(latin_hypercube({6, 6, 6}, 12, rng1),
            latin_hypercube({6, 6, 6}, 12, rng2));
}

}  // namespace
}  // namespace lynceus::math

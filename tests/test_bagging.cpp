#include "model/bagging.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lynceus::model {
namespace {

space::ConfigSpace grid_space(std::size_t a_levels, std::size_t b_levels) {
  std::vector<double> a(a_levels);
  std::vector<double> b(b_levels);
  for (std::size_t i = 0; i < a_levels; ++i) a[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < b_levels; ++i) b[i] = static_cast<double>(i);
  return space::ConfigSpace("grid", {space::numeric_param("a", a),
                                     space::numeric_param("b", b)});
}

TEST(BaggingOptions, WekaFeatureRule) {
  EXPECT_EQ(BaggingOptions::weka_features_per_split(1), 1U);
  EXPECT_EQ(BaggingOptions::weka_features_per_split(2), 2U);
  EXPECT_EQ(BaggingOptions::weka_features_per_split(5), 4U);
  EXPECT_EQ(BaggingOptions::weka_features_per_split(8), 4U);
  EXPECT_EQ(BaggingOptions::weka_features_per_split(16), 5U);
}

TEST(BaggingEnsemble, RejectsZeroTrees) {
  BaggingOptions opts;
  opts.trees = 0;
  EXPECT_THROW(BaggingEnsemble{opts}, std::invalid_argument);
}

TEST(BaggingEnsemble, PredictsMeanOfConstantTarget) {
  const auto sp = grid_space(4, 4);
  const FeatureMatrix fm(sp);
  BaggingEnsemble ens;
  ens.fit(fm, {0, 5, 10, 15}, {3.0, 3.0, 3.0, 3.0}, 42);
  const auto p = ens.predict(fm, 7);
  EXPECT_DOUBLE_EQ(p.mean, 3.0);
  // Constant target → all trees agree; stddev is the configured floor.
  EXPECT_LE(p.stddev, 1e-3);
}

TEST(BaggingEnsemble, StddevPositiveEvenWhenTreesAgree) {
  const auto sp = grid_space(3, 3);
  const FeatureMatrix fm(sp);
  BaggingEnsemble ens;
  ens.fit(fm, {0, 4, 8}, {1.0, 1.0, 1.0}, 1);
  EXPECT_GT(ens.predict(fm, 0).stddev, 0.0);
}

TEST(BaggingEnsemble, DeterministicGivenSeed) {
  const auto sp = grid_space(6, 6);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(3);
  for (std::uint32_t r = 0; r < fm.rows(); r += 2) {
    rows.push_back(r);
    y.push_back(noise.normal(10.0, 3.0));
  }
  BaggingEnsemble a;
  BaggingEnsemble b;
  a.fit(fm, rows, y, 77);
  b.fit(fm, rows, y, 77);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_DOUBLE_EQ(a.predict(fm, r).mean, b.predict(fm, r).mean);
    EXPECT_DOUBLE_EQ(a.predict(fm, r).stddev, b.predict(fm, r).stddev);
  }
}

TEST(BaggingEnsemble, SeedChangesBootstrap) {
  const auto sp = grid_space(6, 6);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(4);
  for (std::uint32_t r = 0; r < fm.rows(); r += 2) {
    rows.push_back(r);
    y.push_back(noise.normal(10.0, 3.0));
  }
  BaggingEnsemble a;
  BaggingEnsemble b;
  a.fit(fm, rows, y, 1);
  b.fit(fm, rows, y, 2);
  bool any_diff = false;
  for (std::uint32_t r = 0; r < fm.rows() && !any_diff; ++r) {
    any_diff = a.predict(fm, r).mean != b.predict(fm, r).mean;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BaggingEnsemble, PredictAllMatchesPredict) {
  const auto sp = grid_space(5, 4);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows = {0, 3, 9, 13, 19};
  std::vector<double> y = {1.0, 4.0, 2.0, 8.0, 3.0};
  BaggingEnsemble ens;
  ens.fit(fm, rows, y, 5);
  std::vector<Prediction> all;
  ens.predict_all(fm, all);
  ASSERT_EQ(all.size(), fm.rows());
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    const auto p = ens.predict(fm, r);
    EXPECT_DOUBLE_EQ(all[r].mean, p.mean);
    EXPECT_DOUBLE_EQ(all[r].stddev, p.stddev);
  }
}

TEST(BaggingEnsemble, UncertaintyHigherAwayFromData) {
  // Train on the a=0 column only, with targets that vary along b: far
  // corner (a=max) predictions must carry at least as much ensemble spread
  // on average as on-data predictions.
  const auto sp = grid_space(8, 8);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(6);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    if (fm.code(r, 0) <= 1) {
      rows.push_back(r);
      y.push_back(static_cast<double>(fm.code(r, 1)) + noise.normal(0.0, 0.3));
    }
  }
  BaggingEnsemble ens;
  ens.fit(fm, rows, y, 7);
  double on_data = 0.0;
  double off_data = 0.0;
  int n_on = 0;
  int n_off = 0;
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    if (fm.code(r, 0) <= 1) {
      on_data += ens.predict(fm, r).stddev;
      ++n_on;
    } else if (fm.code(r, 0) >= 6) {
      off_data += ens.predict(fm, r).stddev;
      ++n_off;
    }
  }
  EXPECT_GE(off_data / n_off, 0.5 * (on_data / n_on));
}

TEST(BaggingEnsemble, LearnsSmoothSurfaceApproximately) {
  const auto sp = grid_space(8, 8);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    rows.push_back(r);
    y.push_back(2.0 * fm.code(r, 0) + 3.0 * fm.code(r, 1));
  }
  BaggingEnsemble ens;
  ens.fit(fm, rows, y, 8);
  double sse = 0.0;
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    const double e = ens.predict(fm, r).mean - y[r];
    sse += e * e;
  }
  EXPECT_LT(std::sqrt(sse / static_cast<double>(fm.rows())), 2.5);
}

TEST(BaggingEnsemble, TotalVarianceExceedsBetweenTrees) {
  // Noisy targets within cells: the SMAC-style total variance adds the
  // within-leaf residual, so its stddev must dominate the between-trees
  // stddev everywhere.
  const auto sp = grid_space(3, 3);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(9);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    for (int rep = 0; rep < 4; ++rep) {  // repeated noisy measurements
      rows.push_back(r);
      y.push_back(static_cast<double>(r) + noise.normal(0.0, 2.0));
    }
  }
  BaggingOptions between_opts;
  BaggingOptions total_opts;
  total_opts.variance_mode = VarianceMode::TotalVariance;
  BaggingEnsemble between(between_opts);
  BaggingEnsemble total(total_opts);
  between.fit(fm, rows, y, 3);
  total.fit(fm, rows, y, 3);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_GE(total.predict(fm, r).stddev,
              between.predict(fm, r).stddev - 1e-12);
    // Means agree regardless of the variance mode.
    EXPECT_DOUBLE_EQ(total.predict(fm, r).mean, between.predict(fm, r).mean);
  }
  // And with sizeable within-leaf noise it is strictly larger somewhere.
  bool strictly = false;
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    strictly = strictly || total.predict(fm, r).stddev >
                               between.predict(fm, r).stddev + 0.1;
  }
  EXPECT_TRUE(strictly);
}

TEST(BaggingEnsemble, TotalVariancePredictAllMatchesPredict) {
  const auto sp = grid_space(4, 3);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows = {0, 0, 3, 5, 5, 9, 11};
  std::vector<double> y = {1.0, 2.0, 4.0, 2.0, 6.0, 8.0, 3.0};
  BaggingOptions opts;
  opts.variance_mode = VarianceMode::TotalVariance;
  BaggingEnsemble ens(opts);
  ens.fit(fm, rows, y, 4);
  std::vector<Prediction> all;
  ens.predict_all(fm, all);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_DOUBLE_EQ(all[r].mean, ens.predict(fm, r).mean);
    EXPECT_DOUBLE_EQ(all[r].stddev, ens.predict(fm, r).stddev);
  }
}

TEST(BaggingEnsemble, FreshCreatesUnfittedClone) {
  BaggingOptions opts;
  opts.trees = 7;
  const BaggingEnsemble ens(opts);
  const auto clone = ens.fresh();
  const auto* typed = dynamic_cast<BaggingEnsemble*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->options().trees, 7U);
  EXPECT_FALSE(typed->fitted());
}

TEST(BaggingEnsemble, Validation) {
  const auto sp = grid_space(2, 2);
  const FeatureMatrix fm(sp);
  BaggingEnsemble ens;
  EXPECT_THROW(ens.fit(fm, {}, {}, 1), std::invalid_argument);
  EXPECT_THROW((void)ens.predict(fm, 0), std::logic_error);
  std::vector<Prediction> out;
  EXPECT_THROW(ens.predict_all(fm, out), std::logic_error);
}

// ---------------------------------------------------------------------------
// Fit-state serialization (Regressor::save_fit / load_fit)
// ---------------------------------------------------------------------------

/// Fits a deterministic noisy surface on half the grid.
void fit_noisy(BaggingEnsemble& ens, const FeatureMatrix& fm,
               std::uint64_t seed) {
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(3);
  for (std::uint32_t r = 0; r < fm.rows(); r += 2) {
    rows.push_back(r);
    y.push_back(noise.normal(10.0, 3.0));
  }
  ens.fit(fm, rows, y, seed);
}

TEST(BaggingSerialization, SaveLoadRoundTripIsBitwise) {
  const auto sp = grid_space(6, 6);
  const FeatureMatrix fm(sp);
  BaggingEnsemble ens;
  fit_noisy(ens, fm, 77);

  util::JsonWriter w;
  ASSERT_TRUE(ens.save_fit(w));
  const util::JsonValue state = util::parse_json(w.str());

  BaggingEnsemble back;
  ASSERT_TRUE(back.load_fit(state));
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_EQ(ens.predict(fm, r).mean, back.predict(fm, r).mean);
    EXPECT_EQ(ens.predict(fm, r).stddev, back.predict(fm, r).stddev);
  }
  std::vector<Prediction> a;
  std::vector<Prediction> b;
  ens.predict_all(fm, a);
  back.predict_all(fm, b);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_EQ(a[r].mean, b[r].mean);
    EXPECT_EQ(a[r].stddev, b[r].stddev);
  }
}

TEST(BaggingSerialization, RoundTripPreservesIncrementalMembership) {
  const auto sp = grid_space(6, 6);
  const FeatureMatrix fm(sp);
  BaggingEnsemble ens;
  ASSERT_TRUE(ens.enable_incremental(4));
  fit_noisy(ens, fm, 19);
  ASSERT_TRUE(ens.incremental_ready());

  util::JsonWriter w;
  ASSERT_TRUE(ens.save_fit(w));
  BaggingEnsemble back;
  ASSERT_TRUE(back.load_fit(util::parse_json(w.str())));
  ASSERT_TRUE(back.incremental_ready());

  // The same append on the original and the deserialized copy must land
  // on bitwise-identical models (same captured membership, same derived
  // per-tree streams).
  ASSERT_TRUE(ens.append_and_update(fm, 7, 25.0, 1234));
  ASSERT_TRUE(back.append_and_update(fm, 7, 25.0, 1234));
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_EQ(ens.predict(fm, r).mean, back.predict(fm, r).mean);
    EXPECT_EQ(ens.predict(fm, r).stddev, back.predict(fm, r).stddev);
  }
}

TEST(BaggingSerialization, UnfittedSavesNothing) {
  BaggingEnsemble ens;
  util::JsonWriter w;
  EXPECT_FALSE(ens.save_fit(w));
  // The writer is untouched and still usable.
  w.value(1.0);
  EXPECT_EQ(w.str(), "1");
}

TEST(BaggingSerialization, LoadValidatesSignature) {
  const auto sp = grid_space(4, 4);
  const FeatureMatrix fm(sp);
  BaggingEnsemble ens;
  fit_noisy(ens, fm, 5);
  util::JsonWriter w;
  ASSERT_TRUE(ens.save_fit(w));
  const util::JsonValue state = util::parse_json(w.str());

  BaggingOptions fewer;
  fewer.trees = 5;
  BaggingEnsemble mismatched(fewer);
  EXPECT_THROW((void)mismatched.load_fit(state), std::runtime_error);

  BaggingOptions total;
  total.variance_mode = VarianceMode::TotalVariance;
  BaggingEnsemble other_mode(total);
  EXPECT_THROW((void)other_mode.load_fit(state), std::runtime_error);
}

TEST(BaggingSerialization, TotalVarianceModeRoundTrips) {
  const auto sp = grid_space(6, 6);
  const FeatureMatrix fm(sp);
  BaggingOptions opts;
  opts.variance_mode = VarianceMode::TotalVariance;
  BaggingEnsemble ens(opts);
  fit_noisy(ens, fm, 11);
  util::JsonWriter w;
  ASSERT_TRUE(ens.save_fit(w));
  BaggingEnsemble back(opts);
  ASSERT_TRUE(back.load_fit(util::parse_json(w.str())));
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_EQ(ens.predict(fm, r).mean, back.predict(fm, r).mean);
    EXPECT_EQ(ens.predict(fm, r).stddev, back.predict(fm, r).stddev);
  }
}

}  // namespace
}  // namespace lynceus::model

#include "core/setup_cost.hpp"

#include <gtest/gtest.h>

#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

/// Setup model over the tiny 4x6 space: dimension "a" plays the VM-kind
/// role, dimension "b" the cluster-size role.
SetupCostFn tiny_setup_fn() {
  const auto sp = testing::tiny_space();
  CloudSetupModel m;
  m.vm_kind = [sp](ConfigId id) {
    return static_cast<int>(sp->levels(id)[0]);
  };
  m.vm_count = [sp](ConfigId id) { return sp->value(id, 1) + 1.0; };
  m.per_vm_price_per_hour = [](ConfigId) { return 6.0; };
  m.boot_minutes = 10.0;
  m.warmup_minutes = 0.0;
  return make_cloud_setup_cost(m);
}

TEST(SetupCost, SameConfigIsFree) {
  const auto fn = tiny_setup_fn();
  EXPECT_DOUBLE_EQ(fn(ConfigId{5}, ConfigId{5}), 0.0);
}

TEST(SetupCost, FreshDeploymentBootsWholeCluster) {
  const auto sp = testing::tiny_space();
  const auto fn = tiny_setup_fn();
  // No current config: boot vm_count(next) VMs at $6/h for 10 minutes.
  const auto next = sp->find({0, 2});  // count = 3
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(fn(std::nullopt, *next), 3.0 * 6.0 * 10.0 / 60.0, 1e-12);
}

TEST(SetupCost, GrowingSameKindBootsOnlyDelta) {
  const auto sp = testing::tiny_space();
  const auto fn = tiny_setup_fn();
  const auto from = sp->find({1, 1});  // kind 1, count 2
  const auto to = sp->find({1, 4});    // kind 1, count 5
  ASSERT_TRUE(from && to);
  EXPECT_NEAR(fn(*from, *to), 3.0 * 6.0 * 10.0 / 60.0, 1e-12);
}

TEST(SetupCost, ShrinkingSameKindBootsNothing) {
  const auto sp = testing::tiny_space();
  const auto fn = tiny_setup_fn();
  const auto from = sp->find({1, 4});
  const auto to = sp->find({1, 1});
  ASSERT_TRUE(from && to);
  EXPECT_DOUBLE_EQ(fn(*from, *to), 0.0);
}

TEST(SetupCost, KindChangeBootsFullCluster) {
  const auto sp = testing::tiny_space();
  const auto fn = tiny_setup_fn();
  const auto from = sp->find({0, 4});
  const auto to = sp->find({2, 1});  // different kind, count 2
  ASSERT_TRUE(from && to);
  EXPECT_NEAR(fn(*from, *to), 2.0 * 6.0 * 10.0 / 60.0, 1e-12);
}

TEST(SetupCost, WarmupChargedOnChange) {
  const auto sp = testing::tiny_space();
  CloudSetupModel m;
  m.vm_kind = [](ConfigId) { return 0; };
  m.vm_count = [](ConfigId) { return 4.0; };
  m.per_vm_price_per_hour = [](ConfigId) { return 3.0; };
  m.boot_minutes = 0.0;
  m.warmup_minutes = 20.0;
  const auto fn = make_cloud_setup_cost(m);
  // Same kind & count but different config id: warm-up still applies.
  EXPECT_NEAR(fn(ConfigId{0}, ConfigId{1}), 4.0 * 3.0 * 20.0 / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(fn(ConfigId{1}, ConfigId{1}), 0.0);
}

TEST(SetupCost, Validation) {
  CloudSetupModel m;  // missing accessors
  EXPECT_THROW((void)make_cloud_setup_cost(m), std::invalid_argument);
  m.vm_kind = [](ConfigId) { return 0; };
  m.vm_count = [](ConfigId) { return 1.0; };
  m.per_vm_price_per_hour = [](ConfigId) { return 1.0; };
  m.boot_minutes = -1.0;
  EXPECT_THROW((void)make_cloud_setup_cost(m), std::invalid_argument);
}

TEST(SetupCost, LynceusPaysLessWhenSwitchingIsExpensive) {
  // With a setup-cost model, Lynceus should spend part of the budget on
  // switching — so it explores no more configurations than the
  // setup-cost-free variant.
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  LynceusOptions free_opts;
  free_opts.lookahead = 1;
  LynceusOptions pay_opts = free_opts;
  pay_opts.setup_cost = tiny_setup_fn();
  LynceusOptimizer free_lyn(free_opts);
  LynceusOptimizer pay_lyn(pay_opts);
  double free_nex = 0.0;
  double pay_nex = 0.0;
  for (int t = 0; t < 5; ++t) {
    eval::TableRunner r1(ds);
    eval::TableRunner r2(ds);
    free_nex += static_cast<double>(
        free_lyn.optimize(problem, r1, 400 + t).explorations());
    pay_nex += static_cast<double>(
        pay_lyn.optimize(problem, r2, 400 + t).explorations());
  }
  EXPECT_LE(pay_nex, free_nex + 1e-9);
}

}  // namespace
}  // namespace lynceus::core

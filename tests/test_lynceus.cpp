#include "core/lynceus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

LynceusOptions fast_options(unsigned la) {
  LynceusOptions opts;
  opts.lookahead = la;
  opts.gh_points = 3;
  return opts;
}

TEST(LynceusOptions, Validation) {
  LynceusOptions opts;
  opts.gh_points = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = LynceusOptions{};
  opts.gamma = 1.5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = LynceusOptions{};
  opts.feasibility_quantile = 1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  EXPECT_THROW(LynceusOptimizer{opts}, std::invalid_argument);
}

TEST(Lynceus, NameEncodesLookahead) {
  EXPECT_EQ(LynceusOptimizer(fast_options(2)).name(), "Lynceus(LA=2)");
  EXPECT_EQ(LynceusOptimizer(fast_options(0)).name(), "Lynceus(LA=0)");
}

class LynceusLookahead : public ::testing::TestWithParam<unsigned> {};

TEST_P(LynceusLookahead, NeverRepeatsAndStaysOrderly) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LynceusOptimizer lyn(fast_options(GetParam()));
  const auto result = lyn.optimize(problem, runner, 1);
  std::set<ConfigId> seen;
  for (const auto& s : result.history) {
    EXPECT_TRUE(seen.insert(s.id).second);
  }
  EXPECT_GE(result.explorations(), problem.bootstrap_samples);
}

TEST_P(LynceusLookahead, DeterministicGivenSeed) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  LynceusOptimizer lyn(fast_options(GetParam()));
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto a = lyn.optimize(problem, r1, 21);
  const auto b = lyn.optimize(problem, r2, 21);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id);
  }
}

INSTANTIATE_TEST_SUITE_P(Lookaheads, LynceusLookahead,
                         ::testing::Values(0U, 1U, 2U));

TEST(Lynceus, BudgetAwareStoppingRarelyOvershoots) {
  // The Γ filter stops exploration when nothing fits the remaining budget
  // with probability 0.99, so Lynceus should essentially never overshoot
  // (unlike BO/RND whose last run is unchecked).
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  LynceusOptimizer lyn(fast_options(1));
  int overshoots = 0;
  for (int t = 0; t < 10; ++t) {
    eval::TableRunner runner(ds);
    const auto result = lyn.optimize(problem, runner, 50 + t);
    // Bootstrap itself can exceed tiny budgets; measure only the
    // post-bootstrap phase.
    double bootstrap_cost = 0.0;
    for (std::size_t i = 0; i < problem.bootstrap_samples; ++i) {
      bootstrap_cost += result.history[i].cost;
    }
    if (bootstrap_cost < problem.budget &&
        result.budget_spent > problem.budget * 1.05) {
      ++overshoots;
    }
  }
  EXPECT_LE(overshoots, 1);
}

TEST(Lynceus, DecisionTimeGrowsWithLookahead) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner r0(ds);
  eval::TableRunner r2(ds);
  LynceusOptimizer la0(fast_options(0));
  LynceusOptimizer la2(fast_options(2));
  const auto a = la0.optimize(problem, r0, 3);
  const auto b = la2.optimize(problem, r2, 3);
  ASSERT_GT(a.decisions, 0U);
  ASSERT_GT(b.decisions, 0U);
  const double per_decision_a = a.decision_seconds / a.decisions;
  const double per_decision_b = b.decision_seconds / b.decisions;
  EXPECT_GT(per_decision_b, per_decision_a);  // Table 3's trend
}

TEST(Lynceus, UsuallyFindsNearOptimalOnEasySurface) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem(5.0);
  LynceusOptimizer lyn(fast_options(1));
  int good = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    eval::TableRunner runner(ds);
    const auto result = lyn.optimize(problem, runner, 200 + t);
    ASSERT_TRUE(result.recommendation.has_value());
    if (ds.cost(*result.recommendation) / ds.optimal_cost() <= 1.7) ++good;
  }
  EXPECT_GE(good, trials * 3 / 4);
}

TEST(Lynceus, RecommendationFeasibleWheneverPossible) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  LynceusOptimizer lyn(fast_options(1));
  eval::TableRunner runner(ds);
  const auto result = lyn.optimize(problem, runner, 7);
  ASSERT_TRUE(result.recommendation.has_value());
  bool saw_feasible = false;
  for (const auto& s : result.history) saw_feasible |= s.feasible;
  EXPECT_EQ(result.recommendation_feasible, saw_feasible);
}

TEST(Lynceus, ScreeningApproximationStaysCloseToExact) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  auto exact_opts = fast_options(1);
  auto screened_opts = fast_options(1);
  screened_opts.screen_width = 6;
  LynceusOptimizer exact(exact_opts);
  LynceusOptimizer screened(screened_opts);
  double exact_sum = 0.0;
  double screened_sum = 0.0;
  for (int t = 0; t < 10; ++t) {
    eval::TableRunner r1(ds);
    eval::TableRunner r2(ds);
    exact_sum += ds.cost(*exact.optimize(problem, r1, 300 + t).recommendation);
    screened_sum +=
        ds.cost(*screened.optimize(problem, r2, 300 + t).recommendation);
  }
  // Screened Lynceus must stay within 50% of exact Lynceus on average.
  EXPECT_LT(screened_sum, exact_sum * 1.5 + 1e-9);
}

TEST(Lynceus, ParallelRootsMatchSequential) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  util::ThreadPool pool(3);
  auto seq_opts = fast_options(1);
  auto par_opts = fast_options(1);
  par_opts.pool = &pool;
  LynceusOptimizer seq(seq_opts);
  LynceusOptimizer par(par_opts);
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto a = seq.optimize(problem, r1, 77);
  const auto b = par.optimize(problem, r2, 77);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "diverged at step " << i;
  }
}

TEST(Lynceus, GammaIrrelevantAtZeroLookahead) {
  // With LA=0 no future steps are simulated, so the discount γ cannot
  // influence the exploration sequence at all.
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  auto a_opts = fast_options(0);
  a_opts.gamma = 0.0;
  auto b_opts = fast_options(0);
  b_opts.gamma = 0.9;
  LynceusOptimizer a_opt(a_opts);
  LynceusOptimizer b_opt(b_opts);
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto a = a_opt.optimize(problem, r1, 88);
  const auto b = b_opt.optimize(problem, r2, 88);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id);
  }
}

TEST(Lynceus, GammaZeroStillOptimizesWithLookahead) {
  // γ=0 discards all future rewards (the path reward collapses to the
  // root's EIc) but the simulated path costs still inform the ranking;
  // the optimizer must remain functional and budget-aware.
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  auto g0 = fast_options(1);
  g0.gamma = 0.0;
  LynceusOptimizer gamma_zero(g0);
  eval::TableRunner r1(ds);
  const auto a = gamma_zero.optimize(problem, r1, 88);
  ASSERT_TRUE(a.recommendation.has_value());
  EXPECT_GE(ds.cost(*a.recommendation) / ds.optimal_cost(), 1.0 - 1e-9);
}

TEST(Lynceus, EiStopHaltsEarly) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.budget = 1e9;
  auto opts = fast_options(0);
  opts.ei_stop_fraction = 0.10;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  const auto result = lyn.optimize(problem, runner, 5);
  EXPECT_LT(result.explorations(), problem.space->size());
}

TEST(Lynceus, SetupCostChargedToBudget) {
  const auto ds = testing::tiny_dataset();
  // High budget so the post-bootstrap loop certainly runs (with b=3 the
  // bootstrap can consume enough that the Γ filter halts immediately).
  const auto problem = testing::tiny_problem(5.0);
  auto opts = fast_options(0);
  int setup_calls = 0;
  opts.setup_cost = [&setup_calls](std::optional<ConfigId>, ConfigId) {
    ++setup_calls;
    return 0.0;
  };
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  (void)lyn.optimize(problem, runner, 6);
  EXPECT_GT(setup_calls, 0);
}

}  // namespace
}  // namespace lynceus::core

#include "math/gauss_hermite.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace lynceus::math {
namespace {

TEST(GaussHermite, RejectsZeroPoints) {
  EXPECT_THROW(GaussHermite(0), std::invalid_argument);
}

TEST(GaussHermite, KnownTwoPointRule) {
  // K=2 physicists' rule: nodes ±1/√2, weights √π/2.
  const GaussHermite gh(2);
  EXPECT_NEAR(gh.nodes()[0], -1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(gh.nodes()[1], 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(gh.weights()[0], std::sqrt(M_PI) / 2.0, 1e-12);
  EXPECT_NEAR(gh.weights()[1], std::sqrt(M_PI) / 2.0, 1e-12);
}

TEST(GaussHermite, KnownThreePointRule) {
  // K=3: nodes 0, ±√(3/2); weights 2√π/3 (center), √π/6 (outer).
  const GaussHermite gh(3);
  EXPECT_NEAR(gh.nodes()[1], 0.0, 1e-12);
  EXPECT_NEAR(gh.nodes()[2], std::sqrt(1.5), 1e-12);
  EXPECT_NEAR(gh.weights()[1], 2.0 * std::sqrt(M_PI) / 3.0, 1e-12);
  EXPECT_NEAR(gh.weights()[0], std::sqrt(M_PI) / 6.0, 1e-12);
}

TEST(GaussHermite, WeightsSumToSqrtPi) {
  for (std::size_t k : {1U, 2U, 3U, 5U, 8U, 16U, 32U}) {
    const GaussHermite gh(k);
    const double sum = std::accumulate(gh.weights().begin(),
                                       gh.weights().end(), 0.0);
    EXPECT_NEAR(sum, std::sqrt(M_PI), 1e-10) << "k=" << k;
  }
}

TEST(GaussHermite, NodesAreSortedAndSymmetric) {
  const GaussHermite gh(7);
  for (std::size_t i = 1; i < gh.size(); ++i) {
    EXPECT_LT(gh.nodes()[i - 1], gh.nodes()[i]);
  }
  for (std::size_t i = 0; i < gh.size(); ++i) {
    EXPECT_NEAR(gh.nodes()[i], -gh.nodes()[gh.size() - 1 - i], 1e-12);
  }
}

/// A K-point rule integrates x^p e^{-x²} exactly for p <= 2K-1.
class GaussHermitePolynomialExactness
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussHermitePolynomialExactness, IntegratesMonomialsExactly) {
  const std::size_t k = GetParam();
  const GaussHermite gh(k);
  // Exact moments: ∫ x^p e^{-x²} dx = Γ((p+1)/2) for even p, 0 for odd p.
  for (std::size_t p = 0; p <= 2 * k - 1; ++p) {
    std::vector<double> f(gh.size());
    for (std::size_t i = 0; i < gh.size(); ++i) {
      f[i] = std::pow(gh.nodes()[i], static_cast<double>(p));
    }
    const double approx = gh.integrate(f);
    const double exact =
        p % 2 == 1 ? 0.0 : std::tgamma((static_cast<double>(p) + 1.0) / 2.0);
    // Tolerance is relative to the magnitude of the largest term of the
    // quadrature sum (high moments amplify node rounding).
    double scale = std::max(1.0, std::fabs(exact));
    for (std::size_t i = 0; i < gh.size(); ++i) {
      scale = std::max(scale, std::fabs(gh.weights()[i] * f[i]));
    }
    EXPECT_NEAR(approx, exact, 1e-9 * scale) << "k=" << k << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussHermitePolynomialExactness,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 20));

TEST(GaussHermite, ForNormalWeightsSumToOne) {
  const GaussHermite gh(5);
  const auto pts = gh.for_normal(3.0, 2.0);
  double sum = 0.0;
  for (const auto& p : pts) sum += p.weight;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(GaussHermite, ForNormalReproducesMeanAndVariance) {
  const GaussHermite gh(4);
  const double mean = -1.5;
  const double sd = 0.7;
  const auto pts = gh.for_normal(mean, sd);
  double m1 = 0.0;
  double m2 = 0.0;
  for (const auto& p : pts) {
    m1 += p.weight * p.value;
    m2 += p.weight * p.value * p.value;
  }
  EXPECT_NEAR(m1, mean, 1e-10);
  EXPECT_NEAR(m2 - m1 * m1, sd * sd, 1e-10);
}

TEST(GaussHermite, ForNormalZeroStddevCollapses) {
  const GaussHermite gh(3);
  const auto pts = gh.for_normal(5.0, 0.0);
  for (const auto& p : pts) EXPECT_DOUBLE_EQ(p.value, 5.0);
}

TEST(GaussHermite, ExpectationOfNonlinearFunction) {
  // E[exp(X)] for X ~ N(µ, σ²) = exp(µ + σ²/2); K=10 should nail it.
  const GaussHermite gh(10);
  const double mu = 0.3;
  const double sd = 0.5;
  const auto pts = gh.for_normal(mu, sd);
  double acc = 0.0;
  for (const auto& p : pts) acc += p.weight * std::exp(p.value);
  EXPECT_NEAR(acc, std::exp(mu + sd * sd / 2.0), 1e-6);
}

TEST(GaussHermite, IntegrateValidatesSize) {
  const GaussHermite gh(3);
  EXPECT_THROW((void)gh.integrate({1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace lynceus::math

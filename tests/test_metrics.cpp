#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace lynceus::eval {
namespace {

TEST(Cno, OptimalRecommendationScoresOne) {
  const auto ds = testing::tiny_dataset();
  core::OptimizerResult r;
  r.recommendation = ds.optimal();
  EXPECT_DOUBLE_EQ(cno(ds, r), 1.0);
}

TEST(Cno, SuboptimalScoresAboveOne) {
  const auto ds = testing::tiny_dataset();
  core::OptimizerResult r;
  // Pick any non-optimal config.
  r.recommendation = ds.optimal() == 0 ? 1 : 0;
  EXPECT_GT(cno(ds, r), 1.0);
}

TEST(Cno, MissingRecommendationThrows) {
  const auto ds = testing::tiny_dataset();
  core::OptimizerResult r;
  EXPECT_THROW((void)cno(ds, r), std::invalid_argument);
}

TEST(BestSoFarCno, MonotoneNonIncreasingOnceFeasible) {
  const auto ds = testing::tiny_dataset();
  std::vector<core::Sample> history;
  for (space::ConfigId id = 0; id < 10; ++id) {
    core::Sample s;
    s.id = id;
    s.cost = ds.cost(id);
    s.feasible = ds.feasible(id);
    history.push_back(s);
  }
  const auto trace = best_so_far_cno(ds, history);
  ASSERT_EQ(trace.size(), history.size());
  bool seen_feasible = false;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    seen_feasible = seen_feasible || history[i - 1].feasible;
    if (seen_feasible && history[i].feasible) {
      EXPECT_LE(trace[i], trace[i - 1] + 1e-12);
    }
  }
  EXPECT_GE(trace.back(), 1.0);
}

TEST(BestSoFarCno, UsesInfeasibleFallbackUntilFeasibleSeen) {
  const auto ds = testing::tiny_dataset();
  // First an infeasible sample, then a feasible one.
  space::ConfigId infeasible_id = 0;
  space::ConfigId feasible_id = 0;
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    if (!ds.feasible(id)) infeasible_id = id;
    if (ds.feasible(id)) feasible_id = id;
  }
  std::vector<core::Sample> history(2);
  history[0] = {infeasible_id, ds.runtime(infeasible_id),
                ds.cost(infeasible_id), false};
  history[1] = {feasible_id, ds.runtime(feasible_id), ds.cost(feasible_id),
                true};
  const auto trace = best_so_far_cno(ds, history);
  EXPECT_DOUBLE_EQ(trace[0], ds.cost(infeasible_id) / ds.optimal_cost());
  EXPECT_DOUBLE_EQ(trace[1], ds.cost(feasible_id) / ds.optimal_cost());
}

TEST(Summarize, DescriptiveStatistics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0,
                                 6.0, 7.0, 8.0, 9.0, 10.0};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.p50, 5.5);
  EXPECT_NEAR(s.p90, 9.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_THROW((void)summarize({}), std::invalid_argument);
}

}  // namespace
}  // namespace lynceus::eval

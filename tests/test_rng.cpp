#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace lynceus::util {
namespace {

TEST(SplitMix64, ProducesDistinctWellMixedValues) {
  std::uint64_t state = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(state));
  EXPECT_EQ(seen.size(), 1000U);
}

TEST(DeriveSeed, DistinctStreamsGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seen.size(), 1000U);
}

TEST(DeriveSeed, IsDeterministic) {
  EXPECT_EQ(derive_seed(7, 13), derive_seed(7, 13));
  EXPECT_NE(derive_seed(7, 13), derive_seed(8, 13));
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(17);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) counts[rng.below(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.2, 0.02);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, ScaledNormal) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(43);
  auto p = rng.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 2, 3, 3, 3};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, Poisson1MatchesTheDistribution) {
  // Oza-Russell online bagging relies on k ~ Poisson(1): mean 1,
  // P(0) = e^{-1}. Check both over a large deterministic sample, and that
  // the draw consumes exactly one uniform (stream position stays aligned
  // regardless of the value drawn, which the incremental refit's
  // per-tree seed discipline depends on).
  Rng rng(71);
  const int n = 20000;
  long total = 0;
  int zeros = 0;
  for (int i = 0; i < n; ++i) {
    const unsigned k = rng.poisson1();
    EXPECT_LE(k, 12U);
    total += k;
    if (k == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 1.0, 0.05);
  EXPECT_NEAR(static_cast<double>(zeros) / n, 0.36788, 0.02);

  Rng a(91);
  Rng b(91);
  (void)a.poisson1();
  (void)b.uniform();
  EXPECT_EQ(a(), b());  // exactly one uniform consumed
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace lynceus::util

#include <gtest/gtest.h>

#include "core/types.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

TEST(OptimizationProblem, ValidProblemPasses) {
  const auto p = testing::tiny_problem();
  EXPECT_NO_THROW(p.validate());
}

TEST(OptimizationProblem, RejectsNullSpace) {
  auto p = testing::tiny_problem();
  p.space = nullptr;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(OptimizationProblem, RejectsPriceCountMismatch) {
  auto p = testing::tiny_problem();
  p.unit_price_per_hour.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(OptimizationProblem, RejectsNonPositivePrice) {
  auto p = testing::tiny_problem();
  p.unit_price_per_hour[0] = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(OptimizationProblem, RejectsBadTmaxBudgetBootstrap) {
  auto p = testing::tiny_problem();
  p.tmax_seconds = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = testing::tiny_problem();
  p.budget = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = testing::tiny_problem();
  p.bootstrap_samples = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = testing::tiny_problem();
  p.bootstrap_samples = p.space->size() + 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(OptimizationProblem, FeasibilityCostCap) {
  auto p = testing::tiny_problem();
  p.tmax_seconds = 120.0;
  // cap = Tmax · U / 3600.
  EXPECT_NEAR(p.feasibility_cost_cap(0),
              120.0 * p.unit_price_per_hour[0] / 3600.0, 1e-12);
}

TEST(DefaultBootstrapSamples, ThreePercentOrDimsRule) {
  // 24 configs, 2 dims: ceil(0.72) = 1 < 2 dims → N = 2.
  EXPECT_EQ(default_bootstrap_samples(*testing::tiny_space()), 2U);
}

TEST(DefaultBootstrapSamples, LargeSpaceUsesThreePercent) {
  // A 384-point space with 5 dims → N = ceil(11.52) = 12 (paper: the first
  // 12 explorations of the TensorFlow jobs are the bootstrap).
  const space::ConfigSpace sp(
      "synthetic", {space::numeric_param("a", {0, 1, 2, 3, 4, 5, 6, 7}),
                    space::numeric_param("b", {0, 1, 2, 3, 4, 5}),
                    space::numeric_param("c", {0, 1, 2, 3}),
                    space::numeric_param("d", {0, 1}),
                    space::numeric_param("e", {0})});
  EXPECT_EQ(sp.size(), 384U);
  EXPECT_EQ(default_bootstrap_samples(sp), 12U);
}

}  // namespace
}  // namespace lynceus::core

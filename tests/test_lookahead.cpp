#include "core/lookahead.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/acquisition.hpp"
#include "core/bo.hpp"
#include "core/lookahead_reference.hpp"
#include "core/lynceus.hpp"
#include "core/sequential.hpp"
#include "eval/runner.hpp"
#include "math/gauss_hermite.hpp"
#include "model/bagging.hpp"
#include "model/gp.hpp"
#include "test_helpers.hpp"
#include "util/alloc_count.hpp"

namespace lynceus::core {
namespace {

// ---------------------------------------------------------------------------
// predict_subset / predict_batch equivalence
// ---------------------------------------------------------------------------

void expect_subset_matches_all(model::Regressor& model,
                               const model::FeatureMatrix& fm) {
  std::vector<model::Prediction> all;
  model.predict_all(fm, all);
  ASSERT_EQ(all.size(), fm.rows());

  std::vector<std::vector<std::uint32_t>> subsets;
  // Full ascending (dense mask path), sparse, descending, duplicates.
  std::vector<std::uint32_t> full(fm.rows());
  for (std::uint32_t i = 0; i < fm.rows(); ++i) full[i] = i;
  subsets.push_back(full);
  subsets.push_back({0, 5, 11, 17, 23});
  subsets.push_back({23, 12, 3, 0});
  subsets.push_back({7, 7, 7, 2});
  std::vector<std::uint32_t> most;
  for (std::uint32_t i = 0; i < fm.rows(); ++i) {
    if (i % 5 != 0) most.push_back(i);
  }
  subsets.push_back(most);

  std::vector<model::Prediction> out;
  for (const auto& ids : subsets) {
    model.predict_subset(fm, ids, out);
    ASSERT_EQ(out.size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      // The batched-prediction contract requires bitwise identity, not
      // mere closeness.
      EXPECT_EQ(out[i].mean, all[ids[i]].mean) << "id " << ids[i];
      EXPECT_EQ(out[i].stddev, all[ids[i]].stddev) << "id " << ids[i];
    }
  }
}

class PredictSubset : public ::testing::Test {
 protected:
  PredictSubset()
      : space(testing::tiny_space()),
        fm(*space),
        ds(testing::tiny_dataset()) {
    util::Rng rng(3);
    for (int i = 0; i < 10; ++i) {
      const auto id = static_cast<space::ConfigId>(rng.below(space->size()));
      rows.push_back(id);
      y.push_back(ds.cost(id));
    }
  }
  std::shared_ptr<const space::ConfigSpace> space;
  model::FeatureMatrix fm;
  cloud::Dataset ds;
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
};

TEST_F(PredictSubset, BaggingBetweenTrees) {
  model::BaggingEnsemble ens;
  ens.fit(fm, rows, y, 11);
  expect_subset_matches_all(ens, fm);
}

TEST_F(PredictSubset, BaggingTotalVariance) {
  model::BaggingOptions opts;
  opts.variance_mode = model::VarianceMode::TotalVariance;
  model::BaggingEnsemble ens(opts);
  ens.fit(fm, rows, y, 11);
  expect_subset_matches_all(ens, fm);
}

TEST_F(PredictSubset, GaussianProcess) {
  model::GaussianProcess gp;
  gp.fit(fm, rows, y, 11);
  expect_subset_matches_all(gp, fm);
}

TEST_F(PredictSubset, TreeBatchMatchesScalarPredict) {
  model::TreeOptions opts;
  opts.leaf_variance = true;
  model::DecisionTree tree(opts);
  util::Rng rng(5);
  tree.fit(fm, rows, y, rng);

  // Identity batch (dense level-mask walk) ...
  std::vector<float> value(fm.rows());
  std::vector<float> variance(fm.rows());
  tree.predict_batch(fm, nullptr, fm.rows(), value.data(), variance.data());
  // ... and a sparse batch (frontier partition path).
  const std::vector<std::uint32_t> sparse = {1, 9, 16, 2};
  std::vector<float> sparse_value(sparse.size());
  tree.predict_batch(fm, sparse.data(), sparse.size(), sparse_value.data());

  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    const auto stats = tree.predict_stats(fm, r);
    EXPECT_EQ(static_cast<double>(value[r]), tree.predict(fm, r));
    EXPECT_EQ(value[r], static_cast<float>(stats.mean));
    EXPECT_EQ(variance[r], static_cast<float>(stats.variance));
  }
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_EQ(static_cast<double>(sparse_value[i]),
              tree.predict(fm, sparse[i]));
  }
}

// ---------------------------------------------------------------------------
// Golden trajectory: naive copy-based reference vs the delta-state engine
// ---------------------------------------------------------------------------

/// The naive copy-based decision loop now lives in
/// core/lookahead_reference.hpp (mirroring constraints_reference.hpp) so
/// the differential incremental-refit suite and the benches can drive it
/// too.
using reference::NaiveLynceus;

std::vector<ConfigId> history_ids(const OptimizerResult& r) {
  std::vector<ConfigId> out;
  for (const auto& s : r.history) out.push_back(s.id);
  return out;
}

class GoldenTrajectory : public ::testing::TestWithParam<unsigned> {};

TEST_P(GoldenTrajectory, EngineMatchesNaiveReference) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    LynceusOptions opts;
    opts.lookahead = GetParam();
    opts.gh_points = 3;
    opts.screen_width = 6;
    // Golden-trajectory guard: the flag-off path must stay bit-identical
    // to the committed reference regardless of the LYNCEUS_INCREMENTAL_REFIT
    // environment default (CI runs the suite once with it set).
    opts.incremental_refit = false;

    eval::TableRunner naive_runner(ds);
    const auto naive = NaiveLynceus(opts).optimize(problem, naive_runner,
                                                   seed);
    eval::TableRunner engine_runner(ds);
    const auto engine =
        LynceusOptimizer(opts).optimize(problem, engine_runner, seed);

    EXPECT_EQ(history_ids(naive), history_ids(engine))
        << "lookahead " << GetParam() << " seed " << seed;
    EXPECT_EQ(naive.recommendation, engine.recommendation);
  }
}

TEST_P(GoldenTrajectory, EngineMatchesNaiveReferenceWithSetupCosts) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  LynceusOptions opts;
  opts.lookahead = GetParam();
  opts.screen_width = 4;
  opts.incremental_refit = false;  // golden-trajectory guard (see above)
  opts.setup_cost = [](std::optional<ConfigId> from, ConfigId to) {
    if (!from) return 0.0;
    return *from == to ? 0.0 : 0.02 * (1.0 + static_cast<double>(to % 5));
  };
  eval::TableRunner naive_runner(ds);
  const auto naive = NaiveLynceus(opts).optimize(problem, naive_runner, 9);
  eval::TableRunner engine_runner(ds);
  const auto engine = LynceusOptimizer(opts).optimize(problem, engine_runner,
                                                      9);
  EXPECT_EQ(history_ids(naive), history_ids(engine));
}

INSTANTIATE_TEST_SUITE_P(Lookaheads, GoldenTrajectory,
                         ::testing::Values(0U, 1U, 2U));

// ---------------------------------------------------------------------------
// Zero allocation inside simulate()
// ---------------------------------------------------------------------------

TEST(LookaheadEngine, SimulateIsAllocationFreeAfterWarmup) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 4);
  st.bootstrap();

  LookaheadEngine::Options opts;
  opts.lookahead = 2;
  LookaheadEngine engine(problem, opts,
                         default_tree_model_factory(*problem.space), 1);
  engine.begin_decision(st.samples, st.budget.remaining(),
                        util::derive_seed(4, 1));
  std::vector<ConfigId> roots;
  engine.screened_roots(0, roots);
  ASSERT_FALSE(roots.empty());

  // Warm-up pass sizes every buffer (per-depth candidate lists, model
  // scratch, thread-local prediction buffers).
  for (ConfigId r : roots) {
    (void)engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
  }

  util::AllocCountGuard guard;
  PathValue total{};
  for (ConfigId r : roots) {
    const PathValue v =
        engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
    total.reward += v.reward;
    total.cost += v.cost;
  }
  EXPECT_EQ(guard.delta(), 0U)
      << "simulate() touched the heap after warm-up";
  EXPECT_GT(total.cost, 0.0);
}

// The incremental-refit path must honor the same zero-allocation
// guarantee: per-branch model copies land in preallocated buffers, appends
// stay within the capture reserve, and re-splits build into reserved node
// storage.
TEST(LookaheadEngine, IncrementalSimulateIsAllocationFreeAfterWarmup) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 4);
  st.bootstrap();

  LookaheadEngine::Options opts;
  opts.lookahead = 2;
  opts.incremental_refit = true;
  LookaheadEngine engine(problem, opts,
                         default_tree_model_factory(*problem.space), 1);
  engine.begin_decision(st.samples, st.budget.remaining(),
                        util::derive_seed(4, 1));
  std::vector<ConfigId> roots;
  engine.screened_roots(0, roots);
  ASSERT_FALSE(roots.empty());

  for (ConfigId r : roots) {
    (void)engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
  }

  util::AllocCountGuard guard;
  PathValue total{};
  for (ConfigId r : roots) {
    const PathValue v =
        engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
    total.reward += v.reward;
    total.cost += v.cost;
  }
  EXPECT_EQ(guard.delta(), 0U)
      << "incremental simulate() touched the heap after warm-up";
  EXPECT_GT(total.cost, 0.0);
}

// Incremental simulate: same seed, same value — across repeated calls and
// across workspaces (each workspace's per-level models are re-derived from
// the shared root model, so which worker runs a path cannot matter).
TEST(LookaheadEngine, IncrementalSimulateIsDeterministic) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 6);
  st.bootstrap();

  LookaheadEngine::Options opts;
  opts.lookahead = 2;
  opts.incremental_refit = true;
  LookaheadEngine engine(problem, opts,
                         default_tree_model_factory(*problem.space), 2);
  engine.begin_decision(st.samples, st.budget.remaining(), 77);
  std::vector<ConfigId> roots;
  engine.screened_roots(3, roots);
  ASSERT_FALSE(roots.empty());
  const PathValue a = engine.simulate(roots.front(), 123);
  const PathValue b = engine.simulate(roots.front(), 123);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_EQ(a.cost, b.cost);
}

// ---------------------------------------------------------------------------
// RootCache
// ---------------------------------------------------------------------------

class RootCacheTest : public ::testing::Test {
 protected:
  RootCacheTest() : space(testing::tiny_space()), fm(*space) {}

  /// A fitted ensemble + its full-space predictions for the given rows.
  void fit(const std::vector<std::uint32_t>& rows,
           const std::vector<double>& y, std::uint64_t seed) {
    ens.fit(fm, rows, y, seed);
    ens.predict_all(fm, preds);
  }

  std::shared_ptr<const space::ConfigSpace> space;
  model::FeatureMatrix fm;
  model::BaggingEnsemble ens;
  std::vector<model::Prediction> preds;
};

TEST_F(RootCacheTest, ExactMatchHitsPrefixMisses) {
  RootCache cache;
  const std::vector<std::uint32_t> rows = {1, 4, 9};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  fit(rows, y, 7);
  EXPECT_EQ(cache.lookup(rows, {&y}, 7, fm.rows()), nullptr);
  cache.store(rows, {&y}, 7, {&preds}, {&ens});

  const RootCache::Entry* hit = cache.lookup(rows, {&y}, 7, fm.rows());
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->preds.size(), 1U);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(hit->preds[0][i].mean, preds[i].mean);
    EXPECT_EQ(hit->preds[0][i].stddev, preds[i].stddev);
  }

  // Same rows, different seed: miss. Appended sample (same lineage): miss,
  // but the entry survives for a later exact probe.
  EXPECT_EQ(cache.lookup(rows, {&y}, 8, fm.rows()), nullptr);
  const std::vector<std::uint32_t> grown = {1, 4, 9, 12};
  const std::vector<double> grown_y = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(cache.lookup(grown, {&grown_y}, 7, fm.rows()), nullptr);
  EXPECT_NE(cache.lookup(rows, {&y}, 7, fm.rows()), nullptr);
  EXPECT_EQ(cache.stats().hits, 2U);
  EXPECT_EQ(cache.stats().misses, 3U);
  EXPECT_EQ(cache.stats().invalidations, 0U);
}

TEST_F(RootCacheTest, DivergedLineageIsInvalidated) {
  RootCache cache;
  const std::vector<std::uint32_t> rows = {1, 4, 9};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  fit(rows, y, 7);
  cache.store(rows, {&y}, 7, {&preds}, {&ens});
  ASSERT_EQ(cache.size(), 1U);

  // Same row ids, different measured targets: a sample append mismatch —
  // the cached lineage diverged and the entry is dropped.
  const std::vector<std::uint32_t> grown = {1, 4, 9, 12};
  const std::vector<double> diverged_y = {1.0, 2.5, 3.0, 4.0};
  EXPECT_EQ(cache.lookup(grown, {&diverged_y}, 7, fm.rows()), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1U);
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.lookup(rows, {&y}, 7, fm.rows()), nullptr);
}

TEST_F(RootCacheTest, EvictsLeastRecentlyUsed) {
  RootCache::Options copts;
  copts.capacity = 2;
  RootCache cache(copts);
  const std::vector<std::vector<std::uint32_t>> keys = {{1}, {2}, {3}};
  const std::vector<double> y = {1.0};
  for (const auto& rows : keys) {
    fit(rows, y, 7);
    cache.store(rows, {&y}, 7, {&preds}, {&ens});
  }
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.lookup(keys[0], {&y}, 7, fm.rows()), nullptr);  // evicted
  EXPECT_NE(cache.lookup(keys[1], {&y}, 7, fm.rows()), nullptr);
  EXPECT_NE(cache.lookup(keys[2], {&y}, 7, fm.rows()), nullptr);
}

TEST_F(RootCacheTest, CrossShapeEntriesCoexist) {
  // A single-constraint (1 objective) and a multi-constraint (2 objective)
  // engine may share one cache: entries of a different shape are a plain
  // miss, never an invalidation.
  RootCache cache;
  const std::vector<std::uint32_t> rows = {1, 4, 9};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const std::vector<double> y2 = {9.0, 8.0, 7.0};
  fit(rows, y, 7);
  cache.store(rows, {&y}, 7, {&preds}, {&ens});
  // Two-objective probe with the same rows but different target values:
  // different shape, so the one-objective entry must survive.
  EXPECT_EQ(cache.lookup(rows, {&y2, &y2}, 7, fm.rows()), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 0U);
  EXPECT_NE(cache.lookup(rows, {&y}, 7, fm.rows()), nullptr);
  // Same shape but a different space size: also a plain miss.
  EXPECT_EQ(cache.lookup(rows, {&y}, 7, fm.rows() + 1), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 0U);
  EXPECT_EQ(cache.size(), 1U);
}

TEST_F(RootCacheTest, CapacityZeroDisables) {
  RootCache::Options copts;
  copts.capacity = 0;
  RootCache cache(copts);
  const std::vector<std::uint32_t> rows = {1, 4};
  const std::vector<double> y = {1.0, 2.0};
  fit(rows, y, 7);
  cache.store(rows, {&y}, 7, {&preds}, {&ens});
  EXPECT_EQ(cache.lookup(rows, {&y}, 7, fm.rows()), nullptr);
  EXPECT_EQ(cache.size(), 0U);
}

TEST_F(RootCacheTest, StoreModelsSnapshotsFittedTreeSet) {
  RootCache::Options copts;
  copts.store_models = true;
  RootCache cache(copts);
  const std::vector<std::uint32_t> rows = {0, 5, 11, 17};
  const std::vector<double> y = {0.5, 1.5, 2.5, 3.5};
  fit(rows, y, 13);
  cache.store(rows, {&y}, 13, {&preds}, {&ens});

  const RootCache::Entry* hit = cache.lookup(rows, {&y}, 13, fm.rows());
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->models.size(), 1U);
  ASSERT_NE(hit->models[0], nullptr);
  // The snapshot predicts bitwise identically to the fitted original.
  std::vector<model::Prediction> from_clone;
  hit->models[0]->predict_all(fm, from_clone);
  ASSERT_EQ(from_clone.size(), preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(from_clone[i].mean, preds[i].mean);
    EXPECT_EQ(from_clone[i].stddev, preds[i].stddev);
  }
}

// A shared cache across two identical runs: the repeated decisions hit,
// and the trajectory stays bit-identical to cache-off runs.
TEST(RootCache, WarmStartRunReusesRootsWithIdenticalTrajectory) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 6;

  eval::TableRunner r0(ds);
  const auto baseline = LynceusOptimizer(opts).optimize(problem, r0, 21);

  RootCache::Options copts;
  copts.capacity = 64;
  RootCache cache(copts);
  opts.root_cache = &cache;
  eval::TableRunner r1(ds);
  const auto first = LynceusOptimizer(opts).optimize(problem, r1, 21);
  EXPECT_EQ(cache.stats().hits, 0U);  // fresh lineage: all misses
  const std::uint64_t misses_after_first = cache.stats().misses;

  eval::TableRunner r2(ds);
  const auto second = LynceusOptimizer(opts).optimize(problem, r2, 21);
  // The re-run replays identical root states: every begin_decision hits
  // and no new entry is stored.
  EXPECT_EQ(cache.stats().hits, misses_after_first);
  EXPECT_GT(cache.stats().hits, 0U);
  EXPECT_EQ(cache.stats().misses, misses_after_first);

  EXPECT_EQ(history_ids(baseline), history_ids(first));
  EXPECT_EQ(history_ids(baseline), history_ids(second));
  EXPECT_EQ(baseline.recommendation, second.recommendation);
}

// Deterministic simulate: same seed, same value, also across workspaces.
TEST(LookaheadEngine, SimulateIsDeterministic) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 6);
  st.bootstrap();

  LookaheadEngine::Options opts;
  opts.lookahead = 1;
  LookaheadEngine engine(problem, opts,
                         default_tree_model_factory(*problem.space), 2);
  engine.begin_decision(st.samples, st.budget.remaining(), 77);
  std::vector<ConfigId> roots;
  engine.screened_roots(3, roots);
  ASSERT_FALSE(roots.empty());
  const PathValue a = engine.simulate(roots.front(), 123);
  const PathValue b = engine.simulate(roots.front(), 123);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace lynceus::core

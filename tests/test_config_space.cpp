#include "space/config_space.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lynceus::space {
namespace {

ConfigSpace small_space() {
  return ConfigSpace("small",
                     {numeric_param("a", {1, 2, 3}),
                      numeric_param("b", {10, 20})});
}

TEST(ConfigSpace, EnumeratesFullGrid) {
  const auto sp = small_space();
  EXPECT_EQ(sp.size(), 6U);
  EXPECT_EQ(sp.grid_size(), 6U);
  EXPECT_EQ(sp.dim_count(), 2U);
}

TEST(ConfigSpace, LevelsAndFeaturesAgree) {
  const auto sp = small_space();
  for (ConfigId id = 0; id < sp.size(); ++id) {
    const auto& lv = sp.levels(id);
    EXPECT_DOUBLE_EQ(sp.features(id)[0], sp.dim(0).values[lv[0]]);
    EXPECT_DOUBLE_EQ(sp.features(id)[1], sp.dim(1).values[lv[1]]);
    EXPECT_DOUBLE_EQ(sp.value(id, 0), sp.features(id)[0]);
  }
}

TEST(ConfigSpace, AllIdsDistinctLevelVectors) {
  const auto sp = small_space();
  std::set<LevelVector> seen;
  for (ConfigId id = 0; id < sp.size(); ++id) seen.insert(sp.levels(id));
  EXPECT_EQ(seen.size(), sp.size());
}

TEST(ConfigSpace, ValidityPredicateFilters) {
  const ConfigSpace sp(
      "filtered",
      {numeric_param("a", {1, 2, 3}), numeric_param("b", {10, 20})},
      [](const LevelVector& lv) { return lv[0] != 1; });  // drop a==2 row
  EXPECT_EQ(sp.size(), 4U);
  EXPECT_EQ(sp.grid_size(), 6U);
  for (ConfigId id = 0; id < sp.size(); ++id) {
    EXPECT_NE(sp.levels(id)[0], 1U);
  }
}

TEST(ConfigSpace, RejectsAllInvalid) {
  EXPECT_THROW(ConfigSpace("none", {numeric_param("a", {1.0})},
                           [](const LevelVector&) { return false; }),
               std::invalid_argument);
}

TEST(ConfigSpace, RejectsNoDims) {
  EXPECT_THROW(ConfigSpace("empty", {}), std::invalid_argument);
}

TEST(ConfigSpace, FindRoundTrip) {
  const auto sp = small_space();
  for (ConfigId id = 0; id < sp.size(); ++id) {
    const auto found = sp.find(sp.levels(id));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, id);
  }
}

TEST(ConfigSpace, FindMissingReturnsNullopt) {
  const ConfigSpace sp(
      "filtered",
      {numeric_param("a", {1, 2}), numeric_param("b", {10, 20})},
      [](const LevelVector& lv) { return !(lv[0] == 0 && lv[1] == 0); });
  EXPECT_FALSE(sp.find({0, 0}).has_value());
  EXPECT_TRUE(sp.find({1, 0}).has_value());
}

TEST(ConfigSpace, FindValidatesShape) {
  const auto sp = small_space();
  EXPECT_THROW((void)sp.find({0}), std::invalid_argument);
  EXPECT_THROW((void)sp.find({0, 99}), std::out_of_range);
}

TEST(ConfigSpace, NearestValidSnapsToClosestCell) {
  const ConfigSpace sp(
      "filtered",
      {numeric_param("a", {1, 2, 3, 4}), numeric_param("b", {10, 20})},
      [](const LevelVector& lv) { return lv[0] >= 2; });  // a in {3,4} only
  const ConfigId snapped = sp.nearest_valid({0, 1});
  EXPECT_EQ(sp.levels(snapped)[0], 2U);  // nearest surviving level
  EXPECT_EQ(sp.levels(snapped)[1], 1U);  // untouched dimension preserved
}

TEST(ConfigSpace, DescribeMentionsEveryDimension) {
  const auto sp = small_space();
  const auto text = sp.describe(0);
  EXPECT_NE(text.find("a="), std::string::npos);
  EXPECT_NE(text.find("b="), std::string::npos);
}

TEST(ConfigSpace, LhsSampleSizeAndUniqueness) {
  const ConfigSpace sp("s", {numeric_param("a", {1, 2, 3, 4, 5}),
                             numeric_param("b", {1, 2, 3, 4}),
                             numeric_param("c", {1, 2})});
  util::Rng rng(7);
  const auto ids = sp.lhs_sample(10, rng);
  EXPECT_EQ(ids.size(), 10U);
  EXPECT_EQ(std::set<ConfigId>(ids.begin(), ids.end()).size(), 10U);
}

TEST(ConfigSpace, LhsSampleCoversDimensionsEvenly) {
  const ConfigSpace sp("s", {numeric_param("a", {1, 2, 3, 4}),
                             numeric_param("b", {1, 2, 3, 4})});
  util::Rng rng(11);
  const auto ids = sp.lhs_sample(8, rng);
  // Dimension a has 4 levels and 8 samples: each level exactly twice
  // (LHS balance), unless collision repair had to move a row.
  std::vector<int> counts(4, 0);
  for (ConfigId id : ids) counts[sp.levels(id)[0]]++;
  int total = 0;
  for (int c : counts) {
    EXPECT_GE(c, 1);
    total += c;
  }
  EXPECT_EQ(total, 8);
}

TEST(ConfigSpace, LhsSampleWorksOnConstrainedSpace) {
  const ConfigSpace sp(
      "constrained",
      {numeric_param("a", {1, 2, 3, 4}), numeric_param("b", {1, 2, 3, 4})},
      [](const LevelVector& lv) { return (lv[0] + lv[1]) % 2 == 0; });
  util::Rng rng(13);
  const auto ids = sp.lhs_sample(5, rng);
  EXPECT_EQ(ids.size(), 5U);
  EXPECT_EQ(std::set<ConfigId>(ids.begin(), ids.end()).size(), 5U);
}

TEST(ConfigSpace, LhsSampleRejectsOversized) {
  const auto sp = small_space();
  util::Rng rng(1);
  EXPECT_THROW((void)sp.lhs_sample(7, rng), std::invalid_argument);
}

TEST(ConfigSpace, AllReturnsEveryId) {
  const auto sp = small_space();
  const auto ids = sp.all();
  ASSERT_EQ(ids.size(), sp.size());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

}  // namespace
}  // namespace lynceus::space

#include "core/acquisition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/distributions.hpp"

namespace lynceus::core {
namespace {

TEST(ExpectedImprovement, ClosedFormKnownValue) {
  // y* = 1, µ = 0, σ = 1 → z = 1, EI = 1·Φ(1) + φ(1).
  const model::Prediction pred{0.0, 1.0};
  const double expected = math::norm_cdf(1.0) + math::norm_pdf(1.0);
  EXPECT_NEAR(expected_improvement(1.0, pred), expected, 1e-12);
}

TEST(ExpectedImprovement, ZeroVarianceDegeneratesToMax) {
  EXPECT_DOUBLE_EQ(expected_improvement(5.0, {3.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(expected_improvement(5.0, {7.0, 0.0}), 0.0);
}

TEST(ExpectedImprovement, NeverNegative) {
  for (double mean : {0.0, 1.0, 5.0, 100.0}) {
    for (double sd : {0.0, 0.1, 1.0, 10.0}) {
      EXPECT_GE(expected_improvement(1.0, {mean, sd}), 0.0);
    }
  }
}

TEST(ExpectedImprovement, IncreasesWithUncertainty) {
  // Same mean above the incumbent: more uncertainty = more improvement
  // potential.
  const double lo = expected_improvement(1.0, {2.0, 0.1});
  const double hi = expected_improvement(1.0, {2.0, 2.0});
  EXPECT_GT(hi, lo);
}

TEST(ExpectedImprovement, IncreasesAsMeanDrops) {
  const double worse = expected_improvement(1.0, {0.9, 0.5});
  const double better = expected_improvement(1.0, {0.2, 0.5});
  EXPECT_GT(better, worse);
}

TEST(ProbWithin, MatchesNormalCdf) {
  const model::Prediction pred{10.0, 2.0};
  EXPECT_NEAR(prob_within(10.0, pred), 0.5, 1e-12);
  EXPECT_NEAR(prob_within(12.0, pred), math::norm_cdf(1.0), 1e-12);
  EXPECT_NEAR(prob_within(8.0, pred), math::norm_cdf(-1.0), 1e-12);
}

TEST(ConstrainedEi, ProductStructure) {
  const model::Prediction pred{0.5, 0.5};
  const double ei = expected_improvement(1.0, pred);
  const double pc = prob_within(0.8, pred);
  EXPECT_NEAR(constrained_ei(1.0, pred, 0.8), ei * pc, 1e-12);
}

TEST(ConstrainedEi, InfeasiblePointScoresNearZero) {
  // Mean far above the feasibility cap → PC ≈ 0 kills the acquisition.
  const model::Prediction pred{100.0, 1.0};
  EXPECT_LT(constrained_ei(200.0, pred, 10.0), 1e-12);
}

TEST(IncumbentCost, CheapestFeasibleWins) {
  std::vector<Sample> samples = {
      {0, 10.0, 5.0, true},
      {1, 10.0, 3.0, true},
      {2, 10.0, 1.0, false},  // cheapest but infeasible
  };
  std::vector<model::Prediction> preds(4);
  EXPECT_DOUBLE_EQ(incumbent_cost(samples, preds, {3}), 3.0);
}

TEST(IncumbentCost, FallbackUsesMaxCostPlusThreeSigma) {
  std::vector<Sample> samples = {
      {0, 10.0, 2.0, false},
      {1, 10.0, 7.0, false},
  };
  std::vector<model::Prediction> preds(4);
  preds[2] = {0.0, 1.5};
  preds[3] = {0.0, 4.0};
  // No feasible sample: y* = 7 + 3·4 = 19.
  EXPECT_DOUBLE_EQ(incumbent_cost(samples, preds, {2, 3}), 19.0);
}

TEST(IncumbentCost, FallbackWithNoUntestedPoints) {
  std::vector<Sample> samples = {{0, 10.0, 2.0, false}};
  std::vector<model::Prediction> preds(1);
  EXPECT_DOUBLE_EQ(incumbent_cost(samples, preds, {}), 2.0);
}

TEST(IncumbentCost, RejectsEmptySampleSet) {
  std::vector<model::Prediction> preds(1);
  EXPECT_THROW((void)incumbent_cost({}, preds, {0}), std::invalid_argument);
}

}  // namespace
}  // namespace lynceus::core

#include "eval/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lynceus::eval {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2U);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, SaveCsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string path = ::testing::TempDir() + "/lynceus_table_test.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(EnsureDirectory, CreatesNestedPath) {
  const std::string dir = ::testing::TempDir() + "/lynceus_dirs/a/b";
  ensure_directory(dir);
  std::ofstream probe(dir + "/file.txt");
  EXPECT_TRUE(probe.good());
}

TEST(PrintCdf, ThinsLongSeries) {
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  std::ostringstream out;
  print_cdf(out, "big cdf", values, 10);
  // Thinning keeps the output bounded.
  std::size_t lines = 0;
  for (char c : out.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_LE(lines, 20U);
  // The final point (cdf = 1.0) is always present.
  EXPECT_NE(out.str().find("1.000"), std::string::npos);
}

TEST(SaveCdfCsv, FullResolution) {
  const std::string path = ::testing::TempDir() + "/lynceus_cdf_test.csv";
  save_cdf_csv(path, {3.0, 1.0, 2.0});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "value,cdf");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3U);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lynceus::eval

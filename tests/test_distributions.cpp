#include "math/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lynceus::math {
namespace {

TEST(NormPdf, KnownValues) {
  EXPECT_NEAR(norm_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(norm_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(norm_pdf(-1.0), norm_pdf(1.0), 1e-15);
}

TEST(NormCdf, KnownValues) {
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(norm_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(norm_cdf(-1.0), 0.15865525393145705, 1e-10);
  EXPECT_NEAR(norm_cdf(1.959963984540054), 0.975, 1e-9);
}

TEST(NormCdf, Symmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 4.0}) {
    EXPECT_NEAR(norm_cdf(x) + norm_cdf(-x), 1.0, 1e-12);
  }
}

TEST(NormCdf, TailsSaturate) {
  EXPECT_NEAR(norm_cdf(10.0), 1.0, 1e-15);
  EXPECT_NEAR(norm_cdf(-10.0), 0.0, 1e-15);
}

TEST(NormQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(norm_cdf(norm_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormQuantile, KnownValues) {
  EXPECT_NEAR(norm_quantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(norm_quantile(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(norm_quantile(0.99), 2.3263478740408408, 1e-7);
}

TEST(NormQuantile, RejectsOutOfDomain) {
  EXPECT_THROW((void)norm_quantile(0.0), std::domain_error);
  EXPECT_THROW((void)norm_quantile(1.0), std::domain_error);
  EXPECT_THROW((void)norm_quantile(-0.5), std::domain_error);
}

TEST(NormalCdf, LocationScale) {
  EXPECT_NEAR(normal_cdf(10.0, 10.0, 3.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(13.0, 10.0, 3.0), norm_cdf(1.0), 1e-12);
}

TEST(NormalCdf, ZeroStddevIsPointMass) {
  EXPECT_EQ(normal_cdf(9.99, 10.0, 0.0), 0.0);
  EXPECT_EQ(normal_cdf(10.0, 10.0, 0.0), 1.0);
  EXPECT_EQ(normal_cdf(10.01, 10.0, 0.0), 1.0);
}

TEST(NormalPdf, IntegratesToOneNumerically) {
  const double mean = 2.0;
  const double sd = 0.5;
  double acc = 0.0;
  const double dx = 0.001;
  for (double x = mean - 6 * sd; x <= mean + 6 * sd; x += dx) {
    acc += normal_pdf(x, mean, sd) * dx;
  }
  EXPECT_NEAR(acc, 1.0, 1e-3);
}

TEST(NormalQuantile, LocationScale) {
  EXPECT_NEAR(normal_quantile(0.5, 7.0, 2.0), 7.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.99, 0.0, 1.0), 2.3263478740408408, 1e-6);
}

TEST(NormCdfGeBoundary, DecidesCdfComparisonExactly) {
  util::Rng rng(17);
  for (double q : {0.5, 0.9, 0.99, 0.999, 0.01}) {
    const double z_star = norm_cdf_ge_boundary(q);
    // Boundary property on adjacent doubles.
    EXPECT_GE(norm_cdf(z_star), q);
    EXPECT_LT(norm_cdf(std::nextafter(z_star, -1e9)), q);
    // Comparing a z-score against the boundary reproduces the cdf
    // comparison on random inputs.
    for (int i = 0; i < 2000; ++i) {
      const double z = rng.uniform(-6.0, 6.0);
      EXPECT_EQ(norm_cdf(z) >= q, z >= z_star) << "q=" << q << " z=" << z;
    }
    // And in the boundary's immediate neighborhood, where it matters most.
    double z = z_star;
    for (int i = 0; i < 64; ++i) z = std::nextafter(z, -1e9);
    for (int i = 0; i < 128; ++i) {
      EXPECT_EQ(norm_cdf(z) >= q, z >= z_star);
      z = std::nextafter(z, 1e9);
    }
  }
  EXPECT_THROW((void)norm_cdf_ge_boundary(0.0), std::domain_error);
  EXPECT_THROW((void)norm_cdf_ge_boundary(1.0), std::domain_error);
}

}  // namespace
}  // namespace lynceus::math

#include "math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace lynceus::math {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  util::Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(FreeFunctions, MeanVarianceStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_THROW((void)mean({}), std::invalid_argument);
}

TEST(Percentile, LinearInterpolationConvention) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50.0), 5.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 90.0), 7.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(EmpiricalCdf, SortedStepFunction) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3U);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].probability, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].probability, 1.0);
}

TEST(FractionAtOrBelow, CountsInclusive) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fraction_at_or_below(xs, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(fraction_at_or_below(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_at_or_below(xs, 3.0), 1.0);
  EXPECT_THROW((void)fraction_at_or_below({}, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace lynceus::math

#include "core/bo.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eval/runner.hpp"
#include "model/gp.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

TEST(BayesianOptimizer, SpendsTheBudget) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  BayesianOptimizer bo;
  const auto result = bo.optimize(problem, runner, 1);
  EXPECT_GE(result.budget_spent, problem.budget);
  EXPECT_GT(result.explorations(), problem.bootstrap_samples);
}

TEST(BayesianOptimizer, NeverRepeatsConfigs) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  BayesianOptimizer bo;
  const auto result = bo.optimize(problem, runner, 2);
  std::set<ConfigId> seen;
  for (const auto& s : result.history) {
    EXPECT_TRUE(seen.insert(s.id).second);
  }
}

TEST(BayesianOptimizer, DeterministicGivenSeed) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  BayesianOptimizer bo;
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto a = bo.optimize(problem, r1, 9);
  const auto b = bo.optimize(problem, r2, 9);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id);
  }
}

TEST(BayesianOptimizer, UsuallyFindsNearOptimalOnEasySurface) {
  const auto ds = testing::tiny_dataset();
  // High budget (b=5): enough explorations that BO should home in on the
  // bowl's minimum most of the time.
  const auto problem = testing::tiny_problem(5.0);
  BayesianOptimizer bo;
  int good = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    eval::TableRunner runner(ds);
    const auto result = bo.optimize(problem, runner, 100 + t);
    ASSERT_TRUE(result.recommendation.has_value());
    const double c = ds.cost(*result.recommendation) / ds.optimal_cost();
    if (c <= 1.7) ++good;
  }
  EXPECT_GE(good, trials * 2 / 3);
}

TEST(BayesianOptimizer, CountsDecisions) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  BayesianOptimizer bo;
  const auto result = bo.optimize(problem, runner, 3);
  EXPECT_EQ(result.decisions,
            result.explorations() - problem.bootstrap_samples);
  EXPECT_GT(result.decision_seconds, 0.0);
}

TEST(BayesianOptimizer, EiStopHaltsEarly) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.budget = 1e9;
  BoOptions opts;
  opts.ei_stop_fraction = 0.10;  // CherryPick's 10% rule
  BayesianOptimizer bo(opts);
  eval::TableRunner runner(ds);
  const auto result = bo.optimize(problem, runner, 4);
  // With an effectively unlimited budget the EI threshold must fire before
  // the whole space is enumerated.
  EXPECT_LT(result.explorations(), problem.space->size());
}

TEST(BayesianOptimizer, WorksWithGpModel) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  BoOptions opts;
  opts.model_factory = [] {
    return std::make_unique<model::GaussianProcess>();
  };
  BayesianOptimizer bo(opts);
  eval::TableRunner runner(ds);
  const auto result = bo.optimize(problem, runner, 5);
  ASSERT_TRUE(result.recommendation.has_value());
  EXPECT_GT(result.explorations(), problem.bootstrap_samples);
}

TEST(BayesianOptimizer, ObserverSeesAllPhases) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TraceRecorder trace;
  BoOptions opts;
  opts.observer = &trace;
  BayesianOptimizer bo(opts);
  eval::TableRunner runner(ds);
  const auto result = bo.optimize(problem, runner, 6);
  EXPECT_EQ(trace.bootstrap_samples().size(), problem.bootstrap_samples);
  EXPECT_EQ(trace.decisions().size(), result.decisions);
  EXPECT_EQ(trace.runs().size(), result.decisions);
  EXPECT_EQ(trace.stop_reason(), "budget depleted");
  for (std::size_t i = 0; i < trace.decisions().size(); ++i) {
    EXPECT_EQ(trace.decisions()[i].chosen, trace.runs()[i].id);
    EXPECT_EQ(trace.decisions()[i].simulated_roots, 0U);  // no lookahead
  }
}

TEST(CherrypickSpec, GpModelWithEiStop) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.budget = 1e9;  // only the EI rule can stop it
  const auto spec = eval::cherrypick_spec();
  EXPECT_EQ(spec.label, "CherryPick");
  eval::TableRunner runner(ds);
  const auto result = spec.make()->optimize(problem, runner, 8);
  ASSERT_TRUE(result.recommendation.has_value());
  EXPECT_LT(result.explorations(), problem.space->size());
}

TEST(DefaultTreeModelFactory, ProducesPaperEnsemble) {
  const auto sp = testing::tiny_space();
  const auto factory = default_tree_model_factory(*sp);
  const auto model = factory();
  const auto* bagging = dynamic_cast<model::BaggingEnsemble*>(model.get());
  ASSERT_NE(bagging, nullptr);
  EXPECT_EQ(bagging->options().trees, 10U);  // paper §5.2
  EXPECT_EQ(bagging->options().tree.features_per_split,
            model::BaggingOptions::weka_features_per_split(sp->dim_count()));
}

}  // namespace
}  // namespace lynceus::core

/// Tests for the unified session surface (service/session_spec.hpp):
/// JSON codec round trips with bit-exact doubles, structural validation,
/// the non-serializable corners, and shim equivalence — a session opened
/// through the legacy per-optimizer overload must follow the exact same
/// trajectory as one opened from the equivalent SessionSpec, because the
/// overloads are now one-line shims over open_session().

#include "service/session_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "eval/runner.hpp"
#include "service/tuning_service.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace lynceus::service {
namespace {

using core::OptimizerResult;

TEST(SessionSpec, JsonRoundTripPreservesEveryDeclarativeField) {
  SessionSpec spec;
  spec.optimizer = "lynceus";
  spec.seed = 123456789ULL;
  spec.problem_ref = ProblemRef{"scout", "spark-pagerank", 2.5};
  spec.lookahead = 3;
  spec.gh_points = 5;
  // Deliberately awkward doubles: the codec must round-trip bits, not
  // decimal renderings.
  spec.gamma = 0.1 + 0.2;
  spec.feasibility_quantile = std::nextafter(0.99, 1.0);
  spec.screen_width = 36;
  spec.ei_stop_fraction = 1e-17;
  spec.incremental_refit = true;
  spec.branch_parallel = true;
  spec.blacklist_failed = false;
  RunPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_seconds = 1.5;
  policy.backoff_multiplier = 2.25;
  policy.run_timeout_seconds = 600.0;
  policy.timeout_tmax_factor = 1.75;
  policy.quarantine_after = 4;
  spec.run_policy = policy;

  const SessionSpec back = SessionSpec::from_json(spec.to_json());
  EXPECT_EQ(back.optimizer, spec.optimizer);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.problem_ref.suite, "scout");
  EXPECT_EQ(back.problem_ref.job, "spark-pagerank");
  EXPECT_EQ(back.problem_ref.budget_multiplier, 2.5);
  EXPECT_EQ(back.lookahead, spec.lookahead);
  EXPECT_EQ(back.gh_points, spec.gh_points);
  EXPECT_EQ(back.gamma, spec.gamma);  // bit-exact
  EXPECT_EQ(back.feasibility_quantile, spec.feasibility_quantile);
  EXPECT_EQ(back.screen_width, spec.screen_width);
  EXPECT_EQ(back.ei_stop_fraction, spec.ei_stop_fraction);
  EXPECT_EQ(back.incremental_refit, spec.incremental_refit);
  EXPECT_EQ(back.branch_parallel, spec.branch_parallel);
  EXPECT_EQ(back.blacklist_failed, spec.blacklist_failed);
  ASSERT_TRUE(back.run_policy.has_value());
  EXPECT_EQ(back.run_policy->max_attempts, 3U);
  EXPECT_EQ(back.run_policy->backoff_base_seconds, 1.5);
  EXPECT_EQ(back.run_policy->backoff_multiplier, 2.25);
  EXPECT_EQ(back.run_policy->run_timeout_seconds, 600.0);
  EXPECT_EQ(back.run_policy->timeout_tmax_factor, 1.75);
  EXPECT_EQ(back.run_policy->quarantine_after, 4U);
  // The round trip is a fixed point: serializing again yields the same
  // bytes, so snapshot/wire equality checks can compare strings.
  EXPECT_EQ(back.to_json(), spec.to_json());
}

TEST(SessionSpec, RunPolicyInfiniteTimeoutEncodedByOmission) {
  SessionSpec spec;
  spec.run_policy = RunPolicy{};  // inert default, +inf timeout
  const std::string json = spec.to_json();
  EXPECT_EQ(json.find("run_timeout_seconds"), std::string::npos);
  const SessionSpec back = SessionSpec::from_json(json);
  ASSERT_TRUE(back.run_policy.has_value());
  EXPECT_TRUE(std::isinf(back.run_policy->run_timeout_seconds));
}

TEST(SessionSpec, MultiConstraintDefaultsLookaheadToOne) {
  // MultiConstraintOptions defaults lookahead to 1 (vs lynceus's 2); a
  // wire spec omitting the knob must land on the kind's default.
  const SessionSpec spec = SessionSpec::from_json(std::string(
      R"({"optimizer":"multi_constraint","seed":7,)"
      R"("constraints":[{"name":"energy","metric_index":1,"threshold":25.0}]})"));
  EXPECT_EQ(spec.lookahead, 1U);
  ASSERT_EQ(spec.constraints.size(), 1U);
  EXPECT_EQ(spec.constraints[0].name, "energy");
  EXPECT_EQ(spec.constraints[0].metric_index, 1U);
  EXPECT_EQ(spec.constraints[0].threshold, 25.0);
}

TEST(SessionSpec, ValidateRejectsStructuralNonsense) {
  SessionSpec spec;
  spec.optimizer = "gradient_descent";
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec.optimizer = "multi_constraint";
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no constraints

  spec.optimizer = "lynceus";
  ConstraintSpec c;
  c.name = "energy";
  spec.constraints.push_back(c);
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // wrong kind
  spec.constraints.clear();

  RunPolicy bad;
  bad.max_attempts = 0;
  spec.run_policy = bad;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SessionSpec, FunctionalThresholdRefusesToSerialize) {
  SessionSpec spec;
  spec.optimizer = "multi_constraint";
  ConstraintSpec c;
  c.name = "energy";
  c.threshold_fn = [](core::ConfigId) { return 26.0; };
  spec.constraints.push_back(c);
  EXPECT_THROW((void)spec.to_json(), std::invalid_argument);
}

TEST(SessionSpec, RejectsForeignFormatTag) {
  EXPECT_THROW(
      (void)SessionSpec::from_json(
          std::string(R"({"format":"something-else","version":1,)"
                      R"("optimizer":"random","seed":1})")),
      std::runtime_error);
}

TEST(SessionSpec, WrongKindOptionAccessorsThrow) {
  SessionSpec spec = {};
  spec.optimizer = "bo";
  EXPECT_THROW((void)spec.lynceus_options(), std::invalid_argument);
  EXPECT_THROW((void)spec.multi_constraint_options(), std::invalid_argument);
  EXPECT_NO_THROW((void)spec.bo_options());
}

void expect_identical(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "step " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost);
  }
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.decisions, b.decisions);
}

void pump(TuningService& service, eval::AsyncTableRunner& async) {
  while (true) {
    for (const PendingRun& run : service.next_runs()) {
      async.submit(run.session, run.config);
    }
    const auto completion = async.next_completion();
    if (!completion.has_value()) return;
    service.tell(completion->tag, completion->config, completion->result);
  }
}

TEST(SessionSpec, LegacyShimsAndOpenSessionProduceIdenticalTrajectories) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  core::LynceusOptions lopts;
  lopts.lookahead = 1;
  lopts.incremental_refit = false;

  TuningService service;
  eval::AsyncTableRunner async(ds);
  const SessionId via_shim = service.open_lynceus(problem, lopts, 41);
  SessionSpec spec = SessionSpec::lynceus(problem, lopts, 41);
  const SessionId via_spec = service.open_session(spec);
  // A spec that went through the JSON codec (as a wire frame would) must
  // land on the same trajectory as the in-process one.
  SessionSpec wire = SessionSpec::from_json(spec.to_json());
  wire.problem = &problem;
  const SessionId via_wire = service.open_session(wire);
  pump(service, async);

  ASSERT_TRUE(service.finished(via_shim));
  ASSERT_TRUE(service.finished(via_spec));
  ASSERT_TRUE(service.finished(via_wire));
  expect_identical(service.result(via_spec), service.result(via_shim));
  expect_identical(service.result(via_wire), service.result(via_shim));
}

TEST(SessionSpec, OpenSessionWithoutProblemThrows) {
  TuningService service;
  SessionSpec spec;
  spec.optimizer = "random";
  EXPECT_THROW((void)service.open_session(spec), std::invalid_argument);
}

}  // namespace
}  // namespace lynceus::service

#pragma once

/// Shared fixtures for the optimizer and harness tests: a small synthetic
/// dataset with a known cost surface, cheap enough that full Lynceus runs
/// (including lookahead) complete in milliseconds.

#include <cmath>
#include <memory>

#include "cloud/dataset.hpp"
#include "core/types.hpp"
#include "eval/experiment.hpp"

namespace lynceus::testing {

/// 4 x 6 grid (24 configs). Runtime surface: a bowl with its minimum at
/// (a=2, b=1); unit prices grow with b. Roughly half the configurations
/// violate the derived (median) deadline.
inline std::shared_ptr<const space::ConfigSpace> tiny_space() {
  return std::make_shared<space::ConfigSpace>(
      "tinybowl", std::vector<space::ParamDomain>{
                      space::numeric_param("a", {0, 1, 2, 3}),
                      space::numeric_param("b", {0, 1, 2, 3, 4, 5})});
}

inline cloud::Dataset tiny_dataset() {
  auto sp = tiny_space();
  std::vector<cloud::Observation> obs(sp->size());
  for (std::size_t i = 0; i < sp->size(); ++i) {
    const auto id = static_cast<space::ConfigId>(i);
    const double a = sp->value(id, 0);
    const double b = sp->value(id, 1);
    cloud::Observation o;
    o.runtime_seconds =
        60.0 + 40.0 * ((a - 2.0) * (a - 2.0) + 0.5 * (b - 1.0) * (b - 1.0));
    o.unit_price_per_hour = 10.0 + 6.0 * b;
    obs[i] = o;
  }
  return cloud::Dataset("tinybowl", std::move(sp), std::move(obs));
}

/// Problem with the paper's defaults (N from the 3%-or-dims rule,
/// B = N·m̃·b).
inline core::OptimizationProblem tiny_problem(double b = 3.0) {
  static const cloud::Dataset ds = tiny_dataset();
  return eval::make_problem(ds, b);
}

}  // namespace lynceus::testing

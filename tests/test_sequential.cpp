#include "core/sequential.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

TEST(LoopState, BootstrapProfilesNDistinctConfigs) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 7);
  st.bootstrap();
  EXPECT_EQ(st.samples.size(), problem.bootstrap_samples);
  std::set<ConfigId> ids;
  for (const auto& s : st.samples) ids.insert(s.id);
  EXPECT_EQ(ids.size(), problem.bootstrap_samples);
  EXPECT_EQ(st.untested.size(), problem.space->size() - ids.size());
}

TEST(LoopState, SameSeedSameBootstrap) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  LoopState a(problem, r1, 11);
  LoopState b(problem, r2, 11);
  a.bootstrap();
  b.bootstrap();
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].id, b.samples[i].id);
  }
}

TEST(LoopState, ProfileUpdatesBudgetAndFeasibility) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  const auto& s = st.profile(0);
  EXPECT_EQ(s.id, 0U);
  EXPECT_NEAR(st.budget.spent(), ds.cost(0), 1e-12);
  EXPECT_EQ(s.feasible, ds.feasible(0));
  EXPECT_EQ(st.tested[0], 1);
}

TEST(LoopState, ProfileRejectsRepeatedConfig) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  (void)st.profile(5);
  EXPECT_THROW((void)st.profile(5), std::logic_error);
}

TEST(LoopState, FinalizePicksCheapestFeasible) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  // Profile a mix; the recommendation must be the cheapest feasible one.
  for (ConfigId id : {0U, 6U, 7U, 13U, 23U}) (void)st.profile(id);
  const auto result = st.finalize();
  ASSERT_TRUE(result.recommendation.has_value());
  double best = 1e300;
  ConfigId best_id = 0;
  for (const auto& s : st.samples) {
    if (s.feasible && s.cost < best) {
      best = s.cost;
      best_id = s.id;
    }
  }
  EXPECT_TRUE(result.recommendation_feasible);
  EXPECT_EQ(*result.recommendation, best_id);
  EXPECT_EQ(result.history.size(), 5U);
  EXPECT_NEAR(result.budget_spent, st.budget.spent(), 1e-12);
}

TEST(LoopState, FinalizeFallsBackToCheapestWhenNothingFeasible) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.tmax_seconds = 1.0;  // nothing satisfies this deadline
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  (void)st.profile(2);
  (void)st.profile(9);
  const auto result = st.finalize();
  ASSERT_TRUE(result.recommendation.has_value());
  EXPECT_FALSE(result.recommendation_feasible);
  EXPECT_EQ(*result.recommendation,
            ds.cost(2) <= ds.cost(9) ? 2U : 9U);
}

TEST(DecisionTimer, AccumulatesIntervals) {
  DecisionTimer timer;
  timer.start();
  timer.stop();
  timer.start();
  timer.stop();
  EXPECT_EQ(timer.count(), 2U);
  EXPECT_GE(timer.total_seconds(), 0.0);
  OptimizerResult r;
  timer.write_to(r);
  EXPECT_EQ(r.decisions, 2U);
}

TEST(DecisionTimer, StopWithoutStartThrows) {
  DecisionTimer timer;
  EXPECT_THROW(timer.stop(), std::logic_error);
}

TEST(LoopState, RecordFailureBillsBudgetAndBlacklists) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  (void)st.profile(5);

  RunResult failed;
  failed.outcome = RunOutcome::kFailed;
  failed.cost = 0.25;
  st.record_failure(7, failed);
  ASSERT_EQ(st.failures.size(), 1U);
  EXPECT_EQ(st.failures[0].id, 7U);
  EXPECT_EQ(st.failures[0].cost, 0.25);
  EXPECT_EQ(st.failures[0].after_samples, 1U);
  EXPECT_EQ(st.samples.size(), 1U);  // a failure is not a sample
  EXPECT_NEAR(st.budget.spent(), ds.cost(5) + 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(st.budget.failed_spent(), 0.25);
  EXPECT_EQ(st.tested[7], 1);  // blacklisted by default

  const OptimizerResult out = st.finalize();
  ASSERT_EQ(out.failures.size(), 1U);
  EXPECT_EQ(out.budget_spent_on_failures, 0.25);
}

TEST(LoopState, BlacklistOffKeepsFailedConfigRetryable) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  st.blacklist_failed = false;
  RunResult failed;
  failed.outcome = RunOutcome::kFailed;
  failed.cost = 0.1;
  st.record_failure(7, failed);
  EXPECT_EQ(st.tested[7], 0);  // still proposable
  (void)st.profile(7);         // and a later attempt can succeed
  EXPECT_EQ(st.samples.back().id, 7U);
}

TEST(LoopState, RecordRejectsFailedResults) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  RunResult failed;
  failed.outcome = RunOutcome::kFailed;
  EXPECT_THROW((void)st.record(4, failed), std::logic_error);
  RunResult ok;
  EXPECT_THROW(st.record_failure(4, ok), std::logic_error);  // not failed
  st.record_failure(4, failed);
  EXPECT_THROW(st.record_failure(4, failed), std::logic_error);  // tested
}

TEST(LoopState, RestoreFailureRebuildsLedgerWithoutBilling) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  FailureRecord f;
  f.id = 9;
  f.cost = 0.4;
  f.after_samples = 0;
  st.restore_failure(f);
  ASSERT_EQ(st.failures.size(), 1U);
  EXPECT_EQ(st.tested[9], 1);
  // Restore rebuilds bookkeeping only; the budget ledger is restored
  // separately via Budget::set_spent.
  EXPECT_DOUBLE_EQ(st.budget.spent(), 0.0);
}

TEST(LoopState, CensoredRunsRecordInfeasibleSamples) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  RunResult r;
  r.outcome = RunOutcome::kTimedOut;
  r.timed_out = true;
  r.runtime_seconds = 1.0;  // censored at a cap far below Tmax
  r.cost = 0.01;
  const Sample& s = st.record(2, r);
  EXPECT_FALSE(s.feasible);  // censored, however short the cap
  EXPECT_TRUE(st.failures.empty());
}

}  // namespace
}  // namespace lynceus::core

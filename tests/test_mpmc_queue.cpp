/// Unit + stress coverage for util::MpmcQueue (the throughput scheduler's
/// run queue). The stress tests are the payload of the `concurrency` ctest
/// label: under -fsanitize=thread they turn any ordering bug in the
/// sequence-number protocol into a hard CI failure.

#include "util/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace lynceus::util {
namespace {

TEST(MpmcQueue, SingleThreadedFifoAndEmptyFull) {
  MpmcQueue<int> q(3);  // rounds up to 4
  EXPECT_EQ(q.capacity(), 4U);
  int out = 0;
  EXPECT_FALSE(q.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(q.try_pop(out));  // empty again
  // The ring wraps: a second lap works identically.
  for (int i = 10; i < 14; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, FailedPushDoesNotConsumeMoveOnlyValue) {
  MpmcQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(q.try_push(std::make_unique<int>(2)));
  auto keep = std::make_unique<int>(3);
  EXPECT_FALSE(q.try_push(std::move(keep)));
  ASSERT_NE(keep, nullptr);  // only moved from on success
  EXPECT_EQ(*keep, 3);
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(q.try_push(std::move(keep)));
  EXPECT_EQ(keep, nullptr);
}

/// N producers × M consumers hammer one small queue (so full/empty paths
/// and ring wrap-around are hit constantly). Checks: no element lost or
/// duplicated, and per-producer FIFO order is preserved.
void mpmc_stress(std::size_t producers, std::size_t consumers,
                 std::uint64_t per_producer, std::size_t capacity) {
  MpmcQueue<std::uint64_t> q(capacity);
  std::atomic<std::size_t> producers_done{0};
  std::vector<std::vector<std::uint64_t>> consumed(consumers);

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Backoff backoff;
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        // Encode (producer, sequence) so consumers can check both global
        // conservation and per-producer ordering.
        const std::uint64_t item = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(std::uint64_t{item})) backoff.spin();
        backoff.reset();
      }
      producers_done.fetch_add(1);
    });
  }
  for (std::size_t c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      Backoff backoff;
      std::uint64_t item = 0;
      for (;;) {
        if (q.try_pop(item)) {
          consumed[c].push_back(item);
          backoff.reset();
          continue;
        }
        if (producers_done.load() == producers) {
          // Producers are done; one final drain settles the race where
          // the last pushes landed after our failed pop.
          while (q.try_pop(item)) consumed[c].push_back(item);
          return;
        }
        backoff.spin();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& v : consumed) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), producers * per_producer);
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "duplicate element popped";
  // Per-producer FIFO within each consumer's stream (a consumer may see
  // gaps — other consumers got those — but never reordering).
  for (const auto& v : consumed) {
    std::vector<std::uint64_t> last_seq(producers, 0);
    std::vector<bool> seen(producers, false);
    for (const std::uint64_t item : v) {
      const std::size_t p = static_cast<std::size_t>(item >> 32);
      const std::uint64_t seq = item & 0xffffffffULL;
      if (seen[p]) EXPECT_GT(seq, last_seq[p]);
      last_seq[p] = seq;
      seen[p] = true;
    }
  }
}

TEST(MpmcQueue, StressManyProducersManyConsumers) {
  mpmc_stress(4, 4, 20000, 64);
}

TEST(MpmcQueue, StressTinyCapacityMaximizesContention) {
  mpmc_stress(3, 2, 10000, 2);
}

TEST(MpmcQueue, StressSingleProducerManyConsumers) {
  mpmc_stress(1, 4, 40000, 16);
}

}  // namespace
}  // namespace lynceus::util

#include "model/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lynceus::model {
namespace {

space::ConfigSpace grid_space(std::size_t a_levels, std::size_t b_levels) {
  std::vector<double> a(a_levels);
  std::vector<double> b(b_levels);
  for (std::size_t i = 0; i < a_levels; ++i) a[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < b_levels; ++i) b[i] = static_cast<double>(i);
  return space::ConfigSpace("grid", {space::numeric_param("a", a),
                                     space::numeric_param("b", b)});
}

TEST(DecisionTree, FitsConstantTarget) {
  const auto sp = grid_space(4, 4);
  const FeatureMatrix fm(sp);
  DecisionTree tree;
  util::Rng rng(1);
  std::vector<std::uint32_t> rows = {0, 3, 7, 12};
  std::vector<double> y = {5.0, 5.0, 5.0, 5.0};
  tree.fit(fm, rows, y, rng);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_DOUBLE_EQ(tree.predict(fm, r), 5.0);
  }
  EXPECT_EQ(tree.node_count(), 1U);  // no split gains anything
}

TEST(DecisionTree, LearnsAxisAlignedStep) {
  // y = 10 if a >= 2 else 0: one split on feature a suffices.
  const auto sp = grid_space(4, 4);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    rows.push_back(r);
    y.push_back(fm.code(r, 0) >= 2 ? 10.0 : 0.0);
  }
  DecisionTree tree;
  util::Rng rng(2);
  tree.fit(fm, rows, y, rng);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_DOUBLE_EQ(tree.predict(fm, r), fm.code(r, 0) >= 2 ? 10.0 : 0.0);
  }
}

TEST(DecisionTree, InterpolatesTrainingDataExactlyWhenFullyGrown) {
  const auto sp = grid_space(5, 5);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(3);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    rows.push_back(r);
    y.push_back(noise.normal());  // distinct random targets
  }
  DecisionTree tree;
  util::Rng rng(4);
  tree.fit(fm, rows, y, rng);
  // All 25 cells distinct → a fully grown tree reproduces each target.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(tree.predict(fm, rows[i]), y[i], 1e-6);
  }
}

TEST(DecisionTree, MaxDepthLimitsGrowth) {
  const auto sp = grid_space(8, 8);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  util::Rng noise(5);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    rows.push_back(r);
    y.push_back(noise.normal());
  }
  TreeOptions opts;
  opts.max_depth = 2;
  DecisionTree tree(opts);
  util::Rng rng(6);
  tree.fit(fm, rows, y, rng);
  EXPECT_LE(tree.depth(), 2U);
  EXPECT_LE(tree.node_count(), 7U);  // at most 2^3 - 1 nodes at depth 2
}

TEST(DecisionTree, MinSamplesSplitStopsEarly) {
  const auto sp = grid_space(4, 4);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows = {0, 5, 10, 15};
  std::vector<double> y = {0.0, 1.0, 2.0, 3.0};
  TreeOptions opts;
  opts.min_samples_split = 100;  // never split
  DecisionTree tree(opts);
  util::Rng rng(7);
  tree.fit(fm, rows, y, rng);
  EXPECT_EQ(tree.node_count(), 1U);
  EXPECT_DOUBLE_EQ(tree.predict(fm, 0), 1.5);
}

TEST(DecisionTree, FeatureSubsetStillLearns) {
  const auto sp = grid_space(6, 6);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    rows.push_back(r);
    y.push_back(static_cast<double>(fm.code(r, 0)) * 2.0 +
                static_cast<double>(fm.code(r, 1)));
  }
  TreeOptions opts;
  opts.features_per_split = 1;
  DecisionTree tree(opts);
  util::Rng rng(8);
  tree.fit(fm, rows, y, rng);
  // Random single-feature splits can still fit additive targets well.
  double sse = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double e = tree.predict(fm, rows[i]) - y[i];
    sse += e * e;
  }
  EXPECT_LT(std::sqrt(sse / static_cast<double>(rows.size())), 1.5);
}

TEST(DecisionTree, RepeatedRowsSupported) {
  const auto sp = grid_space(3, 3);
  const FeatureMatrix fm(sp);
  // Bootstrap-style repeated rows with consistent targets.
  std::vector<std::uint32_t> rows = {0, 0, 0, 8, 8, 8};
  std::vector<double> y = {1.0, 1.0, 1.0, 9.0, 9.0, 9.0};
  DecisionTree tree;
  util::Rng rng(9);
  tree.fit(fm, rows, y, rng);
  EXPECT_DOUBLE_EQ(tree.predict(fm, 0), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(fm, 8), 9.0);
}

TEST(DecisionTree, Validation) {
  const auto sp = grid_space(2, 2);
  const FeatureMatrix fm(sp);
  DecisionTree tree;
  util::Rng rng(10);
  EXPECT_THROW(tree.fit(fm, {}, {}, rng), std::invalid_argument);
  EXPECT_THROW(tree.fit(fm, {0}, {1.0, 2.0}, rng), std::invalid_argument);
  EXPECT_THROW((void)tree.predict(fm, 0), std::logic_error);
}

TEST(DecisionTree, LeafStatsExposeWithinLeafVariance) {
  const auto sp = grid_space(2, 2);
  const FeatureMatrix fm(sp);
  // Force a single leaf holding targets {1, 3} (no split possible: both
  // samples share the same cell).
  std::vector<std::uint32_t> rows = {0, 0};
  std::vector<double> y = {1.0, 3.0};
  DecisionTree tree;
  util::Rng rng(12);
  tree.fit(fm, rows, y, rng);
  const auto stats = tree.predict_stats(fm, 0);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.variance, 1.0);  // biased variance of {1, 3}
}

TEST(DecisionTree, PureLeavesHaveZeroVariance) {
  const auto sp = grid_space(3, 3);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows = {0, 4, 8};
  std::vector<double> y = {1.0, 2.0, 3.0};
  DecisionTree tree;
  util::Rng rng(13);
  tree.fit(fm, rows, y, rng);
  for (std::uint32_t r : rows) {
    EXPECT_DOUBLE_EQ(tree.predict_stats(fm, r).variance, 0.0);
  }
}

TEST(DecisionTree, SingleSampleGivesConstantLeaf) {
  const auto sp = grid_space(2, 2);
  const FeatureMatrix fm(sp);
  DecisionTree tree;
  util::Rng rng(11);
  tree.fit(fm, {2}, {7.5}, rng);
  for (std::uint32_t r = 0; r < fm.rows(); ++r) {
    EXPECT_DOUBLE_EQ(tree.predict(fm, r), 7.5);
  }
}

}  // namespace
}  // namespace lynceus::model

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lynceus::util {
namespace {

TEST(JsonEscape, QuotesAndControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "\"plain\"");
  EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_escape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_escape("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("cnn");
  w.key("runs").value(std::int64_t{40});
  w.key("mean").value(1.06);
  w.key("ok").value(true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"cnn","runs":40,"mean":1.06,"ok":true,"missing":null})");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object();
  w.key("series").begin_array();
  for (int i = 0; i < 3; ++i) w.value(i);
  w.end_array();
  w.key("child").begin_object();
  w.key("x").value(2.5);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"series":[0,1,2],"child":{"x":2.5}})");
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.begin_array();
  w.value("a");
  w.value("b");
  w.end_array();
  EXPECT_EQ(w.str(), R"(["a","b"])");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // wrong close
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.key("k2"), std::logic_error);  // duplicate key call
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // incomplete
  }
  {
    JsonWriter w;
    w.value(1.0);
    EXPECT_THROW(w.value(2.0), std::logic_error);  // after completion
  }
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("empty_arr").begin_array();
  w.end_array();
  w.key("empty_obj").begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"empty_arr":[],"empty_obj":{}})");
}

}  // namespace
}  // namespace lynceus::util

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

namespace lynceus::util {
namespace {

TEST(JsonEscape, QuotesAndControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "\"plain\"");
  EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_escape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_escape("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("cnn");
  w.key("runs").value(std::int64_t{40});
  w.key("mean").value(1.06);
  w.key("ok").value(true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"cnn","runs":40,"mean":1.06,"ok":true,"missing":null})");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object();
  w.key("series").begin_array();
  for (int i = 0; i < 3; ++i) w.value(i);
  w.end_array();
  w.key("child").begin_object();
  w.key("x").value(2.5);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"series":[0,1,2],"child":{"x":2.5}})");
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.begin_array();
  w.value("a");
  w.value("b");
  w.end_array();
  EXPECT_EQ(w.str(), R"(["a","b"])");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // wrong close
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.key("k2"), std::logic_error);  // duplicate key call
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // incomplete
  }
  {
    JsonWriter w;
    w.value(1.0);
    EXPECT_THROW(w.value(2.0), std::logic_error);  // after completion
  }
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("empty_arr").begin_array();
  w.end_array();
  w.key("empty_obj").begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"empty_arr":[],"empty_obj":{}})");
}

TEST(JsonParser, ParsesScalarsAndContainers) {
  const auto v = parse_json(
      R"({"a": 1, "b": -2.5e3, "s": "x\ny", "t": true, "f": false,)"
      R"( "n": null, "arr": [1, 2, 3], "obj": {"k": "v"}})");
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("a").as_uint(), 1U);
  EXPECT_DOUBLE_EQ(v.at("b").as_double(), -2500.0);
  EXPECT_EQ(v.at("s").as_string(), "x\ny");
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  ASSERT_EQ(v.at("arr").size(), 3U);
  EXPECT_EQ(v.at("arr").at(1).as_int(), 2);
  EXPECT_EQ(v.at("obj").at("k").as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_json("{"), std::runtime_error);
  EXPECT_THROW((void)parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)parse_json("tru"), std::runtime_error);
  EXPECT_THROW((void)parse_json("1 2"), std::runtime_error);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)parse_json("01a"), std::runtime_error);
}

TEST(JsonParser, TypeMismatchesThrow) {
  const auto v = parse_json(R"({"s": "x", "n": 1})");
  EXPECT_THROW((void)v.at("s").as_int(), std::runtime_error);
  EXPECT_THROW((void)v.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)v.at("n").at(0), std::runtime_error);
  EXPECT_THROW((void)parse_json("-1").as_uint(), std::runtime_error);
  EXPECT_THROW((void)parse_json("1.5").as_int(), std::runtime_error);
}

TEST(JsonParser, ExactDoubleRoundTrip) {
  // value_exact → parse → as_double must be bit-identical, including
  // values %.12g would truncate.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           6.02214076e23,
                           -2.2250738585072014e-308,
                           123456.78901234567,
                           0.0};
  for (const double x : values) {
    JsonWriter w;
    w.begin_array();
    w.value_exact(x);
    w.end_array();
    const auto v = parse_json(w.str());
    const double back = v.at(std::size_t{0}).as_double();
    EXPECT_EQ(std::memcmp(&back, &x, sizeof x), 0) << x;
  }
}

TEST(JsonParser, ExactUint64RoundTrip) {
  // Full-width 64-bit integers (RNG words) must not round through double.
  const std::uint64_t values[] = {0ULL, 1ULL, 0xFFFFFFFFFFFFFFFFULL,
                                  0x8000000000000000ULL,
                                  1234567890123456789ULL};
  for (const std::uint64_t x : values) {
    JsonWriter w;
    w.begin_array();
    w.value(x);
    w.end_array();
    EXPECT_EQ(parse_json(w.str()).at(std::size_t{0}).as_uint(), x);
  }
}

TEST(JsonParser, BoundsNestingDepthInsteadOfOverflowingTheStack) {
  // A corrupt/hostile snapshot must surface as a parse error, not a
  // segfault: 100k nested arrays stay far beyond the 256-level bound.
  const std::string deep(100000, '[');
  EXPECT_THROW((void)parse_json(deep), std::runtime_error);
  // Moderate (<= 256) nesting still parses.
  std::string ok;
  for (int i = 0; i < 100; ++i) ok += '[';
  ok += '1';
  for (int i = 0; i < 100; ++i) ok += ']';
  EXPECT_EQ(parse_json(ok).size(), 1U);
}

TEST(JsonWriter, ValueExactRejectsNonFiniteValues) {
  JsonWriter w;
  w.begin_array();
  EXPECT_THROW(w.value_exact(std::nan("")), std::invalid_argument);
  EXPECT_THROW(w.value_exact(HUGE_VAL), std::invalid_argument);
  // The plain writer still degrades to null for bench output.
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonParser, RoundTripsWriterEscapes) {
  JsonWriter w;
  w.begin_object();
  w.key("weird \"key\"\t").value("line1\nline2\\end\x01");
  w.end_object();
  const auto v = parse_json(w.str());
  EXPECT_EQ(v.at("weird \"key\"\t").as_string(), "line1\nline2\\end\x01");
}

}  // namespace
}  // namespace lynceus::util

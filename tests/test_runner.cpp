#include "eval/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "test_helpers.hpp"

namespace lynceus::eval {
namespace {

TEST(TableRunner, ReplaysDatasetValues) {
  const auto ds = testing::tiny_dataset();
  TableRunner runner(ds);
  const auto r = runner.run(3);
  EXPECT_DOUBLE_EQ(r.runtime_seconds, ds.runtime(3));
  EXPECT_DOUBLE_EQ(r.cost, ds.cost(3));
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_EQ(runner.runs_served(), 1U);
}

TEST(TableRunner, MetricsFunctionInvoked) {
  const auto ds = testing::tiny_dataset();
  TableRunner runner(ds, [](space::ConfigId id) {
    return std::vector<double>{static_cast<double>(id) * 2.0};
  });
  const auto r = runner.run(4);
  ASSERT_EQ(r.metrics.size(), 1U);
  EXPECT_DOUBLE_EQ(r.metrics[0], 8.0);
}

TEST(FaultPlan, ValidatesRatesAndFactor) {
  FaultPlan plan;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.active());
  plan.fail_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.fail_rate = 0.5;
  EXPECT_TRUE(plan.active());
  plan.straggler_factor = 0.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultInjectingRunner, InactivePlanLeavesRunsUntouched) {
  const auto ds = testing::tiny_dataset();
  TableRunner plain(ds);
  TableRunner inner(ds);
  FaultInjectingRunner faulty(inner, FaultPlan{});
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    const auto a = plain.run(id);
    const auto b = faulty.run(id);
    EXPECT_EQ(a.runtime_seconds, b.runtime_seconds);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_TRUE(b.ok());
  }
}

TEST(FaultInjectingRunner, CertainFailureBillsPartialCost) {
  const auto ds = testing::tiny_dataset();
  TableRunner inner(ds);
  FaultPlan plan;
  plan.seed = 7;
  plan.fail_rate = 1.0;
  FaultInjectingRunner faulty(inner, plan);
  const auto r = faulty.run(3);
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.censored());
  // The crash happens at a uniform fraction of the runtime; the partial
  // bill scales with the elapsed fraction.
  EXPECT_GT(ds.runtime(3), r.runtime_seconds);
  EXPECT_GT(ds.cost(3), r.cost);
  EXPECT_GE(r.cost, 0.0);
  EXPECT_DOUBLE_EQ(r.cost / ds.cost(3), r.runtime_seconds / ds.runtime(3));
  EXPECT_TRUE(r.metrics.empty());
}

TEST(FaultInjectingRunner, ReplayIsByteDeterministic) {
  const auto ds = testing::tiny_dataset();
  FaultPlan plan;
  plan.seed = 42;
  plan.fail_rate = 0.4;
  plan.straggler_rate = 0.3;
  plan.straggler_factor = 3.0;
  TableRunner inner_a(ds);
  TableRunner inner_b(ds);
  FaultInjectingRunner a(inner_a, plan);
  FaultInjectingRunner b(inner_b, plan);
  bool saw_fault = false;
  for (int pass = 0; pass < 4; ++pass) {  // repeated ids = fresh attempts
    for (space::ConfigId id = 0; id < ds.size(); ++id) {
      const auto ra = a.run(id);
      const auto rb = b.run(id);
      EXPECT_EQ(ra.outcome, rb.outcome);
      EXPECT_EQ(ra.runtime_seconds, rb.runtime_seconds);
      EXPECT_EQ(ra.cost, rb.cost);
      saw_fault = saw_fault || !ra.ok() || ra.runtime_seconds != ds.runtime(id);
    }
  }
  EXPECT_TRUE(saw_fault);
}

TEST(FaultInjectingRunner, RetriesAreFreshAttempts) {
  // Attempt numbers advance per config, so a config is not doomed to the
  // same fate forever: across many attempts both outcomes appear.
  const auto ds = testing::tiny_dataset();
  TableRunner inner(ds);
  FaultPlan plan;
  plan.seed = 9;
  plan.fail_rate = 0.5;
  FaultInjectingRunner faulty(inner, plan);
  int failed = 0;
  int ok = 0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto r = faulty.run(5);
    (r.failed() ? failed : ok) += 1;
  }
  EXPECT_GT(failed, 0);
  EXPECT_GT(ok, 0);
}

TEST(FaultInjectingRunner, TimeoutCapsLongRuns) {
  const auto ds = testing::tiny_dataset();
  TableRunner inner(ds);
  FaultPlan plan;  // inactive: the cap alone censors
  const double cap = ds.runtime(3) * 0.5;
  FaultInjectingRunner capped(inner, plan, cap);
  const auto r = capped.run(3);
  EXPECT_EQ(r.outcome, core::RunOutcome::kTimedOut);
  EXPECT_TRUE(r.censored());
  EXPECT_DOUBLE_EQ(r.runtime_seconds, cap);
  EXPECT_DOUBLE_EQ(r.cost, ds.cost(3) * 0.5);
}

TEST(FaultInjectingRunner, HangWithTimeoutTimesOut) {
  const auto ds = testing::tiny_dataset();
  TableRunner inner(ds);
  FaultPlan plan;
  plan.seed = 1;
  plan.hang_rate = 1.0;
  FaultInjectingRunner faulty(inner, plan, 10.0);
  const auto r = faulty.run(0);
  EXPECT_EQ(r.outcome, core::RunOutcome::kTimedOut);
  EXPECT_DOUBLE_EQ(r.runtime_seconds, 10.0);
}

TEST(FaultInjectingRunner, HangWithoutTimeoutThrows) {
  const auto ds = testing::tiny_dataset();
  TableRunner inner(ds);
  FaultPlan plan;
  plan.seed = 1;
  plan.hang_rate = 1.0;
  FaultInjectingRunner faulty(inner, plan);
  EXPECT_THROW((void)faulty.run(0), std::runtime_error);
}

TEST(FailureInjection, OptimizerSurfacesRunnerErrors) {
  // A hung deployment with no timeout mid-optimization must propagate to
  // the caller, not be silently swallowed (the user needs to know their
  // job is stuck).
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TableRunner inner(ds);
  FaultPlan plan;
  plan.seed = 3;
  plan.hang_rate = 1.0;
  FaultInjectingRunner failing(inner, plan);
  core::BayesianOptimizer bo;
  EXPECT_THROW((void)bo.optimize(problem, failing, 1), std::runtime_error);
}

TEST(FailureInjection, LynceusSurfacesRunnerErrors) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TableRunner inner(ds);
  FaultPlan plan;
  plan.seed = 3;
  plan.hang_rate = 1.0;
  FaultInjectingRunner failing(inner, plan);
  core::LynceusOptions opts;
  opts.lookahead = 1;
  core::LynceusOptimizer lyn(opts);
  EXPECT_THROW((void)lyn.optimize(problem, failing, 1), std::runtime_error);
}

TEST(AsyncTableRunner, CompletesInSimulatedTimeOrder) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  // Pick two configs with distinct runtimes; the slower-submitted-first
  // pair must complete fast-first.
  space::ConfigId slow = 0;
  space::ConfigId fast = 0;
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    if (ds.runtime(id) > ds.runtime(slow)) slow = id;
    if (ds.runtime(id) < ds.runtime(fast)) fast = id;
  }
  ASSERT_LT(ds.runtime(fast), ds.runtime(slow));

  async.submit(100, slow);
  async.submit(200, fast);
  EXPECT_EQ(async.outstanding(), 2U);

  const auto first = async.next_completion();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tag, 200U);
  EXPECT_EQ(first->config, fast);
  EXPECT_DOUBLE_EQ(first->result.cost, ds.cost(fast));
  EXPECT_DOUBLE_EQ(async.now(), ds.runtime(fast));

  const auto second = async.next_completion();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tag, 100U);
  EXPECT_DOUBLE_EQ(async.now(), ds.runtime(slow));

  EXPECT_FALSE(async.next_completion().has_value());
  EXPECT_EQ(async.runs_served(), 2U);
}

TEST(AsyncTableRunner, TiesBreakBySubmissionTicket) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  const auto t0 = async.submit(1, 4);
  const auto t1 = async.submit(2, 4);  // identical runtime → tie
  EXPECT_LT(t0, t1);
  EXPECT_EQ(async.next_completion()->tag, 1U);
  EXPECT_EQ(async.next_completion()->tag, 2U);
}

TEST(AsyncTableRunner, ClockAdvancesAcrossSubmissionWaves) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  async.submit(0, 3);
  const auto first = async.next_completion();
  ASSERT_TRUE(first.has_value());
  // A run submitted after the first completion starts at the new now().
  async.submit(0, 3);
  const auto second = async.next_completion();
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->finish_time, 2.0 * ds.runtime(3));
}

TEST(AsyncTableRunner, HeapOrderMatchesSortedReferenceAtScale) {
  // 10k outstanding runs: the (finish_time, ticket) min-heap must pop in
  // exactly the order a full sort of the submissions would produce.
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  std::vector<std::pair<double, std::uint64_t>> expected;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const auto config = static_cast<space::ConfigId>((i * 7) % ds.size());
    const auto ticket = async.submit(i, config);
    expected.emplace_back(ds.runtime(config), ticket);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(async.outstanding(), 10000U);
  for (const auto& [finish, ticket] : expected) {
    const auto c = async.next_completion();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->ticket, ticket);
    EXPECT_DOUBLE_EQ(c->finish_time, finish);
  }
  EXPECT_FALSE(async.next_completion().has_value());
}

TEST(AsyncTableRunner, SubmitOptionsApplyTimeoutAndDelay) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  AsyncTableRunner::SubmitOptions opts;
  opts.start_delay = 4.0;
  async.submit(0, 3, opts);
  const auto delayed = async.next_completion();
  ASSERT_TRUE(delayed.has_value());
  EXPECT_DOUBLE_EQ(delayed->finish_time, 4.0 + ds.runtime(3));
  EXPECT_TRUE(delayed->result.ok());

  AsyncTableRunner::SubmitOptions capped;
  capped.timeout_seconds = ds.runtime(3) * 0.25;
  async.submit(0, 3, capped);
  const auto censored = async.next_completion();
  ASSERT_TRUE(censored.has_value());
  EXPECT_EQ(censored->result.outcome, core::RunOutcome::kTimedOut);
  EXPECT_DOUBLE_EQ(censored->result.runtime_seconds, ds.runtime(3) * 0.25);
}

TEST(AsyncTableRunner, UncappedHangStaysOutstandingForever) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  FaultPlan plan;
  plan.seed = 1;
  plan.hang_rate = 1.0;
  async.set_fault_plan(plan);
  async.submit(0, 2);
  EXPECT_EQ(async.outstanding(), 1U);
  EXPECT_FALSE(async.next_finish_time().has_value());
  EXPECT_FALSE(async.next_completion().has_value());
  EXPECT_EQ(async.outstanding(), 1U);  // hung, not lost

  // A capped hang, by contrast, completes as a timeout.
  AsyncTableRunner::SubmitOptions capped;
  capped.timeout_seconds = 30.0;
  async.submit(0, 2, capped);
  const auto c = async.next_completion();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->result.outcome, core::RunOutcome::kTimedOut);
  EXPECT_DOUBLE_EQ(c->finish_time, 30.0);
}

TEST(AsyncTableRunner, FaultDrawsAreInterleavingIndependent) {
  // The same (config, attempt) resolves identically whether it is
  // submitted alone or among a crowd of other sessions' runs.
  const auto ds = testing::tiny_dataset();
  FaultPlan plan;
  plan.seed = 11;
  plan.fail_rate = 0.6;
  plan.straggler_rate = 0.3;
  plan.straggler_factor = 2.0;

  AsyncTableRunner solo(ds);
  solo.set_fault_plan(plan);
  solo.submit(0, 5);
  const auto alone = solo.next_completion();
  ASSERT_TRUE(alone.has_value());

  AsyncTableRunner crowd(ds);
  crowd.set_fault_plan(plan);
  for (space::ConfigId id = 0; id < ds.size(); ++id) crowd.submit(1, id);
  crowd.submit(0, 5, AsyncTableRunner::SubmitOptions{});  // attempt 0 again
  std::optional<AsyncTableRunner::Completion> mine;
  while (auto c = crowd.next_completion()) {
    if (c->tag == 0) mine = c;
  }
  ASSERT_TRUE(mine.has_value());
  EXPECT_EQ(mine->result.outcome, alone->result.outcome);
  EXPECT_EQ(mine->result.runtime_seconds, alone->result.runtime_seconds);
  EXPECT_EQ(mine->result.cost, alone->result.cost);
}

TEST(AsyncTableRunner, MetricsFunctionInvoked) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds, [](space::ConfigId id) {
    return std::vector<double>{static_cast<double>(id) * 2.0};
  });
  async.submit(0, 4);
  const auto c = async.next_completion();
  ASSERT_TRUE(c.has_value());
  ASSERT_EQ(c->result.metrics.size(), 1U);
  EXPECT_DOUBLE_EQ(c->result.metrics[0], 8.0);
}

}  // namespace
}  // namespace lynceus::eval

#include "eval/runner.hpp"

#include <gtest/gtest.h>

#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "test_helpers.hpp"

namespace lynceus::eval {
namespace {

TEST(TableRunner, ReplaysDatasetValues) {
  const auto ds = testing::tiny_dataset();
  TableRunner runner(ds);
  const auto r = runner.run(3);
  EXPECT_DOUBLE_EQ(r.runtime_seconds, ds.runtime(3));
  EXPECT_DOUBLE_EQ(r.cost, ds.cost(3));
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_EQ(runner.runs_served(), 1U);
}

TEST(TableRunner, MetricsFunctionInvoked) {
  const auto ds = testing::tiny_dataset();
  TableRunner runner(ds, [](space::ConfigId id) {
    return std::vector<double>{static_cast<double>(id) * 2.0};
  });
  const auto r = runner.run(4);
  ASSERT_EQ(r.metrics.size(), 1U);
  EXPECT_DOUBLE_EQ(r.metrics[0], 8.0);
}

TEST(FailingRunner, FailsAfterConfiguredRuns) {
  const auto ds = testing::tiny_dataset();
  TableRunner inner(ds);
  FailingRunner failing(inner, 2);
  EXPECT_NO_THROW((void)failing.run(0));
  EXPECT_NO_THROW((void)failing.run(1));
  EXPECT_THROW((void)failing.run(2), std::runtime_error);
}

TEST(FailureInjection, OptimizerSurfacesRunnerErrors) {
  // A deployment failure mid-optimization must propagate to the caller,
  // not be silently swallowed (the user needs to know their job crashed).
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TableRunner inner(ds);
  // Fail on the first post-bootstrap run (the budget can afford at least
  // one, so BO always attempts it).
  FailingRunner failing(inner, problem.bootstrap_samples);
  core::BayesianOptimizer bo;
  EXPECT_THROW((void)bo.optimize(problem, failing, 1), std::runtime_error);
}

TEST(FailureInjection, LynceusSurfacesRunnerErrors) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TableRunner inner(ds);
  FailingRunner failing(inner, problem.bootstrap_samples);
  core::LynceusOptions opts;
  opts.lookahead = 1;
  core::LynceusOptimizer lyn(opts);
  EXPECT_THROW((void)lyn.optimize(problem, failing, 1), std::runtime_error);
}

}  // namespace
}  // namespace lynceus::eval

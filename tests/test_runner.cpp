#include "eval/runner.hpp"

#include <gtest/gtest.h>

#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "test_helpers.hpp"

namespace lynceus::eval {
namespace {

TEST(TableRunner, ReplaysDatasetValues) {
  const auto ds = testing::tiny_dataset();
  TableRunner runner(ds);
  const auto r = runner.run(3);
  EXPECT_DOUBLE_EQ(r.runtime_seconds, ds.runtime(3));
  EXPECT_DOUBLE_EQ(r.cost, ds.cost(3));
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_EQ(runner.runs_served(), 1U);
}

TEST(TableRunner, MetricsFunctionInvoked) {
  const auto ds = testing::tiny_dataset();
  TableRunner runner(ds, [](space::ConfigId id) {
    return std::vector<double>{static_cast<double>(id) * 2.0};
  });
  const auto r = runner.run(4);
  ASSERT_EQ(r.metrics.size(), 1U);
  EXPECT_DOUBLE_EQ(r.metrics[0], 8.0);
}

TEST(FailingRunner, FailsAfterConfiguredRuns) {
  const auto ds = testing::tiny_dataset();
  TableRunner inner(ds);
  FailingRunner failing(inner, 2);
  EXPECT_NO_THROW((void)failing.run(0));
  EXPECT_NO_THROW((void)failing.run(1));
  EXPECT_THROW((void)failing.run(2), std::runtime_error);
}

TEST(FailureInjection, OptimizerSurfacesRunnerErrors) {
  // A deployment failure mid-optimization must propagate to the caller,
  // not be silently swallowed (the user needs to know their job crashed).
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TableRunner inner(ds);
  // Fail on the first post-bootstrap run (the budget can afford at least
  // one, so BO always attempts it).
  FailingRunner failing(inner, problem.bootstrap_samples);
  core::BayesianOptimizer bo;
  EXPECT_THROW((void)bo.optimize(problem, failing, 1), std::runtime_error);
}

TEST(FailureInjection, LynceusSurfacesRunnerErrors) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TableRunner inner(ds);
  FailingRunner failing(inner, problem.bootstrap_samples);
  core::LynceusOptions opts;
  opts.lookahead = 1;
  core::LynceusOptimizer lyn(opts);
  EXPECT_THROW((void)lyn.optimize(problem, failing, 1), std::runtime_error);
}

TEST(AsyncTableRunner, CompletesInSimulatedTimeOrder) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  // Pick two configs with distinct runtimes; the slower-submitted-first
  // pair must complete fast-first.
  space::ConfigId slow = 0;
  space::ConfigId fast = 0;
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    if (ds.runtime(id) > ds.runtime(slow)) slow = id;
    if (ds.runtime(id) < ds.runtime(fast)) fast = id;
  }
  ASSERT_LT(ds.runtime(fast), ds.runtime(slow));

  async.submit(100, slow);
  async.submit(200, fast);
  EXPECT_EQ(async.outstanding(), 2U);

  const auto first = async.next_completion();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tag, 200U);
  EXPECT_EQ(first->config, fast);
  EXPECT_DOUBLE_EQ(first->result.cost, ds.cost(fast));
  EXPECT_DOUBLE_EQ(async.now(), ds.runtime(fast));

  const auto second = async.next_completion();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tag, 100U);
  EXPECT_DOUBLE_EQ(async.now(), ds.runtime(slow));

  EXPECT_FALSE(async.next_completion().has_value());
  EXPECT_EQ(async.runs_served(), 2U);
}

TEST(AsyncTableRunner, TiesBreakBySubmissionTicket) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  const auto t0 = async.submit(1, 4);
  const auto t1 = async.submit(2, 4);  // identical runtime → tie
  EXPECT_LT(t0, t1);
  EXPECT_EQ(async.next_completion()->tag, 1U);
  EXPECT_EQ(async.next_completion()->tag, 2U);
}

TEST(AsyncTableRunner, ClockAdvancesAcrossSubmissionWaves) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds);
  async.submit(0, 3);
  const auto first = async.next_completion();
  ASSERT_TRUE(first.has_value());
  // A run submitted after the first completion starts at the new now().
  async.submit(0, 3);
  const auto second = async.next_completion();
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->finish_time, 2.0 * ds.runtime(3));
}

TEST(AsyncTableRunner, MetricsFunctionInvoked) {
  const auto ds = testing::tiny_dataset();
  AsyncTableRunner async(ds, [](space::ConfigId id) {
    return std::vector<double>{static_cast<double>(id) * 2.0};
  });
  async.submit(0, 4);
  const auto c = async.next_completion();
  ASSERT_TRUE(c.has_value());
  ASSERT_EQ(c->result.metrics.size(), 1U);
  EXPECT_DOUBLE_EQ(c->result.metrics[0], 8.0);
}

}  // namespace
}  // namespace lynceus::eval

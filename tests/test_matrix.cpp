#include "math/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace lynceus::math {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, IdentityMul) {
  const Matrix id = Matrix::identity(3);
  const std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_EQ(id.mul(x), x);
}

TEST(Matrix, MulKnownValues) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const auto y = m.mul({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MulDimensionMismatch) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.mul({1.0}), std::invalid_argument);
}

TEST(Cholesky, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, √2]].
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const Cholesky chol(a);
  EXPECT_NEAR(chol.lower()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol.lower()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol.lower()(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, SolveRoundTrip) {
  util::Rng rng(3);
  const std::size_t n = 8;
  // Random SPD matrix: A = B·Bᵀ + n·I.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal();
  }
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += b(r, k) * b(c, k);
      a(r, c) = acc + (r == c ? static_cast<double>(n) : 0.0);
    }
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.normal();
  const auto rhs = a.mul(x_true);

  const Cholesky chol(a);
  const auto x = chol.solve(rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, LogDeterminant) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  // det = 4·3 − 2·2 = 8.
  const Cholesky chol(a);
  EXPECT_NEAR(chol.log_determinant(), std::log(8.0), 1e-12);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, −1 → not PD
  EXPECT_THROW(Cholesky{a}, std::domain_error);
}

TEST(Cholesky, SolveLowerForwardSubstitution) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const Cholesky chol(a);
  // L·y = b with L = [[2,0],[1,√2]] and b = (2, 1+√2) → y = (1, 1).
  const auto y = chol.solve_lower({2.0, 1.0 + std::sqrt(2.0)});
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace lynceus::math

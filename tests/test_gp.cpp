#include "model/gp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lynceus::model {
namespace {

space::ConfigSpace line_space(std::size_t levels) {
  std::vector<double> v(levels);
  for (std::size_t i = 0; i < levels; ++i) v[i] = static_cast<double>(i);
  return space::ConfigSpace("line", {space::numeric_param("x", v)});
}

TEST(GaussianProcess, RejectsEmptyGrid) {
  GpOptions opts;
  opts.lengthscales.clear();
  EXPECT_THROW(GaussianProcess{opts}, std::invalid_argument);
}

TEST(GaussianProcess, InterpolatesTrainingPointsWithLowNoise) {
  const auto sp = line_space(9);
  const FeatureMatrix fm(sp);
  std::vector<std::uint32_t> rows = {0, 2, 4, 6, 8};
  std::vector<double> y = {0.0, 4.0, 8.0, 12.0, 16.0};
  GaussianProcess gp;
  gp.fit(fm, rows, y, 0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(gp.predict(fm, rows[i]).mean, y[i], 0.8);
  }
}

TEST(GaussianProcess, InterpolatesBetweenPoints) {
  const auto sp = line_space(9);
  const FeatureMatrix fm(sp);
  // Linear function sampled at even points; odd points are interpolated.
  std::vector<std::uint32_t> rows = {0, 2, 4, 6, 8};
  std::vector<double> y = {0.0, 2.0, 4.0, 6.0, 8.0};
  GaussianProcess gp;
  gp.fit(fm, rows, y, 0);
  EXPECT_NEAR(gp.predict(fm, 3).mean, 3.0, 1.0);
  EXPECT_NEAR(gp.predict(fm, 5).mean, 5.0, 1.0);
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  const auto sp = line_space(17);
  const FeatureMatrix fm(sp);
  // All training data at the left end.
  std::vector<std::uint32_t> rows = {0, 1, 2, 3};
  std::vector<double> y = {1.0, 1.2, 0.8, 1.1};
  GaussianProcess gp;
  gp.fit(fm, rows, y, 0);
  EXPECT_GT(gp.predict(fm, 16).stddev, gp.predict(fm, 1).stddev);
}

TEST(GaussianProcess, PosteriorMatchesClosedFormSingleTrainingPoint) {
  // One training point, fixed hyper-parameters: the posterior mean at a
  // test point x is k(x,x0)/(1+σn²)·y0 (standardization is identity for a
  // single point after... actually y_std=1 for n=1 since variance 0 → 1).
  const auto sp = line_space(3);  // x in {0, 0.5, 1} after normalization
  const FeatureMatrix fm(sp);
  GpOptions opts;
  opts.lengthscales = {1.0};
  opts.noise_fractions = {1e-4};
  GaussianProcess gp(opts);
  gp.fit(fm, {0}, {2.0}, 0);
  // Standardized target is 0 (single point), so posterior mean = y_mean = 2
  // everywhere.
  EXPECT_NEAR(gp.predict(fm, 2).mean, 2.0, 1e-9);
}

TEST(GaussianProcess, SelectsHyperparametersByLml) {
  const auto sp = line_space(12);
  const FeatureMatrix fm(sp);
  // Smooth function: the grid search should not pick the tiniest
  // length-scale.
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  for (std::uint32_t r = 0; r < 12; ++r) {
    rows.push_back(r);
    y.push_back(std::sin(static_cast<double>(r) / 11.0 * 3.0));
  }
  GaussianProcess gp;
  gp.fit(fm, rows, y, 0);
  EXPECT_GT(gp.lengthscale(), 0.1);
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
}

TEST(GaussianProcess, PredictAllMatchesPredict) {
  const auto sp = line_space(7);
  const FeatureMatrix fm(sp);
  GaussianProcess gp;
  gp.fit(fm, {0, 3, 6}, {1.0, 5.0, 2.0}, 0);
  std::vector<Prediction> all;
  gp.predict_all(fm, all);
  ASSERT_EQ(all.size(), 7U);
  for (std::uint32_t r = 0; r < 7; ++r) {
    EXPECT_DOUBLE_EQ(all[r].mean, gp.predict(fm, r).mean);
    EXPECT_DOUBLE_EQ(all[r].stddev, gp.predict(fm, r).stddev);
  }
}

TEST(GaussianProcess, FreshCreatesUnfittedClone) {
  const GaussianProcess gp;
  const auto clone = gp.fresh();
  EXPECT_NE(dynamic_cast<GaussianProcess*>(clone.get()), nullptr);
  const auto sp = line_space(3);
  const FeatureMatrix fm(sp);
  EXPECT_THROW((void)clone->predict(fm, 0), std::logic_error);
}

TEST(GaussianProcess, Validation) {
  const auto sp = line_space(3);
  const FeatureMatrix fm(sp);
  GaussianProcess gp;
  EXPECT_THROW(gp.fit(fm, {}, {}, 0), std::invalid_argument);
  EXPECT_THROW(gp.fit(fm, {0}, {1.0, 2.0}, 0), std::invalid_argument);
}

TEST(GaussianProcess, ConstantTargetsHandled) {
  const auto sp = line_space(5);
  const FeatureMatrix fm(sp);
  GaussianProcess gp;
  gp.fit(fm, {0, 2, 4}, {3.0, 3.0, 3.0}, 0);
  EXPECT_NEAR(gp.predict(fm, 1).mean, 3.0, 1e-6);
}

}  // namespace
}  // namespace lynceus::model

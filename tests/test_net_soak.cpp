/// Connection-fan-in soak for the epoll transport (net/event_loop.hpp):
/// hundreds of concurrent connections multiplexed by a handful of
/// transport threads, every session's trajectory still byte-identical
/// to its solo in-process run. The point is the CEILING — the old
/// blocking-read design capped out at roughly one connection per
/// transport thread time-slice; the readiness loop must hold 512+
/// sockets open and live at once.
///
/// Sized by build flavor: 512 connections in plain builds, fewer under
/// ASan/TSan (sanitizer thread/shadow overhead, CI wall-clock). The
/// LYNCEUS_SOAK_CONNECTIONS environment variable overrides both.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/random_search.hpp"
#include "core/stepper.hpp"
#include "eval/runner.hpp"
#include "net/tuning_client.hpp"
#include "net/tuning_server.hpp"
#include "test_helpers.hpp"

namespace lynceus::net {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr std::size_t kDefaultSoakConnections = 96;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr std::size_t kDefaultSoakConnections = 96;
#else
constexpr std::size_t kDefaultSoakConnections = 512;
#endif
#else
constexpr std::size_t kDefaultSoakConnections = 512;
#endif

/// Connections this process can actually afford: each soak connection
/// costs two fds (client + server end in the same process), plus slack
/// for the binary, the event loops and the test harness.
std::size_t soak_connections() {
  std::size_t want = kDefaultSoakConnections;
  if (const char* env = std::getenv("LYNCEUS_SOAK_CONNECTIONS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) want = static_cast<std::size_t>(v);
  }
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0) {
    const rlim_t need = 2 * want + 128;
    if (lim.rlim_cur < need) {
      rlimit raised = lim;
      raised.rlim_cur = need > lim.rlim_max ? lim.rlim_max : need;
      (void)::setrlimit(RLIMIT_NOFILE, &raised);
      (void)::getrlimit(RLIMIT_NOFILE, &lim);
    }
    if (static_cast<rlim_t>(2 * want + 128) > lim.rlim_cur) {
      want = (static_cast<std::size_t>(lim.rlim_cur) - 128) / 2;
    }
  }
  return want;
}

TEST(NetSoak, HundredsOfConcurrentConnectionsStayLiveAndDeterministic) {
  const std::size_t kConns = soak_connections();
  ASSERT_GE(kConns, 8U) << "file-descriptor limit too low to soak";
  const std::size_t kDrivers = 8;

  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  TuningServer::Options opts;
  opts.shards = 4;
  TuningServer server(opts);
  server.register_problem("test", "tinybowl", problem);

  // Phase 1: every driver connects all of its connections and opens one
  // session per connection, then waits until ALL kConns sockets are
  // established and opened — the server must hold every one of them
  // concurrently before any traffic-heavy draining starts.
  std::vector<std::unique_ptr<TuningClient>> clients(kConns);
  std::vector<std::uint64_t> session_of(kConns, 0);
  std::vector<std::string> errors(kDrivers);
  std::atomic<std::size_t> opened{0};

  auto spec_for = [](std::uint64_t seed) {
    service::SessionSpec spec;
    spec.optimizer = "random";  // cheap per step; the load is the fan-in
    spec.seed = seed;
    spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
    return spec;
  };

  std::vector<std::thread> drivers;
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      try {
        for (std::size_t i = d; i < kConns; i += kDrivers) {
          clients[i] = std::make_unique<TuningClient>(
              "127.0.0.1", server.port());
          session_of[i] = clients[i]->open(spec_for(i + 1));
          opened.fetch_add(1);
        }
        // Barrier: full fan-in reached before the drain phase.
        while (opened.load() < kConns) std::this_thread::yield();
        for (std::size_t i = d; i < kConns; i += kDrivers) {
          eval::AsyncTableRunner runner(ds);
          clients[i]->drain(runner);
        }
      } catch (const std::exception& e) {
        errors[d] = e.what();
        opened.store(kConns);  // release anyone stuck at the barrier
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  for (std::size_t d = 0; d < kDrivers; ++d) {
    ASSERT_TRUE(errors[d].empty()) << "driver " << d << ": " << errors[d];
  }

  // Phase 2: with all sockets STILL open, collect every result and pin
  // it against the solo in-process trajectory.
  for (std::size_t i = 0; i < kConns; ++i) {
    SCOPED_TRACE("connection " + std::to_string(i));
    const TuningClient::ResultReply reply =
        clients[i]->result(session_of[i]);
    ASSERT_TRUE(reply.finished);

    eval::TableRunner solo(ds);
    auto stepper = core::RandomSearch().make_stepper(problem, i + 1);
    const core::OptimizerResult golden = core::drive(*stepper, solo);
    ASSERT_EQ(reply.result.history.size(), golden.history.size());
    for (std::size_t s = 0; s < golden.history.size(); ++s) {
      ASSERT_EQ(reply.result.history[s].id, golden.history[s].id);
      ASSERT_EQ(reply.result.history[s].cost, golden.history[s].cost);
    }
    ASSERT_EQ(reply.result.budget_spent, golden.budget_spent);
    ASSERT_EQ(reply.result.recommendation, golden.recommendation);
  }

  // Every shard carried a share of the load.
  const std::vector<std::size_t> counts = server.shard_session_counts();
  std::size_t total = 0;
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 0U);
    total += c;
  }
  EXPECT_EQ(total, kConns);

  clients.clear();  // hang up all connections at once; server must cope
  server.stop();
}

}  // namespace
}  // namespace lynceus::net

/// Branch-parallel lookahead (the pooled-determinism contract in
/// core/lookahead.hpp): distributing the depth-0 fantasy-branch /
/// joint-speculation fan-out of a root simulation across a thread pool
/// must leave every trajectory byte-identical to the serial run — for
/// both engines, every lookahead depth, with incremental refit on or off,
/// and across RootCache warm starts — while staying allocation-free after
/// warm-up (asserted process-wide, since branch work runs on pool worker
/// threads the per-thread counter cannot see).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/bo.hpp"
#include "core/constraints.hpp"
#include "core/lookahead.hpp"
#include "core/lynceus.hpp"
#include "core/sequential.hpp"
#include "eval/runner.hpp"
#include "test_helpers.hpp"
#include "util/alloc_count.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lynceus::core {
namespace {

std::vector<ConfigId> history_ids(const OptimizerResult& r) {
  std::vector<ConfigId> out;
  for (const auto& s : r.history) out.push_back(s.id);
  return out;
}

// Synthetic metrics over the tiny space (mirrors test_constraints.cpp).
double energy_of(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn energy_metrics() {
  const auto sp = testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{energy_of(*sp, id)};
  };
}

ConstraintDef energy_constraint(double cap) {
  ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

// ---------------------------------------------------------------------------
// Optimizer-level trajectory identity, serial vs branch-parallel
// ---------------------------------------------------------------------------

class BranchParallelTrajectory : public ::testing::TestWithParam<unsigned> {};

TEST_P(BranchParallelTrajectory, LynceusMatchesSerial) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  util::ThreadPool pool(3);
  for (const bool incremental : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      LynceusOptions opts;
      opts.lookahead = GetParam();
      opts.screen_width = 6;
      opts.incremental_refit = incremental;
      opts.branch_parallel = false;
      opts.pool = nullptr;

      eval::TableRunner serial_runner(ds);
      const auto serial =
          LynceusOptimizer(opts).optimize(problem, serial_runner, seed);

      opts.pool = &pool;
      opts.branch_parallel = true;
      eval::TableRunner pooled_runner(ds);
      const auto pooled =
          LynceusOptimizer(opts).optimize(problem, pooled_runner, seed);

      EXPECT_EQ(history_ids(serial), history_ids(pooled))
          << "lookahead " << GetParam() << " incremental " << incremental
          << " seed " << seed;
      EXPECT_EQ(serial.recommendation, pooled.recommendation);
      EXPECT_EQ(serial.budget_spent, pooled.budget_spent);
    }
  }
}

TEST_P(BranchParallelTrajectory, MultiConstraintMatchesSerial) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  util::ThreadPool pool(3);
  for (const bool incremental : {false, true}) {
    MultiConstraintOptions opts;
    opts.lookahead = GetParam();
    opts.incremental_refit = incremental;
    opts.branch_parallel = false;
    opts.pool = nullptr;

    eval::TableRunner serial_runner(ds, energy_metrics());
    const auto serial = MultiConstraintLynceus({energy_constraint(26.0)}, opts)
                            .optimize(problem, serial_runner, 17);

    opts.pool = &pool;
    opts.branch_parallel = true;
    eval::TableRunner pooled_runner(ds, energy_metrics());
    const auto pooled = MultiConstraintLynceus({energy_constraint(26.0)}, opts)
                            .optimize(problem, pooled_runner, 17);

    EXPECT_EQ(history_ids(serial), history_ids(pooled))
        << "lookahead " << GetParam() << " incremental " << incremental;
    EXPECT_EQ(serial.recommendation, pooled.recommendation);
    EXPECT_EQ(serial.recommendation_feasible, pooled.recommendation_feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Lookaheads, BranchParallelTrajectory,
                         ::testing::Values(0U, 1U, 2U));

// A zero-worker pool with the flag on must behave exactly like no pool
// (the engine degenerates to the serial path; no replicas are built).
TEST(BranchParallel, ZeroWorkerPoolIsSerial) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  LynceusOptions opts;
  opts.lookahead = 2;
  opts.screen_width = 6;
  opts.incremental_refit = false;

  eval::TableRunner serial_runner(ds);
  const auto serial =
      LynceusOptimizer(opts).optimize(problem, serial_runner, 5);

  util::ThreadPool inline_pool(0);
  opts.pool = &inline_pool;
  opts.branch_parallel = true;
  eval::TableRunner pooled_runner(ds);
  const auto pooled =
      LynceusOptimizer(opts).optimize(problem, pooled_runner, 5);

  EXPECT_EQ(history_ids(serial), history_ids(pooled));
  EXPECT_EQ(serial.recommendation, pooled.recommendation);
}

// ---------------------------------------------------------------------------
// Engine-level bitwise identity of simulate() values, serial vs pooled
// ---------------------------------------------------------------------------

TEST(BranchParallel, LookaheadEngineSimulateValuesAreBitIdentical) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 4);
  st.bootstrap();
  util::ThreadPool pool(3);

  for (const bool incremental : {false, true}) {
    LookaheadEngine::Options sopts;
    sopts.lookahead = 2;
    sopts.incremental_refit = incremental;
    LookaheadEngine serial(problem, sopts,
                           default_tree_model_factory(*problem.space), 1);

    LookaheadEngine::Options popts = sopts;
    popts.branch_pool = &pool;
    LookaheadEngine pooled(problem, popts,
                           default_tree_model_factory(*problem.space), 1);

    serial.begin_decision(st.samples, st.budget.remaining(), 77);
    pooled.begin_decision(st.samples, st.budget.remaining(), 77);
    std::vector<ConfigId> roots;
    serial.screened_roots(0, roots);
    ASSERT_FALSE(roots.empty());
    for (ConfigId r : roots) {
      const std::uint64_t seed = util::derive_seed(4, 1000003ULL + r);
      const PathValue a = serial.simulate(r, seed);
      const PathValue b = pooled.simulate(r, seed);
      EXPECT_EQ(a.reward, b.reward) << "root " << r << " inc " << incremental;
      EXPECT_EQ(a.cost, b.cost) << "root " << r << " inc " << incremental;
    }
  }
}

/// Bootstrapped multi-constraint root state over the tiny space.
struct McState {
  std::vector<std::uint32_t> rows;
  std::vector<double> y_cost;
  std::vector<std::vector<double>> y_metric;
  std::vector<char> feasible;
  double budget = 0.0;
};

McState mc_state(const OptimizationProblem& problem, const cloud::Dataset& ds,
                 double cap) {
  eval::TableRunner runner(ds, energy_metrics());
  MetricRecordingRunner recorder(runner, 1);
  LoopState st(problem, runner, 4);
  st.runner = &recorder;
  st.bootstrap();
  McState out;
  out.y_metric.resize(1);
  for (std::size_t i = 0; i < st.samples.size(); ++i) {
    out.rows.push_back(st.samples[i].id);
    out.y_cost.push_back(st.samples[i].cost);
    out.y_metric[0].push_back(recorder.metrics()[i][0]);
    const bool ok =
        st.samples[i].feasible && recorder.metrics()[i][0] <= cap;
    out.feasible.push_back(ok ? 1 : 0);
  }
  out.budget = st.budget.remaining();
  return out;
}

TEST(BranchParallel, MultiConstraintEngineSimulateValuesAreBitIdentical) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  const double cap = 26.0;
  const McState root = mc_state(problem, ds, cap);
  util::ThreadPool pool(3);

  for (const bool incremental : {false, true}) {
    MultiConstraintEngine::Options sopts;
    sopts.lookahead = 2;
    sopts.incremental_refit = incremental;
    sopts.thresholds = {[cap](ConfigId) { return cap; }};
    MultiConstraintEngine serial(problem, sopts,
                                 default_tree_model_factory(*problem.space),
                                 1);
    MultiConstraintEngine::Options popts = sopts;
    popts.branch_pool = &pool;
    MultiConstraintEngine pooled(problem, popts,
                                 default_tree_model_factory(*problem.space),
                                 1);

    serial.begin_decision(root.rows, root.y_cost, root.y_metric,
                          root.feasible, root.budget, 77);
    pooled.begin_decision(root.rows, root.y_cost, root.y_metric,
                          root.feasible, root.budget, 77);
    ASSERT_FALSE(serial.viable().empty());
    for (ConfigId r : serial.viable()) {
      const std::uint64_t seed = util::derive_seed(4, 1000003ULL + r);
      const PathValue a = serial.simulate(r, seed);
      const PathValue b = pooled.simulate(r, seed);
      EXPECT_EQ(a.reward, b.reward) << "root " << r << " inc " << incremental;
      EXPECT_EQ(a.cost, b.cost) << "root " << r << " inc " << incremental;
    }
  }
}

// ---------------------------------------------------------------------------
// RootCache warm starts stay bit-identical with branch parallelism on
// ---------------------------------------------------------------------------

TEST(BranchParallel, CacheWarmStartReplaysIdenticallyPooled) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  util::ThreadPool pool(3);
  for (const bool incremental : {false, true}) {
    LynceusOptions opts;
    opts.lookahead = 1;
    opts.screen_width = 6;
    opts.incremental_refit = incremental;

    // Serial baseline without any cache.
    eval::TableRunner r0(ds);
    const auto baseline = LynceusOptimizer(opts).optimize(problem, r0, 21);

    // A serial run fills the shared cache; the branch-parallel re-run
    // must replay every decision from cache hits, bit-identically.
    RootCache::Options copts;
    copts.capacity = 64;
    copts.store_models = incremental;  // exercise the snapshot-restore path
    RootCache cache(copts);
    opts.root_cache = &cache;
    eval::TableRunner r1(ds);
    const auto first = LynceusOptimizer(opts).optimize(problem, r1, 21);
    const std::uint64_t misses_after_first = cache.stats().misses;

    opts.pool = &pool;
    opts.branch_parallel = true;
    eval::TableRunner r2(ds);
    const auto second = LynceusOptimizer(opts).optimize(problem, r2, 21);

    EXPECT_EQ(cache.stats().hits, misses_after_first) << incremental;
    EXPECT_GT(cache.stats().hits, 0U);
    EXPECT_EQ(history_ids(baseline), history_ids(first)) << incremental;
    EXPECT_EQ(history_ids(baseline), history_ids(second)) << incremental;
    EXPECT_EQ(baseline.recommendation, second.recommendation);
  }
}

// ---------------------------------------------------------------------------
// Zero allocation after warm-up, branch parallelism enabled
// ---------------------------------------------------------------------------

/// Runs `body` once on each of the pool's worker threads plus the calling
/// thread, simultaneously (a barrier keeps every thread inside its own
/// call until all have started). Deterministically warms each thread's
/// thread_local prediction scratch — plain parallel_for claims indices
/// dynamically and could leave a worker cold, which would show up as a
/// spurious allocation when that worker later picks up a branch part.
template <typename Body>
void run_once_per_thread(util::ThreadPool& pool, const Body& body) {
  const std::size_t threads = pool.worker_count() + 1;
  std::atomic<std::size_t> started{0};
  pool.parallel_for(threads, [&](std::size_t idx) {
    body(idx);
    started.fetch_add(1, std::memory_order_acq_rel);
    while (started.load(std::memory_order_acquire) < threads) {
      std::this_thread::yield();
    }
  });
}

TEST(BranchParallel, SimulateIsAllocationFreeAfterWarmup) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 4);
  st.bootstrap();
  util::ThreadPool pool(3);
  const std::size_t threads = pool.worker_count() + 1;

  for (const bool incremental : {false, true}) {
    LookaheadEngine::Options opts;
    opts.lookahead = 2;
    opts.incremental_refit = incremental;
    opts.branch_pool = &pool;
    LookaheadEngine engine(problem, opts,
                           default_tree_model_factory(*problem.space),
                           threads);
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(4, 1));
    std::vector<ConfigId> roots;
    engine.screened_roots(0, roots);
    ASSERT_FALSE(roots.empty());

    // Warm-up: every thread runs one full simulate (while all threads are
    // busy, each claims its own branch parts inline), sizing the
    // per-thread prediction scratch everywhere; then one serial pass to
    // warm the remaining roots' buffers.
    run_once_per_thread(pool, [&](std::size_t idx) {
      const ConfigId r = roots[idx % roots.size()];
      (void)engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
    });
    for (ConfigId r : roots) {
      (void)engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
    }

    util::AllocCountAllThreadsGuard guard;
    PathValue total{};
    for (ConfigId r : roots) {
      const PathValue v =
          engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
      total.reward += v.reward;
      total.cost += v.cost;
    }
    EXPECT_EQ(guard.delta(), 0U)
        << "branch-parallel simulate() touched the heap after warm-up "
           "(incremental "
        << incremental << ")";
    EXPECT_GT(total.cost, 0.0);
  }
}

TEST(BranchParallel, McSimulateIsAllocationFreeAfterWarmup) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  const double cap = 26.0;
  const McState root = mc_state(problem, ds, cap);
  util::ThreadPool pool(3);
  const std::size_t threads = pool.worker_count() + 1;

  MultiConstraintEngine::Options opts;
  opts.lookahead = 2;
  opts.thresholds = {[cap](ConfigId) { return cap; }};
  opts.branch_pool = &pool;
  MultiConstraintEngine engine(problem, opts,
                               default_tree_model_factory(*problem.space),
                               threads);
  engine.begin_decision(root.rows, root.y_cost, root.y_metric, root.feasible,
                        root.budget, util::derive_seed(4, 1));
  const std::vector<ConfigId> roots = engine.viable();
  ASSERT_FALSE(roots.empty());

  run_once_per_thread(pool, [&](std::size_t idx) {
    const ConfigId r = roots[idx % roots.size()];
    (void)engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
  });
  for (ConfigId r : roots) {
    (void)engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
  }

  util::AllocCountAllThreadsGuard guard;
  PathValue total{};
  for (ConfigId r : roots) {
    const PathValue v =
        engine.simulate(r, util::derive_seed(4, 1000003ULL + r));
    total.reward += v.reward;
    total.cost += v.cost;
  }
  EXPECT_EQ(guard.delta(), 0U)
      << "branch-parallel MC simulate() touched the heap after warm-up";
  EXPECT_GT(total.cost, 0.0);
}

}  // namespace
}  // namespace lynceus::core

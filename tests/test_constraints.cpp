#include "core/constraints.hpp"

#include <gtest/gtest.h>

#include "core/bo.hpp"
#include "core/constraints_reference.hpp"
#include "core/lookahead.hpp"
#include "core/sequential.hpp"
#include "eval/runner.hpp"
#include "test_helpers.hpp"
#include "util/alloc_count.hpp"
#include "util/rng.hpp"

namespace lynceus::core {
namespace {

/// Synthetic "energy" metric over the tiny space: grows with both
/// dimensions, so the energy cap rules out part of the cheap region and
/// forces a genuine trade-off.
double energy_of(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn energy_metrics() {
  const auto sp = testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{energy_of(*sp, id)};
  };
}

ConstraintDef energy_constraint(double cap) {
  ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

TEST(MultiConstraintOptions, Validation) {
  MultiConstraintOptions opts;
  opts.gh_points = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = MultiConstraintOptions{};
  opts.prune_weight = 1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(MultiConstraintLynceus, RequiresThresholdFunctions) {
  ConstraintDef c;
  c.name = "broken";
  EXPECT_THROW(MultiConstraintLynceus({c}), std::invalid_argument);
}

TEST(MultiConstraintLynceus, NameListsConstraintCount) {
  MultiConstraintLynceus opt({energy_constraint(30.0)});
  EXPECT_EQ(opt.name(), "Lynceus-MC(LA=1,I=1)");
}

TEST(MultiConstraintLynceus, RunnerMustProvideMetrics) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);  // no metrics function
  MultiConstraintLynceus opt({energy_constraint(30.0)});
  EXPECT_THROW((void)opt.optimize(problem, runner, 1), std::runtime_error);
}

TEST(MultiConstraintLynceus, RecommendationRespectsEnergyCap) {
  const auto ds = testing::tiny_dataset();
  const auto sp = testing::tiny_space();
  const auto problem = testing::tiny_problem();
  const double cap = 26.0;
  MultiConstraintLynceus opt({energy_constraint(cap)});
  int feasible_recs = 0;
  int total = 0;
  for (int t = 0; t < 8; ++t) {
    eval::TableRunner runner(ds, energy_metrics());
    const auto result = opt.optimize(problem, runner, 500 + t);
    ASSERT_TRUE(result.recommendation.has_value());
    if (result.recommendation_feasible) {
      ++feasible_recs;
      EXPECT_LE(energy_of(*sp, *result.recommendation), cap);
      EXPECT_LE(ds.runtime(*result.recommendation), ds.tmax_seconds());
    }
    ++total;
  }
  // The cap leaves feasible points; the optimizer must find them usually.
  EXPECT_GE(feasible_recs, total / 2);
}

TEST(MultiConstraintLynceus, TightCapShiftsRecommendation) {
  // With a loose cap the best config matches the single-constraint
  // optimum; a tight cap must push the recommendation elsewhere.
  const auto ds = testing::tiny_dataset();
  const auto sp = testing::tiny_space();
  const auto problem = testing::tiny_problem();
  MultiConstraintLynceus loose(
      {energy_constraint(1000.0)});  // never binding
  MultiConstraintLynceus tight({energy_constraint(22.0)});
  eval::TableRunner r1(ds, energy_metrics());
  eval::TableRunner r2(ds, energy_metrics());
  const auto a = loose.optimize(problem, r1, 31);
  const auto b = tight.optimize(problem, r2, 31);
  ASSERT_TRUE(a.recommendation && b.recommendation);
  if (b.recommendation_feasible) {
    EXPECT_LE(energy_of(*sp, *b.recommendation), 22.0);
    // The loose optimum violates the tight cap, so they must differ.
    if (energy_of(*sp, *a.recommendation) > 22.0) {
      EXPECT_NE(*a.recommendation, *b.recommendation);
    }
  }
}

TEST(MultiConstraintLynceus, DeterministicGivenSeed) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  MultiConstraintLynceus opt({energy_constraint(28.0)});
  eval::TableRunner r1(ds, energy_metrics());
  eval::TableRunner r2(ds, energy_metrics());
  const auto a = opt.optimize(problem, r1, 62);
  const auto b = opt.optimize(problem, r2, 62);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id);
  }
}

// ---------------------------------------------------------------------------
// Golden trajectory: naive copy-based reference vs the production optimizer
// ---------------------------------------------------------------------------

std::vector<ConfigId> history_ids(const OptimizerResult& r) {
  std::vector<ConfigId> out;
  for (const auto& s : r.history) out.push_back(s.id);
  return out;
}

/// Second synthetic metric ("network"), decreasing in dimension a, so the
/// two-constraint joint speculation is exercised with a genuinely binding
/// pair of caps.
eval::TableRunner::MetricsFn two_metrics() {
  const auto sp = testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{energy_of(*sp, id),
                               20.0 - 3.0 * sp->value(id, 0)};
  };
}

std::vector<ConstraintDef> two_constraints() {
  ConstraintDef net;
  net.name = "network";
  net.metric_index = 1;
  net.threshold = [](ConfigId) { return 18.0; };
  return {energy_constraint(27.0), net};
}

class McGoldenTrajectory : public ::testing::TestWithParam<unsigned> {};

TEST_P(McGoldenTrajectory, EngineMatchesNaiveReferenceOneConstraint) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    MultiConstraintOptions opts;
    opts.lookahead = GetParam();
    opts.gh_points = 3;
    // Golden-trajectory guard: the flag-off path must stay bit-identical
    // to the committed reference regardless of the
    // LYNCEUS_INCREMENTAL_REFIT environment default (CI runs the suite
    // once with it set).
    opts.incremental_refit = false;

    eval::TableRunner naive_runner(ds, energy_metrics());
    const auto naive =
        reference::NaiveMultiConstraintLynceus({energy_constraint(26.0)}, opts)
            .optimize(problem, naive_runner, seed);
    eval::TableRunner engine_runner(ds, energy_metrics());
    const auto engine = MultiConstraintLynceus({energy_constraint(26.0)}, opts)
                            .optimize(problem, engine_runner, seed);

    EXPECT_EQ(history_ids(naive), history_ids(engine))
        << "lookahead " << GetParam() << " seed " << seed;
    EXPECT_EQ(naive.recommendation, engine.recommendation);
    EXPECT_EQ(naive.recommendation_feasible, engine.recommendation_feasible);
    EXPECT_EQ(naive.decisions, engine.decisions);
  }
}

TEST_P(McGoldenTrajectory, EngineMatchesNaiveReferenceTwoConstraints) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  MultiConstraintOptions opts;
  opts.lookahead = GetParam();
  opts.gh_points = 3;
  opts.incremental_refit = false;  // golden-trajectory guard (see above)

  eval::TableRunner naive_runner(ds, two_metrics());
  const auto naive =
      reference::NaiveMultiConstraintLynceus(two_constraints(), opts)
          .optimize(problem, naive_runner, 17);
  eval::TableRunner engine_runner(ds, two_metrics());
  const auto engine = MultiConstraintLynceus(two_constraints(), opts)
                          .optimize(problem, engine_runner, 17);

  EXPECT_EQ(history_ids(naive), history_ids(engine))
      << "lookahead " << GetParam();
  EXPECT_EQ(naive.recommendation, engine.recommendation);
}

INSTANTIATE_TEST_SUITE_P(Lookaheads, McGoldenTrajectory,
                         ::testing::Values(0U, 1U, 2U));

// ---------------------------------------------------------------------------
// MultiConstraintEngine: allocation behavior, determinism, root cache
// ---------------------------------------------------------------------------

/// Bootstraps a run with recorded metrics and hands the root state to a
/// MultiConstraintEngine, mirroring MultiConstraintLynceus::optimize.
struct McEngineFixture {
  explicit McEngineFixture(unsigned lookahead, std::uint64_t seed = 4)
      : ds(testing::tiny_dataset()),
        problem(testing::tiny_problem()),
        constraints(two_constraints()),
        runner(ds, two_metrics()),
        recorder(runner, constraints.size()),
        st(problem, runner, seed) {
    st.runner = &recorder;
    st.bootstrap();

    MultiConstraintEngine::Options opts;
    opts.lookahead = lookahead;
    for (const auto& c : constraints) opts.thresholds.push_back(c.threshold);
    opts.root_cache = &cache;
    engine = std::make_unique<MultiConstraintEngine>(
        problem, std::move(opts),
        default_tree_model_factory(*problem.space), 1);

    for (std::size_t i = 0; i < st.samples.size(); ++i) {
      rows.push_back(st.samples[i].id);
      y_cost.push_back(st.samples[i].cost);
    }
    y_metric.resize(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      for (std::size_t i = 0; i < st.samples.size(); ++i) {
        y_metric[c].push_back(
            recorder.metrics()[i][constraints[c].metric_index]);
      }
    }
    for (std::size_t i = 0; i < st.samples.size(); ++i) {
      bool feas = st.samples[i].feasible;
      for (const auto& c : constraints) {
        if (recorder.metrics()[i][c.metric_index] >
            c.threshold(st.samples[i].id)) {
          feas = false;
        }
      }
      feasible.push_back(feas ? 1 : 0);
    }
  }

  void begin(std::uint64_t fit_seed) {
    engine->begin_decision(rows, y_cost, y_metric, feasible,
                           st.budget.remaining(), fit_seed);
  }

  cloud::Dataset ds;
  OptimizationProblem problem;
  std::vector<ConstraintDef> constraints;
  eval::TableRunner runner;
  MetricRecordingRunner recorder;
  LoopState st;
  RootCache cache;
  std::unique_ptr<MultiConstraintEngine> engine;
  std::vector<std::uint32_t> rows;
  std::vector<double> y_cost;
  std::vector<std::vector<double>> y_metric;
  std::vector<char> feasible;
};

TEST(MultiConstraintEngine, SimulateIsAllocationFreeAfterWarmup) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  McEngineFixture fx(/*lookahead=*/2);
  fx.begin(util::derive_seed(4, 1));
  const auto roots = fx.engine->viable();
  ASSERT_FALSE(roots.empty());

  // Warm-up pass sizes every buffer (per-depth candidate lists, combo
  // buffers, model scratch).
  for (ConfigId r : roots) {
    (void)fx.engine->simulate(r, util::derive_seed(4, 1000003ULL + r));
  }

  util::AllocCountGuard guard;
  PathValue total{};
  for (ConfigId r : roots) {
    const PathValue v =
        fx.engine->simulate(r, util::derive_seed(4, 1000003ULL + r));
    total.reward += v.reward;
    total.cost += v.cost;
  }
  EXPECT_EQ(guard.delta(), 0U)
      << "multi-constraint simulate() touched the heap after warm-up";
  EXPECT_GT(total.cost, 0.0);
}

TEST(MultiConstraintEngine, SimulateIsDeterministic) {
  McEngineFixture fx(/*lookahead=*/1);
  fx.begin(util::derive_seed(4, 1));
  ASSERT_FALSE(fx.engine->viable().empty());
  const ConfigId root = fx.engine->viable().front();
  const PathValue a = fx.engine->simulate(root, 123);
  const PathValue b = fx.engine->simulate(root, 123);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(MultiConstraintEngine, RootCacheHitSkipsRefitBitIdentically) {
  McEngineFixture fx(/*lookahead=*/1);
  fx.begin(55);
  ASSERT_FALSE(fx.engine->viable().empty());
  const ConfigId root = fx.engine->viable().front();
  const PathValue cold = fx.engine->simulate(root, 99);
  const auto cold_preds = fx.engine->root_cost_predictions();
  EXPECT_EQ(fx.engine->cache_stats().hits, 0U);

  // The same root state + fit seed replays from the cache...
  fx.begin(55);
  EXPECT_EQ(fx.engine->cache_stats().hits, 1U);
  const PathValue warm = fx.engine->simulate(root, 99);
  // ... with bitwise-identical predictions and path values.
  const auto& warm_preds = fx.engine->root_cost_predictions();
  ASSERT_EQ(warm_preds.size(), cold_preds.size());
  for (std::size_t i = 0; i < cold_preds.size(); ++i) {
    EXPECT_EQ(warm_preds[i].mean, cold_preds[i].mean);
    EXPECT_EQ(warm_preds[i].stddev, cold_preds[i].stddev);
  }
  EXPECT_EQ(warm.reward, cold.reward);
  EXPECT_EQ(warm.cost, cold.cost);
}

TEST(MultiConstraintLynceus, SharedRootCacheKeepsTrajectoryIdentical) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  MultiConstraintOptions opts;
  opts.lookahead = 1;

  eval::TableRunner r0(ds, energy_metrics());
  const auto baseline = MultiConstraintLynceus({energy_constraint(26.0)}, opts)
                            .optimize(problem, r0, 42);

  RootCache::Options copts;
  copts.capacity = 64;
  RootCache cache(copts);
  opts.root_cache = &cache;
  eval::TableRunner r1(ds, energy_metrics());
  const auto first = MultiConstraintLynceus({energy_constraint(26.0)}, opts)
                         .optimize(problem, r1, 42);
  const std::uint64_t misses = cache.stats().misses;
  eval::TableRunner r2(ds, energy_metrics());
  const auto second = MultiConstraintLynceus({energy_constraint(26.0)}, opts)
                          .optimize(problem, r2, 42);

  EXPECT_EQ(cache.stats().hits, misses);
  EXPECT_GT(cache.stats().hits, 0U);
  EXPECT_EQ(history_ids(baseline), history_ids(first));
  EXPECT_EQ(history_ids(baseline), history_ids(second));
  EXPECT_EQ(baseline.recommendation, second.recommendation);
}

TEST(MultiConstraintLynceus, TwoConstraintsJointly) {
  const auto ds = testing::tiny_dataset();
  const auto sp = testing::tiny_space();
  const auto problem = testing::tiny_problem();
  // Second metric: "network" decreasing in a.
  auto metrics = [sp](space::ConfigId id) {
    return std::vector<double>{energy_of(*sp, id),
                               20.0 - 3.0 * sp->value(id, 0)};
  };
  ConstraintDef net;
  net.name = "network";
  net.metric_index = 1;
  net.threshold = [](ConfigId) { return 18.0; };  // rules out a = 0
  MultiConstraintLynceus opt({energy_constraint(30.0), net});
  eval::TableRunner runner(ds, metrics);
  const auto result = opt.optimize(problem, runner, 91);
  ASSERT_TRUE(result.recommendation.has_value());
  if (result.recommendation_feasible) {
    EXPECT_LE(energy_of(*sp, *result.recommendation), 30.0);
    EXPECT_LE(20.0 - 3.0 * sp->value(*result.recommendation, 0), 18.0);
  }
}

}  // namespace
}  // namespace lynceus::core

#include "core/constraints.hpp"

#include <gtest/gtest.h>

#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

/// Synthetic "energy" metric over the tiny space: grows with both
/// dimensions, so the energy cap rules out part of the cheap region and
/// forces a genuine trade-off.
double energy_of(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn energy_metrics() {
  const auto sp = testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{energy_of(*sp, id)};
  };
}

ConstraintDef energy_constraint(double cap) {
  ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

TEST(MultiConstraintOptions, Validation) {
  MultiConstraintOptions opts;
  opts.gh_points = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = MultiConstraintOptions{};
  opts.prune_weight = 1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(MultiConstraintLynceus, RequiresThresholdFunctions) {
  ConstraintDef c;
  c.name = "broken";
  EXPECT_THROW(MultiConstraintLynceus({c}), std::invalid_argument);
}

TEST(MultiConstraintLynceus, NameListsConstraintCount) {
  MultiConstraintLynceus opt({energy_constraint(30.0)});
  EXPECT_EQ(opt.name(), "Lynceus-MC(LA=1,I=1)");
}

TEST(MultiConstraintLynceus, RunnerMustProvideMetrics) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  eval::TableRunner runner(ds);  // no metrics function
  MultiConstraintLynceus opt({energy_constraint(30.0)});
  EXPECT_THROW((void)opt.optimize(problem, runner, 1), std::runtime_error);
}

TEST(MultiConstraintLynceus, RecommendationRespectsEnergyCap) {
  const auto ds = testing::tiny_dataset();
  const auto sp = testing::tiny_space();
  const auto problem = testing::tiny_problem();
  const double cap = 26.0;
  MultiConstraintLynceus opt({energy_constraint(cap)});
  int feasible_recs = 0;
  int total = 0;
  for (int t = 0; t < 8; ++t) {
    eval::TableRunner runner(ds, energy_metrics());
    const auto result = opt.optimize(problem, runner, 500 + t);
    ASSERT_TRUE(result.recommendation.has_value());
    if (result.recommendation_feasible) {
      ++feasible_recs;
      EXPECT_LE(energy_of(*sp, *result.recommendation), cap);
      EXPECT_LE(ds.runtime(*result.recommendation), ds.tmax_seconds());
    }
    ++total;
  }
  // The cap leaves feasible points; the optimizer must find them usually.
  EXPECT_GE(feasible_recs, total / 2);
}

TEST(MultiConstraintLynceus, TightCapShiftsRecommendation) {
  // With a loose cap the best config matches the single-constraint
  // optimum; a tight cap must push the recommendation elsewhere.
  const auto ds = testing::tiny_dataset();
  const auto sp = testing::tiny_space();
  const auto problem = testing::tiny_problem();
  MultiConstraintLynceus loose(
      {energy_constraint(1000.0)});  // never binding
  MultiConstraintLynceus tight({energy_constraint(22.0)});
  eval::TableRunner r1(ds, energy_metrics());
  eval::TableRunner r2(ds, energy_metrics());
  const auto a = loose.optimize(problem, r1, 31);
  const auto b = tight.optimize(problem, r2, 31);
  ASSERT_TRUE(a.recommendation && b.recommendation);
  if (b.recommendation_feasible) {
    EXPECT_LE(energy_of(*sp, *b.recommendation), 22.0);
    // The loose optimum violates the tight cap, so they must differ.
    if (energy_of(*sp, *a.recommendation) > 22.0) {
      EXPECT_NE(*a.recommendation, *b.recommendation);
    }
  }
}

TEST(MultiConstraintLynceus, DeterministicGivenSeed) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  MultiConstraintLynceus opt({energy_constraint(28.0)});
  eval::TableRunner r1(ds, energy_metrics());
  eval::TableRunner r2(ds, energy_metrics());
  const auto a = opt.optimize(problem, r1, 62);
  const auto b = opt.optimize(problem, r2, 62);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id);
  }
}

TEST(MultiConstraintLynceus, TwoConstraintsJointly) {
  const auto ds = testing::tiny_dataset();
  const auto sp = testing::tiny_space();
  const auto problem = testing::tiny_problem();
  // Second metric: "network" decreasing in a.
  auto metrics = [sp](space::ConfigId id) {
    return std::vector<double>{energy_of(*sp, id),
                               20.0 - 3.0 * sp->value(id, 0)};
  };
  ConstraintDef net;
  net.name = "network";
  net.metric_index = 1;
  net.threshold = [](ConfigId) { return 18.0; };  // rules out a = 0
  MultiConstraintLynceus opt({energy_constraint(30.0), net});
  eval::TableRunner runner(ds, metrics);
  const auto result = opt.optimize(problem, runner, 91);
  ASSERT_TRUE(result.recommendation.has_value());
  if (result.recommendation_feasible) {
    EXPECT_LE(energy_of(*sp, *result.recommendation), 30.0);
    EXPECT_LE(20.0 - 3.0 * sp->value(*result.recommendation, 0), 18.0);
  }
}

}  // namespace
}  // namespace lynceus::core

#include <gtest/gtest.h>

#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "core/sequential.hpp"
#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::core {
namespace {

/// Priors: the first `n` configurations, replayed from the dataset.
std::vector<Sample> priors_from_dataset(const cloud::Dataset& ds,
                                        std::size_t n) {
  std::vector<Sample> out;
  for (ConfigId id = 0; id < n; ++id) {
    Sample s;
    s.id = id;
    s.runtime_seconds = ds.runtime(id);
    s.cost = ds.cost(id);
    s.feasible = true;  // measurement trustworthy; Tmax re-derived
    out.push_back(s);
  }
  return out;
}

TEST(WarmStart, PriorsReplaceBootstrapAndCostNothing) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.prior_samples = priors_from_dataset(ds, 5);
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  st.bootstrap();
  EXPECT_EQ(st.samples.size(), 5U);
  EXPECT_DOUBLE_EQ(st.budget.spent(), 0.0);  // priors are free
  EXPECT_EQ(runner.runs_served(), 0U);       // nothing was re-run
  EXPECT_EQ(st.untested.size(), problem.space->size() - 5);
}

TEST(WarmStart, FeasibilityRejudgedAgainstNewDeadline) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.tmax_seconds = 1.0;  // nothing can meet this deadline
  problem.prior_samples = priors_from_dataset(ds, 3);
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  st.bootstrap();
  for (const auto& s : st.samples) EXPECT_FALSE(s.feasible);
}

TEST(WarmStart, CensoredPriorStaysInfeasible) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.tmax_seconds = 1e9;  // everything meets the deadline...
  auto priors = priors_from_dataset(ds, 2);
  priors[0].feasible = false;  // ...but this measurement was censored
  problem.prior_samples = priors;
  eval::TableRunner runner(ds);
  LoopState st(problem, runner, 3);
  st.bootstrap();
  EXPECT_FALSE(st.samples[0].feasible);
  EXPECT_TRUE(st.samples[1].feasible);
}

TEST(WarmStart, ValidationCatchesBadPriors) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.prior_samples = priors_from_dataset(ds, 2);
  problem.prior_samples[1].id =
      static_cast<ConfigId>(problem.space->size());  // out of range
  EXPECT_THROW(problem.validate(), std::invalid_argument);

  problem = testing::tiny_problem();
  problem.prior_samples = priors_from_dataset(ds, 2);
  problem.prior_samples[1].id = problem.prior_samples[0].id;  // duplicate
  EXPECT_THROW(problem.validate(), std::invalid_argument);

  problem = testing::tiny_problem();
  problem.prior_samples = priors_from_dataset(ds, 1);
  problem.prior_samples[0].cost = -1.0;
  EXPECT_THROW(problem.validate(), std::invalid_argument);
}

TEST(WarmStart, LynceusSpendsWholeBudgetOnNewExplorations) {
  const auto ds = testing::tiny_dataset();
  auto cold = testing::tiny_problem();
  auto warm = cold;
  warm.prior_samples = priors_from_dataset(ds, 6);

  LynceusOptions opts;
  opts.lookahead = 1;
  LynceusOptimizer lyn(opts);

  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto cold_result = lyn.optimize(cold, r1, 11);
  const auto warm_result = lyn.optimize(warm, r2, 11);

  // The warm run charges no bootstrap, so every dollar goes to new
  // exploration: it must try at least as many *new* configurations as the
  // cold run tried post-bootstrap.
  const std::size_t cold_new = cold_result.explorations() - cold.bootstrap_samples;
  const std::size_t warm_new = warm_result.explorations() - 6;
  EXPECT_GE(warm_new, cold_new);
  ASSERT_TRUE(warm_result.recommendation.has_value());
}

TEST(WarmStart, PriorConfigsNeverReRun) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.prior_samples = priors_from_dataset(ds, 8);
  BayesianOptimizer bo;
  eval::TableRunner runner(ds);
  const auto result = bo.optimize(problem, runner, 5);
  // The first 8 history entries are the priors; none may repeat later.
  std::set<ConfigId> prior_ids;
  for (std::size_t i = 0; i < 8; ++i) prior_ids.insert(result.history[i].id);
  for (std::size_t i = 8; i < result.history.size(); ++i) {
    EXPECT_EQ(prior_ids.count(result.history[i].id), 0U);
  }
}

}  // namespace
}  // namespace lynceus::core

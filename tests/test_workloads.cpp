#include "cloud/workloads.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cloud/catalog.hpp"

namespace lynceus::cloud {
namespace {

TEST(TensorflowSpace, Has384ConfigurationsOver5Dims) {
  const auto sp = tensorflow_space();
  EXPECT_EQ(sp->size(), 384U);  // paper §5.1.1
  EXPECT_EQ(sp->dim_count(), 5U);
}

TEST(TensorflowSpace, EveryClusterHasTable2VcpuTotal) {
  const auto sp = tensorflow_space();
  const std::set<double> allowed = {8, 16, 32, 48, 64, 80, 96, 112};
  const auto& catalog = t2_catalog();
  for (space::ConfigId id = 0; id < sp->size(); ++id) {
    const auto& vm = catalog[sp->levels(id)[3]];
    const double workers = sp->value(id, 4);
    EXPECT_TRUE(allowed.count(vm.vcpus * workers) > 0)
        << sp->describe(id);
  }
}

TEST(TensorflowSpace, ThirtyTwoClusterCompositions) {
  const auto sp = tensorflow_space();
  std::set<std::pair<std::size_t, std::size_t>> clusters;
  for (space::ConfigId id = 0; id < sp->size(); ++id) {
    clusters.insert({sp->levels(id)[3], sp->levels(id)[4]});
  }
  EXPECT_EQ(clusters.size(), 32U);  // paper §5.1.1
}

/// Shape properties of the synthetic TensorFlow datasets, asserted against
/// the published characteristics (paper Fig. 1a and §2.1).
class TensorflowDatasetShape : public ::testing::TestWithParam<TfModel> {};

TEST_P(TensorflowDatasetShape, MatchesPaperCharacteristics) {
  const Dataset ds = make_tensorflow_dataset(GetParam());
  const double opt = ds.optimal_cost();
  const auto costs = ds.all_costs();

  // Large cost spread (paper Fig. 1a: bad configurations are orders of
  // magnitude more expensive; our synthetic surfaces span 45x-200x, the
  // worst case being capped by the 10-minute timeout).
  const double worst = *std::max_element(costs.begin(), costs.end());
  EXPECT_GE(worst / opt, 30.0) << "cost spread too small";

  // Few close-to-optimal configurations: 5-20 within 2x of the optimum
  // (1.5-5% of 384). Allow a little slack around the published range.
  std::size_t near_optimal = 0;
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    if (ds.feasible(id) && ds.cost(id) <= 2.0 * opt) ++near_optimal;
  }
  EXPECT_GE(near_optimal, 2U);
  EXPECT_LE(near_optimal, 40U);

  // Roughly half the configurations satisfy the deadline (§5.2).
  EXPECT_NEAR(ds.feasible_fraction(), 0.5, 0.1);

  // Some configurations hit the 10-minute forced termination.
  std::size_t timeouts = 0;
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    if (ds.observation(id).timed_out) ++timeouts;
  }
  EXPECT_GT(timeouts, 10U);
  EXPECT_LT(timeouts, ds.size() * 7 / 10);
}

INSTANTIATE_TEST_SUITE_P(Models, TensorflowDatasetShape,
                         ::testing::Values(TfModel::CNN, TfModel::RNN,
                                           TfModel::Multilayer));

TEST(TensorflowDatasets, ThreeJobsWithDistinctSurfaces) {
  const auto all = make_tensorflow_datasets();
  ASSERT_EQ(all.size(), 3U);
  EXPECT_NE(all[0].optimal(), all[1].optimal());
}

TEST(ScoutSpace, PaperCardinality69) {
  EXPECT_EQ(scout_space()->size(), 69U);    // paper §5.1.2
  EXPECT_EQ(scout_space(true)->size(), 72U);  // literal grid reading
}

TEST(ScoutSpace, SizeCapsRespected) {
  const auto sp = scout_space();
  for (space::ConfigId id = 0; id < sp->size(); ++id) {
    const auto& lv = sp->levels(id);
    const double n = sp->value(id, 2);
    if (lv[1] == 1) {
      EXPECT_LE(n, 24.0) << sp->describe(id);
    }
    if (lv[1] == 2) {
      EXPECT_LE(n, 12.0) << sp->describe(id);
    }
  }
}

TEST(ScoutDatasets, EighteenJobsAllFeasibleSomewhere) {
  const auto all = make_scout_datasets();
  ASSERT_EQ(all.size(), 18U);
  for (const auto& ds : all) {
    EXPECT_EQ(ds.size(), 69U) << ds.job_name();
    EXPECT_GT(ds.feasible_fraction(), 0.3) << ds.job_name();
    EXPECT_LT(ds.feasible_fraction(), 0.7) << ds.job_name();
    EXPECT_GT(ds.optimal_cost(), 0.0) << ds.job_name();
  }
}

TEST(ScoutDatasets, DifferentJobsHaveDifferentOptima) {
  const auto all = make_scout_datasets();
  std::set<space::ConfigId> optima;
  for (const auto& ds : all) optima.insert(ds.optimal());
  // The jobs stress different resources, so the best cluster must vary.
  EXPECT_GE(optima.size(), 4U);
}

TEST(CherrypickSpace, PerJobCardinalities) {
  EXPECT_EQ(cherrypick_space("tpch", 66)->size(), 66U);
  EXPECT_EQ(cherrypick_space("spark-regression", 47)->size(), 47U);
  EXPECT_EQ(cherrypick_space("tpcds", 72)->size(), 72U);
}

TEST(CherrypickSpace, MaskIsDeterministicPerJob) {
  const auto a = cherrypick_space("terasort", 60);
  const auto b = cherrypick_space("terasort", 60);
  ASSERT_EQ(a->size(), b->size());
  for (space::ConfigId id = 0; id < a->size(); ++id) {
    EXPECT_EQ(a->levels(id), b->levels(id));
  }
}

TEST(CherrypickSpace, RejectsBadCardinality) {
  EXPECT_THROW((void)cherrypick_space("x", 0), std::invalid_argument);
  EXPECT_THROW((void)cherrypick_space("x", 73), std::invalid_argument);
}

TEST(CherrypickDatasets, CardinalitiesInPublishedRange) {
  const auto all = make_cherrypick_datasets();
  ASSERT_EQ(all.size(), 5U);
  for (const auto& ds : all) {
    EXPECT_GE(ds.size(), 47U) << ds.job_name();
    EXPECT_LE(ds.size(), 72U) << ds.job_name();
    EXPECT_GT(ds.feasible_fraction(), 0.3) << ds.job_name();
  }
}

TEST(Workloads, NoiseSeedChangesDatasets) {
  const Dataset a = make_tensorflow_dataset(TfModel::CNN, 0);
  const Dataset b = make_tensorflow_dataset(TfModel::CNN, 99);
  bool any_diff = false;
  for (space::ConfigId id = 0; id < a.size(); ++id) {
    if (a.runtime(id) != b.runtime(id)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace lynceus::cloud

/// Property sweep: invariants that must hold for EVERY optimizer on EVERY
/// workload, checked across a grid of (Scout job, optimizer) pairs via
/// parameterized tests. These are the contracts downstream users rely on:
///   * accounting: budget_spent equals the sum of sampled costs;
///   * no configuration is ever profiled twice;
///   * the recommendation is the cheapest feasible sample in the history
///     (or the cheapest overall when nothing was feasible);
///   * NEX equals the history length;
///   * full determinism given the seed.

#include <gtest/gtest.h>

#include <set>

#include "cloud/workloads.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"

namespace lynceus {
namespace {

struct SweepCase {
  std::size_t job_index;
  enum class Kind { Rnd, Bo, Lynceus0, Lynceus1 } kind;

  [[nodiscard]] eval::OptimizerSpec spec() const {
    switch (kind) {
      case Kind::Rnd: return eval::rnd_spec();
      case Kind::Bo: return eval::bo_spec();
      case Kind::Lynceus0: return eval::lynceus_spec(0);
      case Kind::Lynceus1: return eval::lynceus_spec(1, 16);
    }
    throw std::logic_error("unreachable");
  }

  [[nodiscard]] std::string label() const {
    return "job" + std::to_string(job_index) + "_" + spec().label;
  }
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = info.param.label();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class OptimizerPropertySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const cloud::Dataset& dataset(std::size_t job_index) {
    static const std::vector<cloud::Dataset> all = [] {
      std::vector<cloud::Dataset> v;
      const auto specs = cloud::scout_job_specs();
      for (std::size_t i : {1U, 7U, 12U}) {
        v.push_back(cloud::make_scout_dataset(specs[i]));
      }
      return v;
    }();
    return all[job_index];
  }
};

TEST_P(OptimizerPropertySweep, InvariantsHold) {
  const auto& ds = dataset(GetParam().job_index);
  const auto problem = eval::make_problem(ds, 3.0);
  const auto spec = GetParam().spec();

  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    eval::TableRunner runner(ds);
    auto optimizer = spec.make();
    const auto result = optimizer->optimize(problem, runner, seed);

    // Accounting: spent == sum of sample costs (no setup model here).
    double total = 0.0;
    for (const auto& s : result.history) total += s.cost;
    EXPECT_NEAR(result.budget_spent, total, 1e-9) << spec.label;

    // NEX == history length, and the runner served exactly that many runs.
    EXPECT_EQ(result.explorations(), result.history.size());

    // No repeats.
    std::set<core::ConfigId> seen;
    for (const auto& s : result.history) {
      EXPECT_TRUE(seen.insert(s.id).second) << spec.label;
    }

    // Sample values match the dataset (the runner is a pure replay).
    for (const auto& s : result.history) {
      EXPECT_DOUBLE_EQ(s.cost, ds.cost(s.id));
      EXPECT_EQ(s.feasible, ds.feasible(s.id));
    }

    // Recommendation optimality among sampled configurations.
    ASSERT_TRUE(result.recommendation.has_value());
    bool any_feasible = false;
    double best_feasible = 1e300;
    double best_any = 1e300;
    core::ConfigId best_feasible_id = 0;
    core::ConfigId best_any_id = 0;
    for (const auto& s : result.history) {
      if (s.cost < best_any) {
        best_any = s.cost;
        best_any_id = s.id;
      }
      if (s.feasible && s.cost < best_feasible) {
        best_feasible = s.cost;
        best_feasible_id = s.id;
        any_feasible = true;
      }
    }
    EXPECT_EQ(*result.recommendation,
              any_feasible ? best_feasible_id : best_any_id)
        << spec.label;
    EXPECT_EQ(result.recommendation_feasible, any_feasible);
  }
}

TEST_P(OptimizerPropertySweep, DeterministicGivenSeed) {
  const auto& ds = dataset(GetParam().job_index);
  const auto problem = eval::make_problem(ds, 2.0);
  const auto spec = GetParam().spec();

  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto a = spec.make()->optimize(problem, r1, 77);
  const auto b = spec.make()->optimize(problem, r2, 77);
  ASSERT_EQ(a.history.size(), b.history.size()) << spec.label;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << spec.label;
  }
  EXPECT_EQ(a.recommendation, b.recommendation);
}

INSTANTIATE_TEST_SUITE_P(
    JobsByOptimizer, OptimizerPropertySweep,
    ::testing::Values(
        SweepCase{0, SweepCase::Kind::Rnd},
        SweepCase{0, SweepCase::Kind::Bo},
        SweepCase{0, SweepCase::Kind::Lynceus0},
        SweepCase{0, SweepCase::Kind::Lynceus1},
        SweepCase{1, SweepCase::Kind::Rnd},
        SweepCase{1, SweepCase::Kind::Bo},
        SweepCase{1, SweepCase::Kind::Lynceus0},
        SweepCase{1, SweepCase::Kind::Lynceus1},
        SweepCase{2, SweepCase::Kind::Rnd},
        SweepCase{2, SweepCase::Kind::Bo},
        SweepCase{2, SweepCase::Kind::Lynceus0},
        SweepCase{2, SweepCase::Kind::Lynceus1}),
    case_name);

}  // namespace
}  // namespace lynceus

#include "eval/disjoint.hpp"

#include <gtest/gtest.h>

#include "cloud/workloads.hpp"
#include "test_helpers.hpp"

namespace lynceus::eval {
namespace {

TEST(Disjoint, ValidatesDimensionGroups) {
  const auto ds = testing::tiny_dataset();
  EXPECT_THROW((void)disjoint_optimization_cno(ds, {}, {1}),
               std::invalid_argument);
  EXPECT_THROW((void)disjoint_optimization_cno(ds, {0}, {}),
               std::invalid_argument);
}

TEST(Disjoint, OneCnoPerReferenceCloud) {
  const auto ds = testing::tiny_dataset();
  // Treat dim 0 as the parameter, dim 1 (6 levels) as the cloud.
  const auto cnos = disjoint_optimization_cno(ds, {0}, {1});
  EXPECT_EQ(cnos.size(), 6U);
  for (double c : cnos) EXPECT_GE(c, 1.0 - 1e-12);
}

TEST(Disjoint, SeparableSurfaceAlwaysFindsOptimum) {
  // Cost = f(a) + g(b) with everything feasible: disjoint optimization is
  // exact on separable surfaces, so every reference cloud yields CNO = 1.
  auto sp = std::make_shared<space::ConfigSpace>(
      "separable", std::vector<space::ParamDomain>{
                       space::numeric_param("a", {0, 1, 2, 3}),
                       space::numeric_param("b", {0, 1, 2})});
  std::vector<cloud::Observation> obs(sp->size());
  for (std::size_t i = 0; i < sp->size(); ++i) {
    const auto id = static_cast<space::ConfigId>(i);
    const double a = sp->value(id, 0);
    const double b = sp->value(id, 1);
    obs[i] = {100.0 + 10.0 * (a - 1.0) * (a - 1.0) + 5.0 * b, 36.0, false};
  }
  const cloud::Dataset ds("separable", sp, std::move(obs), 1e9);
  const auto cnos = disjoint_optimization_cno(ds, {0}, {1});
  for (double c : cnos) EXPECT_NEAR(c, 1.0, 1e-9);
}

TEST(Disjoint, TensorflowSurfacesShowJointInteractions) {
  // Fig. 1b of the paper: ideal disjoint optimization misses the joint
  // optimum more often than not, with a meaningful cost tail.
  for (cloud::TfModel m :
       {cloud::TfModel::CNN, cloud::TfModel::RNN, cloud::TfModel::Multilayer}) {
    const auto ds = cloud::make_tensorflow_dataset(m);
    const auto cnos = disjoint_optimization_cno(ds, {0, 1, 2}, {3, 4});
    EXPECT_EQ(cnos.size(), 32U);  // one per cluster composition

    std::size_t found_optimum = 0;
    double worst = 0.0;
    for (double c : cnos) {
      if (c <= 1.0 + 1e-9) ++found_optimum;
      worst = std::max(worst, c);
    }
    // "disjoint optimization finds the overall optimal configuration less
    // than 50% of the times" (§2.1) — our synthetic surfaces land at
    // 34%-62% depending on the job.
    EXPECT_LT(static_cast<double>(found_optimum) / cnos.size(), 0.7)
        << cloud::to_string(m);
    // And there is a real price for missing it (the paper's measured
    // surfaces show up to 3.7x; ours are milder but clearly > 1).
    EXPECT_GT(worst, 1.1) << cloud::to_string(m);
  }
}

}  // namespace
}  // namespace lynceus::eval

/// Unit + stress coverage for util::SpscQueue — the lanes wiring the
/// network front-end's acceptor/transport/service-loop threads
/// (src/net/tuning_server.hpp). Stress cases run under the `concurrency`
/// ctest label, so the TSan CI leg checks the two-index Lamport protocol
/// (and its cached-cursor fast path) for ordering bugs.

#include "util/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace lynceus::util {
namespace {

TEST(SpscQueue, SingleThreadedFifoAndEmptyFull) {
  SpscQueue<int> q(3);  // rounds up to 4
  EXPECT_EQ(q.capacity(), 4U);
  int out = 0;
  EXPECT_FALSE(q.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(q.try_pop(out));
  // Wrap-around lap behaves identically.
  for (int i = 10; i < 14; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscQueue, RejectsZeroCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), std::invalid_argument);
}

TEST(SpscQueue, FailedPushDoesNotConsumeMoveOnlyValue) {
  SpscQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(q.try_push(std::make_unique<int>(2)));
  auto keep = std::make_unique<int>(3);
  EXPECT_FALSE(q.try_push(std::move(keep)));
  ASSERT_NE(keep, nullptr);  // only moved from on success
  EXPECT_EQ(*keep, 3);
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out, 1);
}

/// One producer, one consumer, tiny ring: every element must arrive
/// exactly once, in order — the whole point of an SPSC lane. Small
/// capacity keeps the full/empty edges and cached-cursor refreshes hot.
void stress(std::size_t capacity, std::size_t items) {
  SpscQueue<std::uint64_t> q(capacity);
  std::thread producer([&] {
    Backoff backoff;
    for (std::uint64_t i = 0; i < items;) {
      if (q.try_push(std::uint64_t(i))) {
        ++i;
        backoff.reset();
      } else {
        backoff.spin();
      }
    }
  });
  std::uint64_t expected = 0;
  Backoff backoff;
  while (expected < items) {
    std::uint64_t v = 0;
    if (q.try_pop(v)) {
      ASSERT_EQ(v, expected);  // in order, none lost or duplicated
      ++expected;
      backoff.reset();
    } else {
      backoff.spin();
    }
  }
  std::uint64_t leftover = 0;
  EXPECT_FALSE(q.try_pop(leftover));
  producer.join();
}

TEST(SpscQueue, StressTinyCapacity) { stress(2, 200'000); }

TEST(SpscQueue, StressTypicalLaneCapacity) { stress(1024, 200'000); }

/// Non-trivial payloads (heap-owning strings) cross the lane intact —
/// the net layer moves encoded frames and decoded requests through it.
TEST(SpscQueue, StressStringPayload) {
  SpscQueue<std::string> q(8);
  constexpr std::size_t kItems = 20'000;
  std::thread producer([&] {
    Backoff backoff;
    for (std::size_t i = 0; i < kItems;) {
      if (q.try_push(std::to_string(i) + "-payload")) {
        ++i;
        backoff.reset();
      } else {
        backoff.spin();
      }
    }
  });
  Backoff backoff;
  for (std::size_t i = 0; i < kItems;) {
    std::string v;
    if (q.try_pop(v)) {
      ASSERT_EQ(v, std::to_string(i) + "-payload");
      ++i;
      backoff.reset();
    } else {
      backoff.spin();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace lynceus::util

/// End-to-end integration tests: full optimization campaigns on real
/// (synthetic) workload datasets, checking the qualitative claims the
/// paper's evaluation rests on — with run counts small enough for CI.

#include <gtest/gtest.h>

#include "cloud/workloads.hpp"
#include "core/lynceus.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "math/stats.hpp"
#include "model/gp.hpp"

namespace lynceus {
namespace {

/// Scout-sized space (69 configs) keeps full Lynceus runs fast.
cloud::Dataset scout_job() {
  return cloud::make_scout_dataset(cloud::scout_job_specs()[3]);  // kmeans
}

TEST(Integration, LynceusBeatsRandomOnAverage) {
  const auto ds = scout_job();
  eval::ExperimentConfig cfg;
  cfg.runs = 12;
  const auto lyn = run_experiment(ds, eval::lynceus_spec(1), cfg);
  const auto rnd = run_experiment(ds, eval::rnd_spec(), cfg);
  EXPECT_LE(math::mean(lyn.cnos()), math::mean(rnd.cnos()) + 0.15);
}

TEST(Integration, LynceusCompetitiveWithBo) {
  // The paper's headline: Lynceus finds cheaper configurations than BO.
  // With only a dozen runs we assert "not worse by much" to keep the test
  // robust; the benches reproduce the full comparison.
  const auto ds = scout_job();
  eval::ExperimentConfig cfg;
  cfg.runs = 12;
  const auto lyn = run_experiment(ds, eval::lynceus_spec(1), cfg);
  const auto bo = run_experiment(ds, eval::bo_spec(), cfg);
  EXPECT_LE(math::mean(lyn.cnos()), math::mean(bo.cnos()) + 0.2);
}

TEST(Integration, LynceusExploresMoreThanBoUnderSameBudget) {
  // Budget-awareness: by steering away from expensive profiling runs,
  // Lynceus tests more configurations with the same budget (paper Fig. 9).
  const auto ds = scout_job();
  eval::ExperimentConfig cfg;
  cfg.runs = 10;
  cfg.budget_multiplier = 3.0;
  const auto lyn = run_experiment(ds, eval::lynceus_spec(0), cfg);
  const auto bo = run_experiment(ds, eval::bo_spec(), cfg);
  EXPECT_GT(lyn.mean_nex(), bo.mean_nex() * 0.9);
}

TEST(Integration, BudgetScalesExplorations) {
  const auto ds = scout_job();
  eval::ExperimentConfig low;
  low.runs = 8;
  low.budget_multiplier = 1.0;
  eval::ExperimentConfig high = low;
  high.budget_multiplier = 5.0;
  const auto lyn_low = run_experiment(ds, eval::lynceus_spec(0), low);
  const auto lyn_high = run_experiment(ds, eval::lynceus_spec(0), high);
  EXPECT_GT(lyn_high.mean_nex(), lyn_low.mean_nex());
}

TEST(Integration, CnoAlwaysAtLeastOne) {
  const auto ds = scout_job();
  eval::ExperimentConfig cfg;
  cfg.runs = 8;
  for (const auto& spec :
       {eval::rnd_spec(), eval::bo_spec(), eval::lynceus_spec(1)}) {
    const auto result = run_experiment(ds, spec, cfg);
    for (const auto& r : result.runs) {
      EXPECT_GE(r.cno, 1.0 - 1e-9) << spec.label;
    }
  }
}

TEST(Integration, TracesEndAtFinalCno) {
  const auto ds = scout_job();
  eval::ExperimentConfig cfg;
  cfg.runs = 6;
  const auto result = run_experiment(ds, eval::lynceus_spec(1), cfg);
  for (const auto& r : result.runs) {
    ASSERT_FALSE(r.cno_trace.empty());
    // The recommendation is the best feasible config tried, so the last
    // trace entry equals the final CNO whenever a feasible config was seen.
    EXPECT_NEAR(r.cno_trace.back(), r.cno, 1e-9);
  }
}

TEST(Integration, TensorflowSmokeRunWithScreening) {
  // One full Lynceus LA=1 run on the 384-point CNN dataset with root
  // screening — the configuration the benches use, at smoke-test scale.
  const auto ds = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  const auto problem = eval::make_problem(ds, 1.0);
  eval::TableRunner runner(ds);
  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 16;
  core::LynceusOptimizer lyn(opts);
  const auto result = lyn.optimize(problem, runner, 7);
  ASSERT_TRUE(result.recommendation.has_value());
  EXPECT_GE(result.explorations(), problem.bootstrap_samples);
  EXPECT_GE(eval::cno(ds, result), 1.0 - 1e-9);
}

TEST(Integration, GpBackedLynceusRuns) {
  // Footnote 1 of the paper: Lynceus can operate with a GP model.
  const auto ds = scout_job();
  const auto problem = eval::make_problem(ds, 2.0);
  eval::TableRunner runner(ds);
  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 8;
  opts.model_factory = [] {
    return std::make_unique<model::GaussianProcess>();
  };
  core::LynceusOptimizer lyn(opts);
  const auto result = lyn.optimize(problem, runner, 11);
  ASSERT_TRUE(result.recommendation.has_value());
}

}  // namespace
}  // namespace lynceus

#include "cloud/tensorflow_job.hpp"

#include <gtest/gtest.h>

#include "cloud/catalog.hpp"

namespace lynceus::cloud {
namespace {

const VmType& vm(const char* name) {
  static std::vector<VmType> cache;
  const auto found = find_vm(t2_catalog(), name);
  EXPECT_TRUE(found.has_value()) << name;
  cache.push_back(*found);
  return cache.back();
}

TEST(TensorflowJob, DeterministicRuntime) {
  const TensorflowJob job(TfModel::CNN);
  const auto& v = vm("t2.xlarge");
  const double a = job.runtime_seconds(1e-4, 256, TrainingMode::Sync, v, 8);
  const double b = job.runtime_seconds(1e-4, 256, TrainingMode::Sync, v, 8);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(TensorflowJob, RuntimeCappedAtTimeout) {
  const TensorflowJob job(TfModel::RNN);
  const auto& v = vm("t2.small");
  // Tiny learning rate on one small cluster: certain timeout.
  const double t = job.runtime_seconds(1e-5, 16, TrainingMode::Sync, v, 8);
  EXPECT_LE(t, TensorflowJob::kTimeoutSeconds);
  EXPECT_TRUE(job.times_out(1e-5, 16, TrainingMode::Sync, v, 8));
}

TEST(TensorflowJob, GoodConfigDoesNotTimeOut) {
  const TensorflowJob job(TfModel::Multilayer);
  const auto& v = vm("t2.medium");
  EXPECT_FALSE(job.times_out(1e-3, 256, TrainingMode::Async, v, 8));
}

TEST(TensorflowJob, SlowerLearningRateIsSlower) {
  const TensorflowJob job(TfModel::Multilayer);
  const auto& v = vm("t2.xlarge");
  const double fast = job.runtime_seconds(1e-3, 256, TrainingMode::Sync, v, 4);
  const double slow = job.runtime_seconds(1e-5, 256, TrainingMode::Sync, v, 4);
  EXPECT_LT(fast, slow);
}

TEST(TensorflowJob, AsyncStalenessHurtsLargeClustersAtHighLr) {
  const TensorflowJob job(TfModel::RNN);
  const auto& v = vm("t2.small");
  // At lr=1e-3 async, 112 workers suffer heavy staleness vs 16 workers —
  // so much that the large cluster is not even faster despite 7x the
  // hardware (it typically times out).
  const double small_cluster =
      job.runtime_seconds(1e-3, 16, TrainingMode::Async, v, 16);
  const double big_cluster =
      job.runtime_seconds(1e-3, 16, TrainingMode::Async, v, 112);
  EXPECT_GE(big_cluster, small_cluster * 0.9);
}

TEST(TensorflowJob, ValidatesArguments) {
  const TensorflowJob job(TfModel::CNN);
  const auto& v = vm("t2.small");
  EXPECT_THROW(
      (void)job.runtime_seconds(1e-2, 16, TrainingMode::Sync, v, 8),
      std::invalid_argument);
  EXPECT_THROW(
      (void)job.runtime_seconds(1e-3, 64, TrainingMode::Sync, v, 8),
      std::invalid_argument);
  EXPECT_THROW(
      (void)job.runtime_seconds(1e-3, 16, TrainingMode::Sync, v, 0),
      std::invalid_argument);
}

TEST(TensorflowJob, ClusterPriceIncludesParameterServer) {
  const auto& v = vm("t2.medium");
  EXPECT_NEAR(TensorflowJob::cluster_price_per_hour(v, 8),
              9 * v.price_per_hour, 1e-12);
}

TEST(TensorflowJob, NoiseSeedChangesSurface) {
  const TensorflowJob a(TfModel::CNN, 0);
  const TensorflowJob b(TfModel::CNN, 1);
  const auto& v = vm("t2.xlarge");
  EXPECT_NE(a.runtime_seconds(1e-4, 256, TrainingMode::Sync, v, 8),
            b.runtime_seconds(1e-4, 256, TrainingMode::Sync, v, 8));
}

TEST(TensorflowJob, ModelsDiffer) {
  const auto& v = vm("t2.xlarge");
  const TensorflowJob cnn(TfModel::CNN);
  const TensorflowJob mlp(TfModel::Multilayer);
  EXPECT_NE(cnn.runtime_seconds(1e-4, 256, TrainingMode::Sync, v, 8),
            mlp.runtime_seconds(1e-4, 256, TrainingMode::Sync, v, 8));
  EXPECT_EQ(to_string(TfModel::CNN), "cnn");
  EXPECT_EQ(to_string(TfModel::RNN), "rnn");
  EXPECT_EQ(to_string(TfModel::Multilayer), "multilayer");
}

TEST(TfJobParams, PerModelSweetSpots) {
  // CNN prefers lr=1e-4; Multilayer prefers lr=1e-3 (see tf_job_params).
  const auto cnn = tf_job_params(TfModel::CNN);
  EXPECT_LT(cnn.lr_factor_1e4, cnn.lr_factor_1e3);
  const auto mlp = tf_job_params(TfModel::Multilayer);
  EXPECT_LT(mlp.lr_factor_1e3, mlp.lr_factor_1e4);
  // lr=1e-5 is always far off the sweet spot.
  for (TfModel m : {TfModel::CNN, TfModel::RNN, TfModel::Multilayer}) {
    const auto p = tf_job_params(m);
    EXPECT_GT(p.lr_factor_1e5, 4.0);
  }
}

}  // namespace
}  // namespace lynceus::cloud

/// Differential / property harness for the incremental ensemble refit
/// (ROADMAP "Incremental ensemble refit"; see the determinism contract in
/// core/lookahead.hpp).
///
/// Three layers of pinning:
///  1. model-level: randomized comparison of incremental vs from-scratch
///     ensemble fits across seeds, sample counts and feature spaces —
///     predictions must agree within a tolerance *calibrated against the
///     from-scratch fit's own seed-to-seed variability* (the incremental
///     update changes the bootstrap composition, exactly like refitting
///     with another seed does, so that variability is the natural yard
///     stick), plus bitwise repeatability and assign_fitted identity;
///  2. trajectory-level: full optimizer runs with the flag on, measured
///     against both naive references (reference::NaiveLynceus,
///     reference::NaiveMultiConstraintLynceus) on the TF-CNN and Scout
///     workloads — recommendation-quality (relative-regret) parity, not
///     id-by-id equality, which the flag deliberately does not promise;
///  3. guards: the flag-off path stays bit-identical to the references,
///     engine-level defaults are env-independent, two flag-on runs are
///     byte-identical, and a warm-started flag-on run through a
///     model-storing RootCache replays the cache-off trajectory exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "cloud/workloads.hpp"
#include "core/bo.hpp"
#include "core/constraints.hpp"
#include "core/constraints_reference.hpp"
#include "core/lookahead.hpp"
#include "core/lookahead_reference.hpp"
#include "core/lynceus.hpp"
#include "core/sequential.hpp"
#include "eval/runner.hpp"
#include "model/bagging.hpp"
#include "model/gp.hpp"
#include "test_helpers.hpp"
#include "util/alloc_count.hpp"
#include "util/rng.hpp"

namespace lynceus::core {
namespace {

std::vector<ConfigId> history_ids(const OptimizerResult& r) {
  std::vector<ConfigId> out;
  for (const auto& s : r.history) out.push_back(s.id);
  return out;
}

// ---------------------------------------------------------------------------
// Model level: incremental vs from-scratch ensembles
// ---------------------------------------------------------------------------

struct ModelCase {
  const char* name;
  cloud::Dataset ds;
};

std::vector<ModelCase> model_cases() {
  std::vector<ModelCase> cases;
  cases.push_back({"tinybowl", testing::tiny_dataset()});
  cases.push_back(
      {"tf_cnn", cloud::make_tensorflow_dataset(cloud::TfModel::CNN)});
  return cases;
}

/// Mean absolute difference of the predicted means over the whole space.
double mean_abs_diff(const std::vector<model::Prediction>& a,
                     const std::vector<model::Prediction>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(a[i].mean - b[i].mean);
  }
  return acc / static_cast<double>(a.size());
}

/// Draws `n` training samples (with repetition) from the dataset.
void draw_samples(const cloud::Dataset& ds, std::size_t n, std::uint64_t seed,
                  std::vector<std::uint32_t>& rows, std::vector<double>& y) {
  util::Rng rng(seed);
  rows.clear();
  y.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<space::ConfigId>(rng.below(ds.size()));
    rows.push_back(id);
    y.push_back(ds.cost(id));
  }
}

/// The documented agreement tolerance: the incremental fit may deviate
/// from the from-scratch fit by at most 3x the from-scratch fit's own
/// seed-to-seed variability, plus 2% of the observed target range as an
/// absolute floor (guards against a near-zero calibration baseline).
constexpr double kVariabilityFactor = 3.0;
constexpr double kRangeFloor = 0.02;

TEST(IncrementalRefitModel, MatchesScratchWithinCalibratedTolerance) {
  for (const auto& mc : model_cases()) {
    const model::FeatureMatrix fm(mc.ds.space());
    std::vector<std::uint32_t> rows;
    std::vector<double> y;
    for (const std::size_t n : {8UL, 16UL}) {
      for (const std::size_t appends : {1UL, 3UL}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
          draw_samples(mc.ds, n + appends, util::derive_seed(seed, n), rows,
                       y);
          const std::vector<std::uint32_t> base_rows(rows.begin(),
                                                     rows.end() - appends);
          const std::vector<double> base_y(y.begin(), y.end() - appends);

          // From-scratch fit on the full n+appends samples.
          model::BaggingEnsemble scratch;
          scratch.fit(fm, rows, y, seed);
          std::vector<model::Prediction> scratch_preds;
          scratch.predict_all(fm, scratch_preds);

          // Calibration: the same from-scratch fit under a different seed.
          model::BaggingEnsemble scratch_alt;
          scratch_alt.fit(fm, rows, y, seed + 101);
          std::vector<model::Prediction> alt_preds;
          scratch_alt.predict_all(fm, alt_preds);

          // Incremental: fit the base samples, append the rest one by one.
          model::BaggingEnsemble inc;
          ASSERT_TRUE(
              inc.enable_incremental(static_cast<unsigned>(appends)));
          inc.fit(fm, base_rows, base_y, seed);
          for (std::size_t j = 0; j < appends; ++j) {
            ASSERT_TRUE(inc.append_and_update(
                fm, rows[n + j], y[n + j],
                util::derive_seed(seed, 1000 + j)));
          }
          ASSERT_TRUE(inc.incremental_ready());
          std::vector<model::Prediction> inc_preds;
          inc.predict_all(fm, inc_preds);

          double lo = y.front();
          double hi = y.front();
          for (double v : y) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
          const double baseline = mean_abs_diff(alt_preds, scratch_preds);
          const double tolerance = std::max(kVariabilityFactor * baseline,
                                            kRangeFloor * (hi - lo));
          const double diff = mean_abs_diff(inc_preds, scratch_preds);
          EXPECT_LE(diff, tolerance)
              << mc.name << " n=" << n << " appends=" << appends
              << " seed=" << seed << " (seed-to-seed baseline " << baseline
              << ")";
        }
      }
    }
  }
}

TEST(IncrementalRefitModel, AppendsAreBitwiseRepeatable) {
  const auto ds = testing::tiny_dataset();
  const model::FeatureMatrix fm(ds.space());
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  draw_samples(ds, 12, 3, rows, y);

  auto run = [&](std::vector<model::Prediction>& out) {
    model::BaggingEnsemble ens;
    ASSERT_TRUE(ens.enable_incremental(2));
    ens.fit(fm, {rows.begin(), rows.end() - 2}, {y.begin(), y.end() - 2}, 9);
    ASSERT_TRUE(ens.append_and_update(fm, rows[10], y[10], 555));
    ASSERT_TRUE(ens.append_and_update(fm, rows[11], y[11], 556));
    ens.predict_all(fm, out);
  };
  std::vector<model::Prediction> a;
  std::vector<model::Prediction> b;
  run(a);
  run(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean, b[i].mean) << i;
    EXPECT_EQ(a[i].stddev, b[i].stddev) << i;
  }
}

TEST(IncrementalRefitModel, AssignFittedIsBitwiseIdentical) {
  const auto ds = testing::tiny_dataset();
  const model::FeatureMatrix fm(ds.space());
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  draw_samples(ds, 10, 7, rows, y);

  model::BaggingEnsemble src;
  ASSERT_TRUE(src.enable_incremental(2));
  src.fit(fm, rows, y, 21);
  ASSERT_TRUE(src.append_and_update(fm, 3, ds.cost(3), 777));

  model::BaggingEnsemble dst;
  ASSERT_TRUE(dst.enable_incremental(2));
  ASSERT_TRUE(dst.assign_fitted(src));
  ASSERT_TRUE(dst.incremental_ready());

  std::vector<model::Prediction> from_src;
  std::vector<model::Prediction> from_dst;
  src.predict_all(fm, from_src);
  dst.predict_all(fm, from_dst);
  for (std::size_t i = 0; i < from_src.size(); ++i) {
    EXPECT_EQ(from_src[i].mean, from_dst[i].mean) << i;
    EXPECT_EQ(from_src[i].stddev, from_dst[i].stddev) << i;
  }

  // The copy then diverges independently: appending to dst must not touch
  // src (deep, buffer-reusing copy, not aliasing).
  ASSERT_TRUE(dst.append_and_update(fm, 5, ds.cost(5), 778));
  std::vector<model::Prediction> src_after;
  src.predict_all(fm, src_after);
  for (std::size_t i = 0; i < from_src.size(); ++i) {
    EXPECT_EQ(from_src[i].mean, src_after[i].mean) << i;
  }
}

// A branch model in the engines is populated exclusively via
// assign_fitted() — it never runs fit() itself — yet its appends must
// honor the zero-allocation guarantee, including the re-splitting path
// (the split-scan scratch sizing has to travel with the assignment).
TEST(IncrementalRefitModel, AssignOnlyModelAppendsAreAllocationFree) {
  if (!util::alloc_count_available()) {
    GTEST_SKIP() << "allocation-counting hooks not linked";
  }
  const auto ds = testing::tiny_dataset();
  const model::FeatureMatrix fm(ds.space());
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  draw_samples(ds, 12, 5, rows, y);

  model::BaggingEnsemble src;
  ASSERT_TRUE(src.enable_incremental(3));
  src.fit(fm, rows, y, 17);

  model::BaggingEnsemble dst;
  ASSERT_TRUE(dst.enable_incremental(3));
  ASSERT_TRUE(dst.assign_fitted(src));

  util::AllocCountGuard guard;
  ASSERT_TRUE(dst.append_and_update(fm, 2, ds.cost(2), 901));
  ASSERT_TRUE(dst.append_and_update(fm, 7, ds.cost(7), 902));
  ASSERT_TRUE(dst.append_and_update(fm, 13, ds.cost(13), 903));
  EXPECT_EQ(guard.delta(), 0U)
      << "append_and_update on an assign_fitted-only model touched the heap";
}

TEST(IncrementalRefitModel, GaussianProcessDeclines) {
  model::GaussianProcess gp;
  EXPECT_FALSE(gp.enable_incremental(2));
  EXPECT_FALSE(gp.incremental_ready());
  const auto ds = testing::tiny_dataset();
  const model::FeatureMatrix fm(ds.space());
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  draw_samples(ds, 6, 2, rows, y);
  gp.fit(fm, rows, y, 4);
  EXPECT_FALSE(gp.append_and_update(fm, 1, ds.cost(1), 9));
}

TEST(IncrementalRefitModel, UnfittedOrUncapturedEnsembleDeclines) {
  const auto ds = testing::tiny_dataset();
  const model::FeatureMatrix fm(ds.space());
  model::BaggingEnsemble ens;
  // No capture enabled: append must refuse even after a fit.
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  draw_samples(ds, 6, 2, rows, y);
  ens.fit(fm, rows, y, 4);
  EXPECT_FALSE(ens.incremental_ready());
  EXPECT_FALSE(ens.append_and_update(fm, 1, ds.cost(1), 9));
  // Capture enabled but not yet fitted: also refuse.
  model::BaggingEnsemble fresh;
  ASSERT_TRUE(fresh.enable_incremental(1));
  EXPECT_FALSE(fresh.incremental_ready());
  EXPECT_FALSE(fresh.append_and_update(fm, 1, ds.cost(1), 9));
}

// ---------------------------------------------------------------------------
// Trajectory level: flag-on optimizer vs the naive references
// ---------------------------------------------------------------------------

/// Cheapest deadline-feasible cost of the dataset (the regret zero point).
double best_feasible_cost(const cloud::Dataset& ds) {
  double best = -1.0;
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    if (!ds.feasible(id)) continue;
    if (best < 0.0 || ds.cost(id) < best) best = ds.cost(id);
  }
  return best;
}

/// Relative regret of a run's recommendation; an absent or infeasible
/// recommendation counts as the 100% cap.
double rel_regret(const cloud::Dataset& ds, const OptimizerResult& r) {
  const double best = best_feasible_cost(ds);
  if (!r.recommendation || !r.recommendation_feasible || best <= 0.0) {
    return 1.0;
  }
  return std::min(1.0, (ds.cost(*r.recommendation) - best) / best);
}

/// Trajectory-quality parity bound: over the seed set, the flag-on
/// optimizer's mean relative regret may exceed the naive reference's by at
/// most this many percentage points (the references themselves move more
/// than this between adjacent seeds).
constexpr double kRegretSlack = 0.10;

TEST(IncrementalRefitTrajectory, SingleConstraintParityVsNaiveReference) {
  struct Workload {
    const char* name;
    cloud::Dataset ds;
    double b;
  };
  const Workload workloads[] = {
      {"scout_0", cloud::make_scout_datasets().front(), 3.0},
      {"tf_cnn", cloud::make_tensorflow_dataset(cloud::TfModel::CNN), 2.0},
  };
  for (const auto& w : workloads) {
    const auto problem = eval::make_problem(w.ds, w.b);
    double naive_regret = 0.0;
    double inc_regret = 0.0;
    int inc_feasible = 0;
    const int seeds = 5;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      LynceusOptions opts;
      opts.lookahead = 1;
      opts.screen_width = 24;
      opts.incremental_refit = false;
      eval::TableRunner naive_runner(w.ds);
      const auto naive = reference::NaiveLynceus(opts).optimize(
          problem, naive_runner, seed);

      opts.incremental_refit = true;
      eval::TableRunner inc_runner(w.ds);
      const auto inc =
          LynceusOptimizer(opts).optimize(problem, inc_runner, seed);

      naive_regret += rel_regret(w.ds, naive);
      inc_regret += rel_regret(w.ds, inc);
      if (inc.recommendation && inc.recommendation_feasible) ++inc_feasible;
      // Budget accounting must hold under the flag exactly as without it:
      // the Γ filter is probabilistic (P(c <= β) >= 0.99), so a run may
      // overshoot by at most the final profiled run's cost.
      double max_cost = 0.0;
      for (space::ConfigId id = 0; id < w.ds.size(); ++id) {
        max_cost = std::max(max_cost, w.ds.cost(id));
      }
      EXPECT_LE(inc.budget_spent, problem.budget + max_cost)
          << w.name << " seed " << seed;
    }
    naive_regret /= seeds;
    inc_regret /= seeds;
    std::printf("[parity] %s: mean rel-regret naive=%.4f incremental=%.4f\n",
                w.name, naive_regret, inc_regret);
    EXPECT_LE(inc_regret, naive_regret + kRegretSlack)
        << w.name << ": incremental mean regret " << inc_regret
        << " vs naive " << naive_regret;
    EXPECT_GE(inc_feasible, seeds - 1)
        << w.name << ": incremental runs must keep finding feasible "
        << "recommendations";
  }
}

TEST(IncrementalRefitTrajectory, MultiConstraintParityVsNaiveReference) {
  // Scout workload with the synthetic energy cap used across the benches
  // and trajectory_dump. (The TF-space multi-constraint reference takes
  // ~0.5 s *per decision*, so the TF workload is covered by the
  // single-constraint parity case above and the Scout one here.)
  const auto scout = cloud::make_scout_datasets().front();
  auto energy_of = [&scout](space::ConfigId id) {
    return 0.05 * scout.runtime(id) *
           (1.0 + 0.1 * static_cast<double>(id % 7));
  };
  double min_energy = 1e300;
  for (space::ConfigId id = 0; id < scout.size(); ++id) {
    if (scout.feasible(id)) min_energy = std::min(min_energy, energy_of(id));
  }
  const double cap = 1.5 * min_energy;
  ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  const auto problem = eval::make_problem(scout, 3.0);

  double naive_regret = 0.0;
  double inc_regret = 0.0;
  const int seeds = 3;
  for (std::uint64_t seed = 5; seed < 5 + seeds; ++seed) {
    MultiConstraintOptions opts;
    opts.lookahead = 1;
    opts.incremental_refit = false;
    eval::TableRunner naive_runner(scout, [&](space::ConfigId id) {
      return std::vector<double>{energy_of(id)};
    });
    const auto naive = reference::NaiveMultiConstraintLynceus({c}, opts)
                           .optimize(problem, naive_runner, seed);

    opts.incremental_refit = true;
    eval::TableRunner inc_runner(scout, [&](space::ConfigId id) {
      return std::vector<double>{energy_of(id)};
    });
    const auto inc =
        MultiConstraintLynceus({c}, opts).optimize(problem, inc_runner, seed);

    naive_regret += rel_regret(scout, naive);
    inc_regret += rel_regret(scout, inc);
  }
  naive_regret /= seeds;
  inc_regret /= seeds;
  std::printf("[parity] scout_mc: mean rel-regret naive=%.4f incremental=%.4f\n",
              naive_regret, inc_regret);
  EXPECT_LE(inc_regret, naive_regret + kRegretSlack)
      << "incremental mean regret " << inc_regret << " vs naive "
      << naive_regret;
}

// ---------------------------------------------------------------------------
// Guards: defaults, repeatability, cache interplay, env toggle
// ---------------------------------------------------------------------------

TEST(IncrementalRefitGuard, EngineDefaultsAreOffAndEnvIndependent) {
  // The *engine* options are plain defaults — only the optimizer-level
  // options read the environment toggle, so libraries embedding the
  // engines directly can never be surprised by it.
  EXPECT_FALSE(LookaheadEngine::Options{}.incremental_refit);
  EXPECT_FALSE(MultiConstraintEngine::Options{}.incremental_refit);
}

TEST(IncrementalRefitGuard, EnvToggleDrivesOptimizerDefaults) {
  const char* prior = std::getenv("LYNCEUS_INCREMENTAL_REFIT");
  const std::string saved = prior != nullptr ? prior : "";

  ::setenv("LYNCEUS_INCREMENTAL_REFIT", "1", 1);
  EXPECT_TRUE(LynceusOptions{}.incremental_refit);
  EXPECT_TRUE(MultiConstraintOptions{}.incremental_refit);
  ::setenv("LYNCEUS_INCREMENTAL_REFIT", "0", 1);
  EXPECT_FALSE(LynceusOptions{}.incremental_refit);
  ::unsetenv("LYNCEUS_INCREMENTAL_REFIT");
  EXPECT_FALSE(LynceusOptions{}.incremental_refit);
  EXPECT_FALSE(MultiConstraintOptions{}.incremental_refit);

  if (prior != nullptr) {
    ::setenv("LYNCEUS_INCREMENTAL_REFIT", saved.c_str(), 1);
  }
}

// The default-path guard proper: with the flag explicitly off, the
// production optimizer must stay bit-identical to the committed naive
// references for LA 0/1/2, one and two constraints — so the flag's
// existence can never silently change the pinned semantics. (The broader
// multi-seed golden suites in test_lookahead.cpp / test_constraints.cpp
// pin the same property; this one concentrates it where the flag lives.)
TEST(IncrementalRefitGuard, FlagOffStaysBitIdenticalToReferences) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  for (unsigned la = 0; la <= 2; ++la) {
    LynceusOptions opts;
    opts.lookahead = la;
    opts.screen_width = 6;
    opts.incremental_refit = false;
    eval::TableRunner naive_runner(ds);
    const auto naive =
        reference::NaiveLynceus(opts).optimize(problem, naive_runner, 11);
    eval::TableRunner engine_runner(ds);
    const auto engine =
        LynceusOptimizer(opts).optimize(problem, engine_runner, 11);
    EXPECT_EQ(history_ids(naive), history_ids(engine)) << "la " << la;
    EXPECT_EQ(naive.recommendation, engine.recommendation) << "la " << la;
  }
}

TEST(IncrementalRefitGuard, SameSeedRunsAreByteIdentical) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  LynceusOptions opts;
  opts.lookahead = 2;
  opts.screen_width = 6;
  opts.incremental_refit = true;
  eval::TableRunner r1(ds);
  eval::TableRunner r2(ds);
  const auto a = LynceusOptimizer(opts).optimize(problem, r1, 42);
  const auto b = LynceusOptimizer(opts).optimize(problem, r2, 42);
  EXPECT_EQ(history_ids(a), history_ids(b));
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.budget_spent, b.budget_spent);
}

// Warm-starting through a model-storing RootCache must replay the
// cache-off incremental trajectory byte-for-byte: a hit restores the root
// ensembles (with their captured bootstrap membership) instead of
// refitting, and the restored models are bitwise equivalent.
TEST(IncrementalRefitGuard, RootCacheWarmStartReplaysByteIdentically) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 6;
  opts.incremental_refit = true;

  eval::TableRunner r0(ds);
  const auto baseline = LynceusOptimizer(opts).optimize(problem, r0, 33);

  RootCache::Options copts;
  copts.capacity = 64;
  copts.store_models = true;
  RootCache cache(copts);
  opts.root_cache = &cache;
  eval::TableRunner r1(ds);
  const auto first = LynceusOptimizer(opts).optimize(problem, r1, 33);
  eval::TableRunner r2(ds);
  const auto second = LynceusOptimizer(opts).optimize(problem, r2, 33);

  EXPECT_GT(cache.stats().hits, 0U);
  EXPECT_EQ(history_ids(baseline), history_ids(first));
  EXPECT_EQ(history_ids(baseline), history_ids(second));
  EXPECT_EQ(baseline.recommendation, second.recommendation);
}

// Same replay guarantee when the cache stores predictions only
// (store_models off): the engine then refits the root deterministically
// on a hit, which must reproduce the identical model.
TEST(IncrementalRefitGuard, PredictionOnlyCacheAlsoReplaysByteIdentically) {
  const auto problem = testing::tiny_problem();
  static const cloud::Dataset ds = testing::tiny_dataset();
  LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 6;
  opts.incremental_refit = true;

  eval::TableRunner r0(ds);
  const auto baseline = LynceusOptimizer(opts).optimize(problem, r0, 34);

  RootCache::Options copts;
  copts.capacity = 64;
  copts.store_models = false;
  RootCache cache(copts);
  opts.root_cache = &cache;
  eval::TableRunner r1(ds);
  (void)LynceusOptimizer(opts).optimize(problem, r1, 34);
  eval::TableRunner r2(ds);
  const auto second = LynceusOptimizer(opts).optimize(problem, r2, 34);

  EXPECT_GT(cache.stats().hits, 0U);
  EXPECT_EQ(history_ids(baseline), history_ids(second));
}

}  // namespace
}  // namespace lynceus::core

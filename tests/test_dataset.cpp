#include "cloud/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace lynceus::cloud {
namespace {

std::shared_ptr<const space::ConfigSpace> tiny_space() {
  return std::make_shared<space::ConfigSpace>(
      "tiny", std::vector<space::ParamDomain>{
                  space::numeric_param("a", {1, 2}),
                  space::numeric_param("b", {10, 20})});
}

std::vector<Observation> tiny_observations() {
  // Costs: runtime * price / 3600.
  std::vector<Observation> obs(4);
  obs[0] = {100.0, 3.6, false};   // cost 0.1, fast
  obs[1] = {200.0, 3.6, false};   // cost 0.2
  obs[2] = {400.0, 1.8, false};   // cost 0.2, slow
  obs[3] = {600.0, 36.0, true};   // cost 6.0, timed out
  return obs;
}

TEST(Dataset, CostIsRuntimeTimesPrice) {
  const Observation o{120.0, 30.0, false};
  EXPECT_NEAR(o.cost(), 1.0, 1e-12);
}

TEST(Dataset, DerivesTmaxAsMedianRuntime) {
  const Dataset ds("tiny", tiny_space(), tiny_observations());
  // Runtimes 100,200,400,600 → interpolated median 300.
  EXPECT_NEAR(ds.tmax_seconds(), 300.0, 1e-9);
  EXPECT_NEAR(ds.feasible_fraction(), 0.5, 1e-12);
}

TEST(Dataset, ExplicitTmaxRespected) {
  const Dataset ds("tiny", tiny_space(), tiny_observations(), 450.0);
  EXPECT_DOUBLE_EQ(ds.tmax_seconds(), 450.0);
  EXPECT_TRUE(ds.feasible(2));
  EXPECT_FALSE(ds.feasible(3));  // timed out regardless of Tmax
}

TEST(Dataset, TimedOutNeverFeasible) {
  const Dataset ds("tiny", tiny_space(), tiny_observations(), 1000.0);
  EXPECT_FALSE(ds.feasible(3));
}

TEST(Dataset, OptimalIsCheapestFeasible) {
  const Dataset ds("tiny", tiny_space(), tiny_observations());
  EXPECT_EQ(ds.optimal(), 0U);
  EXPECT_NEAR(ds.optimal_cost(), 0.1, 1e-12);
}

TEST(Dataset, MeanCostAveragesAllConfigs) {
  const Dataset ds("tiny", tiny_space(), tiny_observations());
  EXPECT_NEAR(ds.mean_cost(), (0.1 + 0.2 + 0.2 + 6.0) / 4.0, 1e-9);
}

TEST(Dataset, AllCostsVector) {
  const Dataset ds("tiny", tiny_space(), tiny_observations());
  const auto costs = ds.all_costs();
  ASSERT_EQ(costs.size(), 4U);
  EXPECT_NEAR(costs[3], 6.0, 1e-9);
}

TEST(Dataset, RejectsWrongObservationCount) {
  auto obs = tiny_observations();
  obs.pop_back();
  EXPECT_THROW(Dataset("tiny", tiny_space(), obs), std::invalid_argument);
}

TEST(Dataset, RejectsInfeasibleEverywhere) {
  std::vector<Observation> obs(4);
  for (auto& o : obs) o = {100.0, 3.6, true};  // everything timed out
  EXPECT_THROW(Dataset("tiny", tiny_space(), obs), std::invalid_argument);
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset ds("tiny", tiny_space(), tiny_observations());
  const std::string path = ::testing::TempDir() + "/lynceus_dataset_test.csv";
  ds.save_csv(path);
  const Dataset loaded = Dataset::load_csv(path, "tiny", tiny_space());
  ASSERT_EQ(loaded.size(), ds.size());
  for (space::ConfigId id = 0; id < ds.size(); ++id) {
    EXPECT_NEAR(loaded.runtime(id), ds.runtime(id), 1e-9);
    EXPECT_NEAR(loaded.unit_price(id), ds.unit_price(id), 1e-9);
    EXPECT_EQ(loaded.feasible(id), ds.feasible(id));
  }
  EXPECT_NEAR(loaded.tmax_seconds(), ds.tmax_seconds(), 1e-9);
  std::remove(path.c_str());
}

TEST(Dataset, LoadCsvRejectsMissingFile) {
  EXPECT_THROW(
      (void)Dataset::load_csv("/nonexistent/nope.csv", "x", tiny_space()),
      std::runtime_error);
}

}  // namespace
}  // namespace lynceus::cloud

#include "cloud/spark_job.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cloud/catalog.hpp"

namespace lynceus::cloud {
namespace {

SparkJobSpec cpu_bound_spec() {
  SparkJobSpec s;
  s.name = "cpu-bound";
  s.cpu_core_seconds = 20000;
  s.serial_seconds = 10;
  s.mem_per_core_gb = 1.0;
  s.shuffle_gb = 1.0;
  s.input_gb = 5.0;
  s.iterations = 1;
  return s;
}

SparkJobSpec memory_hungry_spec() {
  SparkJobSpec s = cpu_bound_spec();
  s.name = "memory-hungry";
  s.mem_per_core_gb = 6.0;
  return s;
}

TEST(SparkJob, DeterministicRuntime) {
  const SparkJob job(cpu_bound_spec());
  const auto vm = *find_vm(scout_catalog(), "m4.xlarge");
  EXPECT_DOUBLE_EQ(job.runtime_seconds(vm, 8), job.runtime_seconds(vm, 8));
}

TEST(SparkJob, MoreMachinesFasterForParallelWork) {
  const SparkJob job(cpu_bound_spec());
  const auto vm = *find_vm(scout_catalog(), "m4.xlarge");
  EXPECT_GT(job.runtime_seconds(vm, 4), job.runtime_seconds(vm, 16));
}

TEST(SparkJob, DiminishingReturnsFromAmdahl) {
  const SparkJob job(cpu_bound_spec());
  const auto vm = *find_vm(scout_catalog(), "m4.xlarge");
  const double t4 = job.runtime_seconds(vm, 4);
  const double t8 = job.runtime_seconds(vm, 8);
  const double t32 = job.runtime_seconds(vm, 32);
  const double t48 = job.runtime_seconds(vm, 48);
  // Early doubling helps much more than late scaling.
  EXPECT_GT(t4 / t8, t32 / t48);
}

TEST(SparkJob, CpuBoundJobPrefersC4) {
  const SparkJob job(cpu_bound_spec());
  const auto c4 = *find_vm(scout_catalog(), "c4.xlarge");
  const auto m4 = *find_vm(scout_catalog(), "m4.xlarge");
  EXPECT_LT(job.runtime_seconds(c4, 8), job.runtime_seconds(m4, 8));
}

TEST(SparkJob, MemoryHungryJobPrefersR4OverC4) {
  const SparkJob job(memory_hungry_spec());
  const auto c4 = *find_vm(scout_catalog(), "c4.xlarge");  // 1.9 GB/core
  const auto r4 = *find_vm(scout_catalog(), "r4.xlarge");  // 7.6 GB/core
  EXPECT_LT(job.runtime_seconds(r4, 8), job.runtime_seconds(c4, 8));
}

TEST(SparkJob, MemoryPenaltyOnlyWhenDeficient) {
  // On r4 (7.6 GB/core) a 6 GB/core job fits; on c4 (1.9) it spills.
  const SparkJob hungry(memory_hungry_spec());
  const SparkJob lean(cpu_bound_spec());
  const auto c4 = *find_vm(scout_catalog(), "c4.xlarge");
  // Spilling inflates the compute term by up to 2.5x.
  const double ratio =
      hungry.runtime_seconds(c4, 8) / lean.runtime_seconds(c4, 8);
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(SparkJob, SingleInstanceHasNoShuffleTerm) {
  SparkJobSpec s = cpu_bound_spec();
  s.shuffle_gb = 1000.0;  // enormous shuffle volume
  SparkJobSpec s0 = cpu_bound_spec();
  s0.shuffle_gb = 0.001;
  s0.name = s.name;  // identical noise draw
  const auto vm = *find_vm(scout_catalog(), "m4.xlarge");
  // With n=1 there is no inter-node shuffle: both run equally fast.
  EXPECT_NEAR(SparkJob(s).runtime_seconds(vm, 1),
              SparkJob(s0).runtime_seconds(vm, 1), 1e-9);
}

TEST(SparkJob, RejectsZeroInstances) {
  const SparkJob job(cpu_bound_spec());
  const auto vm = *find_vm(scout_catalog(), "m4.xlarge");
  EXPECT_THROW((void)job.runtime_seconds(vm, 0), std::invalid_argument);
}

TEST(SparkJob, ClusterPrice) {
  const auto vm = *find_vm(scout_catalog(), "r4.2xlarge");
  EXPECT_DOUBLE_EQ(SparkJob::cluster_price_per_hour(vm, 10),
                   10 * vm.price_per_hour);
}

TEST(SparkJobSpecs, ScoutHasEighteenDistinctJobs) {
  const auto specs = scout_job_specs();
  ASSERT_EQ(specs.size(), 18U);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_EQ(names.size(), 18U);
}

TEST(SparkJobSpecs, CherrypickHasFiveJobs) {
  const auto specs = cherrypick_job_specs();
  ASSERT_EQ(specs.size(), 5U);
  EXPECT_EQ(specs[0].name, "tpch");
  EXPECT_EQ(specs[2].name, "terasort");
}

TEST(SparkJobSpecs, SpecsSpanResourceMixes) {
  // The Scout suite must contain both network-heavy and memory-heavy jobs
  // (paper: "These jobs stress differently CPU, network and memory").
  const auto specs = scout_job_specs();
  bool network_heavy = false;
  bool memory_heavy = false;
  bool iterative = false;
  for (const auto& s : specs) {
    network_heavy = network_heavy || s.shuffle_gb >= 150.0;
    memory_heavy = memory_heavy || s.mem_per_core_gb >= 5.0;
    iterative = iterative || s.iterations >= 8;
  }
  EXPECT_TRUE(network_heavy);
  EXPECT_TRUE(memory_heavy);
  EXPECT_TRUE(iterative);
}

}  // namespace
}  // namespace lynceus::cloud

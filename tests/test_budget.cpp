#include "core/budget.hpp"

#include <gtest/gtest.h>

namespace lynceus::core {
namespace {

TEST(Budget, TracksSpend) {
  Budget b(10.0);
  EXPECT_DOUBLE_EQ(b.total(), 10.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 10.0);
  EXPECT_FALSE(b.exhausted());
  b.spend(4.0);
  EXPECT_DOUBLE_EQ(b.spent(), 4.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 6.0);
}

TEST(Budget, OvershootAllowedAndReported) {
  Budget b(1.0);
  b.spend(2.5);
  EXPECT_TRUE(b.exhausted());
  EXPECT_DOUBLE_EQ(b.remaining(), -1.5);
}

TEST(Budget, ExhaustedAtExactlyZero) {
  Budget b(2.0);
  b.spend(2.0);
  EXPECT_TRUE(b.exhausted());
}

TEST(Budget, RejectsNegativeTotal) {
  EXPECT_THROW(Budget(-1.0), std::invalid_argument);
}

TEST(Budget, RejectsNegativeSpend) {
  Budget b(1.0);
  EXPECT_THROW(b.spend(-0.1), std::invalid_argument);
}

TEST(Budget, ZeroTotalStartsExhausted) {
  Budget b(0.0);
  EXPECT_TRUE(b.exhausted());
}

}  // namespace
}  // namespace lynceus::core

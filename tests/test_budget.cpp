#include "core/budget.hpp"

#include <gtest/gtest.h>

namespace lynceus::core {
namespace {

TEST(Budget, TracksSpend) {
  Budget b(10.0);
  EXPECT_DOUBLE_EQ(b.total(), 10.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 10.0);
  EXPECT_FALSE(b.exhausted());
  b.spend(4.0);
  EXPECT_DOUBLE_EQ(b.spent(), 4.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 6.0);
}

TEST(Budget, OvershootAllowedAndReported) {
  Budget b(1.0);
  b.spend(2.5);
  EXPECT_TRUE(b.exhausted());
  EXPECT_DOUBLE_EQ(b.remaining(), -1.5);
}

TEST(Budget, ExhaustedAtExactlyZero) {
  Budget b(2.0);
  b.spend(2.0);
  EXPECT_TRUE(b.exhausted());
}

TEST(Budget, RejectsNegativeTotal) {
  EXPECT_THROW(Budget(-1.0), std::invalid_argument);
}

TEST(Budget, RejectsNegativeSpend) {
  Budget b(1.0);
  EXPECT_THROW(b.spend(-0.1), std::invalid_argument);
}

TEST(Budget, ZeroTotalStartsExhausted) {
  Budget b(0.0);
  EXPECT_TRUE(b.exhausted());
}

TEST(Budget, FailedSpendIsBilledAndBrokenOut) {
  Budget b(10.0);
  b.spend(2.0);
  b.spend_failed(0.5);
  EXPECT_DOUBLE_EQ(b.spent(), 2.5);  // failures bill the shared budget
  EXPECT_DOUBLE_EQ(b.failed_spent(), 0.5);
  EXPECT_DOUBLE_EQ(b.remaining(), 7.5);
  EXPECT_THROW(b.spend_failed(-0.1), std::invalid_argument);
}

TEST(Budget, SetSpentRestoresBothLedgers) {
  Budget b(10.0);
  b.set_spent(3.0, 1.0);
  EXPECT_DOUBLE_EQ(b.spent(), 3.0);
  EXPECT_DOUBLE_EQ(b.failed_spent(), 1.0);
  b.set_spent(3.0);  // failed ledger defaults to zero
  EXPECT_DOUBLE_EQ(b.failed_spent(), 0.0);
  EXPECT_THROW(b.set_spent(-1.0), std::invalid_argument);
  EXPECT_THROW(b.set_spent(1.0, -0.5), std::invalid_argument);
  EXPECT_THROW(b.set_spent(1.0, 2.0), std::invalid_argument);  // failed > spent
}

}  // namespace
}  // namespace lynceus::core

#include "service/tuning_service.hpp"

#include "service/session_spec.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "eval/runner.hpp"
#include "test_helpers.hpp"

namespace lynceus::service {
namespace {

using core::ConfigId;
using core::OptimizerResult;

double tiny_energy(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn tiny_metrics() {
  const auto sp = lynceus::testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{tiny_energy(*sp, id)};
  };
}

core::ConstraintDef tiny_constraint(double cap) {
  core::ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

void expect_identical(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "step " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost);
    EXPECT_EQ(a.history[i].feasible, b.history[i].feasible);
  }
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.recommendation_feasible, b.recommendation_feasible);
  EXPECT_EQ(a.decisions, b.decisions);
}

/// Drains a service against the simulated-completion async runner until
/// every session finishes: launch whatever next_runs() asks for, pop the
/// earliest-finishing completion, tell it back. Completions interleave
/// across sessions and arrive out of submission order by construction.
void pump(TuningService& service, eval::AsyncTableRunner& async) {
  while (true) {
    for (const PendingRun& run : service.next_runs()) {
      async.submit(run.session, run.config);
    }
    const auto completion = async.next_completion();
    if (!completion.has_value()) {
      ASSERT_TRUE(service.idle());
      return;
    }
    service.tell(completion->tag, completion->config, completion->result);
  }
}

TEST(TuningService, EightMixedSessionsMatchTheirSoloRuns) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  TuningService service;
  eval::AsyncTableRunner async(ds, tiny_metrics());

  // 8 sessions across all four optimizer kinds and distinct seeds.
  std::vector<SessionId> ids;
  std::vector<std::function<OptimizerResult()>> solos;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    core::LynceusOptions lopts;
    lopts.lookahead = 1;
    lopts.incremental_refit = false;
    ids.push_back(service.open_session(SessionSpec::lynceus(problem, lopts, seed)));
    solos.push_back([&, lopts, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper =
          core::LynceusOptimizer(lopts).make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    core::MultiConstraintOptions mopts;
    mopts.lookahead = 1;
    mopts.incremental_refit = false;
    ids.push_back(service.open_session(SessionSpec::multi_constraint(
        problem, {tiny_constraint(26.0)}, mopts, seed)));
    solos.push_back([&, mopts, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper =
          core::MultiConstraintLynceus({tiny_constraint(26.0)}, mopts)
              .make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    ids.push_back(service.open_session(SessionSpec::bo(problem, core::BoOptions{}, seed)));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::BayesianOptimizer().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });

    ids.push_back(service.open_session(SessionSpec::random(problem, seed)));
    solos.push_back([&, seed] {
      eval::TableRunner solo(ds, tiny_metrics());
      auto stepper = core::RandomSearch().make_stepper(problem, seed);
      return core::drive(*stepper, solo);
    });
  }
  ASSERT_EQ(service.session_count(), 8U);

  pump(service, async);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(ids[i]));
    ASSERT_TRUE(service.finished(ids[i]));
    EXPECT_FALSE(service.stop_reason(ids[i]).empty());
    expect_identical(service.result(ids[i]), solos[i]());
  }
}

TEST(TuningService, SixtyFourInterleavedSessionsMatchTheirSoloRuns) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  // Shared pool + shared root cache: neither may perturb any trajectory.
  TuningService::Options sopts;
  sopts.pool_workers = 2;
  sopts.root_cache_capacity = 16;
  TuningService service(sopts);
  eval::AsyncTableRunner async(ds);

  std::vector<SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    core::LynceusOptions opts;
    opts.lookahead = seed % 2 == 0 ? 1U : 0U;
    opts.incremental_refit = false;
    ids.push_back(service.open_session(SessionSpec::lynceus(problem, opts, seed)));
  }
  ASSERT_EQ(service.session_count(), 64U);

  pump(service, async);

  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    core::LynceusOptions opts;
    opts.lookahead = seed % 2 == 0 ? 1U : 0U;
    opts.incremental_refit = false;
    eval::TableRunner solo(ds);
    auto stepper = core::LynceusOptimizer(opts).make_stepper(problem, seed);
    const OptimizerResult golden = core::drive(*stepper, solo);
    ASSERT_TRUE(service.finished(ids[seed - 1]));
    expect_identical(service.result(ids[seed - 1]), golden);
  }
}

TEST(TuningService, SharedCacheHitsAcrossIdenticalSessionsKeepTrajectories) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();

  TuningService::Options sopts;
  sopts.root_cache_capacity = 32;
  TuningService service(sopts);
  eval::AsyncTableRunner async(ds);

  // Identical sessions (same seed): the recurrent-job scenario. Every
  // session after the first replays the same root states, so the shared
  // cache serves their root fits.
  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.incremental_refit = false;
  std::vector<SessionId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(service.open_session(SessionSpec::lynceus(problem, opts, 17)));
  }
  pump(service, async);

  eval::TableRunner solo(ds);
  auto stepper = core::LynceusOptimizer(opts).make_stepper(problem, 17);
  const OptimizerResult golden = core::drive(*stepper, solo);
  for (const SessionId id : ids) {
    expect_identical(service.result(id), golden);
  }
  ASSERT_NE(service.shared_cache(), nullptr);
  EXPECT_GT(service.shared_cache()->stats().hits, 0U);
}

TEST(TuningService, RoundRobinSchedulingIsDeterministic) {
  const auto problem = lynceus::testing::tiny_problem();
  auto order_of = [&] {
    TuningService service;
    std::vector<SessionId> opened;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      opened.push_back(service.open_session(SessionSpec::random(problem, seed)));
    }
    std::vector<SessionId> order;
    for (const PendingRun& run : service.next_runs()) {
      order.push_back(run.session);
    }
    return order;
  };
  const auto a = order_of();
  const auto b = order_of();
  ASSERT_EQ(a, b);
  // FIFO: the first asked batch belongs to the first opened session.
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.front(), 0U);
  // All five sessions' bootstrap batches are in the sweep, grouped and in
  // open order.
  EXPECT_EQ(a.back(), 4U);
}

TEST(TuningService, MaxRunsCapsTheSweepAndKeepsSessionsQueued) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningService service;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    (void)service.open_session(SessionSpec::random(problem, seed));
  }
  // One session's bootstrap batch at a time.
  const auto first = service.next_runs(1);
  ASSERT_EQ(first.size(), problem.bootstrap_samples);
  EXPECT_FALSE(service.idle());
  const auto second = service.next_runs(1);
  ASSERT_EQ(second.size(), problem.bootstrap_samples);
  EXPECT_NE(first.front().session, second.front().session);

  eval::AsyncTableRunner async(ds);
  for (const auto& run : first) async.submit(run.session, run.config);
  for (const auto& run : second) async.submit(run.session, run.config);
  while (auto c = async.next_completion()) {
    service.tell(c->tag, c->config, c->result);
  }
  // The third session is still queued and asks on the next sweep.
  const auto third = service.next_runs();
  bool saw_third_session = false;
  for (const auto& run : third) {
    saw_third_session = saw_third_session || run.session == 2;
  }
  EXPECT_TRUE(saw_third_session);
}

TEST(TuningService, SnapshotRestoreMidFlightFinishesByteIdentically) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.incremental_refit = false;

  eval::TableRunner solo(ds);
  auto ref = core::LynceusOptimizer(opts).make_stepper(problem, 23);
  const OptimizerResult golden = core::drive(*ref, solo);

  TuningService service;
  eval::AsyncTableRunner async(ds);
  const SessionId id = service.open_session(SessionSpec::lynceus(problem, opts, 23));
  // Launch the bootstrap, resolve half of it, snapshot mid-flight.
  for (const auto& run : service.next_runs()) {
    async.submit(run.session, run.config);
  }
  for (std::size_t i = 0; i < problem.bootstrap_samples / 2; ++i) {
    const auto c = async.next_completion();
    ASSERT_TRUE(c.has_value());
    service.tell(c->tag, c->config, c->result);
  }
  const std::string snap = service.snapshot(id);
  service.close(id);

  // Restore into a second service instance (fresh process in spirit); the
  // still-in-flight runs are re-asked for, already-told ones are not.
  TuningService revived;
  eval::AsyncTableRunner async2(ds);
  const SessionId rid = revived.restore_session(SessionSpec::lynceus(problem, opts, 23), snap);
  pump(revived, async2);
  ASSERT_TRUE(revived.finished(rid));
  expect_identical(revived.result(rid), golden);
}

TEST(TuningService, TellErrorPathsLeaveStateIntact) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.incremental_refit = false;

  eval::TableRunner solo(ds);
  auto ref = core::LynceusOptimizer(opts).make_stepper(problem, 29);
  const OptimizerResult golden = core::drive(*ref, solo);

  TuningService service;
  eval::AsyncTableRunner async(ds);
  const SessionId id = service.open_session(SessionSpec::lynceus(problem, opts, 29));
  const auto batch = service.next_runs();
  ASSERT_GE(batch.size(), 2U);

  core::RunResult ok;
  ok.runtime_seconds = ds.observation(batch[0].config).runtime_seconds;
  ok.cost = ds.observation(batch[0].config).cost();
  service.tell(id, batch[0].config, ok);

  // Unknown session, a config already told, and a config the session
  // never asked for: each rejected with the strong exception guarantee.
  EXPECT_THROW(service.tell(id + 7, batch[1].config, ok),
               std::invalid_argument);
  EXPECT_THROW(service.tell(id, batch[0].config, ok),
               std::invalid_argument);
  ConfigId stranger = 0;
  for (ConfigId c = 0; c < 24; ++c) {
    bool in_batch = false;
    for (const auto& run : batch) in_batch = in_batch || run.config == c;
    if (!in_batch) {
      stranger = c;
      break;
    }
  }
  EXPECT_THROW(service.tell(id, stranger, ok), std::invalid_argument);

  // State intact: the session still finishes byte-identical to its solo
  // run (the strong-guarantee proof — a corrupted counter or half-applied
  // tell would diverge here).
  for (std::size_t i = 1; i < batch.size(); ++i) {
    core::RunResult r;
    r.runtime_seconds = ds.observation(batch[i].config).runtime_seconds;
    r.cost = ds.observation(batch[i].config).cost();
    service.tell(id, batch[i].config, r);
  }
  pump(service, async);
  ASSERT_TRUE(service.finished(id));
  expect_identical(service.result(id), golden);
}

TEST(TuningService, DrainUnderInjectedFailuresReachesIdle) {
  const auto ds = lynceus::testing::tiny_dataset();
  const auto problem = lynceus::testing::tiny_problem();
  TuningService::Options sopts;
  sopts.run_policy.max_attempts = 2;
  sopts.run_policy.run_timeout_seconds = 500.0;
  sopts.run_policy.quarantine_after = 3;
  TuningService service(sopts);
  eval::AsyncTableRunner async(ds);
  eval::FaultPlan plan;
  plan.seed = 77;
  plan.fail_rate = 0.5;
  plan.hang_rate = 0.1;
  async.set_fault_plan(plan);

  std::vector<SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ids.push_back(service.open_session(SessionSpec::random(problem, seed)));
  }
  drain(service, async);

  EXPECT_TRUE(service.idle());
  for (const SessionId id : ids) {
    SCOPED_TRACE("session " + std::to_string(id));
    EXPECT_TRUE(service.finished(id));
    EXPECT_FALSE(service.stop_reason(id).empty());
  }
  // Quarantined sessions (if the streak hit) are reported, not wedged.
  for (const SessionId id : service.quarantined_sessions()) {
    EXPECT_EQ(service.stop_reason(id), "runner_failed");
  }
}

TEST(TuningService, ValidatesSessionIdsAndTells) {
  const auto problem = lynceus::testing::tiny_problem();
  TuningService service;
  core::RunResult r;
  EXPECT_THROW(service.tell(0, 0, r), std::invalid_argument);
  const SessionId id = service.open_session(SessionSpec::random(problem, 1));
  EXPECT_THROW(service.tell(id, 0, r), std::invalid_argument);  // not asked
  EXPECT_THROW((void)service.result(id + 1), std::invalid_argument);
  service.close(id);
  EXPECT_THROW((void)service.result(id), std::invalid_argument);
  EXPECT_EQ(service.session_count(), 0U);
}

}  // namespace
}  // namespace lynceus::service

#include "space/parameter.hpp"

#include <gtest/gtest.h>

namespace lynceus::space {
namespace {

TEST(ParamDomain, NumericConstruction) {
  const auto d = numeric_param("batch", {16, 256});
  EXPECT_EQ(d.name, "batch");
  EXPECT_EQ(d.level_count(), 2U);
  EXPECT_FALSE(d.categorical);
  EXPECT_EQ(d.label(0), "16");
  EXPECT_EQ(d.label(1), "256");
}

TEST(ParamDomain, NumericLabelForNonInteger) {
  const auto d = numeric_param("lr", {1e-3, 1e-4});
  EXPECT_EQ(d.label(0), "0.001");
  EXPECT_EQ(d.label(1), "0.0001");
}

TEST(ParamDomain, CategoricalConstruction) {
  const auto d = categorical_param("mode", {"sync", "async"});
  EXPECT_TRUE(d.categorical);
  EXPECT_EQ(d.level_count(), 2U);
  EXPECT_DOUBLE_EQ(d.values[0], 0.0);
  EXPECT_DOUBLE_EQ(d.values[1], 1.0);
  EXPECT_EQ(d.label(1), "async");
}

TEST(ParamDomain, LabelOutOfRangeThrows) {
  const auto d = numeric_param("x", {1.0});
  EXPECT_THROW((void)d.label(1), std::out_of_range);
}

TEST(ParamDomain, ValidationRejectsEmptyName) {
  ParamDomain d;
  d.values = {1.0};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ParamDomain, ValidationRejectsNoLevels) {
  ParamDomain d;
  d.name = "x";
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ParamDomain, ValidationRejectsDuplicateValues) {
  ParamDomain d;
  d.name = "x";
  d.values = {1.0, 1.0};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ParamDomain, ValidationRejectsLabelMismatch) {
  ParamDomain d;
  d.name = "x";
  d.values = {1.0, 2.0};
  d.labels = {"one"};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace lynceus::space

/// Tests for the compact binary frame body (net/binary_codec.hpp):
/// round-trips of every message type in both directions, bit-exact
/// doubles (the binary twin of JsonWriter::value_exact), cross-encoding
/// equivalence with the JSON codec, and a malformed-input matrix — a
/// truncated or over-long varint, a short double, a non-0/1 bool, an
/// unknown tag, and trailing bytes must all throw (the transport maps
/// the throw to a fatal "bad_message"), never crash or misparse.

#include "net/binary_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "test_helpers.hpp"

namespace lynceus::net {
namespace {

service::SessionSpec demo_spec() {
  service::SessionSpec spec;
  spec.optimizer = "lynceus";
  spec.seed = 42;
  spec.lookahead = 1;
  spec.problem_ref = service::ProblemRef{"test", "tinybowl", 3.0};
  spec.incremental_refit = false;
  spec.branch_parallel = false;
  return spec;
}

core::RunResult demo_result() {
  core::RunResult r;
  r.runtime_seconds = 517.625;
  r.cost = 0.57514200000000003;  // not exactly representable in decimal
  r.timed_out = false;
  r.outcome = core::RunOutcome::kFailed;
  r.metrics = {1.5, -0.0, std::numeric_limits<double>::denorm_min()};
  return r;
}

TEST(BinaryCodec, EveryRequestTypeRoundTrips) {
  const service::SessionSpec spec = demo_spec();

  {
    const Request r = parse_binary_request(binary_encode_open(7, spec));
    EXPECT_EQ(r.type, Request::Type::Open);
    EXPECT_EQ(r.req, 7U);
    EXPECT_EQ(r.spec.to_json(), spec.to_json());
  }
  {
    const Request r = parse_binary_request(
        binary_encode_restore(8, spec, "{\"snapshot\":true}"));
    EXPECT_EQ(r.type, Request::Type::Restore);
    EXPECT_EQ(r.req, 8U);
    EXPECT_EQ(r.spec.to_json(), spec.to_json());
    EXPECT_EQ(r.snapshot, "{\"snapshot\":true}");
  }
  {
    const core::RunResult rr = demo_result();
    const Request r =
        parse_binary_request(binary_encode_tell(9, 1234567, 21, rr));
    EXPECT_EQ(r.type, Request::Type::Tell);
    EXPECT_EQ(r.req, 9U);
    EXPECT_EQ(r.session, 1234567U);
    EXPECT_EQ(r.config, 21U);
    // Bit-exact doubles: memcmp-level equality, sign of -0.0 included.
    EXPECT_EQ(r.result.runtime_seconds, rr.runtime_seconds);
    EXPECT_EQ(r.result.cost, rr.cost);
    EXPECT_EQ(r.result.timed_out, rr.timed_out);
    EXPECT_EQ(r.result.outcome, rr.outcome);
    ASSERT_EQ(r.result.metrics.size(), rr.metrics.size());
    for (std::size_t i = 0; i < rr.metrics.size(); ++i) {
      EXPECT_EQ(std::signbit(r.result.metrics[i]), std::signbit(rr.metrics[i]));
      EXPECT_EQ(r.result.metrics[i], rr.metrics[i]);
    }
  }
  {
    const Request r = parse_binary_request(binary_encode_next_runs(10));
    EXPECT_EQ(r.type, Request::Type::NextRuns);
    EXPECT_EQ(r.req, 10U);
  }
  {
    const Request r =
        parse_binary_request(binary_encode_snapshot_request(11, 3));
    EXPECT_EQ(r.type, Request::Type::Snapshot);
    EXPECT_EQ(r.session, 3U);
  }
  {
    const Request r = parse_binary_request(binary_encode_result_request(12, 4));
    EXPECT_EQ(r.type, Request::Type::Result);
    EXPECT_EQ(r.session, 4U);
  }
  {
    const Request r = parse_binary_request(binary_encode_close(13, 5));
    EXPECT_EQ(r.type, Request::Type::Close);
    EXPECT_EQ(r.session, 5U);
  }
}

TEST(BinaryCodec, EveryServerMessageTypeRoundTrips) {
  {
    const ServerMessage m =
        parse_binary_server_message(binary_encode_opened(1, 99));
    EXPECT_EQ(m.type, ServerMessage::Type::Opened);
    EXPECT_EQ(m.req, 1U);
    EXPECT_EQ(m.session, 99U);
  }
  {
    const ServerMessage m = parse_binary_server_message(
        binary_encode_told(2, 99, true, false, "budget: spent"));
    EXPECT_EQ(m.type, ServerMessage::Type::Told);
    EXPECT_TRUE(m.finished);
    EXPECT_FALSE(m.quarantined);
    EXPECT_EQ(m.stop_reason, "budget: spent");
  }
  {
    // A run without a timeout carries +infinity — no JSON omission trick
    // needed in binary, but the round trip must preserve it either way.
    service::PendingRun run;
    run.session = 17;
    run.config = 23;
    run.attempt = 2;
    run.timeout_seconds = std::numeric_limits<double>::infinity();
    run.start_delay = 0.125;
    const ServerMessage m =
        parse_binary_server_message(binary_encode_run(run));
    EXPECT_EQ(m.type, ServerMessage::Type::Run);
    EXPECT_EQ(m.run.session, 17U);
    EXPECT_EQ(m.run.config, 23U);
    EXPECT_EQ(m.run.attempt, 2U);
    EXPECT_TRUE(std::isinf(m.run.timeout_seconds));
    EXPECT_EQ(m.run.start_delay, 0.125);
  }
  {
    const ServerMessage m = parse_binary_server_message(
        binary_encode_snapshot_reply(3, 99, "{\"snapshot\":1}"));
    EXPECT_EQ(m.type, ServerMessage::Type::Snapshot);
    EXPECT_EQ(m.data, "{\"snapshot\":1}");
  }
  {
    core::OptimizerResult r;
    r.recommendation = 21;
    r.recommendation_feasible = true;
    r.history.push_back(core::Sample{3, 101.5, 0.25, true});
    r.history.push_back(core::Sample{9, 88.875, 0.125, false});
    r.failures.push_back(core::FailureRecord{5, 0.0625, 1});
    r.budget_spent = 1.4375;
    r.budget_spent_on_failures = 0.0625;
    r.decision_seconds = 0.5;
    r.decisions = 7;
    const ServerMessage m = parse_binary_server_message(
        binary_encode_result_reply(4, 99, true, false, "done", r));
    EXPECT_EQ(m.type, ServerMessage::Type::Result);
    ASSERT_TRUE(m.result.recommendation.has_value());
    EXPECT_EQ(*m.result.recommendation, 21U);
    EXPECT_TRUE(m.result.recommendation_feasible);
    ASSERT_EQ(m.result.history.size(), 2U);
    EXPECT_EQ(m.result.history[1].id, 9U);
    EXPECT_EQ(m.result.history[1].runtime_seconds, 88.875);
    EXPECT_FALSE(m.result.history[1].feasible);
    ASSERT_EQ(m.result.failures.size(), 1U);
    EXPECT_EQ(m.result.failures[0].after_samples, 1U);
    EXPECT_EQ(m.result.budget_spent, 1.4375);
    EXPECT_EQ(m.result.decisions, 7U);

    // No recommendation: the optional must stay empty through the wire.
    core::OptimizerResult none;
    const ServerMessage m2 = parse_binary_server_message(
        binary_encode_result_reply(5, 99, false, false, "", none));
    EXPECT_FALSE(m2.result.recommendation.has_value());
  }
  {
    const ServerMessage m =
        parse_binary_server_message(binary_encode_closed(6, 99));
    EXPECT_EQ(m.type, ServerMessage::Type::Closed);
  }
  {
    const ServerMessage m = parse_binary_server_message(
        binary_encode_error(7, "bad_request", "nope", true));
    EXPECT_EQ(m.type, ServerMessage::Type::Error);
    EXPECT_EQ(m.code, "bad_request");
    EXPECT_EQ(m.message, "nope");
    EXPECT_TRUE(m.fatal);
  }
}

/// The same logical message decoded from the JSON codec and the binary
/// codec must yield identical structures — the cross-encoding
/// equivalence the negotiation feature rests on.
TEST(BinaryCodec, BinaryAndJsonDecodeToIdenticalMessages) {
  const core::RunResult rr = demo_result();
  const Request a = parse_request(encode_tell(9, 1234567, 21, rr));
  const Request b = parse_binary_request(binary_encode_tell(9, 1234567, 21, rr));
  EXPECT_EQ(a.result.runtime_seconds, b.result.runtime_seconds);
  EXPECT_EQ(a.result.cost, b.result.cost);
  EXPECT_EQ(a.result.outcome, b.result.outcome);
  EXPECT_EQ(a.result.metrics, b.result.metrics);

  const service::SessionSpec spec = demo_spec();
  const Request c = parse_request(encode_open(1, spec));
  const Request d = parse_binary_request(binary_encode_open(1, spec));
  EXPECT_EQ(c.spec.to_json(), d.spec.to_json());
}

/// Binary framing is also smaller — the point of negotiating it. Pin the
/// hot-path messages (tell and run) well under their JSON twins so a
/// regression that bloats the encoding is caught here, not in bench.
TEST(BinaryCodec, HotPathMessagesAreSmallerThanJson) {
  core::RunResult rr;
  rr.runtime_seconds = 517.625;
  rr.cost = 0.5751419999999999;
  const std::string bin = binary_encode_tell(9, 64, 21, rr);
  const std::string json = encode_tell(9, 64, 21, rr);
  EXPECT_LT(bin.size() * 2, json.size())
      << "binary tell " << bin.size() << "B vs JSON " << json.size() << "B";

  service::PendingRun run;
  run.session = 64;
  run.config = 21;
  run.timeout_seconds = std::numeric_limits<double>::infinity();
  EXPECT_LT(binary_encode_run(run).size() * 2, encode_run(run).size());
}

TEST(BinaryCodec, MalformedBytesThrowInsteadOfMisparsing) {
  // Empty payload: no tag byte.
  EXPECT_THROW((void)parse_binary_request(""), std::runtime_error);

  // Unknown tag.
  EXPECT_THROW((void)parse_binary_request(std::string(1, '\x7f')),
               std::runtime_error);
  EXPECT_THROW((void)parse_binary_server_message(std::string(1, '\x01')),
               std::runtime_error);

  // Truncated varint: continue bit set, then nothing.
  EXPECT_THROW((void)parse_binary_request(std::string("\x04\xff", 2)),
               std::runtime_error);

  // Over-long varint: 10 continuation bytes overflow uint64.
  {
    std::string p(1, '\x04');
    p += std::string(10, '\xff');
    p += '\x01';
    EXPECT_THROW((void)parse_binary_request(p), std::runtime_error);
  }

  // Truncated double: told's frame cut inside stop_reason is caught by
  // the bytes-length bound; a tell cut inside the runtime double by the
  // 8-byte read bound.
  {
    const core::RunResult rr;
    std::string p = binary_encode_tell(1, 2, 3, rr);
    p.resize(p.size() - 3);
    EXPECT_THROW((void)parse_binary_request(p), std::runtime_error);
  }

  // bytes length larger than the remaining frame.
  {
    std::string p(1, '\x01');  // open
    p += '\x01';               // req = 1
    p += '\x7f';               // spec length 127, but no bytes follow
    EXPECT_THROW((void)parse_binary_request(p), std::runtime_error);
  }

  // Non-0/1 bool.
  {
    const core::RunResult rr;
    std::string p = binary_encode_tell(1, 2, 3, rr);
    // Layout: tag, req, session, config, runtime(8), cost(8), bool...
    p[1 + 1 + 1 + 1 + 8 + 8] = '\x02';
    EXPECT_THROW((void)parse_binary_request(p), std::runtime_error);
  }

  // Trailing bytes after a complete message.
  {
    std::string p = binary_encode_close(1, 2);
    p += '\x00';
    EXPECT_THROW((void)parse_binary_request(p), std::runtime_error);
    std::string q = binary_encode_closed(1, 2);
    q += '\x00';
    EXPECT_THROW((void)parse_binary_server_message(q), std::runtime_error);
  }

  // A valid message still parses after all that (the matrix above did
  // not poison any shared state).
  EXPECT_EQ(parse_binary_request(binary_encode_close(1, 2)).type,
            Request::Type::Close);
}

TEST(BinaryCodec, WireDispatchersFollowTheEncodingArgument) {
  const std::string js = encode_next_runs_wire(WireEncoding::kJson, 5);
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(parse_request_wire(WireEncoding::kJson, js).req, 5U);

  const std::string bin = encode_next_runs_wire(WireEncoding::kBinary, 5);
  EXPECT_EQ(bin.front(), '\x04');
  EXPECT_EQ(parse_request_wire(WireEncoding::kBinary, bin).req, 5U);

  WireEncoding e = WireEncoding::kJson;
  EXPECT_TRUE(wire_encoding_from_name("binary", e));
  EXPECT_EQ(e, WireEncoding::kBinary);
  EXPECT_TRUE(wire_encoding_from_name("json", e));
  EXPECT_EQ(e, WireEncoding::kJson);
  EXPECT_FALSE(wire_encoding_from_name("carrier-pigeon", e));
  EXPECT_STREQ(wire_encoding_name(WireEncoding::kBinary), "binary");
  EXPECT_STREQ(wire_encoding_name(WireEncoding::kJson), "json");
}

}  // namespace
}  // namespace lynceus::net

#include "cloud/catalog.hpp"

#include <gtest/gtest.h>

namespace lynceus::cloud {
namespace {

TEST(VmType, RentalCostPerSecondBilling) {
  VmType vm;
  vm.price_per_hour = 0.36;
  // 10 VMs for 60 seconds = 10 * 0.36 / 60 = $0.06.
  EXPECT_NEAR(vm.rental_cost(10, 60.0), 0.06, 1e-12);
  EXPECT_DOUBLE_EQ(vm.rental_cost(0, 1000.0), 0.0);
}

TEST(VmType, RamPerCore) {
  VmType vm;
  vm.vcpus = 4;
  vm.ram_gb = 16.0;
  EXPECT_DOUBLE_EQ(vm.ram_per_core(), 4.0);
}

TEST(T2Catalog, MatchesPaperTable2Types) {
  const auto& cat = t2_catalog();
  ASSERT_EQ(cat.size(), 4U);
  const auto small = find_vm(cat, "t2.small");
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->vcpus, 1U);
  EXPECT_DOUBLE_EQ(small->ram_gb, 2.0);
  const auto medium = find_vm(cat, "t2.medium");
  ASSERT_TRUE(medium.has_value());
  EXPECT_EQ(medium->vcpus, 2U);
  EXPECT_DOUBLE_EQ(medium->ram_gb, 4.0);
  const auto xlarge = find_vm(cat, "t2.xlarge");
  ASSERT_TRUE(xlarge.has_value());
  EXPECT_EQ(xlarge->vcpus, 4U);
  EXPECT_DOUBLE_EQ(xlarge->ram_gb, 16.0);
  const auto xxlarge = find_vm(cat, "t2.2xlarge");
  ASSERT_TRUE(xxlarge.has_value());
  EXPECT_EQ(xxlarge->vcpus, 8U);
  EXPECT_DOUBLE_EQ(xxlarge->ram_gb, 32.0);
}

TEST(T2Catalog, PricesScaleWithSize) {
  const auto& cat = t2_catalog();
  for (std::size_t i = 1; i < cat.size(); ++i) {
    EXPECT_GT(cat[i].price_per_hour, cat[i - 1].price_per_hour);
  }
}

TEST(ScoutCatalog, HasNineTypes) {
  const auto& cat = scout_catalog();
  EXPECT_EQ(cat.size(), 9U);
  for (VmFamily f : {VmFamily::C4, VmFamily::M4, VmFamily::R4}) {
    for (VmSize s : {VmSize::Large, VmSize::XLarge, VmSize::XXLarge}) {
      EXPECT_TRUE(find_vm(cat, f, s).has_value())
          << to_string(f) << "." << to_string(s);
    }
  }
}

TEST(ScoutCatalog, FamilyCharacteristics) {
  const auto& cat = scout_catalog();
  const auto c4 = find_vm(cat, VmFamily::C4, VmSize::XLarge);
  const auto m4 = find_vm(cat, VmFamily::M4, VmSize::XLarge);
  const auto r4 = find_vm(cat, VmFamily::R4, VmSize::XLarge);
  ASSERT_TRUE(c4 && m4 && r4);
  // C4 is compute-optimized: fastest cores, least RAM.
  EXPECT_GT(c4->cpu_speed, m4->cpu_speed);
  EXPECT_LT(c4->ram_gb, m4->ram_gb);
  // R4 is memory-optimized: most RAM per core.
  EXPECT_GT(r4->ram_per_core(), m4->ram_per_core());
}

TEST(CherrypickCatalog, HasTwelveTypesIncludingI2) {
  const auto& cat = cherrypick_catalog();
  EXPECT_EQ(cat.size(), 12U);
  const auto i2 = find_vm(cat, VmFamily::I2, VmSize::XLarge);
  ASSERT_TRUE(i2.has_value());
  // I2 is storage-optimized: highest disk bandwidth in the catalog.
  for (const auto& vm : cat) {
    EXPECT_LE(vm.disk_mbps, i2->disk_mbps * 600.0 / 450.0 + 1e-9);
  }
  // ... and expensive.
  const auto r3 = find_vm(cat, VmFamily::R3, VmSize::XLarge);
  ASSERT_TRUE(r3.has_value());
  EXPECT_GT(i2->price_per_hour, r3->price_per_hour);
}

TEST(FindVm, ByNameMissingReturnsNullopt) {
  EXPECT_FALSE(find_vm(t2_catalog(), "m5.large").has_value());
  EXPECT_FALSE(
      find_vm(t2_catalog(), VmFamily::C4, VmSize::Large).has_value());
}

TEST(ToString, EnumsRoundTripNames) {
  EXPECT_EQ(to_string(VmFamily::T2), "t2");
  EXPECT_EQ(to_string(VmFamily::I2), "i2");
  EXPECT_EQ(to_string(VmSize::XXLarge), "2xlarge");
  EXPECT_EQ(to_string(VmSize::Small), "small");
}

}  // namespace
}  // namespace lynceus::cloud

#include "core/stepper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "core/bo.hpp"
#include "core/constraints.hpp"
#include "core/lynceus.hpp"
#include "core/random_search.hpp"
#include "eval/runner.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace lynceus::core {
namespace {

/// Bitwise trajectory equality: ids, exact runtimes/costs, feasibility,
/// budget arithmetic, recommendation and decision count. Wall-clock
/// decision_seconds is deliberately excluded.
void expect_identical(const OptimizerResult& a, const OptimizerResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << "step " << i;
    EXPECT_EQ(a.history[i].runtime_seconds, b.history[i].runtime_seconds);
    EXPECT_EQ(a.history[i].cost, b.history[i].cost);
    EXPECT_EQ(a.history[i].feasible, b.history[i].feasible);
  }
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.recommendation, b.recommendation);
  EXPECT_EQ(a.recommendation_feasible, b.recommendation_feasible);
  EXPECT_EQ(a.decisions, b.decisions);
}

double tiny_energy(const space::ConfigSpace& sp, ConfigId id) {
  return 10.0 + 4.0 * sp.value(id, 0) + 3.0 * sp.value(id, 1);
}

eval::TableRunner::MetricsFn tiny_metrics() {
  const auto sp = testing::tiny_space();
  return [sp](space::ConfigId id) {
    return std::vector<double>{tiny_energy(*sp, id)};
  };
}

ConstraintDef tiny_constraint(double cap) {
  ConstraintDef c;
  c.name = "energy";
  c.metric_index = 0;
  c.threshold = [cap](ConfigId) { return cap; };
  return c;
}

/// One named stepper-producing configuration of the identity suite.
struct Case {
  std::string label;
  std::function<std::unique_ptr<OptimizerStepper>(
      const OptimizationProblem&, std::uint64_t)>
      make;
  bool needs_metrics = false;
};

std::vector<Case> identity_cases() {
  std::vector<Case> cases;
  for (unsigned la = 0; la <= 2; ++la) {
    for (const bool incremental : {false, true}) {
      Case c;
      c.label = "lynceus_la" + std::to_string(la) +
                (incremental ? "_inc" : "");
      c.make = [la, incremental](const OptimizationProblem& p,
                                 std::uint64_t seed) {
        LynceusOptions opts;
        opts.lookahead = la;
        opts.incremental_refit = incremental;
        return LynceusOptimizer(opts).make_stepper(p, seed);
      };
      cases.push_back(std::move(c));
    }
  }
  for (unsigned la = 0; la <= 1; ++la) {
    Case c;
    c.label = "mc_la" + std::to_string(la);
    c.make = [la](const OptimizationProblem& p, std::uint64_t seed) {
      MultiConstraintOptions opts;
      opts.lookahead = la;
      opts.incremental_refit = false;
      return MultiConstraintLynceus({tiny_constraint(26.0)}, opts)
          .make_stepper(p, seed);
    };
    c.needs_metrics = true;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.label = "bo";
    c.make = [](const OptimizationProblem& p, std::uint64_t seed) {
      return BayesianOptimizer().make_stepper(p, seed);
    };
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.label = "rnd";
    c.make = [](const OptimizationProblem& p, std::uint64_t seed) {
      return RandomSearch().make_stepper(p, seed);
    };
    cases.push_back(std::move(c));
  }
  return cases;
}

/// The classic closed-loop result of a case (its optimize() entrypoint is
/// itself a drive loop now, so this doubles as the golden reference).
OptimizerResult solo_run(const Case& c, const OptimizationProblem& problem,
                         std::uint64_t seed) {
  const auto ds = testing::tiny_dataset();
  eval::TableRunner runner(ds,
                           c.needs_metrics ? tiny_metrics() : nullptr);
  auto stepper = c.make(problem, seed);
  return drive(*stepper, runner);
}

// ---------------------------------------------------------------------------
// ask/tell ↔ optimize() trajectory identity
// ---------------------------------------------------------------------------

TEST(StepperIdentity, ManualAskTellMatchesOptimizeAllOptimizers) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  for (const Case& c : identity_cases()) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 21ULL}) {
      SCOPED_TRACE(c.label + " seed " + std::to_string(seed));
      const OptimizerResult golden = solo_run(c, problem, seed);

      // Manual ask/tell loop, telling each batch in REVERSE order: the
      // canonical-order application must make arrival order invisible.
      eval::TableRunner runner(ds,
                               c.needs_metrics ? tiny_metrics() : nullptr);
      auto stepper = c.make(problem, seed);
      while (true) {
        const StepAction& action = stepper->ask();
        if (action.kind == StepAction::Kind::Finished) break;
        std::vector<std::pair<ConfigId, RunResult>> batch;
        for (ConfigId id : action.configs) {
          batch.emplace_back(id, runner.run(id));
        }
        std::reverse(batch.begin(), batch.end());
        for (const auto& [id, r] : batch) stepper->tell(id, r);
      }
      ASSERT_TRUE(stepper->finished());
      expect_identical(stepper->result(), golden);
      EXPECT_FALSE(stepper->stop_reason().empty());
    }
  }
}

TEST(StepperIdentity, BootstrapBatchIsAskedUpfront) {
  const auto problem = testing::tiny_problem();
  auto stepper = RandomSearch().make_stepper(problem, 3);
  const StepAction& action = stepper->ask();
  ASSERT_EQ(action.kind, StepAction::Kind::Profile);
  EXPECT_EQ(action.configs.size(), problem.bootstrap_samples);
  EXPECT_EQ(stepper->outstanding(), problem.bootstrap_samples);
  // ask() is idempotent while runs are outstanding.
  const StepAction& again = stepper->ask();
  EXPECT_EQ(again.configs, action.configs);
}

TEST(StepperIdentity, WarmStartPriorsSkipStraightToDecisions) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  for (ConfigId id = 0; id < 5; ++id) {
    Sample s;
    s.id = id;
    s.runtime_seconds = ds.runtime(id);
    s.cost = ds.cost(id);
    s.feasible = true;
    problem.prior_samples.push_back(s);
  }
  LynceusOptions opts;
  opts.lookahead = 1;
  // Identity against the closed loop.
  eval::TableRunner r1(ds);
  const auto golden = LynceusOptimizer(opts).optimize(problem, r1, 11);
  auto stepper = LynceusOptimizer(opts).make_stepper(problem, 11);
  const StepAction& action = stepper->ask();
  // First ask is already a decision (single config), not the LHS batch.
  if (action.kind == StepAction::Kind::Profile) {
    EXPECT_EQ(action.configs.size(), 1U);
  }
  eval::TableRunner r2(ds);
  while (!stepper->finished()) {
    const StepAction& a = stepper->ask();
    if (a.kind == StepAction::Kind::Finished) break;
    for (ConfigId id : a.configs) stepper->tell(id, r2.run(id));
  }
  expect_identical(stepper->result(), golden);
}

TEST(StepperIdentity, SetupCostAndEarlyStopVariantsMatch) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  for (const bool with_setup : {false, true}) {
    for (const double ei_stop : {0.0, 0.05}) {
      LynceusOptions opts;
      opts.lookahead = 1;
      opts.ei_stop_fraction = ei_stop;
      if (with_setup) {
        opts.setup_cost = [](std::optional<ConfigId> from, ConfigId to) {
          return from.has_value() && *from != to ? 0.01 : 0.0;
        };
      }
      SCOPED_TRACE((with_setup ? "setup" : "no-setup") +
                   std::string(" ei=") + std::to_string(ei_stop));
      eval::TableRunner r1(ds);
      eval::TableRunner r2(ds);
      LynceusOptimizer lyn(opts);
      const auto golden = lyn.optimize(problem, r1, 9);
      auto stepper = lyn.make_stepper(problem, 9);
      expect_identical(drive(*stepper, r2), golden);
    }
  }
}

TEST(StepperIdentity, CacheAndBranchParallelVariantsMatch) {
  // The remaining flag axes of the determinism contract: RootCache on/off
  // and branch parallelism on/off (incremental on/off is covered by the
  // case list above). The cache is shared between the golden run and the
  // stepped run, so the stepped run replays warm-started decisions —
  // which must still be byte-identical.
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  util::ThreadPool pool(2);
  for (const bool use_cache : {false, true}) {
    for (const bool branch_parallel : {false, true}) {
      SCOPED_TRACE(std::string(use_cache ? "cache" : "no-cache") +
                   (branch_parallel ? "+branch" : ""));
      RootCache cache;
      LynceusOptions opts;
      opts.lookahead = 1;
      opts.incremental_refit = false;
      opts.root_cache = use_cache ? &cache : nullptr;
      opts.pool = &pool;
      opts.branch_parallel = branch_parallel;
      LynceusOptimizer lyn(opts);
      eval::TableRunner r1(ds);
      const auto golden = lyn.optimize(problem, r1, 31);

      eval::TableRunner r2(ds);
      auto stepper = lyn.make_stepper(problem, 31);
      expect_identical(drive(*stepper, r2), golden);
      if (use_cache) {
        EXPECT_GT(cache.stats().hits, 0U);
      }
    }
  }
}

TEST(StepperIdentity, MultiConstraintCacheAndBranchParallelVariantsMatch) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  util::ThreadPool pool(2);
  RootCache cache;
  MultiConstraintOptions opts;
  opts.lookahead = 1;
  opts.incremental_refit = false;
  opts.root_cache = &cache;
  opts.pool = &pool;
  opts.branch_parallel = true;
  MultiConstraintLynceus opt({tiny_constraint(26.0)}, opts);
  eval::TableRunner r1(ds, tiny_metrics());
  const auto golden = opt.optimize(problem, r1, 6);
  eval::TableRunner r2(ds, tiny_metrics());
  auto stepper = opt.make_stepper(problem, 6);
  expect_identical(drive(*stepper, r2), golden);
  EXPECT_GT(cache.stats().hits, 0U);
}

TEST(StepperIdentity, ObserverSeesSameEventStreamAsClosedLoop) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  TraceRecorder via_steps;
  LynceusOptions opts;
  opts.lookahead = 1;
  opts.observer = &via_steps;
  LynceusOptimizer lyn(opts);
  eval::TableRunner runner(ds);
  const auto result = lyn.optimize(problem, runner, 5);
  EXPECT_EQ(via_steps.bootstrap_samples().size(), problem.bootstrap_samples);
  EXPECT_EQ(via_steps.decisions().size(),
            result.history.size() - problem.bootstrap_samples);
  EXPECT_EQ(via_steps.runs().size(),
            result.history.size() - problem.bootstrap_samples);
  EXPECT_FALSE(via_steps.stop_reason().empty());
}

TEST(StepperIdentity, MultiConstraintObserverFiresAndTrajectoryUnchanged) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  MultiConstraintOptions plain;
  plain.lookahead = 1;
  eval::TableRunner r1(ds, tiny_metrics());
  const auto golden = MultiConstraintLynceus({tiny_constraint(26.0)}, plain)
                          .optimize(problem, r1, 4);

  TraceRecorder trace;
  MultiConstraintOptions observed = plain;
  observed.observer = &trace;
  eval::TableRunner r2(ds, tiny_metrics());
  const auto traced =
      MultiConstraintLynceus({tiny_constraint(26.0)}, observed)
          .optimize(problem, r2, 4);
  expect_identical(traced, golden);
  EXPECT_EQ(trace.bootstrap_samples().size(), problem.bootstrap_samples);
  EXPECT_EQ(trace.runs().size(),
            golden.history.size() - problem.bootstrap_samples);
}

// ---------------------------------------------------------------------------
// Snapshot → restore byte identity
// ---------------------------------------------------------------------------

/// Drives `stepper`, snapshotting after `cut` tells and finishing on a
/// freshly restored stepper. Returns the restored stepper's final result.
OptimizerResult drive_with_snapshot(const Case& c,
                                    const OptimizationProblem& problem,
                                    std::uint64_t seed, std::size_t cut,
                                    std::string* snapshot_out = nullptr) {
  const auto ds = testing::tiny_dataset();
  eval::TableRunner runner(ds, c.needs_metrics ? tiny_metrics() : nullptr);
  auto stepper = c.make(problem, seed);
  std::size_t tells = 0;
  while (!stepper->finished() && tells < cut) {
    const StepAction& action = stepper->ask();
    if (action.kind == StepAction::Kind::Finished) break;
    for (ConfigId id : action.configs) {
      if (tells >= cut) break;
      stepper->tell(id, runner.run(id));
      ++tells;
    }
  }
  const std::string snap = stepper->snapshot();
  if (snapshot_out != nullptr) *snapshot_out = snap;
  stepper.reset();  // the saved session is gone; only the snapshot remains

  auto restored = c.make(problem, seed);
  restored->restore(snap);
  // Finish via outstanding_configs first (a mid-batch snapshot must not
  // re-run already-told results), then the plain drive loop.
  while (!restored->finished()) {
    const StepAction& action = restored->ask();
    if (action.kind == StepAction::Kind::Finished) break;
    for (ConfigId id : restored->outstanding_configs()) {
      restored->tell(id, runner.run(id));
    }
  }
  return restored->result();
}

TEST(StepperSnapshot, RestoreFinishesByteIdenticallyAtEveryPhase) {
  const auto problem = testing::tiny_problem();
  // Cut points: before anything ran, mid-bootstrap, at the bootstrap
  // boundary, mid-decisions, and deep into the run.
  const std::size_t cuts[] = {0, 3, problem.bootstrap_samples,
                              problem.bootstrap_samples + 2, 1000};
  for (const Case& c : identity_cases()) {
    const OptimizerResult golden = solo_run(c, problem, 13);
    for (const std::size_t cut : cuts) {
      SCOPED_TRACE(c.label + " cut " + std::to_string(cut));
      expect_identical(drive_with_snapshot(c, problem, 13, cut), golden);
    }
  }
}

TEST(StepperSnapshot, SnapshotOfFinishedSessionRestoresFinished) {
  const auto problem = testing::tiny_problem();
  const Case c = identity_cases().front();
  std::string snap;
  const auto result = drive_with_snapshot(c, problem, 3, 1000000, &snap);
  (void)result;
  auto stepper = c.make(problem, 3);
  // Snapshot taken mid-run; drive to the end and snapshot the terminal
  // state instead.
  const auto ds = testing::tiny_dataset();
  eval::TableRunner runner(ds);
  (void)drive(*stepper, runner);
  const std::string finished_snap = stepper->snapshot();
  auto restored = c.make(problem, 3);
  restored->restore(finished_snap);
  EXPECT_TRUE(restored->finished());
  EXPECT_EQ(restored->stop_reason(), stepper->stop_reason());
  expect_identical(restored->result(), stepper->result());
}

TEST(StepperSnapshot, RestoreValidatesOptimizerAndSpace) {
  const auto problem = testing::tiny_problem();
  auto lyn = LynceusOptimizer().make_stepper(problem, 1);
  const std::string snap = lyn->snapshot();

  auto bo = BayesianOptimizer().make_stepper(problem, 1);
  EXPECT_THROW(bo->restore(snap), std::runtime_error);

  auto started = LynceusOptimizer().make_stepper(problem, 1);
  (void)started->ask();
  EXPECT_THROW(started->restore(snap), std::logic_error);

  auto fresh = LynceusOptimizer().make_stepper(problem, 1);
  EXPECT_THROW(fresh->restore("{not json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Protocol misuse
// ---------------------------------------------------------------------------

TEST(StepperProtocol, TellValidatesOutstandingSet) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  auto stepper = RandomSearch().make_stepper(problem, 2);
  RunResult r;
  EXPECT_THROW(stepper->tell(0, r), std::logic_error);  // nothing asked

  const StepAction& action = stepper->ask();
  ASSERT_EQ(action.kind, StepAction::Kind::Profile);
  // A config outside the batch is rejected.
  ConfigId outside = 0;
  while (std::find(action.configs.begin(), action.configs.end(), outside) !=
         action.configs.end()) {
    ++outside;
  }
  EXPECT_THROW(stepper->tell(outside, r), std::invalid_argument);

  // Telling the same config twice is rejected.
  eval::TableRunner runner(ds);
  stepper->tell(action.configs[0], runner.run(action.configs[0]));
  EXPECT_THROW(stepper->tell(action.configs[0], r), std::invalid_argument);
}

TEST(StepperProtocol, FinishedActionIsTerminalAndIdempotent) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  problem.budget = 1e-6;  // bootstrap overshoots, then nothing is viable
  auto stepper = RandomSearch().make_stepper(problem, 2);
  eval::TableRunner runner(ds);
  (void)drive(*stepper, runner);
  ASSERT_TRUE(stepper->finished());
  const std::string reason = stepper->stop_reason();
  EXPECT_EQ(stepper->ask().kind, StepAction::Kind::Finished);
  EXPECT_EQ(stepper->ask().stop_reason, reason);
  RunResult r;
  EXPECT_THROW(stepper->tell(0, r), std::logic_error);
}

TEST(StepperProtocol, MultiConstraintRejectsPriorSamples) {
  const auto ds = testing::tiny_dataset();
  auto problem = testing::tiny_problem();
  Sample s;
  s.id = 0;
  s.runtime_seconds = ds.runtime(0);
  s.cost = ds.cost(0);
  s.feasible = true;
  problem.prior_samples.push_back(s);
  MultiConstraintLynceus opt({tiny_constraint(26.0)});
  EXPECT_THROW((void)opt.make_stepper(problem, 1), std::invalid_argument);
}

TEST(StepperProtocol, PartialResultTracksAppliedRunsOnly) {
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  auto stepper = BayesianOptimizer().make_stepper(problem, 5);
  eval::TableRunner runner(ds);
  const StepAction& action = stepper->ask();
  ASSERT_EQ(action.kind, StepAction::Kind::Profile);
  // Tell all but one bootstrap result: nothing is applied yet.
  for (std::size_t i = 0; i + 1 < action.configs.size(); ++i) {
    stepper->tell(action.configs[i], runner.run(action.configs[i]));
  }
  EXPECT_EQ(stepper->result().history.size(), 0U);
  EXPECT_EQ(stepper->outstanding(), 1U);
  stepper->tell(action.configs.back(), runner.run(action.configs.back()));
  EXPECT_EQ(stepper->result().history.size(), action.configs.size());
}

TEST(StepperSnapshot, FaultFreeSnapshotsCarryNoFailureKeys) {
  // The failure-aware keys are emitted conditionally, so fault-free
  // snapshots stay byte-identical to the pre-failure-aware format (old
  // snapshots restore into new builds and vice versa).
  const auto ds = testing::tiny_dataset();
  const auto problem = testing::tiny_problem();
  auto stepper = LynceusOptimizer().make_stepper(problem, 13);
  eval::TableRunner runner(ds);
  const StepAction& action = stepper->ask();
  for (std::size_t i = 0; i + 1 < action.configs.size(); ++i) {
    stepper->tell(action.configs[i], runner.run(action.configs[i]));
  }
  const std::string snap = stepper->snapshot();  // mid-batch, told_ buffered
  EXPECT_EQ(snap.find("\"failures\""), std::string::npos);
  EXPECT_EQ(snap.find("\"budget_failed\""), std::string::npos);
  EXPECT_EQ(snap.find("\"outcome\""), std::string::npos);
}

}  // namespace
}  // namespace lynceus::core

/// Reproduces Figure 7 of the paper: the 90th percentile of the
/// best-so-far CNO as a function of the number of explorations performed,
/// for Lynceus LA=2/1/0 and BO on the CNN dataset (medium budget), plus
/// the average number of explorations of each variant (the paper's green
/// stars).
///
/// Shares cached runs with Figs. 4 and 6.
/// Flags: --runs=N (default 40), --b, --screen, --no-cache.

#include "common.hpp"

#include "eval/plot.hpp"

using namespace lynceus;

int main(int argc, char** argv) {
  const auto settings = bench::parse_settings(argc, argv, 40);
  eval::ensure_directory("results");

  bench::print_header(util::format(
      "Figure 7 — p90 best-so-far CNO vs explorations, CNN (runs=%zu)",
      settings.runs));

  const auto dataset = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);

  std::vector<eval::OptimizerSpec> specs = {
      eval::lynceus_spec(2, settings.screen_width),
      eval::lynceus_spec(1, settings.screen_width),
      eval::lynceus_spec(0, settings.screen_width),
      eval::bo_spec(),
  };

  std::vector<std::vector<double>> traces;
  std::vector<double> avg_nex;
  std::size_t longest = 0;
  for (const auto& spec : specs) {
    const auto result = bench::fetch(settings, dataset, spec);
    traces.push_back(result.p90_cno_by_exploration());
    avg_nex.push_back(result.mean_nex());
    longest = std::max(longest, traces.back().size());
    std::printf("[%s done]\n", spec.label.c_str());
  }

  // The first 12 explorations are the shared bootstrap; the paper plots
  // from exploration 13 onward.
  eval::Table table({"explorations", specs[0].label, specs[1].label,
                     specs[2].label, specs[3].label});
  const std::size_t start = 12;
  for (std::size_t e = start; e < longest; e += 6) {
    std::vector<std::string> row;
    row.push_back(util::format("%zu", e + 1));
    for (const auto& trace : traces) {
      row.push_back(e < trace.size() ? util::format("%.2f", trace[e])
                                     : util::format("%.2f", trace.back()));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  {
    std::vector<eval::Series> plot_series;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      eval::Series s;
      s.label = specs[i].label;
      for (std::size_t e = start; e < traces[i].size(); ++e) {
        s.xs.push_back(static_cast<double>(e + 1));
        s.ys.push_back(traces[i][e]);
      }
      plot_series.push_back(std::move(s));
    }
    eval::PlotOptions plot;
    plot.title = "p90 best-so-far CNO vs explorations — CNN";
    plot.x_label = "explorations";
    plot.y_label = "p90 CNO";
    std::fputs(render_plot(plot_series, plot).c_str(), stdout);
  }

  eval::Table stars({"variant", "avg NEX (green star)"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    stars.add_row({specs[i].label, util::format("%.1f", avg_nex[i])});
  }
  stars.print(std::cout);

  // Full-resolution CSV.
  {
    eval::Table csv({"exploration", specs[0].label, specs[1].label,
                     specs[2].label, specs[3].label});
    for (std::size_t e = 0; e < longest; ++e) {
      std::vector<std::string> row{util::format("%zu", e + 1)};
      for (const auto& trace : traces) {
        row.push_back(e < trace.size() ? util::format("%.4f", trace[e])
                                       : util::format("%.4f", trace.back()));
      }
      csv.add_row(row);
    }
    csv.save_csv("results/fig7_cnn.csv");
  }

  std::printf(
      "\nPaper: after 30 explorations Lynceus LA=2 is ~1.7x closer to the\n"
      "optimum than BO; BO stops improving after ~43 explorations (budget\n"
      "gone on expensive configs) while Lynceus keeps going to ~96\n"
      "explorations and a far lower final p90 CNO.\n");
  return 0;
}

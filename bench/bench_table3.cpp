/// Reproduces Table 3 of the paper: the average wall-clock time needed to
/// compute the next configuration to try, for BO / Lynceus(LA=0) (same
/// complexity), Lynceus(LA=1) and Lynceus(LA=2), measured on the largest
/// search space (TensorFlow CNN, 384 configurations).
///
/// The paper reports 0.006 s / 0.4 s / 1.23 s on an 8-core Xeon E5-2630v3
/// with the candidate loop parallelized. Decision time scales with the
/// number of path-simulated roots, so we report both the screened default
/// and (optionally) the paper-faithful full-width setting.
///
/// Flags: --runs=N (default 3), --screen (default 24; pass --screen=0 for
/// the paper-faithful full candidate sweep — slow on one core).

#include "common.hpp"

using namespace lynceus;

int main(int argc, char** argv) {
  auto settings = bench::parse_settings(argc, argv, 3);
  settings.use_cache = false;  // timing must be measured fresh

  bench::print_header(util::format(
      "Table 3 — average seconds per next() decision, CNN space "
      "(runs=%zu, screen_width=%u)",
      settings.runs, settings.screen_width));

  const auto dataset = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);

  eval::Table table({"optimizer", "avg s / next()", "decisions timed"});
  const std::vector<eval::OptimizerSpec> specs = {
      eval::bo_spec(),
      eval::lynceus_spec(0, settings.screen_width),
      eval::lynceus_spec(1, settings.screen_width),
      eval::lynceus_spec(2, settings.screen_width),
  };
  for (const auto& spec : specs) {
    eval::ExperimentConfig cfg;
    cfg.runs = settings.runs;
    cfg.budget_multiplier = settings.budget_multiplier;
    cfg.base_seed = settings.base_seed;
    const auto result = run_experiment(dataset, spec, cfg);
    std::size_t decisions = 0;
    for (const auto& r : result.runs) decisions += r.decisions;
    table.add_row({spec.label,
                   util::format("%.4f", result.mean_decision_seconds()),
                   util::format("%zu", decisions)});
    std::printf("[%s done]\n", spec.label.c_str());
  }

  table.print(std::cout);
  eval::ensure_directory("results");
  table.save_csv("results/table3.csv");
  std::printf(
      "\nPaper (8-core Xeon, all viable roots simulated): BO/LA=0 0.006 s,\n"
      "LA=1 0.4 s, LA=2 1.23 s. The shape to check: each lookahead level\n"
      "multiplies the decision time by roughly the Gauss-Hermite branching\n"
      "factor; all values stay well within \"perfectly affordable\" for\n"
      "cloud tuning (one decision per profiling run).\n");
  return 0;
}

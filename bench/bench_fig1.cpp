/// Reproduces Figure 1 of the paper (the motivation):
///  (a) normalized cost of every configuration of the three TensorFlow
///      jobs, sorted by quality — few near-optimal configurations, many
///      highly sub-optimal ones (log-scale y in the paper; we print
///      selected ranks and summary counts);
///  (b) the CDF of the cost achieved by *ideal disjoint* optimization
///      (hyper-parameters first on a reference cloud c†, then the cloud),
///      normalized to the joint optimum.

#include <algorithm>

#include "common.hpp"

#include "eval/plot.hpp"

#include "eval/disjoint.hpp"
#include "math/stats.hpp"

using namespace lynceus;

int main() {
  const auto datasets = cloud::make_tensorflow_datasets();
  eval::ensure_directory("results");

  bench::print_header(
      "Figure 1a — Normalized cost of all configs, sorted by quality");
  {
    eval::Table t({"job", "rank1", "rank5", "rank20", "rank50", "rank100",
                   "rank200", "rank384", "within2x", "within10x"});
    for (const auto& ds : datasets) {
      auto costs = ds.all_costs();
      std::sort(costs.begin(), costs.end());
      const double opt = ds.optimal_cost();
      auto at = [&costs, opt](std::size_t rank) {
        return util::format("%.2f", costs.at(rank - 1) / opt);
      };
      std::size_t within2 = 0;
      std::size_t within10 = 0;
      for (double c : costs) {
        if (c <= 2.0 * opt) ++within2;
        if (c <= 10.0 * opt) ++within10;
      }
      t.add_row({ds.job_name(), at(1), at(5), at(20), at(50), at(100),
                 at(200), at(384), util::format("%zu", within2),
                 util::format("%zu", within10)});

      // Full curve as CSV for plotting.
      std::vector<double> normalized(costs.size());
      for (std::size_t i = 0; i < costs.size(); ++i) {
        normalized[i] = costs[i] / opt;
      }
      eval::Table curve({"rank", "cost_over_opt"});
      for (std::size_t i = 0; i < normalized.size(); ++i) {
        curve.add_row({util::format("%zu", i + 1),
                       util::format("%.4f", normalized[i])});
      }
      curve.save_csv("results/fig1a_" + ds.job_name() + ".csv");
    }
    {
      std::vector<eval::Series> curves;
      for (const auto& ds : datasets) {
        auto costs = ds.all_costs();
        std::sort(costs.begin(), costs.end());
        eval::Series s;
        s.label = ds.job_name();
        for (std::size_t i = 0; i < costs.size(); ++i) {
          s.xs.push_back(static_cast<double>(i + 1));
          s.ys.push_back(costs[i] / ds.optimal_cost());
        }
        curves.push_back(std::move(s));
      }
      eval::PlotOptions plot;
      plot.title = "Normalized cost by configuration rank";
      plot.x_label = "configuration (by quality)";
      plot.y_label = "cost / optimal cost";
      plot.log_y = true;
      std::fputs(render_plot(curves, plot).c_str(), stdout);
    }
    t.print(std::cout);
    std::printf(
        "\nPaper: only 5-20 configurations (1.5%%-5%% of 384) lie within 2x\n"
        "of the optimum; the worst configurations are orders of magnitude\n"
        "more expensive.\n");
  }

  bench::print_header(
      "Figure 1b — CDF of CNO achievable by ideal disjoint optimization");
  {
    eval::Table t({"job", "P(find optimum)", "p50", "p90", "max"});
    for (const auto& ds : datasets) {
      // Dimensions 0-2 are the job hyper-parameters, 3-4 the cloud.
      const auto cnos = eval::disjoint_optimization_cno(ds, {0, 1, 2}, {3, 4});
      double found = 0.0;
      for (double c : cnos) found += c <= 1.0 + 1e-9 ? 1.0 : 0.0;
      t.add_row({ds.job_name(),
                 util::format("%.2f", found / static_cast<double>(cnos.size())),
                 util::format("%.2f", math::percentile(cnos, 50.0)),
                 util::format("%.2f", math::percentile(cnos, 90.0)),
                 util::format("%.2f", *std::max_element(cnos.begin(),
                                                        cnos.end()))});
      eval::save_cdf_csv("results/fig1b_" + ds.job_name() + ".csv", cnos);
      eval::print_cdf(std::cout, "CDF (" + ds.job_name() + ")", cnos, 12);
    }
    t.print(std::cout);
    std::printf(
        "\nPaper: disjoint optimization finds the joint optimum < 50%% of\n"
        "the time; p50 of the normalized cost is 1.2-2, p90 is 1.2-3.7.\n");
  }
  return 0;
}

/// Ablations for the design choices called out in DESIGN.md:
///   1. K, the number of Gauss-Hermite nodes per simulated step (the paper
///      leaves it unspecified; we default to 3);
///   2. the reward discount γ (paper: 0.9);
///   3. the root-screening width (our single-core implementation
///      approximation; 0 = paper-faithful full sweep);
///   4. the cost model: bagging ensemble of random trees (paper default)
///      vs a Gaussian process (paper footnote 1), and the ensemble size.
///
/// Run on a Scout job (69 configs) so the full-width variants stay cheap.
/// Flags: --runs=N (default 20), --b.

#include "common.hpp"

#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "model/bagging.hpp"
#include "model/gp.hpp"

using namespace lynceus;

namespace {

eval::OptimizerSpec custom_spec(const std::string& label,
                                core::LynceusOptions opts) {
  return {label, [opts] {
            return std::make_unique<core::LynceusOptimizer>(opts);
          }};
}

}  // namespace

int main(int argc, char** argv) {
  auto settings = bench::parse_settings(argc, argv, 20);
  settings.use_cache = false;  // ablations are cheap; keep the cache clean

  const auto dataset =
      cloud::make_scout_dataset(cloud::scout_job_specs()[4]);  // pagerank
  eval::ExperimentConfig cfg;
  cfg.runs = settings.runs;
  cfg.budget_multiplier = settings.budget_multiplier;
  cfg.base_seed = settings.base_seed;

  bench::print_header(util::format(
      "Ablations — Lynceus design choices on %s (runs=%zu)",
      dataset.job_name().c_str(), settings.runs));

  eval::Table table({"variant", "mean CNO", "p90 CNO", "avg NEX",
                     "avg s/next()"});
  auto add = [&](const eval::OptimizerSpec& spec) {
    const auto result = run_experiment(dataset, spec, cfg);
    const auto s = eval::summarize(result.cnos());
    table.add_row({spec.label, util::format("%.3f", s.mean),
                   util::format("%.3f", s.p90),
                   util::format("%.1f", result.mean_nex()),
                   util::format("%.4f", result.mean_decision_seconds())});
    std::printf("[%s done]\n", spec.label.c_str());
  };

  core::LynceusOptions base;
  base.lookahead = 1;

  // 1. Gauss-Hermite nodes.
  for (unsigned k : {2U, 3U, 5U}) {
    auto opts = base;
    opts.gh_points = k;
    add(custom_spec(util::format("K=%u", k), opts));
  }
  // 2. Discount factor.
  for (double gamma : {0.0, 0.5, 0.9, 1.0}) {
    auto opts = base;
    opts.gamma = gamma;
    add(custom_spec(util::format("gamma=%.1f", gamma), opts));
  }
  // 3. Screening width (0 = all viable roots).
  for (unsigned width : {8U, 16U, 32U, 0U}) {
    auto opts = base;
    opts.screen_width = width;
    add(custom_spec(width == 0 ? std::string("screen=all")
                               : util::format("screen=%u", width),
                    opts));
  }
  // 4. Cost model.
  {
    auto opts = base;
    opts.model_factory = [] {
      return std::make_unique<model::GaussianProcess>();
    };
    add(custom_spec("model=GP", opts));
  }
  for (unsigned trees : {5U, 10U, 20U}) {
    auto opts = base;
    opts.model_factory =
        core::default_tree_model_factory(dataset.space(), trees);
    add(custom_spec(util::format("trees=%u", trees), opts));
  }
  // 5. Faithful baselines: the original CherryPick recipe (GP + EI with
  //    the 10% stopping rule) next to the paper's tree-ensemble BO.
  add(eval::cherrypick_spec());
  add(eval::bo_spec());

  // 6. Predictive-variance mode (between-trees spread vs SMAC-style law of
  //    total variance).
  {
    auto opts = base;
    model::BaggingOptions bopts;
    bopts.tree.features_per_split =
        model::BaggingOptions::weka_features_per_split(
            dataset.space().dim_count());
    bopts.variance_mode = model::VarianceMode::TotalVariance;
    opts.model_factory = [bopts] {
      return std::make_unique<model::BaggingEnsemble>(bopts);
    };
    add(custom_spec("variance=total", opts));
  }

  table.print(std::cout);
  eval::ensure_directory("results");
  table.save_csv("results/ablation.csv");

  // 7. Robustness to the synthetic-surface draw: the Lynceus-vs-BO
  //    comparison must hold on independently generated CNN surfaces
  //    (different noise seeds), i.e. the headline result is not an
  //    artifact of one particular synthetic dataset.
  bench::print_header("Surface-draw robustness — CNN, 3 noise seeds");
  eval::Table robust({"noise seed", "Lynceus(LA=1) mean CNO", "BO mean CNO"});
  for (std::uint64_t noise_seed : {0ULL, 1ULL, 2ULL}) {
    const auto cnn =
        cloud::make_tensorflow_dataset(cloud::TfModel::CNN, noise_seed);
    eval::ExperimentConfig quick = cfg;
    quick.runs = std::max<std::size_t>(cfg.runs / 2, 8);
    const auto lyn =
        run_experiment(cnn, eval::lynceus_spec(1, settings.screen_width),
                       quick);
    const auto bo = run_experiment(cnn, eval::bo_spec(), quick);
    robust.add_row({util::format("%llu",
                                 static_cast<unsigned long long>(noise_seed)),
                    util::format("%.3f", eval::summarize(lyn.cnos()).mean),
                    util::format("%.3f", eval::summarize(bo.cnos()).mean)});
    std::printf("[noise seed %llu done]\n",
                static_cast<unsigned long long>(noise_seed));
  }
  robust.print(std::cout);
  robust.save_csv("results/ablation_noise_seeds.csv");
  std::printf(
      "\nReading guide: K and gamma should plateau quickly (K=3, gamma=0.9\n"
      "are adequate); widening the screen beyond ~16 should not change CNO\n"
      "on this small space (validating the screening approximation); the\n"
      "GP model is a viable alternative to the tree ensemble (footnote 1).\n");
  return 0;
}

/// Reproduces Figure 6 of the paper: CDFs of the CNO achieved by Lynceus
/// with lookahead LA = 2 (default), LA = 1 and LA = 0 on the TensorFlow
/// jobs — the breakdown showing that both cost-awareness (LA=0 already
/// divides EIc by the expected cost) and long-sightedness (LA >= 1)
/// contribute, mostly at the tail of the distribution.
///
/// Shares cached runs with Fig. 4 (the LA=2 entry).
/// Flags: --runs=N (default 40), --b, --screen, --no-cache.

#include "common.hpp"

#include "eval/plot.hpp"

using namespace lynceus;

int main(int argc, char** argv) {
  const auto settings = bench::parse_settings(argc, argv, 40);
  eval::ensure_directory("results");

  bench::print_header(util::format(
      "Figure 6 — CDF of CNO for Lynceus LA=2/1/0, TensorFlow (runs=%zu)",
      settings.runs));

  eval::Table summary({"job", "variant", "P(optimal)", "mean CNO", "p90 CNO",
                       "p95 CNO"});

  for (const auto& dataset : cloud::make_tensorflow_datasets()) {
    std::vector<eval::Series> cdf_plot;
    for (unsigned la : {2U, 1U, 0U}) {
      const auto spec = eval::lynceus_spec(la, settings.screen_width);
      const auto result = bench::fetch(settings, dataset, spec);
      const auto cnos = result.cnos();
      cdf_plot.push_back(eval::cdf_series(spec.label, cnos));
      const auto s = eval::summarize(cnos);
      double optimal = 0.0;
      for (double c : cnos) optimal += c <= 1.0 + 1e-9 ? 1.0 : 0.0;
      optimal /= static_cast<double>(cnos.size());
      summary.add_row({dataset.job_name(), spec.label,
                       util::format("%.2f", optimal),
                       util::format("%.2f", s.mean),
                       util::format("%.2f", s.p90),
                       util::format("%.2f", s.p95)});
      eval::save_cdf_csv("results/fig6_" + dataset.job_name() + "_LA" +
                             std::to_string(la) + ".csv",
                         cnos);
    }
    eval::PlotOptions plot;
    plot.title = "CDF of CNO — " + dataset.job_name();
    plot.x_label = "CNO";
    plot.y_label = "CDF";
    std::fputs(render_plot(cdf_plot, plot).c_str(), stdout);
    std::printf("[%s done]\n", dataset.job_name().c_str());
  }

  summary.print(std::cout);
  summary.save_csv("results/fig6_summary.csv");
  std::printf(
      "\nPaper: LA=0 is worse than LA=1 and LA=2, especially at the tail\n"
      "(p95 CNO 3.55/3.11/1.49 for LA=0 vs 2.45/1.18/1.00 for LA=2 on\n"
      "CNN/RNN/Multilayer); LA=1 and LA=2 are close except at the very\n"
      "tail. Lookahead buys robustness.\n");
  return 0;
}

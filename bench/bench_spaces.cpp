/// Reproduces Tables 1 and 2 of the paper: the TensorFlow job's tuning
/// parameters and the cloud configurations, plus a summary of every
/// evaluation dataset (sizes, deadline, feasible fraction, optimum).

#include "common.hpp"

#include "cloud/catalog.hpp"

using namespace lynceus;

int main() {
  bench::print_header("Table 1 — Hyper-parameters for training NNs on TensorFlow");
  {
    eval::Table t({"Hyper-parameter", "Values"});
    t.add_row({"Learning rate", "{1e-3, 1e-4, 1e-5}"});
    t.add_row({"Batch size", "{16, 256}"});
    t.add_row({"Training mode", "{sync, async}"});
    t.print(std::cout);
  }

  bench::print_header("Table 2 — Cloud configurations for the TensorFlow jobs");
  {
    eval::Table t({"VM type", "VM characteristics", "#VMs"});
    t.add_row({"t2.small", "{1 VCPU, 2 GB RAM}",
               "{8, 16, 32, 48, 64, 80, 96, 112}"});
    t.add_row({"t2.medium", "{2 VCPU, 4 GB RAM}",
               "{4, 8, 16, 24, 32, 40, 48, 56}"});
    t.add_row({"t2.xlarge", "{4 VCPU, 16 GB RAM}",
               "{2, 4, 8, 12, 16, 20, 24, 28}"});
    t.add_row({"t2.2xlarge", "{8 VCPU, 32 GB RAM}",
               "{1, 2, 4, 6, 8, 10, 12, 14}"});
    t.print(std::cout);
  }

  bench::print_header("Dataset inventory (paper §5.1)");
  {
    eval::Table t({"dataset", "configs", "dims", "Tmax(s)", "feasible%",
                   "mean cost($)", "optimal cost($)", "max/opt cost"});
    auto add = [&t](const cloud::Dataset& ds) {
      const auto costs = ds.all_costs();
      double worst = 0.0;
      for (double c : costs) worst = std::max(worst, c);
      t.add_row({ds.job_name(), util::format("%zu", ds.size()),
                 util::format("%zu", ds.space().dim_count()),
                 util::format("%.1f", ds.tmax_seconds()),
                 util::format("%.0f", 100.0 * ds.feasible_fraction()),
                 util::format("%.4f", ds.mean_cost()),
                 util::format("%.4f", ds.optimal_cost()),
                 util::format("%.0fx", worst / ds.optimal_cost())});
    };
    for (const auto& ds : cloud::make_tensorflow_datasets()) add(ds);
    for (const auto& ds : cloud::make_scout_datasets()) add(ds);
    for (const auto& ds : cloud::make_cherrypick_datasets()) add(ds);
    t.print(std::cout);
    eval::ensure_directory("results");
    t.save_csv("results/dataset_inventory.csv");
    std::printf("\nSaved results/dataset_inventory.csv\n");
  }
  return 0;
}

/// Reproduces Figure 8 of the paper: the 90th percentile of the CNO as a
/// function of the available budget (b = 1, 3, 5: low / medium / high) for
/// Lynceus (LA=2) and BO on the three TensorFlow jobs.
///
/// Shares its runs with Fig. 9 (same sweep, different metric) through the
/// results cache.
/// Flags: --runs=N (default 40, shared with Fig. 4 cache), --screen,
/// --no-cache.

#include "common.hpp"

using namespace lynceus;

int main(int argc, char** argv) {
  const auto settings = bench::parse_settings(argc, argv, 40);
  eval::ensure_directory("results");

  bench::print_header(util::format(
      "Figure 8 — p90 CNO vs budget multiplier b, TensorFlow (runs=%zu)",
      settings.runs));

  const double budgets[] = {1.0, 3.0, 5.0};
  eval::Table table({"job", "optimizer", "b=1", "b=3", "b=5"});

  for (const auto& dataset : cloud::make_tensorflow_datasets()) {
    for (const auto& spec :
         {eval::lynceus_spec(2, settings.screen_width), eval::bo_spec()}) {
      std::vector<std::string> row{dataset.job_name(), spec.label};
      for (double b : budgets) {
        const auto result = bench::fetch(settings, dataset, spec, b);
        row.push_back(
            util::format("%.2f", eval::summarize(result.cnos()).p90));
      }
      table.add_row(row);
    }
    std::printf("[%s done]\n", dataset.job_name().c_str());
  }

  table.print(std::cout);
  table.save_csv("results/fig8_summary.csv");
  std::printf(
      "\nPaper: Lynceus outperforms BO at every budget; the gap is small\n"
      "at b=1 (the LHS bootstrap consumes most of the budget for both) and\n"
      "grows with the budget as the exploration policies diverge.\n");
  return 0;
}

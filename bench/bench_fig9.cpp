/// Reproduces Figure 9 of the paper: the average number of explorations
/// (NEX) as a function of the available budget (b = 1, 3, 5) for Lynceus
/// (LA=2) and BO on the three TensorFlow jobs — the budget-awareness
/// mechanism made visible: with the same budget, Lynceus profiles the job
/// on substantially more configurations because it steers away from
/// expensive profiling runs.
///
/// Shares its runs with Fig. 8 through the results cache.
/// Flags: --runs=N (default 40, shared with Fig. 4 cache), --screen,
/// --no-cache.

#include "common.hpp"

using namespace lynceus;

int main(int argc, char** argv) {
  const auto settings = bench::parse_settings(argc, argv, 40);
  eval::ensure_directory("results");

  bench::print_header(util::format(
      "Figure 9 — average NEX vs budget multiplier b, TensorFlow (runs=%zu)",
      settings.runs));

  const double budgets[] = {1.0, 3.0, 5.0};
  eval::Table table({"job", "optimizer", "b=1", "b=3", "b=5"});
  eval::Table ratio_table({"job", "NEX ratio b=1", "b=3", "b=5"});

  for (const auto& dataset : cloud::make_tensorflow_datasets()) {
    std::vector<double> lyn_nex;
    std::vector<double> bo_nex;
    for (const auto& spec :
         {eval::lynceus_spec(2, settings.screen_width), eval::bo_spec()}) {
      std::vector<std::string> row{dataset.job_name(), spec.label};
      for (double b : budgets) {
        const auto result = bench::fetch(settings, dataset, spec, b);
        const double nex = result.mean_nex();
        (spec.label == "BO" ? bo_nex : lyn_nex).push_back(nex);
        row.push_back(util::format("%.1f", nex));
      }
      table.add_row(row);
    }
    std::vector<std::string> ratios{dataset.job_name()};
    for (std::size_t i = 0; i < 3; ++i) {
      ratios.push_back(util::format("%.2fx", lyn_nex[i] / bo_nex[i]));
    }
    ratio_table.add_row(ratios);
    std::printf("[%s done]\n", dataset.job_name().c_str());
  }

  table.print(std::cout);
  std::printf("\nLynceus/BO exploration ratio:\n");
  ratio_table.print(std::cout);
  table.save_csv("results/fig9_summary.csv");
  std::printf(
      "\nPaper: at b=1 Lynceus explores at most 1.65x more configurations\n"
      "than BO (the bootstrap dominates); at b=3 and b=5 the ratio grows\n"
      "to 2.25x.\n");
  return 0;
}

/// Micro-benchmarks (google-benchmark) of the optimizer's hot paths: the
/// components whose speed bounds Lynceus' decision time — tree/ensemble
/// fitting and batch prediction, Gauss-Hermite construction, LHS sampling,
/// acquisition evaluation, and full decision steps through the lookahead
/// simulation engine.
///
/// The binary provides its own main: after the google-benchmark run it
/// re-measures the engine's single-decision latency per (space, lookahead)
/// and writes percentiles plus allocations-per-decision to a
/// machine-readable JSON summary (default BENCH_micro.json, override with
/// --json_out=PATH; skip with --json_out=) so the perf trajectory can be
/// tracked across PRs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "cloud/workloads.hpp"
#include "core/acquisition.hpp"
#include "core/constraints.hpp"
#include "core/constraints_reference.hpp"
#include "core/lookahead.hpp"
#include "core/lynceus.hpp"
#include "core/bo.hpp"
#include "core/sequential.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "math/gauss_hermite.hpp"
#include "math/lhs.hpp"
#include "model/bagging.hpp"
#include "model/gp.hpp"
#include "net/tuning_client.hpp"
#include "net/tuning_server.hpp"
#include "service/session_spec.hpp"
#include "service/tuning_service.hpp"
#include "space/config_space.hpp"
#include "space/parameter.hpp"
#include "util/alloc_count.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lynceus;

/// Training set of `n` samples over the TensorFlow space, deterministic.
struct TrainingFixture {
  std::shared_ptr<const space::ConfigSpace> space;
  model::FeatureMatrix fm;
  std::vector<std::uint32_t> rows;
  std::vector<double> y;

  explicit TrainingFixture(std::size_t n)
      : space(cloud::tensorflow_space()), fm(*space) {
    const auto ds = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
    util::Rng rng(9);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id =
          static_cast<space::ConfigId>(rng.below(space->size()));
      rows.push_back(id);
      y.push_back(ds.cost(id));
    }
  }
};

void BM_TreeFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::TreeOptions opts;
  opts.features_per_split = 4;
  model::DecisionTree tree(opts);
  util::Rng rng(1);
  for (auto _ : state) {
    tree.fit(fx.fm, fx.rows, fx.y, rng);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_EnsembleFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::BaggingOptions opts;
  opts.tree.features_per_split = 4;
  model::BaggingEnsemble ens(opts);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ens.fit(fx.fm, fx.rows, fx.y, ++seed);
  }
}
BENCHMARK(BM_EnsembleFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_EnsemblePredictAll(benchmark::State& state) {
  TrainingFixture fx(100);
  model::BaggingEnsemble ens;
  ens.fit(fx.fm, fx.rows, fx.y, 7);
  std::vector<model::Prediction> preds;
  for (auto _ : state) {
    ens.predict_all(fx.fm, preds);
    benchmark::DoNotOptimize(preds.data());
  }
}
BENCHMARK(BM_EnsemblePredictAll);

void BM_GpFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::GaussianProcess gp;
  for (auto _ : state) {
    gp.fit(fx.fm, fx.rows, fx.y, 0);
    benchmark::DoNotOptimize(gp.lengthscale());
  }
}
BENCHMARK(BM_GpFit)->Arg(25)->Arg(50)->Arg(100);

void BM_GaussHermite(benchmark::State& state) {
  for (auto _ : state) {
    const math::GaussHermite gh(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(gh.nodes().data());
  }
}
BENCHMARK(BM_GaussHermite)->Arg(3)->Arg(8)->Arg(32);

void BM_LhsSample(benchmark::State& state) {
  const auto space = cloud::tensorflow_space();
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space->lhs_sample(12, rng));
  }
}
BENCHMARK(BM_LhsSample);

void BM_ConstrainedEiSweep(benchmark::State& state) {
  TrainingFixture fx(100);
  model::BaggingEnsemble ens;
  ens.fit(fx.fm, fx.rows, fx.y, 7);
  std::vector<model::Prediction> preds;
  ens.predict_all(fx.fm, preds);
  for (auto _ : state) {
    double best = 0.0;
    for (std::size_t id = 0; id < preds.size(); ++id) {
      best = std::max(best, core::constrained_ei(1.0, preds[id], 0.5));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_ConstrainedEiSweep);

/// One full Lynceus decision (fit + Γ filter + path simulation for every
/// screened root) on the 384-point space — the unit Table 3 reports.
void BM_LynceusDecision(benchmark::State& state) {
  const auto ds = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  const auto problem = eval::make_problem(ds, 3.0);
  core::LynceusOptions opts;
  opts.lookahead = static_cast<unsigned>(state.range(0));
  opts.screen_width = 24;
  for (auto _ : state) {
    state.PauseTiming();
    core::LynceusOptimizer lyn(opts);
    // Budget trimmed so the run performs the bootstrap plus ~2 decisions.
    auto small = problem;
    small.budget = ds.mean_cost() * (problem.bootstrap_samples + 2.0);
    eval::TableRunner runner(ds);
    state.ResumeTiming();
    const auto result = lyn.optimize(small, runner, 5);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(BM_LynceusDecision)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// The two decision-benchmark spaces: the paper's TensorFlow grid (largest
/// evaluation space, 384 points) and a Scout job (69 points).
cloud::Dataset decision_dataset(int space_idx) {
  if (space_idx == 0) {
    return cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  }
  return cloud::make_scout_dataset(cloud::scout_job_specs().front());
}

const char* decision_space_name(int space_idx) {
  return space_idx == 0 ? "tensorflow_cnn" : "scout_0";
}

/// One full decision through the lookahead engine — root fit, full-space
/// prediction, fused acquisition pass, screening, and one simulated path
/// per screened root. Reports allocations per decision (0 after warm-up
/// when the allocation-counting hooks are linked, which they are in this
/// binary). arg2 selects the branch-refit mode: 0 = from-scratch
/// (bit-pinned default), 1 = incremental (Options::incremental_refit;
/// registered for la >= 1 only — at la 0 no branch model exists to refit).
void BM_ExplorePathsDecision(benchmark::State& state) {
  const auto ds = decision_dataset(static_cast<int>(state.range(0)));
  const auto problem = eval::make_problem(ds, 3.0);
  eval::TableRunner runner(ds);
  core::LoopState st(problem, runner, 5);
  st.bootstrap();

  core::LookaheadEngine::Options opts;
  opts.lookahead = static_cast<unsigned>(state.range(1));
  opts.incremental_refit = state.range(2) != 0;
  core::LookaheadEngine engine(problem, opts,
                               core::default_tree_model_factory(*problem.space),
                               1);
  std::vector<core::ConfigId> roots;
  std::uint64_t iter = 0;
  std::uint64_t allocs = 0;
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    ++iter;
    const util::AllocCountGuard guard;
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(5, iter));
    engine.screened_roots(24, roots);
    double acc = 0.0;
    for (core::ConfigId r : roots) {
      acc += engine
                 .simulate(r, util::derive_seed(5, iter * 1000003ULL + r))
                 .cost;
    }
    benchmark::DoNotOptimize(acc);
    if (iter > 1) {  // first iteration warms the buffers
      allocs += guard.delta();
      ++decisions;
    }
  }
  state.counters["allocs_per_decision"] =
      decisions > 0 ? static_cast<double>(allocs) /
                          static_cast<double>(decisions)
                    : 0.0;
  state.counters["roots"] = static_cast<double>(roots.size());
}
BENCHMARK(BM_ExplorePathsDecision)
    ->ArgsProduct({{0, 1}, {0, 1, 2}, {0}})
    ->ArgsProduct({{0, 1}, {1, 2}, {1}})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Multi-constraint decisions: naive reference vs MultiConstraintEngine
// ---------------------------------------------------------------------------

/// Bootstrapped root state of a multi-constraint run with one synthetic
/// "energy" constraint whose cap binds without emptying the feasible set;
/// optionally a second synthetic "memory" constraint with the same
/// property (for the MC incremental-refit bench cases).
struct McDecisionFixture {
  cloud::Dataset ds;
  core::OptimizationProblem problem;
  std::vector<core::ConstraintDef> constraints;
  eval::TableRunner runner;
  core::MetricRecordingRunner recorder;
  core::LoopState st;
  std::vector<std::uint32_t> rows;
  std::vector<double> y_cost;
  std::vector<std::vector<double>> y_metric;
  std::vector<char> feasible;

  static double energy_of(const cloud::Dataset& d, space::ConfigId id) {
    return 0.05 * d.runtime(id) * (1.0 + 0.1 * static_cast<double>(id % 7));
  }

  static double memory_of(const cloud::Dataset& d, space::ConfigId id) {
    return 0.02 * d.runtime(id) * (1.0 + 0.05 * static_cast<double>(id % 5));
  }

  static std::vector<core::ConstraintDef> make_constraints(
      const cloud::Dataset& d, std::size_t n_constraints) {
    double min_energy = 1e300;
    double min_memory = 1e300;
    for (space::ConfigId id = 0; id < d.size(); ++id) {
      if (d.feasible(id)) {
        min_energy = std::min(min_energy, energy_of(d, id));
        min_memory = std::min(min_memory, memory_of(d, id));
      }
    }
    core::ConstraintDef c;
    c.name = "energy";
    c.metric_index = 0;
    const double cap = 1.5 * min_energy;
    c.threshold = [cap](core::ConfigId) { return cap; };
    std::vector<core::ConstraintDef> out = {c};
    if (n_constraints >= 2) {
      core::ConstraintDef m;
      m.name = "memory";
      m.metric_index = 1;
      const double mcap = 1.6 * min_memory;
      m.threshold = [mcap](core::ConfigId) { return mcap; };
      out.push_back(m);
    }
    return out;
  }

  explicit McDecisionFixture(int space_idx, std::size_t n_constraints = 1)
      : ds(decision_dataset(space_idx)),
        problem(eval::make_problem(ds, 3.0)),
        constraints(make_constraints(ds, n_constraints)),
        runner(ds,
               [this](space::ConfigId id) {
                 return std::vector<double>{energy_of(ds, id),
                                            memory_of(ds, id)};
               }),
        recorder(runner, constraints.size()),
        st(problem, runner, 5) {
    st.runner = &recorder;
    st.bootstrap();
    for (std::size_t i = 0; i < st.samples.size(); ++i) {
      rows.push_back(st.samples[i].id);
      y_cost.push_back(st.samples[i].cost);
    }
    y_metric.resize(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      for (std::size_t i = 0; i < st.samples.size(); ++i) {
        y_metric[c].push_back(
            recorder.metrics()[i][constraints[c].metric_index]);
      }
    }
    for (std::size_t i = 0; i < st.samples.size(); ++i) {
      bool ok = st.samples[i].feasible;
      for (const auto& c : constraints) {
        if (recorder.metrics()[i][c.metric_index] >
            c.threshold(st.samples[i].id)) {
          ok = false;
        }
      }
      feasible.push_back(ok ? 1 : 0);
    }
  }

  [[nodiscard]] core::MultiConstraintEngine::Options engine_options(
      unsigned la, bool incremental = false) const {
    core::MultiConstraintEngine::Options opts;
    opts.lookahead = la;
    opts.incremental_refit = incremental;
    for (const auto& c : constraints) opts.thresholds.push_back(c.threshold);
    return opts;
  }

  [[nodiscard]] core::MultiConstraintOptions naive_options(unsigned la) const {
    core::MultiConstraintOptions opts;
    opts.lookahead = la;
    return opts;
  }
};

/// One full decision on the engine: root fits (or cache hit), Γ filter,
/// one simulated joint-speculation path per viable root.
double mc_engine_decision(McDecisionFixture& fx,
                          core::MultiConstraintEngine& engine,
                          std::uint64_t iter) {
  engine.begin_decision(fx.rows, fx.y_cost, fx.y_metric, fx.feasible,
                        fx.st.budget.remaining(), util::derive_seed(5, iter));
  double acc = 0.0;
  for (core::ConfigId r : engine.viable()) {
    acc += engine.simulate(r, util::derive_seed(5, iter * 1000003ULL + r))
               .cost;
  }
  return acc;
}

/// The same decision through the naive copy-based reference.
double mc_naive_decision(McDecisionFixture& fx,
                         core::reference::McSimulator& sim,
                         const core::MultiConstraintOptions& opts,
                         std::uint64_t iter) {
  core::reference::McState root;
  root.rows = fx.rows;
  root.y_cost = fx.y_cost;
  root.y_metric = fx.y_metric;
  root.sample_feasible = fx.feasible;
  root.tested.assign(fx.problem.space->size(), 0);
  for (std::uint32_t id : fx.rows) root.tested[id] = 1;
  root.beta = fx.st.budget.remaining();

  core::reference::McCtx ctx;
  sim.build_ctx(root, ctx, util::derive_seed(5, iter));
  double acc = 0.0;
  for (std::size_t id = 0; id < fx.problem.space->size(); ++id) {
    if (root.tested[id] != 0) continue;
    if (core::prob_within(root.beta, ctx.cost_preds[id]) <
        opts.feasibility_quantile) {
      continue;
    }
    acc += sim.explore(root, ctx, static_cast<core::ConfigId>(id),
                       opts.lookahead,
                       util::derive_seed(5, iter * 1000003ULL + id))
               .cost;
  }
  return acc;
}

void BM_MultiConstraintDecision(benchmark::State& state) {
  McDecisionFixture fx(static_cast<int>(state.range(0)));
  const auto la = static_cast<unsigned>(state.range(1));
  core::MultiConstraintEngine engine(
      fx.problem, fx.engine_options(la),
      core::default_tree_model_factory(*fx.problem.space), 1);
  std::uint64_t iter = 0;
  std::uint64_t allocs = 0;
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    ++iter;
    const util::AllocCountGuard guard;
    benchmark::DoNotOptimize(mc_engine_decision(fx, engine, iter));
    if (iter > 1) {  // first iteration warms the buffers
      allocs += guard.delta();
      ++decisions;
    }
  }
  state.counters["allocs_per_decision"] =
      decisions > 0
          ? static_cast<double>(allocs) / static_cast<double>(decisions)
          : 0.0;
}
// §4.4 simulates every viable root (no screening), so a TensorFlow-space
// LA=2 decision runs minutes under the naive path — both twins stop at
// LA=1 there and cover LA=2 on the smaller Scout space.
BENCHMARK(BM_MultiConstraintDecision)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Unit(benchmark::kMillisecond);

void BM_MultiConstraintDecisionNaive(benchmark::State& state) {
  McDecisionFixture fx(static_cast<int>(state.range(0)));
  const auto la = static_cast<unsigned>(state.range(1));
  const core::MultiConstraintOptions opts = fx.naive_options(la);
  core::reference::McSimulator sim(
      fx.problem, fx.constraints, opts,
      core::default_tree_model_factory(*fx.problem.space));
  std::uint64_t iter = 0;
  for (auto _ : state) {
    ++iter;
    benchmark::DoNotOptimize(mc_naive_decision(fx, sim, opts, iter));
  }
}
BENCHMARK(BM_MultiConstraintDecisionNaive)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Unit(benchmark::kMillisecond);

/// Decision-time percentiles per (space, lookahead), written as JSON for
/// BENCH_micro.json.
struct DecisionStats {
  int space_idx;
  unsigned lookahead;
  std::size_t decisions;
  double mean_ms, p50_ms, p90_ms, p99_ms;
  double allocs_per_decision;
};

DecisionStats measure_decision(int space_idx, unsigned lookahead,
                               std::size_t reps, bool incremental = false) {
  const auto ds = decision_dataset(space_idx);
  const auto problem = eval::make_problem(ds, 3.0);
  eval::TableRunner runner(ds);
  core::LoopState st(problem, runner, 5);
  st.bootstrap();
  core::LookaheadEngine::Options opts;
  opts.lookahead = lookahead;
  opts.incremental_refit = incremental;
  core::LookaheadEngine engine(problem, opts,
                               core::default_tree_model_factory(*problem.space),
                               1);
  std::vector<core::ConfigId> roots;
  std::vector<double> ms;
  ms.reserve(reps);
  std::uint64_t allocs = 0;
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    const util::AllocCountGuard guard;
    const auto t0 = std::chrono::steady_clock::now();
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(5, rep + 1));
    engine.screened_roots(24, roots);
    double acc = 0.0;
    for (core::ConfigId r : roots) {
      acc += engine
                 .simulate(r, util::derive_seed(5, (rep + 1) * 1000003ULL + r))
                 .cost;
    }
    benchmark::DoNotOptimize(acc);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t delta = guard.delta();
    if (rep == 0) continue;
    allocs += delta;
    ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  const auto pct = [&](double p) {
    const auto i = static_cast<std::size_t>(p * (ms.size() - 1) + 0.5);
    return ms[std::min(i, ms.size() - 1)];
  };
  double mean = 0.0;
  for (double v : ms) mean += v;
  mean /= static_cast<double>(ms.size());
  return {space_idx, lookahead, ms.size(), mean,
          pct(0.50), pct(0.90), pct(0.99),
          static_cast<double>(allocs) / static_cast<double>(ms.size())};
}

/// Percentile over a sorted sample (nearest-rank with rounding).
double percentile(const std::vector<double>& sorted, double p) {
  const auto i = static_cast<std::size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

/// Multi-constraint decision percentiles for one implementation.
struct McStats {
  double p50_ms = 0.0;
  double mean_ms = 0.0;
  double allocs_per_decision = 0.0;
};

McStats measure_mc_decision(int space_idx, unsigned la, std::size_t reps,
                            bool naive, bool incremental = false,
                            std::size_t n_constraints = 1) {
  McDecisionFixture fx(space_idx, n_constraints);
  core::MultiConstraintEngine engine(
      fx.problem, fx.engine_options(la, incremental),
      core::default_tree_model_factory(*fx.problem.space), 1);
  const core::MultiConstraintOptions opts = fx.naive_options(la);
  core::reference::McSimulator sim(
      fx.problem, fx.constraints, opts,
      core::default_tree_model_factory(*fx.problem.space));
  std::vector<double> ms;
  ms.reserve(reps);
  std::uint64_t allocs = 0;
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    const util::AllocCountGuard guard;
    const auto t0 = std::chrono::steady_clock::now();
    const double acc = naive ? mc_naive_decision(fx, sim, opts, rep + 1)
                             : mc_engine_decision(fx, engine, rep + 1);
    benchmark::DoNotOptimize(acc);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t delta = guard.delta();
    if (rep == 0) continue;
    allocs += delta;
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  McStats s;
  s.p50_ms = percentile(ms, 0.50);
  for (double v : ms) s.mean_ms += v;
  s.mean_ms /= static_cast<double>(ms.size());
  s.allocs_per_decision =
      static_cast<double>(allocs) / static_cast<double>(ms.size());
  return s;
}

/// Root-cache reuse: the p50 of re-running the *same* decision (identical
/// root state and fit seed), which hits the cache and skips the root fit +
/// full-space prediction. Also reports the observed hit count.
struct CachedStats {
  double p50_ms = 0.0;
  std::uint64_t cache_hits = 0;
};

CachedStats measure_cached_decision(int space_idx, unsigned la,
                                    std::size_t reps) {
  const auto ds = decision_dataset(space_idx);
  const auto problem = eval::make_problem(ds, 3.0);
  eval::TableRunner runner(ds);
  core::LoopState st(problem, runner, 5);
  st.bootstrap();
  core::RootCache cache;
  core::LookaheadEngine::Options opts;
  opts.lookahead = la;
  opts.root_cache = &cache;
  core::LookaheadEngine engine(problem, opts,
                               core::default_tree_model_factory(*problem.space),
                               1);
  std::vector<core::ConfigId> roots;
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 warms the cache
    const auto t0 = std::chrono::steady_clock::now();
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(5, 1));
    engine.screened_roots(24, roots);
    double acc = 0.0;
    for (core::ConfigId r : roots) {
      acc += engine.simulate(r, util::derive_seed(5, 1000003ULL + r)).cost;
    }
    benchmark::DoNotOptimize(acc);
    const auto t1 = std::chrono::steady_clock::now();
    if (rep == 0) continue;
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  return {percentile(ms, 0.50), engine.cache_stats().hits};
}

/// Pooled decision: identical work to measure_decision but with the root
/// simulations fanned out across a default-sized thread pool (ROADMAP
/// "Thread-pool fan-out by default"). Trajectory-neutral; on a 1-core host
/// the pool runs inline and this tracks the pool overhead instead.
struct PooledStats {
  double p50_ms = 0.0;
  std::size_t workers = 0;
};

PooledStats measure_pooled_decision(int space_idx, unsigned la,
                                    std::size_t reps) {
  const auto ds = decision_dataset(space_idx);
  const auto problem = eval::make_problem(ds, 3.0);
  eval::TableRunner runner(ds);
  core::LoopState st(problem, runner, 5);
  st.bootstrap();
  util::ThreadPool pool(util::default_worker_count());
  core::LookaheadEngine::Options opts;
  opts.lookahead = la;
  core::LookaheadEngine engine(problem, opts,
                               core::default_tree_model_factory(*problem.space),
                               pool.worker_count() + 1);
  std::vector<core::ConfigId> roots;
  std::vector<double> costs;
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t rep = 0; rep <= reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(5, rep + 1));
    engine.screened_roots(24, roots);
    costs.assign(roots.size(), 0.0);
    util::maybe_parallel_for(&pool, roots.size(), [&](std::size_t i) {
      costs[i] =
          engine
              .simulate(roots[i],
                        util::derive_seed(5, (rep + 1) * 1000003ULL + roots[i]))
              .cost;
    });
    double acc = 0.0;
    for (double c : costs) acc += c;
    benchmark::DoNotOptimize(acc);
    const auto t1 = std::chrono::steady_clock::now();
    if (rep == 0) continue;
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  return {percentile(ms, 0.50), pool.worker_count()};
}

/// Decision-scaling measurement (ROADMAP "Multi-core decision scaling
/// numbers"): one full decision with the root simulations optionally
/// fanned out across a `workers`-thread pool and/or the intra-root
/// depth-0 branch fan-out parallelized over the same pool
/// (LookaheadEngine::Options::branch_pool). Every mode is
/// trajectory-neutral (pooled-determinism contract in core/lookahead.hpp),
/// so the timings are directly comparable.
double measure_scaling_decision(int space_idx, unsigned la, std::size_t reps,
                                std::size_t workers, bool roots_parallel,
                                bool branch_parallel) {
  const auto ds = decision_dataset(space_idx);
  const auto problem = eval::make_problem(ds, 3.0);
  eval::TableRunner runner(ds);
  core::LoopState st(problem, runner, 5);
  st.bootstrap();
  util::ThreadPool pool(workers);
  core::LookaheadEngine::Options opts;
  opts.lookahead = la;
  opts.branch_pool = branch_parallel ? &pool : nullptr;
  core::LookaheadEngine engine(problem, opts,
                               core::default_tree_model_factory(*problem.space),
                               pool.worker_count() + 1);
  util::ThreadPool* root_pool = roots_parallel ? &pool : nullptr;
  std::vector<core::ConfigId> roots;
  std::vector<double> costs;
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    const auto t0 = std::chrono::steady_clock::now();
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(5, rep + 1));
    engine.screened_roots(24, roots);
    costs.assign(roots.size(), 0.0);
    util::maybe_parallel_for(root_pool, roots.size(), [&](std::size_t i) {
      costs[i] =
          engine
              .simulate(roots[i],
                        util::derive_seed(5, (rep + 1) * 1000003ULL + roots[i]))
              .cost;
    });
    double acc = 0.0;
    for (double c : costs) acc += c;
    benchmark::DoNotOptimize(acc);
    const auto t1 = std::chrono::steady_clock::now();
    if (rep == 0) continue;
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  return percentile(ms, 0.50);
}

/// TuningService throughput: N concurrent Lynceus sessions of one
/// recurrent job (same seed — the warm-start scenario the shared RootCache
/// exists for) drained end-to-end against the simulated-async replay
/// runner. Reports decision throughput: total decisions across all
/// sessions over the wall-clock of the whole drain, with the root cache
/// shared across sessions or per-session. Per-session trajectories are
/// bit-identical in every mode (ask/tell + cache determinism contracts),
/// so the numbers compare directly.
struct SessionThroughputStats {
  std::size_t decisions = 0;   ///< per drain, summed over sessions
  double ms_per_decision = 0.0;  ///< median over reps
  double decisions_per_sec = 0.0;
};

SessionThroughputStats measure_session_throughput(std::size_t sessions,
                                                  bool shared_cache,
                                                  std::size_t reps) {
  const auto ds = decision_dataset(1);  // Scout: realistic small job
  const auto problem = eval::make_problem(ds, 3.0);
  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 24;
  opts.incremental_refit = false;

  std::vector<double> ms_per_decision;
  std::size_t decisions = 0;
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    service::TuningService::Options sopts;
    sopts.root_cache_capacity = shared_cache ? 16 : 0;
    // Per-session caches in the unshared mode: every session still gets
    // root-cache machinery, just no cross-session reuse. Declared before
    // the service so the caches outlive the steppers pointing at them
    // (the make_stepper lifetime contract).
    std::vector<std::unique_ptr<core::RootCache>> own_caches;
    service::TuningService svc(sopts);
    std::vector<service::SessionId> ids;
    for (std::size_t s = 0; s < sessions; ++s) {
      core::LynceusOptions per = opts;
      if (!shared_cache) {
        core::RootCache::Options copts;
        copts.capacity = 16;
        own_caches.push_back(std::make_unique<core::RootCache>(copts));
        per.root_cache = own_caches.back().get();
        ids.push_back(
            svc.open(core::LynceusOptimizer(per).make_stepper(problem, 5)));
      } else {
        ids.push_back(svc.open_lynceus(problem, per, 5));
      }
    }
    eval::AsyncTableRunner async(ds);
    const auto t0 = std::chrono::steady_clock::now();
    service::drain(svc, async);
    const auto t1 = std::chrono::steady_clock::now();
    decisions = 0;
    for (const auto id : ids) decisions += svc.result(id).decisions;
    if (rep == 0) continue;
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ms_per_decision.push_back(ms / static_cast<double>(decisions));
  }
  std::sort(ms_per_decision.begin(), ms_per_decision.end());
  SessionThroughputStats out;
  out.decisions = decisions;
  out.ms_per_decision = percentile(ms_per_decision, 0.50);
  out.decisions_per_sec =
      out.ms_per_decision > 0.0 ? 1000.0 / out.ms_per_decision : 0.0;
  return out;
}

/// Inter-session scaling (ISSUE 7 / ROADMAP "Inter-session parallel
/// scheduling"): N concurrent Lynceus sessions with *distinct* seeds —
/// independent jobs, the fleet scenario — drained either by the
/// single-threaded FIFO loop (workers == 0, the baseline) or by the
/// throughput-mode worker pool (workers >= 1). No root cache in either
/// mode (throughput mode requires it off; the baseline matches so the
/// comparison is pure scheduling). Per-session trajectories are
/// byte-identical across all modes by the throughput contract, so
/// decisions/s compares the same work.
SessionThroughputStats measure_session_scaling(std::size_t sessions,
                                               std::size_t workers,
                                               std::size_t reps) {
  const auto ds = decision_dataset(1);  // Scout: realistic small job
  const auto problem = eval::make_problem(ds, 3.0);
  core::LynceusOptions opts;
  opts.lookahead = 1;
  opts.screen_width = 24;
  opts.incremental_refit = false;

  std::vector<double> ms_per_decision;
  std::size_t decisions = 0;
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    service::TuningService::Options sopts;
    sopts.throughput_workers = workers;
    service::TuningService svc(sopts);
    std::vector<service::SessionId> ids;
    for (std::size_t s = 0; s < sessions; ++s) {
      ids.push_back(svc.open_lynceus(problem, opts, s + 1));
    }
    eval::AsyncTableRunner async(ds);
    const auto t0 = std::chrono::steady_clock::now();
    service::drain(svc, async);
    const auto t1 = std::chrono::steady_clock::now();
    decisions = 0;
    for (const auto id : ids) decisions += svc.result(id).decisions;
    if (rep == 0) continue;
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ms_per_decision.push_back(ms / static_cast<double>(decisions));
  }
  std::sort(ms_per_decision.begin(), ms_per_decision.end());
  SessionThroughputStats out;
  out.decisions = decisions;
  out.ms_per_decision = percentile(ms_per_decision, 0.50);
  out.decisions_per_sec =
      out.ms_per_decision > 0.0 ? 1000.0 / out.ms_per_decision : 0.0;
  return out;
}

/// Network front-end throughput (src/net/): N concurrent remote Lynceus
/// sessions — distinct seeds, the fleet scenario — spread over
/// `clients` loopback TCP connections against a `shards`-shard
/// TuningServer, each client draining its sessions against the
/// simulated-async replay runner. Reports the decision throughput of the
/// whole distributed drain (total decisions over wall-clock, comparable
/// to session_scaling's in-process numbers — the gap is the wire tax)
/// and the client-observed tell round-trip latency (send tell → told
/// reply, the ask/tell hot path of a remote driver).
struct NetThroughputStats {
  std::size_t decisions = 0;     ///< per drain, summed over sessions
  double ms_per_decision = 0.0;  ///< median over reps
  double decisions_per_sec = 0.0;
  double tell_p50_ms = 0.0;  ///< round-trip latency over all tells, all reps
  double tell_p99_ms = 0.0;
};

NetThroughputStats measure_net_throughput(std::size_t sessions,
                                          std::size_t clients,
                                          std::size_t shards,
                                          std::size_t reps,
                                          net::TuningClient::WireMode wire) {
  const auto ds = decision_dataset(1);  // Scout: realistic small job
  const auto problem = eval::make_problem(ds, 3.0);
  const std::size_t per_client = sessions / clients;

  std::vector<double> ms_per_decision;
  std::vector<double> tell_ms;
  std::size_t decisions = 0;
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    net::TuningServer::Options sopts;
    sopts.shards = shards;
    sopts.root_cache_capacity = 16;
    net::TuningServer server(sopts);
    server.register_problem("bench", "recurrent", problem);

    std::vector<std::size_t> client_decisions(clients, 0);
    std::vector<std::vector<double>> client_tell_ms(clients);
    std::vector<std::thread> drivers;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
      drivers.emplace_back([&, c] {
        net::TuningClient client("127.0.0.1", server.port(),
                                 net::kDefaultMaxFrameBytes, wire);
        eval::AsyncTableRunner runner(ds);
        const auto submit = [&](const service::PendingRun& run) {
          eval::AsyncTableRunner::SubmitOptions o;
          o.timeout_seconds = run.timeout_seconds;
          o.attempt = run.attempt;
          o.start_delay = run.start_delay;
          runner.submit(run.session, run.config, o);
        };
        std::vector<std::uint64_t> ids;
        for (std::size_t k = 0; k < per_client; ++k) {
          service::SessionSpec spec;
          spec.optimizer = "lynceus";
          spec.seed = 1 + c * per_client + k;
          spec.lookahead = 1;
          spec.screen_width = 24;
          spec.incremental_refit = false;
          spec.branch_parallel = false;
          spec.problem_ref = service::ProblemRef{"bench", "recurrent", 3.0};
          ids.push_back(client.open(spec));
        }
        // TuningClient::drain(), inlined so each tell round trip is timed.
        std::size_t outstanding = 0;
        while (!client.active_sessions().empty()) {
          while (auto run = client.take_run(/*wait=*/false)) {
            submit(*run);
            ++outstanding;
          }
          if (outstanding == 0) {
            // Nothing local: block until the server pushes the next run.
            const auto run = client.take_run(/*wait=*/true);
            if (!run.has_value()) break;
            submit(*run);
            ++outstanding;
            continue;
          }
          const auto done = runner.next_completion();
          if (!done.has_value()) break;
          --outstanding;
          if (client.active_sessions().count(done->tag) == 0) continue;
          const auto s0 = std::chrono::steady_clock::now();
          (void)client.tell(done->tag, done->config, done->result);
          const auto s1 = std::chrono::steady_clock::now();
          client_tell_ms[c].push_back(
              std::chrono::duration<double, std::milli>(s1 - s0).count());
        }
        for (const std::uint64_t id : ids) {
          client_decisions[c] += client.result(id).result.decisions;
          client.close_session(id);
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    decisions = 0;
    for (const std::size_t d : client_decisions) decisions += d;
    if (rep == 0) continue;
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ms_per_decision.push_back(ms / static_cast<double>(decisions));
    for (const auto& v : client_tell_ms) {
      tell_ms.insert(tell_ms.end(), v.begin(), v.end());
    }
  }
  std::sort(ms_per_decision.begin(), ms_per_decision.end());
  std::sort(tell_ms.begin(), tell_ms.end());
  NetThroughputStats out;
  out.decisions = decisions;
  out.ms_per_decision = percentile(ms_per_decision, 0.50);
  out.decisions_per_sec =
      out.ms_per_decision > 0.0 ? 1000.0 / out.ms_per_decision : 0.0;
  out.tell_p50_ms = percentile(tell_ms, 0.50);
  out.tell_p99_ms = percentile(tell_ms, 0.99);
  return out;
}

/// Flat-layout (SoA) ensemble prediction vs the scalar node walk: p50 of
/// predicting every row of the space through predict_all (the flat batch
/// routes) against a per-row predict() loop over the same fitted ensemble.
/// The two are bitwise-identical by contract (`ctest -L simd`), so this is
/// purely the throughput ratio of the layouts. Also re-measures the LA=2
/// decision p50 (the lookahead engine is the main consumer of the batch
/// routes), so compare_bench.py can gate the end-to-end effect.
struct SoaPredictStats {
  double node_walk_p50_ms = 0.0;
  double soa_p50_ms = 0.0;
};

SoaPredictStats time_soa_predict(const model::FeatureMatrix& fm,
                                 model::BaggingEnsemble& ens,
                                 std::size_t reps) {
  std::vector<model::Prediction> preds(fm.rows());
  std::vector<double> walk_ms;
  std::vector<double> soa_ms;
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t r = 0; r < fm.rows(); ++r) {
      preds[r] = ens.predict(fm, r);
    }
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(preds.data());
    const double walk =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    t0 = std::chrono::steady_clock::now();
    ens.predict_all(fm, preds);
    t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(preds.data());
    const double soa =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0) continue;
    walk_ms.push_back(walk);
    soa_ms.push_back(soa);
  }
  std::sort(walk_ms.begin(), walk_ms.end());
  std::sort(soa_ms.begin(), soa_ms.end());
  SoaPredictStats s;
  s.node_walk_p50_ms = percentile(walk_ms, 0.50);
  s.soa_p50_ms = percentile(soa_ms, 0.50);
  return s;
}

SoaPredictStats measure_soa_predict(int space_idx, std::size_t reps) {
  const auto ds = decision_dataset(space_idx);
  const model::FeatureMatrix fm(ds.space());
  util::Rng rng(13);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.below(fm.rows()));
    rows.push_back(id);
    y.push_back(ds.cost(id));
  }
  model::BaggingEnsemble ens;
  ens.fit(fm, rows, y, 7);
  return time_soa_predict(fm, ens, reps);
}

/// Same measurement over a synthetic a×b grid: the real decision spaces
/// top out at 384 rows (tensorflow_cnn) and 69 rows (scout — small enough
/// that the whole ensemble walk is L1-resident and the batch layout can
/// only win ~1.5×), so this entry pins the speedup in the regime the
/// paper's lookahead actually stresses: spaces big enough that per-row
/// pointer walks thrash while the flat routes stream.
SoaPredictStats measure_soa_predict_grid(std::size_t a_levels,
                                         std::size_t b_levels,
                                         std::size_t reps) {
  std::vector<double> a(a_levels);
  std::vector<double> b(b_levels);
  for (std::size_t i = 0; i < a_levels; ++i) a[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < b_levels; ++i) b[i] = static_cast<double>(i);
  const space::ConfigSpace grid("grid", {space::numeric_param("a", a),
                                         space::numeric_param("b", b)});
  const model::FeatureMatrix fm(grid);
  util::Rng noise(13);
  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  for (std::size_t i = 0; i < 400; ++i) {
    rows.push_back(static_cast<std::uint32_t>(noise.below(fm.rows())));
    y.push_back(noise.normal());
  }
  model::BaggingEnsemble ens;
  ens.fit(fm, rows, y, 7);
  return time_soa_predict(fm, ens, reps);
}

/// Writes the decision-time summary. `sections` selects which measurement
/// sections to run and emit (empty = all): the CI scaling leg passes
/// `decision_scaling` alone so it does not pay for minutes of unrelated
/// measurements it immediately discards. Consumers tolerate missing
/// sections (tools/compare_bench.py skips them with a note).
bool write_json_summary(const std::string& path,
                        const std::set<std::string>& sections) {
  const auto want = [&](const char* name) {
    return sections.empty() || sections.count(name) > 0;
  };
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("micro_decision");
  w.key("unit").value("ms");
  w.key("alloc_counting").value(util::alloc_count_available());
  if (want("spaces")) {
  w.key("spaces").begin_array();
  for (int space_idx = 0; space_idx < 2; ++space_idx) {
    const auto ds = decision_dataset(space_idx);
    w.begin_object();
    w.key("space").value(decision_space_name(space_idx));
    w.key("size").value(static_cast<std::uint64_t>(ds.space().size()));
    w.key("lookahead").begin_array();
    for (unsigned la = 0; la <= 2; ++la) {
      const std::size_t reps = la >= 2 ? 15 : 40;
      const auto s = measure_decision(space_idx, la, reps);
      w.begin_object();
      w.key("la").value(static_cast<std::uint64_t>(la));
      w.key("decisions").value(static_cast<std::uint64_t>(s.decisions));
      w.key("mean_ms").value(s.mean_ms);
      w.key("p50_ms").value(s.p50_ms);
      w.key("p90_ms").value(s.p90_ms);
      w.key("p99_ms").value(s.p99_ms);
      w.key("allocs_per_decision").value(s.allocs_per_decision);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  }

  // Multi-constraint decisions: the naive copy-based reference vs the
  // delta-state engine, identical decision replayed by both.
  if (want("multi_constraint")) {
  w.key("multi_constraint").begin_array();
  struct McCase {
    int space_idx;
    unsigned la;
    std::size_t reps;
  };
  const McCase mc_cases[] = {
      {0, 0, 20}, {0, 1, 6}, {1, 0, 30}, {1, 1, 20}, {1, 2, 8}};
  for (const auto& mc : mc_cases) {
    const auto naive = measure_mc_decision(mc.space_idx, mc.la, mc.reps, true);
    const auto engine =
        measure_mc_decision(mc.space_idx, mc.la, mc.reps, false);
    w.begin_object();
    w.key("space").value(decision_space_name(mc.space_idx));
    w.key("la").value(static_cast<std::uint64_t>(mc.la));
    w.key("decisions").value(static_cast<std::uint64_t>(mc.reps));
    w.key("naive_p50_ms").value(naive.p50_ms);
    w.key("engine_p50_ms").value(engine.p50_ms);
    w.key("speedup_p50").value(
        engine.p50_ms > 0.0 ? naive.p50_ms / engine.p50_ms : 0.0);
    w.key("engine_allocs_per_decision").value(engine.allocs_per_decision);
    w.end_object();
  }
  w.end_array();
  }

  // Incremental ensemble refit vs the bitwise-pinned from-scratch engine,
  // identical decision replayed by both (ROADMAP "Incremental ensemble
  // refit"). Only la >= 1: a la-0 decision refits no branch model at all.
  if (want("incremental_refit")) {
  w.key("incremental_refit").begin_array();
  struct IncCase {
    int space_idx;
    unsigned la;
    std::size_t reps;
  };
  const IncCase inc_cases[] = {{0, 1, 40}, {0, 2, 15}, {1, 1, 40}, {1, 2, 15}};
  for (const auto& c : inc_cases) {
    const auto scratch = measure_decision(c.space_idx, c.la, c.reps, false);
    const auto inc = measure_decision(c.space_idx, c.la, c.reps, true);
    w.begin_object();
    w.key("space").value(decision_space_name(c.space_idx));
    w.key("la").value(static_cast<std::uint64_t>(c.la));
    w.key("decisions").value(static_cast<std::uint64_t>(c.reps));
    w.key("scratch_p50_ms").value(scratch.p50_ms);
    w.key("p50_ms").value(inc.p50_ms);
    w.key("speedup_p50").value(inc.p50_ms > 0.0 ? scratch.p50_ms / inc.p50_ms
                                                : 0.0);
    w.key("allocs_per_decision").value(inc.allocs_per_decision);
    w.end_object();
  }
  // Multi-constraint incremental refit (ROADMAP "Incremental refit for
  // the multi-constraint TF-scale bench"): Scout, 1 and 2 constraints,
  // LA 1/2 — the identical decision replayed with from-scratch vs
  // incremental per-branch refits of all I+1 ensembles. Entries carry a
  // "constraints" key, which is how consumers (tools/compare_bench.py)
  // tell them apart from the single-constraint cases above.
  struct McIncCase {
    int space_idx;
    std::size_t constraints;
    unsigned la;
    std::size_t reps;
  };
  const McIncCase mc_inc_cases[] = {
      {1, 1, 1, 20}, {1, 1, 2, 8}, {1, 2, 1, 12}, {1, 2, 2, 5}};
  for (const auto& c : mc_inc_cases) {
    const auto scratch = measure_mc_decision(c.space_idx, c.la, c.reps,
                                             false, false, c.constraints);
    const auto inc = measure_mc_decision(c.space_idx, c.la, c.reps, false,
                                         true, c.constraints);
    w.begin_object();
    w.key("space").value(decision_space_name(c.space_idx));
    w.key("constraints").value(static_cast<std::uint64_t>(c.constraints));
    w.key("la").value(static_cast<std::uint64_t>(c.la));
    w.key("decisions").value(static_cast<std::uint64_t>(c.reps));
    w.key("scratch_p50_ms").value(scratch.p50_ms);
    w.key("p50_ms").value(inc.p50_ms);
    w.key("speedup_p50").value(inc.p50_ms > 0.0 ? scratch.p50_ms / inc.p50_ms
                                                : 0.0);
    w.key("allocs_per_decision").value(inc.allocs_per_decision);
    w.end_object();
  }
  w.end_array();
  }

  // Flat-layout (SoA) batch prediction vs the scalar node walk, plus the
  // LA=2 decision p50 it feeds (see measure_soa_predict).
  if (want("soa_predict")) {
  w.key("soa_predict").begin_array();
  for (int space_idx = 0; space_idx < 2; ++space_idx) {
    const auto s = measure_soa_predict(space_idx, 30);
    const auto d = measure_decision(space_idx, 2, 10);
    w.begin_object();
    w.key("space").value(decision_space_name(space_idx));
    w.key("node_walk_p50_ms").value(s.node_walk_p50_ms);
    w.key("soa_p50_ms").value(s.soa_p50_ms);
    w.key("speedup_p50").value(
        s.soa_p50_ms > 0.0 ? s.node_walk_p50_ms / s.soa_p50_ms : 0.0);
    w.key("decision_la2_p50_ms").value(d.p50_ms);
    w.end_object();
  }
  {
    // Synthetic 64×64 grid (4096 rows): the regime the flat layout is
    // for — no decision dataset exists over it, so no decision_la2 key
    // (compare_bench.py treats that key as optional).
    const auto s = measure_soa_predict_grid(64, 64, 30);
    w.begin_object();
    w.key("space").value("grid_64x64");
    w.key("node_walk_p50_ms").value(s.node_walk_p50_ms);
    w.key("soa_p50_ms").value(s.soa_p50_ms);
    w.key("speedup_p50").value(
        s.soa_p50_ms > 0.0 ? s.node_walk_p50_ms / s.soa_p50_ms : 0.0);
    w.end_object();
  }
  w.end_array();
  }

  // Root-cache reuse of a repeated decision, plus the hit counters.
  if (want("cached_decision")) {
  w.key("cached_decision").begin_array();
  for (unsigned la = 0; la <= 1; ++la) {
    const auto c = measure_cached_decision(0, la, 20);
    w.begin_object();
    w.key("space").value(decision_space_name(0));
    w.key("la").value(static_cast<std::uint64_t>(la));
    w.key("p50_ms").value(c.p50_ms);
    w.key("cache_hits").value(c.cache_hits);
    w.end_object();
  }
  w.end_array();
  }

  // Thread-pool fan-out across root simulations.
  if (want("pooled_decision")) {
  w.key("pooled_decision").begin_array();
  {
    const auto p = measure_pooled_decision(0, 2, 15);
    w.begin_object();
    w.key("space").value(decision_space_name(0));
    w.key("la").value(std::uint64_t{2});
    w.key("workers").value(static_cast<std::uint64_t>(p.workers));
    w.key("p50_ms").value(p.p50_ms);
    w.end_object();
  }
  w.end_array();
  }

  // TuningService decision throughput at 1/8/64 concurrent sessions of a
  // recurrent job, shared vs per-session root cache (see
  // measure_session_throughput).
  if (want("session_throughput")) {
  w.key("session_throughput").begin_array();
  for (const std::size_t sessions : {std::size_t{1}, std::size_t{8},
                                     std::size_t{64}}) {
    for (const bool shared : {true, false}) {
      const std::size_t reps = sessions >= 64 ? 2 : 4;
      const auto s = measure_session_throughput(sessions, shared, reps);
      w.begin_object();
      w.key("space").value(decision_space_name(1));
      w.key("optimizer").value("lynceus_la1");
      w.key("sessions").value(static_cast<std::uint64_t>(sessions));
      w.key("cache").value(shared ? "shared" : "per-session");
      w.key("decisions").value(static_cast<std::uint64_t>(s.decisions));
      w.key("ms_per_decision").value(s.ms_per_decision);
      w.key("decisions_per_sec").value(s.decisions_per_sec);
      w.end_object();
    }
  }
  w.end_array();
  }

  // Inter-session scaling: decisions/s at 8/64 concurrent sessions,
  // FIFO loop (workers == 0) vs throughput mode at workers in
  // {1, nproc-1} (deduplicated; see measure_session_scaling).
  // speedup_vs_w0 compares the same session count's FIFO entry.
  // tools/scaling_gate.py hard-gates the 64-session curve on multi-core
  // CI; tools/compare_bench.py skips the workers == 0 entries.
  if (want("session_scaling")) {
  w.key("session_scaling").begin_array();
  {
    std::vector<std::size_t> worker_counts = {0, 1,
                                              util::default_worker_count()};
    std::sort(worker_counts.begin(), worker_counts.end());
    worker_counts.erase(
        std::unique(worker_counts.begin(), worker_counts.end()),
        worker_counts.end());
    for (const std::size_t sessions : {std::size_t{8}, std::size_t{64}}) {
      double w0_dps = 0.0;
      for (const std::size_t workers : worker_counts) {
        const std::size_t reps = sessions >= 64 ? 2 : 3;
        const auto s = measure_session_scaling(sessions, workers, reps);
        if (workers == 0) w0_dps = s.decisions_per_sec;
        w.begin_object();
        w.key("space").value(decision_space_name(1));
        w.key("optimizer").value("lynceus_la1");
        w.key("sessions").value(static_cast<std::uint64_t>(sessions));
        w.key("workers").value(static_cast<std::uint64_t>(workers));
        w.key("decisions").value(static_cast<std::uint64_t>(s.decisions));
        w.key("ms_per_decision").value(s.ms_per_decision);
        w.key("decisions_per_sec").value(s.decisions_per_sec);
        w.key("speedup_vs_w0").value(
            workers > 0 && w0_dps > 0.0 && s.decisions_per_sec > 0.0
                ? s.decisions_per_sec / w0_dps
                : 0.0);
        w.end_object();
      }
    }
  }
  w.end_array();
  }

  // Network front-end throughput: remote sessions over loopback TCP
  // against the 2-shard server, each workload measured under BOTH frame
  // encodings (the wire tax the binary body removes) — decisions/s of
  // the whole distributed drain plus the client-observed tell round-trip
  // latency (see measure_net_throughput). The final case fans 64
  // sessions across 64 connections (one each) to exercise the epoll
  // transport's many-socket path rather than pipelined framing.
  if (want("net_throughput")) {
  w.key("net_throughput").begin_array();
  struct NetCase {
    std::size_t sessions;
    std::size_t clients;
    std::size_t reps;
  };
  // Reps sized for the run-to-run noise of a shared/1-core box: the
  // 64-session cases are the wire-tax acceptance numbers and get a
  // 5-rep median; the 8-session case is latency-dominated and stabler.
  const NetCase cases[] = {{8, 1, 3}, {64, 8, 5}, {64, 64, 3}};
  for (const NetCase& nc : cases) {
    for (const bool binary : {false, true}) {
      const auto s = measure_net_throughput(
          nc.sessions, nc.clients, 2, nc.reps,
          binary ? net::TuningClient::WireMode::kBinary
                 : net::TuningClient::WireMode::kJson);
      w.begin_object();
      w.key("space").value(decision_space_name(1));
      w.key("optimizer").value("lynceus_la1");
      w.key("wire").value(binary ? "binary" : "json");
      w.key("sessions").value(static_cast<std::uint64_t>(nc.sessions));
      w.key("clients").value(static_cast<std::uint64_t>(nc.clients));
      w.key("shards").value(std::uint64_t{2});
      w.key("decisions").value(static_cast<std::uint64_t>(s.decisions));
      w.key("ms_per_decision").value(s.ms_per_decision);
      w.key("decisions_per_sec").value(s.decisions_per_sec);
      w.key("tell_p50_ms").value(s.tell_p50_ms);
      w.key("tell_p99_ms").value(s.tell_p99_ms);
      w.end_object();
    }
  }
  w.end_array();
  }

  // Multi-core decision scaling (ROADMAP "Multi-core decision scaling
  // numbers"): the same LA=2 decision at workers in {0, 1, nproc-1}
  // (deduplicated), fanned out across roots only, inside each root only
  // (branch parallelism), and both. workers == 0 means an inline pool —
  // it is the serial reference, not a scaling point, and
  // tools/compare_bench.py skips such entries. speedup_vs_w1 compares the
  // same mode's workers == 1 entry (0 when that entry is the w1 entry
  // itself or missing).
  if (want("decision_scaling")) {
  w.key("decision_scaling").begin_array();
  {
    std::vector<std::size_t> worker_counts = {0, 1,
                                              util::default_worker_count()};
    std::sort(worker_counts.begin(), worker_counts.end());
    worker_counts.erase(
        std::unique(worker_counts.begin(), worker_counts.end()),
        worker_counts.end());
    struct Mode {
      const char* name;
      bool roots;
      bool branch;
    };
    const Mode modes[] = {{"roots", true, false},
                          {"branch", false, true},
                          {"roots+branch", true, true}};
    struct ScalingCase {
      int space_idx;
      unsigned la;
      std::size_t reps;
    };
    const ScalingCase cases[] = {{0, 2, 12}, {1, 2, 20}};
    for (const auto& c : cases) {
      for (const auto& mode : modes) {
        double w1_p50 = 0.0;
        for (const std::size_t workers : worker_counts) {
          const double p50 = measure_scaling_decision(
              c.space_idx, c.la, c.reps, workers, mode.roots, mode.branch);
          if (workers == 1) w1_p50 = p50;
          w.begin_object();
          w.key("space").value(decision_space_name(c.space_idx));
          w.key("la").value(static_cast<std::uint64_t>(c.la));
          w.key("mode").value(mode.name);
          w.key("workers").value(static_cast<std::uint64_t>(workers));
          w.key("decisions").value(static_cast<std::uint64_t>(c.reps));
          w.key("p50_ms").value(p50);
          w.key("speedup_vs_w1").value(
              workers > 1 && w1_p50 > 0.0 && p50 > 0.0 ? w1_p50 / p50 : 0.0);
          w.end_object();
        }
      }
    }
  }
  w.end_array();
  }
  w.end_object();

  std::ofstream out(path);
  out << w.str() << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_micro: failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote decision-time summary to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  // --sections=a,b,c restricts the JSON summary to the named sections
  // (spaces, multi_constraint, incremental_refit, soa_predict,
  // cached_decision, pooled_decision, session_throughput, session_scaling,
  // net_throughput, decision_scaling); empty / absent = all.
  std::set<std::string> sections;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--sections=", 11) == 0) {
      std::stringstream ss(argv[i] + 11);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) sections.insert(name);
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty() && !write_json_summary(json_path, sections)) {
    return 1;
  }
  return 0;
}

/// Micro-benchmarks (google-benchmark) of the optimizer's hot paths: the
/// components whose speed bounds Lynceus' decision time — tree/ensemble
/// fitting and batch prediction, Gauss-Hermite construction, LHS sampling,
/// acquisition evaluation, and full decision steps through the lookahead
/// simulation engine.
///
/// The binary provides its own main: after the google-benchmark run it
/// re-measures the engine's single-decision latency per (space, lookahead)
/// and writes percentiles plus allocations-per-decision to a
/// machine-readable JSON summary (default BENCH_micro.json, override with
/// --json_out=PATH; skip with --json_out=) so the perf trajectory can be
/// tracked across PRs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "cloud/workloads.hpp"
#include "core/acquisition.hpp"
#include "core/lookahead.hpp"
#include "core/lynceus.hpp"
#include "core/bo.hpp"
#include "core/sequential.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "math/gauss_hermite.hpp"
#include "math/lhs.hpp"
#include "model/bagging.hpp"
#include "model/gp.hpp"
#include "util/alloc_count.hpp"
#include "util/json.hpp"

namespace {

using namespace lynceus;

/// Training set of `n` samples over the TensorFlow space, deterministic.
struct TrainingFixture {
  std::shared_ptr<const space::ConfigSpace> space;
  model::FeatureMatrix fm;
  std::vector<std::uint32_t> rows;
  std::vector<double> y;

  explicit TrainingFixture(std::size_t n)
      : space(cloud::tensorflow_space()), fm(*space) {
    const auto ds = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
    util::Rng rng(9);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id =
          static_cast<space::ConfigId>(rng.below(space->size()));
      rows.push_back(id);
      y.push_back(ds.cost(id));
    }
  }
};

void BM_TreeFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::TreeOptions opts;
  opts.features_per_split = 4;
  model::DecisionTree tree(opts);
  util::Rng rng(1);
  for (auto _ : state) {
    tree.fit(fx.fm, fx.rows, fx.y, rng);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_EnsembleFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::BaggingOptions opts;
  opts.tree.features_per_split = 4;
  model::BaggingEnsemble ens(opts);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ens.fit(fx.fm, fx.rows, fx.y, ++seed);
  }
}
BENCHMARK(BM_EnsembleFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_EnsemblePredictAll(benchmark::State& state) {
  TrainingFixture fx(100);
  model::BaggingEnsemble ens;
  ens.fit(fx.fm, fx.rows, fx.y, 7);
  std::vector<model::Prediction> preds;
  for (auto _ : state) {
    ens.predict_all(fx.fm, preds);
    benchmark::DoNotOptimize(preds.data());
  }
}
BENCHMARK(BM_EnsemblePredictAll);

void BM_GpFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::GaussianProcess gp;
  for (auto _ : state) {
    gp.fit(fx.fm, fx.rows, fx.y, 0);
    benchmark::DoNotOptimize(gp.lengthscale());
  }
}
BENCHMARK(BM_GpFit)->Arg(25)->Arg(50)->Arg(100);

void BM_GaussHermite(benchmark::State& state) {
  for (auto _ : state) {
    const math::GaussHermite gh(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(gh.nodes().data());
  }
}
BENCHMARK(BM_GaussHermite)->Arg(3)->Arg(8)->Arg(32);

void BM_LhsSample(benchmark::State& state) {
  const auto space = cloud::tensorflow_space();
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space->lhs_sample(12, rng));
  }
}
BENCHMARK(BM_LhsSample);

void BM_ConstrainedEiSweep(benchmark::State& state) {
  TrainingFixture fx(100);
  model::BaggingEnsemble ens;
  ens.fit(fx.fm, fx.rows, fx.y, 7);
  std::vector<model::Prediction> preds;
  ens.predict_all(fx.fm, preds);
  for (auto _ : state) {
    double best = 0.0;
    for (std::size_t id = 0; id < preds.size(); ++id) {
      best = std::max(best, core::constrained_ei(1.0, preds[id], 0.5));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_ConstrainedEiSweep);

/// One full Lynceus decision (fit + Γ filter + path simulation for every
/// screened root) on the 384-point space — the unit Table 3 reports.
void BM_LynceusDecision(benchmark::State& state) {
  const auto ds = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  const auto problem = eval::make_problem(ds, 3.0);
  core::LynceusOptions opts;
  opts.lookahead = static_cast<unsigned>(state.range(0));
  opts.screen_width = 24;
  for (auto _ : state) {
    state.PauseTiming();
    core::LynceusOptimizer lyn(opts);
    // Budget trimmed so the run performs the bootstrap plus ~2 decisions.
    auto small = problem;
    small.budget = ds.mean_cost() * (problem.bootstrap_samples + 2.0);
    eval::TableRunner runner(ds);
    state.ResumeTiming();
    const auto result = lyn.optimize(small, runner, 5);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(BM_LynceusDecision)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// The two decision-benchmark spaces: the paper's TensorFlow grid (largest
/// evaluation space, 384 points) and a Scout job (69 points).
cloud::Dataset decision_dataset(int space_idx) {
  if (space_idx == 0) {
    return cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  }
  return cloud::make_scout_dataset(cloud::scout_job_specs().front());
}

const char* decision_space_name(int space_idx) {
  return space_idx == 0 ? "tensorflow_cnn" : "scout_0";
}

/// One full decision through the lookahead engine — root fit, full-space
/// prediction, fused acquisition pass, screening, and one simulated path
/// per screened root. Reports allocations per decision (0 after warm-up
/// when the allocation-counting hooks are linked, which they are in this
/// binary).
void BM_ExplorePathsDecision(benchmark::State& state) {
  const auto ds = decision_dataset(static_cast<int>(state.range(0)));
  const auto problem = eval::make_problem(ds, 3.0);
  eval::TableRunner runner(ds);
  core::LoopState st(problem, runner, 5);
  st.bootstrap();

  core::LookaheadEngine::Options opts;
  opts.lookahead = static_cast<unsigned>(state.range(1));
  core::LookaheadEngine engine(problem, opts,
                               core::default_tree_model_factory(*problem.space),
                               1);
  std::vector<core::ConfigId> roots;
  std::uint64_t iter = 0;
  std::uint64_t allocs = 0;
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    ++iter;
    const util::AllocCountGuard guard;
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(5, iter));
    engine.screened_roots(24, roots);
    double acc = 0.0;
    for (core::ConfigId r : roots) {
      acc += engine
                 .simulate(r, util::derive_seed(5, iter * 1000003ULL + r))
                 .cost;
    }
    benchmark::DoNotOptimize(acc);
    if (iter > 1) {  // first iteration warms the buffers
      allocs += guard.delta();
      ++decisions;
    }
  }
  state.counters["allocs_per_decision"] =
      decisions > 0 ? static_cast<double>(allocs) /
                          static_cast<double>(decisions)
                    : 0.0;
  state.counters["roots"] = static_cast<double>(roots.size());
}
BENCHMARK(BM_ExplorePathsDecision)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

/// Decision-time percentiles per (space, lookahead), written as JSON for
/// BENCH_micro.json.
struct DecisionStats {
  int space_idx;
  unsigned lookahead;
  std::size_t decisions;
  double mean_ms, p50_ms, p90_ms, p99_ms;
  double allocs_per_decision;
};

DecisionStats measure_decision(int space_idx, unsigned lookahead,
                               std::size_t reps) {
  const auto ds = decision_dataset(space_idx);
  const auto problem = eval::make_problem(ds, 3.0);
  eval::TableRunner runner(ds);
  core::LoopState st(problem, runner, 5);
  st.bootstrap();
  core::LookaheadEngine::Options opts;
  opts.lookahead = lookahead;
  core::LookaheadEngine engine(problem, opts,
                               core::default_tree_model_factory(*problem.space),
                               1);
  std::vector<core::ConfigId> roots;
  std::vector<double> ms;
  ms.reserve(reps);
  std::uint64_t allocs = 0;
  for (std::size_t rep = 0; rep <= reps; ++rep) {  // rep 0 = warm-up
    const util::AllocCountGuard guard;
    const auto t0 = std::chrono::steady_clock::now();
    engine.begin_decision(st.samples, st.budget.remaining(),
                          util::derive_seed(5, rep + 1));
    engine.screened_roots(24, roots);
    double acc = 0.0;
    for (core::ConfigId r : roots) {
      acc += engine
                 .simulate(r, util::derive_seed(5, (rep + 1) * 1000003ULL + r))
                 .cost;
    }
    benchmark::DoNotOptimize(acc);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t delta = guard.delta();
    if (rep == 0) continue;
    allocs += delta;
    ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  const auto pct = [&](double p) {
    const auto i = static_cast<std::size_t>(p * (ms.size() - 1) + 0.5);
    return ms[std::min(i, ms.size() - 1)];
  };
  double mean = 0.0;
  for (double v : ms) mean += v;
  mean /= static_cast<double>(ms.size());
  return {space_idx, lookahead, ms.size(), mean,
          pct(0.50), pct(0.90), pct(0.99),
          static_cast<double>(allocs) / static_cast<double>(ms.size())};
}

bool write_json_summary(const std::string& path) {
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("micro_decision");
  w.key("unit").value("ms");
  w.key("alloc_counting").value(util::alloc_count_available());
  w.key("spaces").begin_array();
  for (int space_idx = 0; space_idx < 2; ++space_idx) {
    const auto ds = decision_dataset(space_idx);
    w.begin_object();
    w.key("space").value(decision_space_name(space_idx));
    w.key("size").value(static_cast<std::uint64_t>(ds.space().size()));
    w.key("lookahead").begin_array();
    for (unsigned la = 0; la <= 2; ++la) {
      const std::size_t reps = la >= 2 ? 15 : 40;
      const auto s = measure_decision(space_idx, la, reps);
      w.begin_object();
      w.key("la").value(static_cast<std::uint64_t>(la));
      w.key("decisions").value(static_cast<std::uint64_t>(s.decisions));
      w.key("mean_ms").value(s.mean_ms);
      w.key("p50_ms").value(s.p50_ms);
      w.key("p90_ms").value(s.p90_ms);
      w.key("p99_ms").value(s.p99_ms);
      w.key("allocs_per_decision").value(s.allocs_per_decision);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path);
  out << w.str() << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_micro: failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote decision-time summary to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty() && !write_json_summary(json_path)) return 1;
  return 0;
}

/// Micro-benchmarks (google-benchmark) of the optimizer's hot paths: the
/// components whose speed bounds Lynceus' decision time — tree/ensemble
/// fitting and batch prediction, Gauss-Hermite construction, LHS sampling,
/// acquisition evaluation, and a single full ExplorePaths-equivalent
/// decision step.

#include <benchmark/benchmark.h>

#include "cloud/workloads.hpp"
#include "core/acquisition.hpp"
#include "core/lynceus.hpp"
#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "math/gauss_hermite.hpp"
#include "math/lhs.hpp"
#include "model/bagging.hpp"
#include "model/gp.hpp"

namespace {

using namespace lynceus;

/// Training set of `n` samples over the TensorFlow space, deterministic.
struct TrainingFixture {
  std::shared_ptr<const space::ConfigSpace> space;
  model::FeatureMatrix fm;
  std::vector<std::uint32_t> rows;
  std::vector<double> y;

  explicit TrainingFixture(std::size_t n)
      : space(cloud::tensorflow_space()), fm(*space) {
    const auto ds = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
    util::Rng rng(9);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id =
          static_cast<space::ConfigId>(rng.below(space->size()));
      rows.push_back(id);
      y.push_back(ds.cost(id));
    }
  }
};

void BM_TreeFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::TreeOptions opts;
  opts.features_per_split = 4;
  model::DecisionTree tree(opts);
  util::Rng rng(1);
  for (auto _ : state) {
    tree.fit(fx.fm, fx.rows, fx.y, rng);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_EnsembleFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::BaggingOptions opts;
  opts.tree.features_per_split = 4;
  model::BaggingEnsemble ens(opts);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ens.fit(fx.fm, fx.rows, fx.y, ++seed);
  }
}
BENCHMARK(BM_EnsembleFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_EnsemblePredictAll(benchmark::State& state) {
  TrainingFixture fx(100);
  model::BaggingEnsemble ens;
  ens.fit(fx.fm, fx.rows, fx.y, 7);
  std::vector<model::Prediction> preds;
  for (auto _ : state) {
    ens.predict_all(fx.fm, preds);
    benchmark::DoNotOptimize(preds.data());
  }
}
BENCHMARK(BM_EnsemblePredictAll);

void BM_GpFit(benchmark::State& state) {
  TrainingFixture fx(static_cast<std::size_t>(state.range(0)));
  model::GaussianProcess gp;
  for (auto _ : state) {
    gp.fit(fx.fm, fx.rows, fx.y, 0);
    benchmark::DoNotOptimize(gp.lengthscale());
  }
}
BENCHMARK(BM_GpFit)->Arg(25)->Arg(50)->Arg(100);

void BM_GaussHermite(benchmark::State& state) {
  for (auto _ : state) {
    const math::GaussHermite gh(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(gh.nodes().data());
  }
}
BENCHMARK(BM_GaussHermite)->Arg(3)->Arg(8)->Arg(32);

void BM_LhsSample(benchmark::State& state) {
  const auto space = cloud::tensorflow_space();
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space->lhs_sample(12, rng));
  }
}
BENCHMARK(BM_LhsSample);

void BM_ConstrainedEiSweep(benchmark::State& state) {
  TrainingFixture fx(100);
  model::BaggingEnsemble ens;
  ens.fit(fx.fm, fx.rows, fx.y, 7);
  std::vector<model::Prediction> preds;
  ens.predict_all(fx.fm, preds);
  for (auto _ : state) {
    double best = 0.0;
    for (std::size_t id = 0; id < preds.size(); ++id) {
      best = std::max(best, core::constrained_ei(1.0, preds[id], 0.5));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_ConstrainedEiSweep);

/// One full Lynceus decision (fit + Γ filter + path simulation for every
/// screened root) on the 384-point space — the unit Table 3 reports.
void BM_LynceusDecision(benchmark::State& state) {
  const auto ds = cloud::make_tensorflow_dataset(cloud::TfModel::CNN);
  const auto problem = eval::make_problem(ds, 3.0);
  core::LynceusOptions opts;
  opts.lookahead = static_cast<unsigned>(state.range(0));
  opts.screen_width = 24;
  for (auto _ : state) {
    state.PauseTiming();
    core::LynceusOptimizer lyn(opts);
    // Budget trimmed so the run performs the bootstrap plus ~2 decisions.
    auto small = problem;
    small.budget = ds.mean_cost() * (problem.bootstrap_samples + 2.0);
    eval::TableRunner runner(ds);
    state.ResumeTiming();
    const auto result = lyn.optimize(small, runner, 5);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(BM_LynceusDecision)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

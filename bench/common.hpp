#pragma once

/// Shared plumbing for the figure/table bench binaries: flag parsing with
/// common defaults, dataset construction, and the shared results cache.
///
/// Common flags (all benches):
///   --runs=N     paired runs per optimizer (default: per-bench; the paper
///                uses >= 100 — raise it when you have the CPU time)
///   --b=X        budget multiplier (default 3 = the paper's medium budget)
///   --cache=DIR  results cache directory (default results/cache)
///   --no-cache   recompute everything
///   --screen=N   Lynceus root-screening width (default 24; 0 = simulate
///                every viable root, paper-faithful but slow on one core)
///
/// Figure benches print the series the paper reports and also write CSVs
/// under results/.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cloud/workloads.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "eval/results_cache.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace lynceus::bench {

struct BenchSettings {
  std::size_t runs = 40;
  double budget_multiplier = 3.0;
  std::string cache_dir = "results/cache";
  bool use_cache = true;
  unsigned screen_width = 24;
  std::uint64_t base_seed = 42;
};

inline BenchSettings parse_settings(int argc, char** argv,
                                    std::size_t default_runs) {
  const util::CliFlags flags(
      argc, argv, {"runs", "b", "cache", "no-cache", "screen", "seed"});
  BenchSettings s;
  s.runs = static_cast<std::size_t>(
      flags.get_int("runs", static_cast<std::int64_t>(default_runs)));
  s.budget_multiplier = flags.get_double("b", 3.0);
  s.cache_dir = flags.get_string("cache", "results/cache");
  s.use_cache = flags.get_bool("cache", true) && !flags.has("no-cache");
  s.screen_width =
      static_cast<unsigned>(flags.get_int("screen", 24));
  s.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  return s;
}

/// Fetches (or computes) the runs of `spec` on `dataset`.
inline eval::ExperimentResult fetch(const BenchSettings& s,
                                    const cloud::Dataset& dataset,
                                    const eval::OptimizerSpec& spec,
                                    double budget_multiplier) {
  eval::ExperimentConfig cfg;
  cfg.runs = s.runs;
  cfg.budget_multiplier = budget_multiplier;
  cfg.base_seed = s.base_seed;
  if (!s.use_cache) return run_experiment(dataset, spec, cfg);
  eval::ResultsCache cache(s.cache_dir);
  return cache.get_or_run(dataset, spec, cfg);
}

inline eval::ExperimentResult fetch(const BenchSettings& s,
                                    const cloud::Dataset& dataset,
                                    const eval::OptimizerSpec& spec) {
  return fetch(s, dataset, spec, s.budget_multiplier);
}

/// The three optimizers of the paper's headline comparison (§5.2), with
/// screening applied to the Lynceus variants.
inline std::vector<eval::OptimizerSpec> headline_specs(
    const BenchSettings& s, unsigned lookahead = 2) {
  return {eval::lynceus_spec(lookahead, s.screen_width), eval::bo_spec(),
          eval::rnd_spec()};
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace lynceus::bench

/// Reproduces Figure 5 of the paper: average, 50th and 90th percentile of
/// the CNO for Lynceus, BO and RND on the Scout (18 jobs) and CherryPick
/// (5 jobs) datasets with the medium budget. The bars of the figure are
/// means across jobs; the error bars are +/- one standard deviation (of
/// the per-job metric values across jobs).
///
/// Flags: --runs=N (default 30), --b, --screen, --no-cache.

#include "common.hpp"

#include "math/stats.hpp"

using namespace lynceus;

namespace {

struct Aggregate {
  math::RunningStats avg;
  math::RunningStats p50;
  math::RunningStats p90;
};

}  // namespace

int main(int argc, char** argv) {
  const auto settings = bench::parse_settings(argc, argv, 30);
  eval::ensure_directory("results");

  bench::print_header(util::format(
      "Figure 5 — CNO across Scout and CherryPick jobs (runs=%zu)",
      settings.runs));

  eval::Table table({"suite", "optimizer", "avg", "avg±sd", "p50", "p50±sd",
                     "p90", "p90±sd"});
  eval::Table per_job({"job", "optimizer", "avg CNO", "p50 CNO", "p90 CNO"});

  struct Suite {
    std::string name;
    std::vector<cloud::Dataset> datasets;
  };
  std::vector<Suite> suites;
  suites.push_back({"scout", cloud::make_scout_datasets()});
  suites.push_back({"cherrypick", cloud::make_cherrypick_datasets()});

  for (const auto& suite : suites) {
    for (const auto& spec : bench::headline_specs(settings)) {
      Aggregate agg;
      for (const auto& dataset : suite.datasets) {
        const auto result = bench::fetch(settings, dataset, spec);
        const auto s = eval::summarize(result.cnos());
        agg.avg.add(s.mean);
        agg.p50.add(s.p50);
        agg.p90.add(s.p90);
        per_job.add_row({dataset.job_name(), spec.label,
                         util::format("%.3f", s.mean),
                         util::format("%.3f", s.p50),
                         util::format("%.3f", s.p90)});
      }
      table.add_row({suite.name, spec.label,
                     util::format("%.3f", agg.avg.mean()),
                     util::format("%.3f", agg.avg.stddev()),
                     util::format("%.3f", agg.p50.mean()),
                     util::format("%.3f", agg.p50.stddev()),
                     util::format("%.3f", agg.p90.mean()),
                     util::format("%.3f", agg.p90.stddev())});
    }
    std::printf("[%s suite done]\n", suite.name.c_str());
  }

  table.print(std::cout);
  table.save_csv("results/fig5_summary.csv");
  per_job.save_csv("results/fig5_per_job.csv");
  std::printf(
      "\nPaper: Lynceus consistently outperforms BO and RND on both suites,\n"
      "e.g. Scout p90 CNO 1.19 (sd 0.12) for Lynceus vs 1.23 (sd 0.20) for\n"
      "BO; the gains are smaller than on TensorFlow because these 3-D\n"
      "spaces are much easier (no tuning-parameter dimensions).\n");
  return 0;
}

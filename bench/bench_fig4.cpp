/// Reproduces Figure 4 of the paper: CDFs of the CNO achieved by Lynceus
/// (LA=2), BO (CherryPick-style) and RND on the three TensorFlow jobs with
/// the medium budget (b=3), plus the headline statistics quoted in §6.1
/// (probability of finding the optimum, average CNO, tail CNO).
///
/// Flags: --runs=N (default 40; the paper uses >= 100), --b, --screen,
/// --no-cache. Runs are paired (same bootstrap per run index across
/// optimizers) and memoized in results/cache, shared with Figs. 6 and 7.

#include <fstream>

#include "common.hpp"

#include "eval/plot.hpp"
#include "util/json.hpp"

using namespace lynceus;

int main(int argc, char** argv) {
  const auto settings = bench::parse_settings(argc, argv, 40);
  eval::ensure_directory("results");

  bench::print_header(util::format(
      "Figure 4 — CDF of CNO, TensorFlow jobs, medium budget (runs=%zu)",
      settings.runs));

  eval::Table summary({"job", "optimizer", "P(optimal)", "mean CNO",
                       "p50 CNO", "p90 CNO", "p95 CNO"});
  util::JsonWriter json;
  json.begin_object();
  json.key("figure").value("4");
  json.key("runs").value(settings.runs);
  json.key("budget_multiplier").value(settings.budget_multiplier);
  json.key("entries").begin_array();

  for (const auto& dataset : cloud::make_tensorflow_datasets()) {
    std::vector<eval::Series> cdf_plot;
    for (const auto& spec : bench::headline_specs(settings)) {
      const auto result = bench::fetch(settings, dataset, spec);
      const auto cnos = result.cnos();
      cdf_plot.push_back(eval::cdf_series(spec.label, cnos));
      const auto s = eval::summarize(cnos);
      double optimal = 0.0;
      for (double c : cnos) optimal += c <= 1.0 + 1e-9 ? 1.0 : 0.0;
      optimal /= static_cast<double>(cnos.size());
      summary.add_row({dataset.job_name(), spec.label,
                       util::format("%.2f", optimal),
                       util::format("%.2f", s.mean),
                       util::format("%.2f", s.p50),
                       util::format("%.2f", s.p90),
                       util::format("%.2f", s.p95)});
      eval::save_cdf_csv("results/fig4_" + dataset.job_name() + "_" +
                             spec.label + ".csv",
                         cnos);
      json.begin_object();
      json.key("job").value(dataset.job_name());
      json.key("optimizer").value(spec.label);
      json.key("p_optimal").value(optimal);
      json.key("mean_cno").value(s.mean);
      json.key("p90_cno").value(s.p90);
      json.key("mean_nex").value(result.mean_nex());
      json.key("cnos").begin_array();
      for (double c : cnos) json.value(c);
      json.end_array();
      json.end_object();
    }
    eval::PlotOptions plot;
    plot.title = "CDF of CNO — " + dataset.job_name();
    plot.x_label = "CNO";
    plot.y_label = "CDF";
    std::fputs(render_plot(cdf_plot, plot).c_str(), stdout);
    std::printf("[%s done]\n", dataset.job_name().c_str());
  }

  summary.print(std::cout);
  summary.save_csv("results/fig4_summary.csv");
  json.end_array();
  json.end_object();
  std::ofstream("results/fig4_summary.json") << json.str() << "\n";
  std::printf(
      "\nPaper (>=100 runs): Lynceus finds the optimum 84%%/88%%/98%% of the\n"
      "time (CNN/RNN/Multilayer) vs 30%%/50%%/44%% for BO; average CNO\n"
      "1.13/1.03/1.00 vs 2.11/1.73/1.89; Lynceus also dominates RND while\n"
      "BO falls back to RND-level quality at the tail.\n");
  return 0;
}

#pragma once

/// \file metrics.hpp
/// Evaluation metrics of the paper (§5.2):
///  * CNO — cost normalized with respect to the optimum: the cost of the
///    recommended configuration divided by the cost of the true optimal
///    (cheapest feasible) configuration. 1.0 is perfect.
///  * NEX — the number of explorations performed before terminating.
/// Plus the best-so-far CNO trace used by Fig. 7.

#include <vector>

#include "cloud/dataset.hpp"
#include "core/types.hpp"

namespace lynceus::eval {

/// CNO of a finished run. If the optimizer never found any feasible
/// configuration, the CNO of its (infeasible) fallback recommendation is
/// still computed against the feasible optimum — a conservatively large
/// value, matching the paper's "lower is better" semantics.
[[nodiscard]] double cno(const cloud::Dataset& dataset,
                         const core::OptimizerResult& result);

/// Best-so-far CNO after each exploration: entry e is the CNO of the
/// cheapest feasible configuration among history[0..e] (or the cheapest
/// overall while none is feasible). Used for Fig. 7.
[[nodiscard]] std::vector<double> best_so_far_cno(
    const cloud::Dataset& dataset, const std::vector<core::Sample>& history);

/// Aggregate descriptive statistics of a metric across runs.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] MetricSummary summarize(const std::vector<double>& values);

}  // namespace lynceus::eval

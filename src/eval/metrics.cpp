#include "eval/metrics.hpp"

#include <limits>
#include <stdexcept>

#include "math/stats.hpp"

namespace lynceus::eval {

double cno(const cloud::Dataset& dataset, const core::OptimizerResult& result) {
  if (!result.recommendation) {
    throw std::invalid_argument("cno: result carries no recommendation");
  }
  return dataset.cost(*result.recommendation) / dataset.optimal_cost();
}

std::vector<double> best_so_far_cno(const cloud::Dataset& dataset,
                                    const std::vector<core::Sample>& history) {
  const double opt = dataset.optimal_cost();
  std::vector<double> out;
  out.reserve(history.size());
  double best_feasible = std::numeric_limits<double>::infinity();
  double best_any = std::numeric_limits<double>::infinity();
  for (const auto& s : history) {
    best_any = std::min(best_any, s.cost);
    if (s.feasible) best_feasible = std::min(best_feasible, s.cost);
    const double current =
        best_feasible < std::numeric_limits<double>::infinity() ? best_feasible
                                                                : best_any;
    out.push_back(current / opt);
  }
  return out;
}

MetricSummary summarize(const std::vector<double>& values) {
  if (values.empty()) {
    throw std::invalid_argument("summarize: empty input");
  }
  MetricSummary s;
  math::RunningStats rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = math::percentile(values, 50.0);
  s.p90 = math::percentile(values, 90.0);
  s.p95 = math::percentile(values, 95.0);
  return s;
}

}  // namespace lynceus::eval

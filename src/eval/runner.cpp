#include "eval/runner.hpp"

#include <stdexcept>

namespace lynceus::eval {

TableRunner::TableRunner(const cloud::Dataset& dataset, MetricsFn metrics)
    : dataset_(&dataset), metrics_(std::move(metrics)) {}

core::RunResult TableRunner::run(space::ConfigId id) {
  const auto& obs = dataset_->observation(id);
  core::RunResult r;
  r.runtime_seconds = obs.runtime_seconds;
  r.cost = obs.cost();
  r.timed_out = obs.timed_out;
  if (metrics_) r.metrics = metrics_(id);
  ++served_;
  return r;
}

FailingRunner::FailingRunner(core::JobRunner& inner, std::size_t fail_after)
    : inner_(&inner), remaining_(fail_after) {}

core::RunResult FailingRunner::run(space::ConfigId id) {
  if (remaining_ == 0) {
    throw std::runtime_error("FailingRunner: injected deployment failure");
  }
  --remaining_;
  return inner_->run(id);
}

}  // namespace lynceus::eval

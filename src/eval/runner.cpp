#include "eval/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lynceus::eval {

TableRunner::TableRunner(const cloud::Dataset& dataset, MetricsFn metrics)
    : dataset_(&dataset), metrics_(std::move(metrics)) {}

core::RunResult TableRunner::run(space::ConfigId id) {
  const auto& obs = dataset_->observation(id);
  core::RunResult r;
  r.runtime_seconds = obs.runtime_seconds;
  r.cost = obs.cost();
  r.timed_out = obs.timed_out;
  if (metrics_) r.metrics = metrics_(id);
  ++served_;
  return r;
}

void FaultPlan::validate() const {
  const auto rate_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!rate_ok(fail_rate) || !rate_ok(hang_rate) || !rate_ok(straggler_rate)) {
    throw std::invalid_argument("FaultPlan: rates must lie in [0, 1]");
  }
  if (!(straggler_factor >= 1.0) || !std::isfinite(straggler_factor)) {
    throw std::invalid_argument(
        "FaultPlan: straggler factor must be finite and >= 1");
  }
}

InjectedRun inject_faults(const FaultPlan& plan, space::ConfigId config,
                          std::uint64_t attempt,
                          const core::RunResult& base) {
  InjectedRun out;
  out.result = base;
  out.duration = base.runtime_seconds;
  if (!plan.active()) return out;

  // The per-attempt fault stream: a pure function of (seed, config,
  // attempt), consumed in a fixed draw order — see the fault-determinism
  // contract in runner.hpp.
  util::Rng rng(util::derive_seed(util::derive_seed(plan.seed, config),
                                  attempt));
  const bool hang = rng.bernoulli(plan.hang_rate);
  const bool fail = rng.bernoulli(plan.fail_rate);
  const double fail_fraction = fail ? rng.uniform() : 0.0;
  const bool straggle = rng.bernoulli(plan.straggler_rate);

  if (hang) {
    out.duration = std::numeric_limits<double>::infinity();
    return out;  // result is meaningless; only a timeout can resolve this
  }

  const double multiplier = straggle ? plan.straggler_factor : 1.0;
  // Elapsed-time billing: the attempt costs base.cost scaled by how long
  // it actually occupied the cluster relative to the fault-free runtime.
  const auto billed = [&](double duration) {
    return base.runtime_seconds > 0.0
               ? base.cost * (duration / base.runtime_seconds)
               : base.cost;
  };

  if (fail) {
    // Crash partway through the (possibly straggling) run.
    out.duration =
        base.runtime_seconds * multiplier * fail_fraction;
    out.result.outcome = core::RunOutcome::kFailed;
    out.result.runtime_seconds = out.duration;  // informational only
    out.result.cost = billed(out.duration);
    out.result.metrics.clear();  // a crashed run measures nothing
    return out;
  }

  out.duration = base.runtime_seconds * multiplier;
  out.result.runtime_seconds = out.duration;
  out.result.cost = billed(out.duration);
  return out;
}

core::RunResult cap_injected_run(const InjectedRun& run,
                                 const core::RunResult& base,
                                 double timeout_seconds) {
  if (run.duration <= timeout_seconds) return run.result;
  core::RunResult r = base;
  r.outcome = core::RunOutcome::kTimedOut;
  r.timed_out = true;
  r.runtime_seconds = timeout_seconds;  // censored: true runtime >= cap
  r.cost = base.runtime_seconds > 0.0
               ? base.cost * (timeout_seconds / base.runtime_seconds)
               : base.cost;
  return r;
}

FaultInjectingRunner::FaultInjectingRunner(core::JobRunner& inner,
                                           FaultPlan plan,
                                           double timeout_seconds)
    : inner_(&inner), plan_(plan), timeout_seconds_(timeout_seconds) {
  plan_.validate();
  if (std::isnan(timeout_seconds_) || timeout_seconds_ <= 0.0) {
    throw std::invalid_argument(
        "FaultInjectingRunner: timeout must be positive");
  }
}

core::RunResult FaultInjectingRunner::run(space::ConfigId id) {
  const core::RunResult base = inner_->run(id);
  const std::uint64_t attempt = attempts_[id]++;
  const InjectedRun injected = inject_faults(plan_, id, attempt, base);
  if (std::isinf(injected.duration) && std::isinf(timeout_seconds_)) {
    // A hang with no cap never returns in a synchronous runner: surface it
    // as the runner error the optimizers are tested to propagate.
    throw std::runtime_error(
        "FaultInjectingRunner: run hung with no timeout (config " +
        std::to_string(id) + ")");
  }
  return cap_injected_run(injected, base, timeout_seconds_);
}

namespace {
/// Max-heap comparator inverted into a min-heap on (finish_time, ticket):
/// `a` sorts after `b` when it finishes later, ties by higher ticket.
struct FinishesLater {
  bool operator()(const AsyncTableRunner::Completion& a,
                  const AsyncTableRunner::Completion& b) const noexcept {
    if (a.finish_time != b.finish_time) return a.finish_time > b.finish_time;
    return a.ticket > b.ticket;
  }
};
}  // namespace

AsyncTableRunner::AsyncTableRunner(const cloud::Dataset& dataset,
                                   MetricsFn metrics)
    : dataset_(&dataset), metrics_(std::move(metrics)) {}

void AsyncTableRunner::set_fault_plan(const FaultPlan& plan) {
  plan.validate();
  plan_ = plan;
}

std::uint64_t AsyncTableRunner::submit(std::uint64_t tag,
                                       space::ConfigId config) {
  return submit(tag, config, SubmitOptions{});
}

std::uint64_t AsyncTableRunner::submit(std::uint64_t tag,
                                       space::ConfigId config,
                                       const SubmitOptions& options) {
  if (std::isnan(options.timeout_seconds) || options.timeout_seconds <= 0.0) {
    throw std::invalid_argument(
        "AsyncTableRunner::submit: timeout must be positive");
  }
  if (std::isnan(options.start_delay) || options.start_delay < 0.0) {
    throw std::invalid_argument(
        "AsyncTableRunner::submit: start delay must be non-negative");
  }
  const auto& obs = dataset_->observation(config);
  core::RunResult base;
  base.runtime_seconds = obs.runtime_seconds;
  base.cost = obs.cost();
  base.timed_out = obs.timed_out;
  if (metrics_) base.metrics = metrics_(config);

  const InjectedRun injected =
      inject_faults(plan_, config, options.attempt, base);
  const double resolved_after =
      std::min(injected.duration, options.timeout_seconds);

  Completion c;
  c.ticket = next_ticket_++;
  c.tag = tag;
  c.config = config;
  // A hang with no cap never finishes: it stays in the heap at +infinity
  // (outstanding, but next_completion() will not pop it).
  c.finish_time = now_ + options.start_delay + resolved_after;
  c.result = cap_injected_run(injected, base, options.timeout_seconds);
  pending_.push_back(std::move(c));
  std::push_heap(pending_.begin(), pending_.end(), FinishesLater{});
  return next_ticket_ - 1;
}

std::optional<AsyncTableRunner::Completion>
AsyncTableRunner::next_completion() {
  if (pending_.empty()) return std::nullopt;
  if (std::isinf(pending_.front().finish_time)) {
    // Every outstanding run is hung forever; the clock cannot advance.
    return std::nullopt;
  }
  std::pop_heap(pending_.begin(), pending_.end(), FinishesLater{});
  Completion out = std::move(pending_.back());
  pending_.pop_back();
  now_ = out.finish_time;
  ++served_;
  return out;
}

std::optional<double> AsyncTableRunner::next_finish_time() const {
  if (pending_.empty() || std::isinf(pending_.front().finish_time)) {
    return std::nullopt;
  }
  return pending_.front().finish_time;
}

AsyncCompletionPump::AsyncCompletionPump(AsyncTableRunner& runner,
                                         Callback deliver)
    : runner_(&runner), deliver_(std::move(deliver)) {
  if (!deliver_) {
    throw std::invalid_argument("AsyncCompletionPump: null delivery callback");
  }
  thread_ = std::thread(&AsyncCompletionPump::loop, this);
}

AsyncCompletionPump::~AsyncCompletionPump() { stop(); }

std::uint64_t AsyncCompletionPump::submit(
    std::uint64_t tag, space::ConfigId config,
    const AsyncTableRunner::SubmitOptions& options) {
  std::uint64_t ticket;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    ticket = runner_->submit(tag, config, options);
  }
  cv_.notify_one();
  return ticket;
}

bool AsyncCompletionPump::stalled(const std::function<bool()>& idle_check) {
  std::lock_guard<std::mutex> lk(mutex_);
  // A poppable completion means the pump thread will deliver it; holding
  // the lock here guarantees no delivery is mid-flight while we look.
  if (runner_->next_finish_time().has_value()) return false;
  return idle_check();
}

void AsyncCompletionPump::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AsyncCompletionPump::loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stop_) {
    std::optional<AsyncTableRunner::Completion> c = runner_->next_completion();
    if (c.has_value()) {
      deliver_(*c);
      continue;
    }
    // Idle (or only forever-hung runs remain): sleep until a submit or
    // stop wakes us. Spurious wakeups just re-poll.
    cv_.wait(lk);
  }
}

}  // namespace lynceus::eval

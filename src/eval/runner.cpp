#include "eval/runner.hpp"

#include <stdexcept>

namespace lynceus::eval {

TableRunner::TableRunner(const cloud::Dataset& dataset, MetricsFn metrics)
    : dataset_(&dataset), metrics_(std::move(metrics)) {}

core::RunResult TableRunner::run(space::ConfigId id) {
  const auto& obs = dataset_->observation(id);
  core::RunResult r;
  r.runtime_seconds = obs.runtime_seconds;
  r.cost = obs.cost();
  r.timed_out = obs.timed_out;
  if (metrics_) r.metrics = metrics_(id);
  ++served_;
  return r;
}

AsyncTableRunner::AsyncTableRunner(const cloud::Dataset& dataset,
                                   MetricsFn metrics)
    : dataset_(&dataset), metrics_(std::move(metrics)) {}

std::uint64_t AsyncTableRunner::submit(std::uint64_t tag,
                                       space::ConfigId config) {
  const auto& obs = dataset_->observation(config);
  Completion c;
  c.ticket = next_ticket_++;
  c.tag = tag;
  c.config = config;
  c.finish_time = now_ + obs.runtime_seconds;
  c.result.runtime_seconds = obs.runtime_seconds;
  c.result.cost = obs.cost();
  c.result.timed_out = obs.timed_out;
  if (metrics_) c.result.metrics = metrics_(config);
  pending_.push_back(std::move(c));
  return pending_.back().ticket;
}

std::optional<AsyncTableRunner::Completion>
AsyncTableRunner::next_completion() {
  if (pending_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    if (pending_[i].finish_time < pending_[best].finish_time ||
        (pending_[i].finish_time == pending_[best].finish_time &&
         pending_[i].ticket < pending_[best].ticket)) {
      best = i;
    }
  }
  Completion out = std::move(pending_[best]);
  pending_[best] = std::move(pending_.back());
  pending_.pop_back();
  now_ = out.finish_time;
  ++served_;
  return out;
}

std::optional<double> AsyncTableRunner::next_finish_time() const {
  if (pending_.empty()) return std::nullopt;
  double best = pending_.front().finish_time;
  for (const Completion& c : pending_) {
    if (c.finish_time < best) best = c.finish_time;
  }
  return best;
}

FailingRunner::FailingRunner(core::JobRunner& inner, std::size_t fail_after)
    : inner_(&inner), remaining_(fail_after) {}

core::RunResult FailingRunner::run(space::ConfigId id) {
  if (remaining_ == 0) {
    throw std::runtime_error("FailingRunner: injected deployment failure");
  }
  --remaining_;
  return inner_->run(id);
}

}  // namespace lynceus::eval

#pragma once

/// \file results_cache.hpp
/// File-backed memoization of experiment results. Several of the paper's
/// figures are views over the same underlying runs (Figs. 4, 6 and 7 share
/// the medium-budget TensorFlow runs; Figs. 8 and 9 share the budget
/// sweep), and Lynceus runs are expensive to simulate, so every bench
/// binary fetches runs through this cache. Entries are keyed by
/// (dataset, optimizer label, budget multiplier, run count, base seed) and
/// stored as CSV under a cache directory; delete the directory to force
/// recomputation.

#include <string>

#include "eval/experiment.hpp"

namespace lynceus::eval {

class ResultsCache {
 public:
  /// `directory` is created if missing.
  explicit ResultsCache(std::string directory);

  /// Returns the cached result for this (dataset, spec, config) if present;
  /// otherwise runs the experiment and stores it.
  [[nodiscard]] ExperimentResult get_or_run(const cloud::Dataset& dataset,
                                            const OptimizerSpec& spec,
                                            const ExperimentConfig& config);

  /// Cache file that would back this entry (exposed for tests).
  [[nodiscard]] std::string entry_path(const cloud::Dataset& dataset,
                                       const OptimizerSpec& spec,
                                       const ExperimentConfig& config) const;

  [[nodiscard]] static ExperimentResult load(const std::string& path);
  static void store(const std::string& path, const ExperimentResult& result);

 private:
  std::string directory_;
};

}  // namespace lynceus::eval

#pragma once

/// \file disjoint.hpp
/// The *ideal disjoint optimization* analysis of Fig. 1b (paper §2.1): an
/// upper bound on what any approach that tunes job parameters and cloud
/// configuration separately could achieve. For each reference cloud
/// configuration c†:
///   1. find the best job-parameter setting P* on c† (assumed found
///      exactly);
///   2. with P* frozen, find the best cloud configuration (assumed found
///      exactly);
///   3. record the cost of the resulting configuration normalized by the
///      cost of the true joint optimum (CNO).
/// The CDF of these CNOs over all choices of c† quantifies how much joint
/// optimization matters.

#include <cstddef>
#include <vector>

#include "cloud/dataset.hpp"

namespace lynceus::eval {

/// `param_dims` / `cloud_dims` partition the space's dimensions into job
/// parameters and cloud parameters (for the TensorFlow space:
/// {0,1,2} and {3,4}). Returns one CNO per reference cloud configuration.
/// Preference order at each step: cheapest feasible configuration; if a
/// reference cloud has no feasible point, cheapest infeasible.
[[nodiscard]] std::vector<double> disjoint_optimization_cno(
    const cloud::Dataset& dataset, const std::vector<std::size_t>& param_dims,
    const std::vector<std::size_t>& cloud_dims);

}  // namespace lynceus::eval

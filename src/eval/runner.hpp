#pragma once

/// \file runner.hpp
/// JobRunner implementations for evaluation: the table-backed replay runner
/// (the paper's simulation methodology, §5.2), deterministic fault
/// injection, and the asynchronous-completion adapter the tuning service
/// is driven with.
///
/// ## Fault-determinism contract
///
/// Every injected fault is a pure function of (FaultPlan::seed, config id,
/// attempt number): the fault draws come from a dedicated
/// `util::Rng(derive_seed(derive_seed(seed, config), attempt))` stream, in
/// a fixed draw order, consumed nowhere else. Consequences:
///
///  * Replay is byte-for-byte: re-running any scenario with the same plan
///    reproduces the same failures, hangs, stragglers and partial costs.
///  * Faults are *interleaving-independent*: whether a config's run is
///    submitted first or last, alone or among 10k outstanding runs from
///    other sessions, its fault draw is the same. This is what makes the
///    crash-recovery drill possible — a restored session replays its own
///    fault history regardless of how the surrounding schedule changed.
///  * A retry of the same config is a *new* attempt with fresh draws
///    (attempt increments), so transient failures can succeed on retry
///    while a config with fail-prone draws at every attempt behaves like a
///    deterministic crasher.
///
/// A plan with all rates zero is inert: `active()` is false, no RNG is
/// constructed, and runners behave bitwise exactly as without the plan.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cloud/dataset.hpp"
#include "core/types.hpp"

namespace lynceus::eval {

/// Replays a measured dataset: running configuration x returns the
/// recorded runtime and cost. Optionally produces synthetic auxiliary
/// metrics for the multi-constraint extension.
class TableRunner final : public core::JobRunner {
 public:
  using MetricsFn = std::function<std::vector<double>(space::ConfigId)>;

  explicit TableRunner(const cloud::Dataset& dataset,
                       MetricsFn metrics = nullptr);

  [[nodiscard]] core::RunResult run(space::ConfigId id) override;

  /// Number of runs served so far.
  [[nodiscard]] std::size_t runs_served() const noexcept { return served_; }

 private:
  const cloud::Dataset* dataset_;
  MetricsFn metrics_;
  std::size_t served_ = 0;
};

/// Seeded description of the faults to inject into profiling runs (see the
/// fault-determinism contract in the file comment). Rates are independent
/// per-attempt probabilities; a single attempt can be both a straggler and
/// a failure (it straggles, then crashes).
struct FaultPlan {
  std::uint64_t seed = 0;
  /// P(attempt crashes partway through): the run becomes
  /// RunOutcome::kFailed at a uniform fraction of its (possibly
  /// straggler-inflated) duration, billing the partial cost.
  double fail_rate = 0.0;
  /// P(attempt hangs forever): it never finishes on its own. With a run
  /// timeout it is killed at the cap (kTimedOut); without one, the
  /// synchronous runner throws and the asynchronous runner keeps it
  /// outstanding forever.
  double hang_rate = 0.0;
  /// P(attempt straggles): its duration — and hence billed cost, and the
  /// runtime measurement if it completes — is multiplied by
  /// `straggler_factor`.
  double straggler_rate = 0.0;
  double straggler_factor = 1.0;  ///< duration multiplier, >= 1

  /// True when any fault can occur. Inactive plans draw no random numbers
  /// and leave runs bitwise untouched.
  [[nodiscard]] bool active() const noexcept {
    return fail_rate > 0.0 || hang_rate > 0.0 || straggler_rate > 0.0;
  }

  /// Rates must lie in [0,1], the factor must be >= 1 and finite.
  void validate() const;
};

/// One attempt's fate under a FaultPlan, before any timeout is applied.
struct InjectedRun {
  /// Simulated seconds until the run resolves on its own; +infinity for a
  /// hang.
  double duration = 0.0;
  /// The result as of `duration` (meaningless for a hang): kOk or kFailed,
  /// runtime/cost scaled to the injected duration.
  core::RunResult result;
};

/// Applies `plan` to attempt number `attempt` of `config`, whose fault-free
/// result is `base` (cost is rescaled as base.cost × duration /
/// base.runtime — elapsed-time billing). Pure: same inputs, same fate.
[[nodiscard]] InjectedRun inject_faults(const FaultPlan& plan,
                                        space::ConfigId config,
                                        std::uint64_t attempt,
                                        const core::RunResult& base);

/// Caps an injected run at `timeout_seconds`: if it would resolve later
/// (or hang), the result becomes kTimedOut at the cap — a censored
/// observation with runtime = cap and the cost prorated to the cap.
/// Timed-out results keep their metrics (the multi-constraint stepper
/// records metrics for every sample); failed results carry none.
[[nodiscard]] core::RunResult cap_injected_run(const InjectedRun& run,
                                               const core::RunResult& base,
                                               double timeout_seconds);

/// Synchronous fault-injecting decorator: wraps any JobRunner and applies
/// a FaultPlan per run, tracking attempt numbers per config internally (a
/// repeated run of the same config is the next attempt). A hang with no
/// timeout throws std::runtime_error — the degenerate "runner error"
/// surface the optimizers are tested to propagate.
class FaultInjectingRunner final : public core::JobRunner {
 public:
  FaultInjectingRunner(
      core::JobRunner& inner, FaultPlan plan,
      double timeout_seconds = std::numeric_limits<double>::infinity());

  [[nodiscard]] core::RunResult run(space::ConfigId id) override;

 private:
  core::JobRunner* inner_;
  FaultPlan plan_;
  double timeout_seconds_;
  std::unordered_map<space::ConfigId, std::uint64_t> attempts_;
};

/// Asynchronous-completion adapter over the replay table: profiling runs
/// are submitted instead of executed inline, and completions pop in
/// *simulated-time* order — a run submitted at simulated time t finishes
/// at t + its recorded runtime, so cheap runs from one tuning session
/// overtake expensive runs from another exactly as they would on a real
/// cluster. This is the driver the TuningService tests and the
/// `lynceus_tune --sessions` batch mode feed sessions with: it produces
/// realistic out-of-order tell() sequences while staying fully
/// deterministic (ties break by submission ticket).
///
/// The simulated clock starts at 0 and advances to the finish time of
/// each popped completion; submissions are stamped with the clock at
/// submit time. Tags let the caller route a completion back to the
/// session that asked for it.
///
/// Outstanding runs live in a binary min-heap keyed (finish_time, ticket),
/// so submit/pop are O(log n) and scenarios with thousands of outstanding
/// runs stay cheap.
///
/// With a FaultPlan attached (set_fault_plan), each submission is routed
/// through inject_faults under the fault-determinism contract above, in
/// simulated time: failures and timeouts complete at their injected
/// moment, stragglers finish late, and an un-capped hang stays outstanding
/// forever (next_completion() reports idle rather than advancing the clock
/// to infinity).
class AsyncTableRunner {
 public:
  using MetricsFn = TableRunner::MetricsFn;

  struct Completion {
    std::uint64_t ticket = 0;     ///< submission order, 0-based
    std::uint64_t tag = 0;        ///< caller routing tag (e.g. session id)
    space::ConfigId config = 0;
    double finish_time = 0.0;     ///< simulated seconds
    core::RunResult result;
  };

  /// Per-submission knobs (retry/timeout support for the tuning service's
  /// RunPolicy).
  struct SubmitOptions {
    /// Kill the run at this many seconds after it starts (kTimedOut).
    double timeout_seconds = std::numeric_limits<double>::infinity();
    /// Attempt number for the fault draw (0 = first try). The service
    /// increments this on retries so each retry gets fresh fault draws.
    std::uint64_t attempt = 0;
    /// Start the run this many simulated seconds after now() (retry
    /// backoff); it finishes at now() + start_delay + duration.
    double start_delay = 0.0;
  };

  explicit AsyncTableRunner(const cloud::Dataset& dataset,
                            MetricsFn metrics = nullptr);

  /// Attaches (or replaces) the fault plan applied to subsequent
  /// submissions. Already-outstanding runs are unaffected.
  void set_fault_plan(const FaultPlan& plan);

  /// Enqueues a profiling run of `config`, finishing at
  /// now() + runtime(config) (fault plan permitting). Returns the
  /// submission ticket.
  std::uint64_t submit(std::uint64_t tag, space::ConfigId config);

  /// Enqueues a profiling run with explicit timeout/attempt/delay.
  std::uint64_t submit(std::uint64_t tag, space::ConfigId config,
                       const SubmitOptions& options);

  /// Pops the earliest-finishing outstanding run (ties by ticket) and
  /// advances the simulated clock to its finish time. Empty when idle —
  /// or when every outstanding run is hung forever (outstanding() > 0 but
  /// nothing will ever complete; only possible with an un-capped hang).
  [[nodiscard]] std::optional<Completion> next_completion();

  /// Finish time of the run next_completion() would pop; empty when
  /// idle or when only forever-hung runs remain. Lets a driver merging
  /// several runners pick the globally earliest completion.
  [[nodiscard]] std::optional<double> next_finish_time() const;

  [[nodiscard]] std::size_t outstanding() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t runs_served() const noexcept { return served_; }

 private:
  const cloud::Dataset* dataset_;
  MetricsFn metrics_;
  FaultPlan plan_;  ///< inactive by default
  std::vector<Completion> pending_;  ///< min-heap on (finish_time, ticket)
  double now_ = 0.0;
  std::uint64_t next_ticket_ = 0;
  std::size_t served_ = 0;
};

/// Threads a real completion-delivery loop around AsyncTableRunner (which
/// is itself single-threaded by design): submissions from any thread are
/// serialized under the pump's lock, and a dedicated pump thread pops each
/// completion as soon as it becomes poppable and hands it to the delivery
/// callback. The TuningService throughput scheduler
/// (service/tuning_service.hpp, "Throughput mode") uses one pump as the
/// boundary between its worker pool and the simulated cluster; a real
/// deployment would replace the pump thread with its cluster's completion
/// transport.
///
/// Concurrency contract:
///   * submit() may be called from any thread.
///   * `deliver` runs on the pump thread, under the pump lock — it must
///     not call back into the pump (a submit from inside deliver would
///     deadlock) and should be quick; pushing to a lock-free queue is the
///     intended use.
///   * stalled() answers, race-free, "can this runner ever deliver
///     again?" — true when no completion is poppable (idle, or only
///     forever-hung runs remain) *and* the caller-supplied idle check
///     holds under the same lock, so no in-flight delivery or concurrent
///     submit can slip between the two observations. Worker pools use it
///     to terminate when hung runs would otherwise leave them polling
///     forever.
class AsyncCompletionPump {
 public:
  using Callback = std::function<void(const AsyncTableRunner::Completion&)>;

  /// Starts the pump thread. `runner` must outlive the pump and must not
  /// be touched by any other thread until stop() returns.
  AsyncCompletionPump(AsyncTableRunner& runner, Callback deliver);
  ~AsyncCompletionPump();

  AsyncCompletionPump(const AsyncCompletionPump&) = delete;
  AsyncCompletionPump& operator=(const AsyncCompletionPump&) = delete;

  /// Thread-safe submit; wakes the pump thread. Returns the ticket.
  std::uint64_t submit(std::uint64_t tag, space::ConfigId config,
                       const AsyncTableRunner::SubmitOptions& options);

  /// See the concurrency contract in the class comment.
  [[nodiscard]] bool stalled(const std::function<bool()>& idle_check);

  /// Stops and joins the pump thread (idempotent; the destructor calls
  /// it). Undelivered hung runs stay outstanding in the runner.
  void stop();

 private:
  void loop();

  AsyncTableRunner* runner_;
  Callback deliver_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace lynceus::eval

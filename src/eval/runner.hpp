#pragma once

/// \file runner.hpp
/// JobRunner implementations for evaluation: the table-backed replay runner
/// (the paper's simulation methodology, §5.2) and decorators used in tests
/// and examples.

#include <functional>
#include <memory>

#include "cloud/dataset.hpp"
#include "core/types.hpp"

namespace lynceus::eval {

/// Replays a measured dataset: running configuration x returns the
/// recorded runtime and cost. Optionally produces synthetic auxiliary
/// metrics for the multi-constraint extension.
class TableRunner final : public core::JobRunner {
 public:
  using MetricsFn = std::function<std::vector<double>(space::ConfigId)>;

  explicit TableRunner(const cloud::Dataset& dataset,
                       MetricsFn metrics = nullptr);

  [[nodiscard]] core::RunResult run(space::ConfigId id) override;

  /// Number of runs served so far.
  [[nodiscard]] std::size_t runs_served() const noexcept { return served_; }

 private:
  const cloud::Dataset* dataset_;
  MetricsFn metrics_;
  std::size_t served_ = 0;
};

/// Decorator that throws after a set number of runs — used by the
/// failure-injection tests to verify optimizers surface runner errors
/// instead of swallowing them.
class FailingRunner final : public core::JobRunner {
 public:
  FailingRunner(core::JobRunner& inner, std::size_t fail_after);

  [[nodiscard]] core::RunResult run(space::ConfigId id) override;

 private:
  core::JobRunner* inner_;
  std::size_t remaining_;
};

}  // namespace lynceus::eval

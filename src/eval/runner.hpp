#pragma once

/// \file runner.hpp
/// JobRunner implementations for evaluation: the table-backed replay runner
/// (the paper's simulation methodology, §5.2) and decorators used in tests
/// and examples.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/dataset.hpp"
#include "core/types.hpp"

namespace lynceus::eval {

/// Replays a measured dataset: running configuration x returns the
/// recorded runtime and cost. Optionally produces synthetic auxiliary
/// metrics for the multi-constraint extension.
class TableRunner final : public core::JobRunner {
 public:
  using MetricsFn = std::function<std::vector<double>(space::ConfigId)>;

  explicit TableRunner(const cloud::Dataset& dataset,
                       MetricsFn metrics = nullptr);

  [[nodiscard]] core::RunResult run(space::ConfigId id) override;

  /// Number of runs served so far.
  [[nodiscard]] std::size_t runs_served() const noexcept { return served_; }

 private:
  const cloud::Dataset* dataset_;
  MetricsFn metrics_;
  std::size_t served_ = 0;
};

/// Decorator that throws after a set number of runs — used by the
/// failure-injection tests to verify optimizers surface runner errors
/// instead of swallowing them.
class FailingRunner final : public core::JobRunner {
 public:
  FailingRunner(core::JobRunner& inner, std::size_t fail_after);

  [[nodiscard]] core::RunResult run(space::ConfigId id) override;

 private:
  core::JobRunner* inner_;
  std::size_t remaining_;
};

/// Asynchronous-completion adapter over the replay table: profiling runs
/// are submitted instead of executed inline, and completions pop in
/// *simulated-time* order — a run submitted at simulated time t finishes
/// at t + its recorded runtime, so cheap runs from one tuning session
/// overtake expensive runs from another exactly as they would on a real
/// cluster. This is the driver the TuningService tests and the
/// `lynceus_tune --sessions` batch mode feed sessions with: it produces
/// realistic out-of-order tell() sequences while staying fully
/// deterministic (ties break by submission ticket).
///
/// The simulated clock starts at 0 and advances to the finish time of
/// each popped completion; submissions are stamped with the clock at
/// submit time. Tags let the caller route a completion back to the
/// session that asked for it.
class AsyncTableRunner {
 public:
  using MetricsFn = TableRunner::MetricsFn;

  struct Completion {
    std::uint64_t ticket = 0;     ///< submission order, 0-based
    std::uint64_t tag = 0;        ///< caller routing tag (e.g. session id)
    space::ConfigId config = 0;
    double finish_time = 0.0;     ///< simulated seconds
    core::RunResult result;
  };

  explicit AsyncTableRunner(const cloud::Dataset& dataset,
                            MetricsFn metrics = nullptr);

  /// Enqueues a profiling run of `config`, finishing at
  /// now() + runtime(config). Returns the submission ticket.
  std::uint64_t submit(std::uint64_t tag, space::ConfigId config);

  /// Pops the earliest-finishing outstanding run (ties by ticket) and
  /// advances the simulated clock to its finish time. Empty when idle.
  [[nodiscard]] std::optional<Completion> next_completion();

  /// Finish time of the run next_completion() would pop; empty when
  /// idle. Lets a driver merging several runners pick the globally
  /// earliest completion.
  [[nodiscard]] std::optional<double> next_finish_time() const;

  [[nodiscard]] std::size_t outstanding() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t runs_served() const noexcept { return served_; }

 private:
  const cloud::Dataset* dataset_;
  MetricsFn metrics_;
  std::vector<Completion> pending_;  ///< unordered; popped by scan
  double now_ = 0.0;
  std::uint64_t next_ticket_ = 0;
  std::size_t served_ = 0;
};

}  // namespace lynceus::eval

#include "eval/report.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "math/stats.hpp"
#include "util/strings.hpp"

namespace lynceus::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::save_csv: cannot open " + path);
  out << util::join(headers_, ",") << "\n";
  for (const auto& row : rows_) out << util::join(row, ",") << "\n";
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("ensure_directory: cannot create " + path + ": " +
                             ec.message());
  }
}

void print_cdf(std::ostream& out, const std::string& title,
               const std::vector<double>& values, std::size_t max_points) {
  const auto cdf = math::empirical_cdf(values);
  out << title << "\n";
  Table table({"value", "cdf"});
  const std::size_t step =
      cdf.size() <= max_points ? 1 : (cdf.size() + max_points - 1) / max_points;
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    table.add_row({util::format("%.3f", cdf[i].value),
                   util::format("%.3f", cdf[i].probability)});
  }
  if ((cdf.size() - 1) % step != 0) {
    table.add_row({util::format("%.3f", cdf.back().value),
                   util::format("%.3f", cdf.back().probability)});
  }
  table.print(out);
}

void save_cdf_csv(const std::string& path, const std::vector<double>& values) {
  const auto cdf = math::empirical_cdf(values);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_cdf_csv: cannot open " + path);
  out << "value,cdf\n";
  out.precision(8);
  for (const auto& p : cdf) out << p.value << "," << p.probability << "\n";
}

}  // namespace lynceus::eval

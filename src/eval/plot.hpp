#pragma once

/// \file plot.hpp
/// Terminal plotting for the bench binaries: renders line plots (and CDFs)
/// as character grids so the reproduced figures can be eyeballed directly
/// against the paper without an external plotting step. Each series gets
/// its own marker; axes are annotated with min/max and mid ticks; y can be
/// log-scaled (Fig. 1a style).

#include <string>
#include <vector>

namespace lynceus::eval {

struct Series {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;  ///< same length as xs
};

struct PlotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::size_t width = 64;   ///< plot-area columns (>= 8)
  std::size_t height = 18;  ///< plot-area rows (>= 4)
  bool log_y = false;       ///< log10 y axis (requires positive ys)
};

/// Renders the series into a multi-line string. Points with non-finite
/// coordinates (or non-positive y under log_y) are skipped. Consecutive
/// points of a series are connected by linear interpolation along x.
/// Throws std::invalid_argument for empty/malformed input.
[[nodiscard]] std::string render_plot(const std::vector<Series>& series,
                                      const PlotOptions& options);

/// Builds the empirical-CDF series of `values`: x = sorted values,
/// y = P(X <= x). Handy for the Fig. 4/6 style plots.
[[nodiscard]] Series cdf_series(std::string label,
                                const std::vector<double>& values);

}  // namespace lynceus::eval

#include "eval/results_cache.hpp"

#include <fstream>
#include <stdexcept>

#include "eval/report.hpp"
#include "util/strings.hpp"

namespace lynceus::eval {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

ResultsCache::ResultsCache(std::string directory)
    : directory_(std::move(directory)) {
  ensure_directory(directory_);
}

std::string ResultsCache::entry_path(const cloud::Dataset& dataset,
                                     const OptimizerSpec& spec,
                                     const ExperimentConfig& config) const {
  return directory_ + "/" +
         sanitize(util::format("%s__%s__b%g__r%zu__s%llu",
                               dataset.job_name().c_str(), spec.label.c_str(),
                               config.budget_multiplier, config.runs,
                               static_cast<unsigned long long>(
                                   config.base_seed))) +
         ".csv";
}

ExperimentResult ResultsCache::get_or_run(const cloud::Dataset& dataset,
                                          const OptimizerSpec& spec,
                                          const ExperimentConfig& config) {
  const std::string path = entry_path(dataset, spec, config);
  if (std::ifstream probe(path); probe.good()) {
    ExperimentResult cached = load(path);
    if (cached.runs.size() == config.runs) return cached;
  }
  ExperimentResult result = run_experiment(dataset, spec, config);
  store(path, result);
  return result;
}

void ResultsCache::store(const std::string& path,
                         const ExperimentResult& result) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ResultsCache::store: cannot open " + path);
  out << "#dataset," << result.dataset << "\n";
  out << "#optimizer," << result.optimizer << "\n";
  out << "#budget_multiplier," << result.budget_multiplier << "\n";
  out << "seed,cno,nex,budget_spent,decision_seconds,decisions,cno_trace\n";
  out.precision(10);
  for (const auto& r : result.runs) {
    out << r.seed << "," << r.cno << "," << r.nex << "," << r.budget_spent
        << "," << r.decision_seconds << "," << r.decisions << ",";
    for (std::size_t i = 0; i < r.cno_trace.size(); ++i) {
      if (i > 0) out << ";";
      out << util::format("%.6g", r.cno_trace[i]);
    }
    out << "\n";
  }
}

ExperimentResult ResultsCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ResultsCache::load: cannot open " + path);
  ExperimentResult result;
  std::string line;
  while (std::getline(in, line)) {
    line = util::trim(line);
    if (line.empty()) continue;
    if (line.rfind("#dataset,", 0) == 0) {
      result.dataset = line.substr(9);
      continue;
    }
    if (line.rfind("#optimizer,", 0) == 0) {
      result.optimizer = line.substr(11);
      continue;
    }
    if (line.rfind("#budget_multiplier,", 0) == 0) {
      result.budget_multiplier = std::stod(line.substr(19));
      continue;
    }
    if (line.rfind("seed,", 0) == 0) continue;  // header
    const auto fields = util::split(line, ',');
    if (fields.size() != 7) {
      throw std::runtime_error("ResultsCache::load: malformed row in " + path);
    }
    RunSummary r;
    r.seed = std::stoull(fields[0]);
    r.cno = std::stod(fields[1]);
    r.nex = std::stoul(fields[2]);
    r.budget_spent = std::stod(fields[3]);
    r.decision_seconds = std::stod(fields[4]);
    r.decisions = std::stoul(fields[5]);
    if (!fields[6].empty()) {
      for (const auto& v : util::split(fields[6], ';')) {
        r.cno_trace.push_back(std::stod(v));
      }
    }
    result.runs.push_back(std::move(r));
  }
  return result;
}

}  // namespace lynceus::eval

#pragma once

/// \file experiment.hpp
/// The experiment harness implementing the paper's methodology (§5.2):
/// run each optimizer >= 100 times against a replayed dataset, each run
/// with a different bootstrap; for fairness, the i-th run of every
/// optimizer uses the same seed and hence the identical LHS bootstrap set.
/// Budgets follow B = N · m̃ · b with m̃ the dataset's mean configuration
/// cost and b the budget multiplier (1 = low, 3 = medium, 5 = high).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/dataset.hpp"
#include "core/types.hpp"
#include "eval/metrics.hpp"
#include "util/thread_pool.hpp"

namespace lynceus::eval {

/// Builds the paper's optimization problem for a dataset and budget
/// multiplier `b`: N from the 3 %-or-dims rule, B = N · m̃ · b, Tmax from
/// the dataset.
[[nodiscard]] core::OptimizationProblem make_problem(
    const cloud::Dataset& dataset, double budget_multiplier);

/// Summary of one optimization run, as persisted by the results cache.
struct RunSummary {
  std::uint64_t seed = 0;
  double cno = 0.0;
  std::size_t nex = 0;
  double budget_spent = 0.0;
  double decision_seconds = 0.0;
  std::size_t decisions = 0;
  /// Best-so-far CNO after each exploration (Fig. 7).
  std::vector<double> cno_trace;
};

struct ExperimentResult {
  std::string dataset;
  std::string optimizer;
  double budget_multiplier = 0.0;
  std::vector<RunSummary> runs;

  [[nodiscard]] std::vector<double> cnos() const;
  [[nodiscard]] std::vector<double> nexs() const;
  /// Mean seconds per next-configuration decision (Table 3).
  [[nodiscard]] double mean_decision_seconds() const;
  /// p90 of the best-so-far CNO at exploration index `e` across runs; runs
  /// that terminated earlier contribute their final value (Fig. 7).
  [[nodiscard]] std::vector<double> p90_cno_by_exploration() const;
  [[nodiscard]] double mean_nex() const;
};

/// A named optimizer recipe. The factory is invoked per run so optimizers
/// need not be reentrant.
struct OptimizerSpec {
  std::string label;
  std::function<std::unique_ptr<core::Optimizer>()> make;
};

struct ExperimentConfig {
  std::size_t runs = 100;
  double budget_multiplier = 3.0;  ///< the paper's b (default: medium)
  std::uint64_t base_seed = 42;
  util::ThreadPool* pool = nullptr;  ///< parallelism across runs
};

/// Runs `config.runs` independent optimizations of `spec` on `dataset`.
/// Run i uses seed derive(base_seed, i), so different optimizers with the
/// same config share bootstrap sets run-by-run.
[[nodiscard]] ExperimentResult run_experiment(const cloud::Dataset& dataset,
                                              const OptimizerSpec& spec,
                                              const ExperimentConfig& config);

/// Standard optimizer recipes used throughout the benches.
[[nodiscard]] OptimizerSpec rnd_spec();
[[nodiscard]] OptimizerSpec bo_spec();
/// The original CherryPick recipe [5]: greedy constrained EI on a Gaussian
/// process, stopping when the best EI drops below 10% of the incumbent.
/// (The paper's "BO" baseline instead uses the tree ensemble with no early
/// stop, for comparability with Lynceus — that one is bo_spec().)
[[nodiscard]] OptimizerSpec cherrypick_spec();
/// `screen_width = 0` is paper-faithful; benches pass a positive width to
/// bound single-core decision time (see DESIGN.md §5).
[[nodiscard]] OptimizerSpec lynceus_spec(unsigned lookahead,
                                         unsigned screen_width = 0,
                                         unsigned gh_points = 3);

}  // namespace lynceus::eval

#include "eval/plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/stats.hpp"
#include "util/strings.hpp"

namespace lynceus::eval {

namespace {

constexpr char kMarkers[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return lo <= hi; }
  [[nodiscard]] double span() const { return hi > lo ? hi - lo : 1.0; }
};

}  // namespace

Series cdf_series(std::string label, const std::vector<double>& values) {
  const auto cdf = math::empirical_cdf(values);
  Series s;
  s.label = std::move(label);
  s.xs.reserve(cdf.size());
  s.ys.reserve(cdf.size());
  for (const auto& p : cdf) {
    s.xs.push_back(p.value);
    s.ys.push_back(p.probability);
  }
  return s;
}

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("render_plot: no series");
  }
  if (options.width < 8 || options.height < 4) {
    throw std::invalid_argument("render_plot: plot area too small");
  }
  for (const auto& s : series) {
    if (s.xs.size() != s.ys.size()) {
      throw std::invalid_argument("render_plot: xs/ys size mismatch in '" +
                                  s.label + "'");
    }
  }

  auto y_of = [&options](double y) {
    return options.log_y ? std::log10(y) : y;
  };
  auto usable = [&options](double x, double y) {
    if (!std::isfinite(x) || !std::isfinite(y)) return false;
    return !options.log_y || y > 0.0;
  };

  Range xr;
  Range yr;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!usable(s.xs[i], s.ys[i])) continue;
      xr.include(s.xs[i]);
      yr.include(y_of(s.ys[i]));
    }
  }
  if (!xr.valid() || !yr.valid()) {
    throw std::invalid_argument("render_plot: no plottable points");
  }

  const std::size_t w = options.width;
  const std::size_t h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto to_col = [&](double x) {
    const double t = (x - xr.lo) / xr.span();
    return static_cast<std::size_t>(std::lround(
        t * static_cast<double>(w - 1)));
  };
  auto to_row = [&](double y) {
    const double t = (y_of(y) - yr.lo) / yr.span();
    // Row 0 is the top of the plot.
    return h - 1 -
           static_cast<std::size_t>(
               std::lround(t * static_cast<double>(h - 1)));
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char marker = kMarkers[si % sizeof(kMarkers)];
    const Series& s = series[si];
    std::size_t prev_col = 0;
    std::size_t prev_row = 0;
    bool have_prev = false;
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!usable(s.xs[i], s.ys[i])) {
        have_prev = false;
        continue;
      }
      const std::size_t col = to_col(s.xs[i]);
      const std::size_t row = to_row(s.ys[i]);
      grid[row][col] = marker;
      if (have_prev && col > prev_col + 1) {
        // Connect with linearly interpolated markers.
        for (std::size_t c = prev_col + 1; c < col; ++c) {
          const double t = static_cast<double>(c - prev_col) /
                           static_cast<double>(col - prev_col);
          const auto r = static_cast<std::size_t>(std::lround(
              static_cast<double>(prev_row) +
              t * (static_cast<double>(row) - static_cast<double>(prev_row))));
          if (grid[r][c] == ' ') grid[r][c] = marker;
        }
      }
      prev_col = col;
      prev_row = row;
      have_prev = true;
    }
  }

  auto y_tick = [&](std::size_t row) {
    const double t =
        static_cast<double>(h - 1 - row) / static_cast<double>(h - 1);
    const double v = yr.lo + t * yr.span();
    return options.log_y ? std::pow(10.0, v) : v;
  };

  std::string out;
  if (!options.title.empty()) {
    out += options.title + "\n";
  }
  if (!options.y_label.empty() || options.log_y) {
    out += options.y_label + (options.log_y ? "  (log scale)" : "") + "\n";
  }
  const std::string tick_fmt = "%9.3g |";
  for (std::size_t row = 0; row < h; ++row) {
    const bool labeled = row == 0 || row == h - 1 || row == h / 2;
    if (labeled) {
      out += util::format("%9.3g |", y_tick(row));
    } else {
      out += "          |";
    }
    out += grid[row];
    out += "\n";
  }
  out += "          +" + std::string(w, '-') + "\n";
  out += util::format("           %-10.3g%*s\n", xr.lo,
                      static_cast<int>(w) - 10,
                      util::format("%.3g", xr.hi).c_str());
  if (!options.x_label.empty()) {
    const auto pad = (w > options.x_label.size())
                         ? (w - options.x_label.size()) / 2 + 11
                         : 11;
    out += std::string(pad, ' ') + options.x_label + "\n";
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += util::format("           %c %s\n", kMarkers[si % sizeof(kMarkers)],
                        series[si].label.c_str());
  }
  return out;
}

}  // namespace lynceus::eval

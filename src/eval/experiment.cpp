#include "eval/experiment.hpp"

#include <stdexcept>

#include "core/bo.hpp"
#include "core/lynceus.hpp"
#include "core/random_search.hpp"
#include "model/gp.hpp"
#include "eval/runner.hpp"
#include "math/stats.hpp"
#include "util/rng.hpp"

namespace lynceus::eval {

core::OptimizationProblem make_problem(const cloud::Dataset& dataset,
                                       double budget_multiplier) {
  if (budget_multiplier <= 0.0) {
    throw std::invalid_argument("make_problem: budget multiplier must be > 0");
  }
  core::OptimizationProblem p;
  p.space = dataset.space_ptr();
  p.unit_price_per_hour.resize(dataset.size());
  for (std::size_t id = 0; id < dataset.size(); ++id) {
    p.unit_price_per_hour[id] =
        dataset.unit_price(static_cast<space::ConfigId>(id));
  }
  p.tmax_seconds = dataset.tmax_seconds();
  p.bootstrap_samples = core::default_bootstrap_samples(dataset.space());
  p.budget = static_cast<double>(p.bootstrap_samples) * dataset.mean_cost() *
             budget_multiplier;
  p.validate();
  return p;
}

std::vector<double> ExperimentResult::cnos() const {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(r.cno);
  return out;
}

std::vector<double> ExperimentResult::nexs() const {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(static_cast<double>(r.nex));
  return out;
}

double ExperimentResult::mean_decision_seconds() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& r : runs) {
    total += r.decision_seconds;
    count += r.decisions;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::vector<double> ExperimentResult::p90_cno_by_exploration() const {
  std::size_t longest = 0;
  for (const auto& r : runs) longest = std::max(longest, r.cno_trace.size());
  std::vector<double> out;
  out.reserve(longest);
  std::vector<double> column;
  for (std::size_t e = 0; e < longest; ++e) {
    column.clear();
    for (const auto& r : runs) {
      if (r.cno_trace.empty()) continue;
      // A run that already terminated keeps its final best-so-far value.
      column.push_back(e < r.cno_trace.size() ? r.cno_trace[e]
                                              : r.cno_trace.back());
    }
    out.push_back(math::percentile(column, 90.0));
  }
  return out;
}

double ExperimentResult::mean_nex() const {
  math::RunningStats s;
  for (const auto& r : runs) s.add(static_cast<double>(r.nex));
  return s.mean();
}

ExperimentResult run_experiment(const cloud::Dataset& dataset,
                                const OptimizerSpec& spec,
                                const ExperimentConfig& config) {
  if (config.runs == 0) {
    throw std::invalid_argument("run_experiment: need at least one run");
  }
  const core::OptimizationProblem problem =
      make_problem(dataset, config.budget_multiplier);

  ExperimentResult result;
  result.dataset = dataset.job_name();
  result.optimizer = spec.label;
  result.budget_multiplier = config.budget_multiplier;
  result.runs.resize(config.runs);

  auto one_run = [&](std::size_t i) {
    const std::uint64_t seed = util::derive_seed(config.base_seed, i);
    TableRunner runner(dataset);
    auto optimizer = spec.make();
    const core::OptimizerResult r = optimizer->optimize(problem, runner, seed);

    RunSummary& s = result.runs[i];
    s.seed = seed;
    s.cno = cno(dataset, r);
    s.nex = r.explorations();
    s.budget_spent = r.budget_spent;
    s.decision_seconds = r.decision_seconds;
    s.decisions = r.decisions;
    s.cno_trace = best_so_far_cno(dataset, r.history);
  };
  util::maybe_parallel_for(config.pool, config.runs, one_run);
  return result;
}

OptimizerSpec rnd_spec() {
  return {"RND", [] { return std::make_unique<core::RandomSearch>(); }};
}

OptimizerSpec bo_spec() {
  return {"BO", [] {
            return std::make_unique<core::BayesianOptimizer>(core::BoOptions{});
          }};
}

OptimizerSpec cherrypick_spec() {
  return {"CherryPick", [] {
            core::BoOptions opts;
            opts.model_factory = [] {
              return std::make_unique<model::GaussianProcess>();
            };
            opts.ei_stop_fraction = 0.10;
            return std::make_unique<core::BayesianOptimizer>(opts);
          }};
}

OptimizerSpec lynceus_spec(unsigned lookahead, unsigned screen_width,
                           unsigned gh_points) {
  OptimizerSpec spec;
  spec.label = "Lynceus(LA=" + std::to_string(lookahead) + ")";
  spec.make = [lookahead, screen_width, gh_points] {
    core::LynceusOptions opts;
    opts.lookahead = lookahead;
    opts.screen_width = screen_width;
    opts.gh_points = gh_points;
    return std::make_unique<core::LynceusOptimizer>(opts);
  };
  return spec;
}

}  // namespace lynceus::eval

#pragma once

/// \file report.hpp
/// Plain-text and CSV reporting for the bench binaries: aligned ASCII
/// tables (the "rows the paper reports") and CSV series for external
/// plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace lynceus::eval {

/// A simple aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Prints with column alignment and a header separator.
  void print(std::ostream& out) const;

  /// Writes as CSV (no alignment padding).
  void save_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Creates `path` (and parents) if missing. Throws on failure.
void ensure_directory(const std::string& path);

/// Prints an empirical CDF as two aligned columns ("value  cdf"), thinning
/// to at most `max_points` rows for readability.
void print_cdf(std::ostream& out, const std::string& title,
               const std::vector<double>& values,
               std::size_t max_points = 25);

/// Writes an empirical CDF as CSV (full resolution).
void save_cdf_csv(const std::string& path, const std::vector<double>& values);

}  // namespace lynceus::eval

#include "eval/disjoint.hpp"

#include <limits>
#include <map>
#include <stdexcept>

namespace lynceus::eval {

namespace {

using Key = std::vector<std::size_t>;

Key project(const space::LevelVector& levels,
            const std::vector<std::size_t>& dims) {
  Key key;
  key.reserve(dims.size());
  for (std::size_t d : dims) key.push_back(levels.at(d));
  return key;
}

/// Picks the better of two configurations: feasible beats infeasible;
/// within the same feasibility class, cheaper wins.
bool better(const cloud::Dataset& ds, space::ConfigId a, space::ConfigId b) {
  const bool fa = ds.feasible(a);
  const bool fb = ds.feasible(b);
  if (fa != fb) return fa;
  return ds.cost(a) < ds.cost(b);
}

}  // namespace

std::vector<double> disjoint_optimization_cno(
    const cloud::Dataset& dataset, const std::vector<std::size_t>& param_dims,
    const std::vector<std::size_t>& cloud_dims) {
  if (param_dims.empty() || cloud_dims.empty()) {
    throw std::invalid_argument(
        "disjoint_optimization_cno: both dimension groups must be non-empty");
  }
  const auto& sp = dataset.space();

  // Group configurations by their cloud projection.
  std::map<Key, std::vector<space::ConfigId>> by_cloud;
  for (std::size_t i = 0; i < sp.size(); ++i) {
    const auto id = static_cast<space::ConfigId>(i);
    by_cloud[project(sp.levels(id), cloud_dims)].push_back(id);
  }

  const double opt_cost = dataset.optimal_cost();
  std::vector<double> cnos;
  cnos.reserve(by_cloud.size());

  for (const auto& [cloud_key, members] : by_cloud) {
    // Step 1: best parameters on the reference cloud c†.
    space::ConfigId best_on_ref = members.front();
    for (space::ConfigId id : members) {
      if (better(dataset, id, best_on_ref)) best_on_ref = id;
    }
    const Key params = project(sp.levels(best_on_ref), param_dims);

    // Step 2: best cloud for the chosen parameters.
    space::ConfigId final_choice = best_on_ref;
    for (std::size_t i = 0; i < sp.size(); ++i) {
      const auto id = static_cast<space::ConfigId>(i);
      if (project(sp.levels(id), param_dims) != params) continue;
      if (better(dataset, id, final_choice)) final_choice = id;
    }
    cnos.push_back(dataset.cost(final_choice) / opt_cost);
  }
  return cnos;
}

}  // namespace lynceus::eval

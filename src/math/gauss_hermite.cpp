#include "math/gauss_hermite.hpp"

#include <cmath>
#include <stdexcept>

namespace lynceus::math {

namespace {

/// Evaluates the physicists' Hermite polynomial H_n at x together with its
/// derivative, via the three-term recurrence
///   H_{k+1}(x) = 2x·H_k(x) − 2k·H_{k−1}(x),  H'_n(x) = 2n·H_{n−1}(x).
/// To avoid overflow for larger n we evaluate the *orthonormal* version
///   h_k(x) = H_k(x) / sqrt(2^k k! √π),
/// whose recurrence is h_{k+1} = x·√(2/(k+1))·h_k − √(k/(k+1))·h_{k−1}.
struct HermiteEval {
  double value;
  double derivative;
};

HermiteEval orthonormal_hermite(std::size_t n, double x) {
  double h_prev = 0.0;
  double h = 1.0 / std::pow(M_PI, 0.25);  // h_0
  for (std::size_t k = 0; k < n; ++k) {
    const double kk = static_cast<double>(k);
    const double h_next = x * std::sqrt(2.0 / (kk + 1.0)) * h -
                          std::sqrt(kk / (kk + 1.0)) * h_prev;
    h_prev = h;
    h = h_next;
  }
  // h'_n(x) = √(2n) · h_{n−1}(x)
  const double deriv = std::sqrt(2.0 * static_cast<double>(n)) * h_prev;
  return {h, deriv};
}

}  // namespace

GaussHermite::GaussHermite(std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("GaussHermite: k must be >= 1");
  }
  nodes_.assign(k, 0.0);
  weights_.assign(k, 0.0);

  // Roots are symmetric about 0; compute the positive half by Newton
  // iteration from standard initial guesses (Numerical Recipes style).
  const std::size_t m = (k + 1) / 2;
  double z = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == 0) {
      z = std::sqrt(static_cast<double>(2 * k + 1)) -
          1.85575 * std::pow(static_cast<double>(2 * k + 1), -1.0 / 6.0);
    } else if (i == 1) {
      z -= 1.14 * std::pow(static_cast<double>(k), 0.426) / z;
    } else if (i == 2) {
      z = 1.86 * z - 0.86 * nodes_[k - 1];
    } else if (i == 3) {
      z = 1.91 * z - 0.91 * nodes_[k - 2];
    } else {
      z = 2.0 * z - nodes_[k - i + 1];
    }

    HermiteEval e{0.0, 0.0};
    for (int iter = 0; iter < 100; ++iter) {
      e = orthonormal_hermite(k, z);
      const double dz = e.value / e.derivative;
      z -= dz;
      if (std::fabs(dz) < 1e-15 * std::max(1.0, std::fabs(z))) break;
    }
    e = orthonormal_hermite(k, z);

    // weight = 2 / h'_n(z)^2 for the orthonormal normalization.
    const double w = 2.0 / (e.derivative * e.derivative);
    nodes_[k - 1 - i] = z;
    nodes_[i] = -z;
    weights_[k - 1 - i] = w;
    weights_[i] = w;
  }
  if (k % 2 == 1) {
    // Middle node is exactly zero (set explicitly: Newton may leave ~1e-17).
    nodes_[k / 2] = 0.0;
  }
}

std::vector<QuadraturePoint> GaussHermite::for_normal(double mean,
                                                      double stddev) const {
  std::vector<QuadraturePoint> out(nodes_.size());
  for_normal_into(mean, stddev, out.data());
  return out;
}

void GaussHermite::for_normal_into(double mean, double stddev,
                                   QuadraturePoint* out) const noexcept {
  const double scale = std::sqrt(2.0) * stddev;
  const double inv_sqrt_pi = 1.0 / std::sqrt(M_PI);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out[i].value = mean + scale * nodes_[i];
    out[i].weight = weights_[i] * inv_sqrt_pi;
  }
}

double GaussHermite::integrate(const std::vector<double>& f_at_nodes) const {
  if (f_at_nodes.size() != nodes_.size()) {
    throw std::invalid_argument(
        "GaussHermite::integrate: need one value per node");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    acc += weights_[i] * f_at_nodes[i];
  }
  return acc;
}

}  // namespace lynceus::math

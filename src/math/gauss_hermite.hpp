#pragma once

/// \file gauss_hermite.hpp
/// Gauss–Hermite quadrature nodes and weights.
///
/// Lynceus (paper §4.2, approximation 3) discretizes the Gaussian predictive
/// cost distribution of an untested configuration into K `(value, weight)`
/// pairs using the Gauss–Hermite rule, so that each simulated exploration
/// step branches into K weighted sub-paths instead of requiring an
/// intractable nested marginalization.
///
/// Physicists' convention: nodes/weights integrate f(x)·e^{-x²} exactly for
/// polynomial f of degree ≤ 2K−1. `for_normal` re-scales them so that the
/// returned pairs are an exact K-point discretization of N(mean, stddev²):
/// values `mean + √2·stddev·ξ_i`, weights `ω_i/√π` (summing to 1).

#include <cstddef>
#include <vector>

namespace lynceus::math {

struct QuadraturePoint {
  double value = 0.0;
  double weight = 0.0;
};

class GaussHermite {
 public:
  /// Computes the K-point rule. Nodes are found by Newton iteration on the
  /// Hermite three-term recurrence, exploiting root symmetry. Throws
  /// std::invalid_argument for k == 0; supports k up to ~64 (more than
  /// enough — the paper's lookahead uses a handful of nodes).
  explicit GaussHermite(std::size_t k);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Raw physicists' nodes ξ_i (ascending) and weights ω_i.
  [[nodiscard]] const std::vector<double>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

  /// K-point discretization of N(mean, stddev²). Weights sum to 1. With
  /// `stddev == 0` all points collapse onto the mean.
  [[nodiscard]] std::vector<QuadraturePoint> for_normal(double mean,
                                                        double stddev) const;

  /// Allocation-free variant of for_normal(): writes the K points into
  /// `out[0..size())`. Used by the lookahead simulation engine, whose inner
  /// loop must not touch the heap.
  void for_normal_into(double mean, double stddev,
                       QuadraturePoint* out) const noexcept;

  /// ∫ f(x) e^{-x²} dx approximated by the rule.
  [[nodiscard]] double integrate(const std::vector<double>& f_at_nodes) const;

 private:
  std::vector<double> nodes_;
  std::vector<double> weights_;
};

}  // namespace lynceus::math

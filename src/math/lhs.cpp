#include "math/lhs.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace lynceus::math {

namespace {

/// One balanced column: a random sequence of `n` level indices in which
/// every level of `levels` appears either ⌊n/L⌋ or ⌈n/L⌉ times. Built by
/// concatenating random permutations of the level set and shuffling the
/// final (partial) block, then shuffling the assignment across rows.
std::vector<std::size_t> balanced_column(std::size_t levels, std::size_t n,
                                         util::Rng& rng) {
  std::vector<std::size_t> column;
  column.reserve(n);
  while (column.size() < n) {
    auto perm = rng.permutation(levels);
    for (std::size_t lvl : perm) {
      if (column.size() == n) break;
      column.push_back(lvl);
    }
  }
  rng.shuffle(column);
  return column;
}

}  // namespace

std::vector<std::vector<std::size_t>> latin_hypercube(
    const std::vector<std::size_t>& level_counts, std::size_t n,
    util::Rng& rng, bool unique) {
  if (level_counts.empty()) {
    throw std::invalid_argument("latin_hypercube: no dimensions");
  }
  double log_cells = 0.0;
  for (std::size_t levels : level_counts) {
    if (levels == 0) {
      throw std::invalid_argument("latin_hypercube: empty dimension");
    }
    log_cells += std::log(static_cast<double>(levels));
  }
  if (unique && log_cells < std::log(static_cast<double>(n)) - 1e-12) {
    throw std::invalid_argument(
        "latin_hypercube: grid smaller than requested unique sample count");
  }
  if (n == 0) return {};

  const std::size_t dims = level_counts.size();

  // Draw balanced columns; on duplicate rows, re-shuffle the *pairing* of
  // the offending rows' strata (keeps per-dimension balance intact).
  std::vector<std::vector<std::size_t>> columns(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    columns[d] = balanced_column(level_counts[d], n, rng);
  }

  auto row = [&](std::size_t i) {
    std::vector<std::size_t> r(dims);
    for (std::size_t d = 0; d < dims; ++d) r[d] = columns[d][i];
    return r;
  };

  if (unique) {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      std::set<std::vector<std::size_t>> seen;
      std::vector<std::size_t> dup_rows;
      for (std::size_t i = 0; i < n; ++i) {
        if (!seen.insert(row(i)).second) dup_rows.push_back(i);
      }
      if (dup_rows.empty()) break;
      // Re-pair duplicates: rotate their entries within one random dimension.
      for (std::size_t i : dup_rows) {
        const std::size_t d = static_cast<std::size_t>(rng.below(dims));
        const std::size_t j = static_cast<std::size_t>(rng.below(n));
        std::swap(columns[d][i], columns[d][j]);
      }
    }
    // Final fallback: replace any remaining duplicates with uniform draws.
    std::set<std::vector<std::size_t>> seen;
    for (std::size_t i = 0; i < n; ++i) {
      auto r = row(i);
      int guard = 0;
      while (!seen.insert(r).second && guard++ < 100000) {
        for (std::size_t d = 0; d < dims; ++d) {
          r[d] = static_cast<std::size_t>(rng.below(level_counts[d]));
          columns[d][i] = r[d];
        }
      }
    }
  }

  std::vector<std::vector<std::size_t>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(row(i));
  return out;
}

}  // namespace lynceus::math

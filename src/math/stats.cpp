#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lynceus::math {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ += delta * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("variance: empty input");
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0, 100]");
  }
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> out(xs.size());
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = {xs[i], static_cast<double>(i + 1) / n};
  }
  return out;
}

double fraction_at_or_below(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) throw std::invalid_argument("fraction_at_or_below: empty");
  std::size_t count = 0;
  for (double x : xs) {
    if (x <= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

}  // namespace lynceus::math

#include "math/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace lynceus::math {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::mul(const std::vector<double>& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::mul: dimension mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Cholesky::Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw std::domain_error("Cholesky: matrix not positive definite");
    }
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / l_(j, j);
    }
  }
}

std::vector<double> Cholesky::solve_lower(const std::vector<double>& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve_lower: dimension mismatch");
  }
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  const std::size_t n = l_.rows();
  std::vector<double> y = solve_lower(b);
  // Back substitution with Lᵀ.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

double Cholesky::log_determinant() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace lynceus::math

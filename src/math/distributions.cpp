#include "math/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace lynceus::math {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014326779399460599343818684;
constexpr double kInvSqrt2 = 0.7071067811865475244008443621048490392;
}  // namespace

double norm_pdf(double x) noexcept {
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double norm_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x * kInvSqrt2);
}

double norm_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("norm_quantile: p must lie in (0, 1)");
  }

  // Acklam's piecewise rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the exact cdf.
  const double e = norm_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double normal_cdf(double value, double mean, double stddev) noexcept {
  if (stddev <= 0.0) return value >= mean ? 1.0 : 0.0;
  return norm_cdf((value - mean) / stddev);
}

double normal_pdf(double value, double mean, double stddev) noexcept {
  const double z = (value - mean) / stddev;
  return norm_pdf(z) / stddev;
}

double normal_quantile(double p, double mean, double stddev) {
  return mean + stddev * norm_quantile(p);
}

double norm_cdf_ge_boundary(double q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::domain_error("norm_cdf_ge_boundary: q must lie in (0, 1)");
  }
  double lo = -50.0;  // norm_cdf(-50) == 0 < q
  double hi = 50.0;   // norm_cdf(50) == 1 >= q
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;
    (norm_cdf(mid) >= q ? hi : lo) = mid;
  }
  while (true) {
    const double prev = std::nextafter(hi, lo);
    if (prev <= lo || norm_cdf(prev) < q) break;
    hi = prev;
  }
  return hi;
}

}  // namespace lynceus::math

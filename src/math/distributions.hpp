#pragma once

/// \file distributions.hpp
/// Normal-distribution primitives used by the acquisition functions.
///
/// The constrained expected improvement of the paper (§3) needs the standard
/// normal pdf `φ`, cdf `Φ`, and — for tests and the GP — the quantile
/// function. All functions are pure and branch-free where possible since
/// they sit on the optimizer's hot path (every candidate configuration is
/// scored with them at every simulated step).

namespace lynceus::math {

/// Standard normal probability density function.
[[nodiscard]] double norm_pdf(double x) noexcept;

/// Standard normal cumulative distribution function (via erfc; accurate to
/// ~1e-15 over the full double range).
[[nodiscard]] double norm_cdf(double x) noexcept;

/// Inverse standard normal cdf (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-9 for p in (0, 1)).
/// Throws std::domain_error for p outside (0, 1).
[[nodiscard]] double norm_quantile(double p);

/// P(X <= value) for X ~ N(mean, stddev^2). `stddev == 0` degenerates to a
/// point mass (returns 0 or 1). Requires `stddev >= 0`.
[[nodiscard]] double normal_cdf(double value, double mean,
                                double stddev) noexcept;

/// Density of N(mean, stddev^2) at `value`. Requires `stddev > 0`.
[[nodiscard]] double normal_pdf(double value, double mean,
                                double stddev) noexcept;

/// z-score such that P(X <= mean + z * stddev) = p. (Convenience wrapper
/// around norm_quantile, used by the budget-feasibility filter.)
[[nodiscard]] double normal_quantile(double p, double mean, double stddev);

/// Smallest double z with `norm_cdf(z) >= q`, for q in (0, 1) — found by
/// bisection over doubles plus a final nextafter walk, so comparing a
/// z-score against the boundary decides `norm_cdf(z) >= q` exactly (the
/// cdf is monotone). Lets hot loops replace an erfc evaluation per
/// candidate with one subtract-divide-compare. Throws std::domain_error
/// outside (0, 1).
[[nodiscard]] double norm_cdf_ge_boundary(double q);

}  // namespace lynceus::math

#pragma once

/// \file stats.hpp
/// Descriptive statistics used by the evaluation harness: means, variances
/// (Welford online accumulation), percentiles (linear interpolation, the
/// convention used by gnuplot/NumPy so the reproduced CDF figures are
/// directly comparable with the paper's), and empirical CDF extraction.

#include <cstddef>
#include <vector>

namespace lynceus::math {

/// Online mean/variance accumulator (Welford). Numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(const std::vector<double>& xs);
[[nodiscard]] double variance(const std::vector<double>& xs);
[[nodiscard]] double stddev(const std::vector<double>& xs);

/// p-th percentile, p in [0, 100], linear interpolation between order
/// statistics. Throws std::invalid_argument on empty input or p out of
/// range. Does not modify its argument.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};

/// Full empirical CDF: sorted values with P(X <= value) = (i+1)/n.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// Fraction of observations <= `threshold`.
[[nodiscard]] double fraction_at_or_below(const std::vector<double>& xs,
                                          double threshold);

}  // namespace lynceus::math

#pragma once

/// \file matrix.hpp
/// A small dense row-major matrix with the factorizations the Gaussian
/// process regressor needs: Cholesky decomposition, triangular solves, and
/// log-determinant. Not a general linear-algebra library — just the pieces
/// required, kept simple and testable.

#include <cstddef>
#include <vector>

namespace lynceus::math {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Matrix-vector product. Requires x.size() == cols().
  [[nodiscard]] std::vector<double> mul(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix: A = L·Lᵀ. Throws std::domain_error if A is not (numerically)
/// positive definite.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  [[nodiscard]] const Matrix& lower() const noexcept { return l_; }

  /// Solves A·x = b via two triangular solves. Requires b.size() == n.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves L·y = b (forward substitution).
  [[nodiscard]] std::vector<double> solve_lower(
      const std::vector<double>& b) const;

  /// log(det(A)) = 2·Σ log(L_ii). Useful for GP log-marginal-likelihood.
  [[nodiscard]] double log_determinant() const;

 private:
  Matrix l_;
};

}  // namespace lynceus::math

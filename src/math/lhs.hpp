#pragma once

/// \file lhs.hpp
/// Latin Hypercube Sampling over discrete configuration grids.
///
/// Lynceus bootstraps its model with N configurations drawn by LHS (paper
/// §4.3, footnote 3: "a randomized technique to sample a multi-dimensional
/// space that improves over random sampling"). For a discrete grid we
/// stratify each dimension into N strata, cycle each dimension's levels in
/// an independent random permutation order, and combine strata column-wise,
/// which guarantees that every dimension's levels are covered as evenly as
/// possible — the defining LHS property.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace lynceus::math {

/// Draws `n` points from the grid whose d-th dimension has
/// `level_counts[d]` discrete levels. Returns n rows of level indices.
///
/// Properties (tested):
///  * per dimension, the multiset of sampled levels is balanced: each level
///    appears either ⌊n/L⌋ or ⌈n/L⌉ times (L = level count);
///  * rows are deduplicated against each other when `unique` is true and the
///    grid has at least `n` distinct cells (resampling collisions by
///    re-pairing strata).
///
/// Throws std::invalid_argument if any dimension is empty or if `unique`
/// sampling is requested with fewer grid cells than samples.
[[nodiscard]] std::vector<std::vector<std::size_t>> latin_hypercube(
    const std::vector<std::size_t>& level_counts, std::size_t n,
    util::Rng& rng, bool unique = true);

}  // namespace lynceus::math

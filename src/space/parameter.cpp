#include "space/parameter.hpp"

#include <set>
#include <stdexcept>

#include "util/strings.hpp"

namespace lynceus::space {

std::string ParamDomain::label(std::size_t level) const {
  if (level >= values.size()) {
    throw std::out_of_range("ParamDomain::label: level out of range");
  }
  if (!labels.empty()) return labels[level];
  const double v = values[level];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return util::format("%lld", static_cast<long long>(v));
  }
  return util::format("%g", v);
}

void ParamDomain::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("ParamDomain: name must not be empty");
  }
  if (values.empty()) {
    throw std::invalid_argument("ParamDomain '" + name + "': no levels");
  }
  if (!labels.empty() && labels.size() != values.size()) {
    throw std::invalid_argument("ParamDomain '" + name +
                                "': labels/values size mismatch");
  }
  std::set<double> distinct(values.begin(), values.end());
  if (distinct.size() != values.size()) {
    throw std::invalid_argument("ParamDomain '" + name +
                                "': duplicate level values");
  }
}

ParamDomain numeric_param(std::string name, std::vector<double> values) {
  ParamDomain d;
  d.name = std::move(name);
  d.values = std::move(values);
  d.validate();
  return d;
}

ParamDomain categorical_param(std::string name,
                              std::vector<std::string> labels) {
  ParamDomain d;
  d.name = std::move(name);
  d.values.resize(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    d.values[i] = static_cast<double>(i);
  }
  d.labels = std::move(labels);
  d.categorical = true;
  d.validate();
  return d;
}

}  // namespace lynceus::space

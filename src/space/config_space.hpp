#pragma once

/// \file config_space.hpp
/// Discrete configuration spaces: the Cartesian grid of parameter domains,
/// optionally restricted by a validity predicate (e.g. "t2.xlarge clusters
/// only come in sizes 2–28", Table 2 of the paper; or per-job availability
/// masks, §5.1.2).
///
/// A configuration is identified by a dense `ConfigId` (index into the
/// enumeration of *valid* grid cells). The space pre-computes, for every
/// valid configuration, both its level-index vector (used by the tree model
/// for fast counting-based splits) and its numeric feature vector (used by
/// the GP and for reporting). Optimizers only ever handle `ConfigId`s,
/// which keeps their hot paths free of string handling.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "space/parameter.hpp"
#include "util/rng.hpp"

namespace lynceus::space {

using ConfigId = std::uint32_t;

/// One level index per dimension.
using LevelVector = std::vector<std::size_t>;

class ConfigSpace {
 public:
  using ValidityPredicate = std::function<bool(const LevelVector&)>;

  /// Builds the space and enumerates all valid cells. Throws
  /// std::invalid_argument if `dims` is empty, any domain is invalid, or
  /// the predicate rejects every cell.
  ConfigSpace(std::string name, std::vector<ParamDomain> dims,
              ValidityPredicate valid = nullptr);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t dim_count() const noexcept { return dims_.size(); }
  [[nodiscard]] const ParamDomain& dim(std::size_t d) const {
    return dims_.at(d);
  }
  [[nodiscard]] const std::vector<ParamDomain>& dims() const noexcept {
    return dims_;
  }

  /// Number of valid configurations.
  [[nodiscard]] std::size_t size() const noexcept { return levels_.size(); }

  /// Number of cells of the unrestricted Cartesian grid.
  [[nodiscard]] std::size_t grid_size() const noexcept { return grid_size_; }

  [[nodiscard]] const LevelVector& levels(ConfigId id) const {
    return levels_.at(id);
  }
  [[nodiscard]] const std::vector<double>& features(ConfigId id) const {
    return features_.at(id);
  }

  /// Numeric value of dimension `d` for configuration `id`.
  [[nodiscard]] double value(ConfigId id, std::size_t d) const {
    return features_.at(id).at(d);
  }

  /// "name=label, name=label, ..." rendering for reports.
  [[nodiscard]] std::string describe(ConfigId id) const;

  /// Finds the valid configuration with exactly these levels.
  [[nodiscard]] std::optional<ConfigId> find(const LevelVector& levels) const;

  /// The valid configuration nearest to `levels` under normalized
  /// level-index L1 distance (ties broken towards lower ids). Used to
  /// repair Latin-hypercube rows that land on invalid grid cells.
  [[nodiscard]] ConfigId nearest_valid(const LevelVector& levels) const;

  /// Draws `n` distinct configurations by discrete Latin Hypercube Sampling
  /// over the grid (paper §4.3, footnote 3), repairing invalid or duplicate
  /// rows to the nearest unused valid configuration. Throws
  /// std::invalid_argument if `n > size()`.
  [[nodiscard]] std::vector<ConfigId> lhs_sample(std::size_t n,
                                                 util::Rng& rng) const;

  /// All valid configuration ids (0, 1, ..., size()-1).
  [[nodiscard]] std::vector<ConfigId> all() const;

 private:
  std::string name_;
  std::vector<ParamDomain> dims_;
  std::size_t grid_size_ = 0;
  std::vector<LevelVector> levels_;             // per valid config
  std::vector<std::vector<double>> features_;   // per valid config
  std::vector<std::int64_t> cell_to_id_;        // grid cell -> id or -1

  [[nodiscard]] std::size_t cell_index(const LevelVector& levels) const;
};

}  // namespace lynceus::space

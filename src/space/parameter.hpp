#pragma once

/// \file parameter.hpp
/// A single tunable dimension of a configuration space: a named, finite,
/// ordered set of levels, each with a numeric value (used as the model
/// feature) and an optional human-readable label.
///
/// Examples from the paper: `learning_rate ∈ {1e-3, 1e-4, 1e-5}`,
/// `batch ∈ {16, 256}`, `training_mode ∈ {sync, async}` (Table 1),
/// `vm_type ∈ {t2.small … t2.2xlarge}` and worker count (Table 2).

#include <cstddef>
#include <string>
#include <vector>

namespace lynceus::space {

struct ParamDomain {
  std::string name;
  /// Numeric value of each level; this is the feature the regression model
  /// sees (paper §5.2: "the features of the samples in the training set are
  /// the number of worker VMs, the type of VM, and the values of each
  /// tuning parameter"). Categorical dimensions use ordinal codes, exactly
  /// as a numeric-encoded Weka attribute would.
  std::vector<double> values;
  /// Optional display labels, one per level (empty means "print the value").
  std::vector<std::string> labels;
  /// Categorical dimensions are documented as such (affects printing only;
  /// the tree model treats every dimension as ordinal, as in the paper).
  bool categorical = false;

  [[nodiscard]] std::size_t level_count() const noexcept {
    return values.size();
  }

  /// Label of a level, falling back to its numeric value.
  [[nodiscard]] std::string label(std::size_t level) const;

  /// Validates invariants (non-empty, labels consistent, distinct values).
  /// Throws std::invalid_argument on violation.
  void validate() const;
};

/// Convenience constructors.
[[nodiscard]] ParamDomain numeric_param(std::string name,
                                        std::vector<double> values);
[[nodiscard]] ParamDomain categorical_param(std::string name,
                                            std::vector<std::string> labels);

}  // namespace lynceus::space

#include "space/config_space.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "math/lhs.hpp"
#include "util/strings.hpp"

namespace lynceus::space {

ConfigSpace::ConfigSpace(std::string name, std::vector<ParamDomain> dims,
                         ValidityPredicate valid)
    : name_(std::move(name)), dims_(std::move(dims)) {
  if (dims_.empty()) {
    throw std::invalid_argument("ConfigSpace '" + name_ + "': no dimensions");
  }
  grid_size_ = 1;
  for (const auto& d : dims_) {
    d.validate();
    grid_size_ *= d.level_count();
  }

  cell_to_id_.assign(grid_size_, -1);
  LevelVector cursor(dims_.size(), 0);
  for (std::size_t cell = 0; cell < grid_size_; ++cell) {
    if (!valid || valid(cursor)) {
      cell_to_id_[cell] = static_cast<std::int64_t>(levels_.size());
      levels_.push_back(cursor);
      std::vector<double> f(dims_.size());
      for (std::size_t d = 0; d < dims_.size(); ++d) {
        f[d] = dims_[d].values[cursor[d]];
      }
      features_.push_back(std::move(f));
    }
    // Advance the mixed-radix cursor (last dimension fastest).
    for (std::size_t d = dims_.size(); d-- > 0;) {
      if (++cursor[d] < dims_[d].level_count()) break;
      cursor[d] = 0;
    }
  }

  if (levels_.empty()) {
    throw std::invalid_argument("ConfigSpace '" + name_ +
                                "': predicate rejects every cell");
  }
}

std::size_t ConfigSpace::cell_index(const LevelVector& levels) const {
  if (levels.size() != dims_.size()) {
    throw std::invalid_argument("ConfigSpace: level vector dimension mismatch");
  }
  std::size_t cell = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (levels[d] >= dims_[d].level_count()) {
      throw std::out_of_range("ConfigSpace: level index out of range");
    }
    cell = cell * dims_[d].level_count() + levels[d];
  }
  return cell;
}

std::string ConfigSpace::describe(ConfigId id) const {
  const LevelVector& lv = levels(id);
  std::vector<std::string> parts;
  parts.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    parts.push_back(dims_[d].name + "=" + dims_[d].label(lv[d]));
  }
  return util::join(parts, ", ");
}

std::optional<ConfigId> ConfigSpace::find(const LevelVector& levels) const {
  const std::int64_t id = cell_to_id_[cell_index(levels)];
  if (id < 0) return std::nullopt;
  return static_cast<ConfigId>(id);
}

ConfigId ConfigSpace::nearest_valid(const LevelVector& target) const {
  if (auto exact = find(target)) return *exact;
  double best = std::numeric_limits<double>::infinity();
  ConfigId best_id = 0;
  for (std::size_t id = 0; id < levels_.size(); ++id) {
    double dist = 0.0;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const double span =
          static_cast<double>(std::max<std::size_t>(dims_[d].level_count() - 1, 1));
      dist += std::fabs(static_cast<double>(levels_[id][d]) -
                        static_cast<double>(target[d])) /
              span;
    }
    if (dist < best) {
      best = dist;
      best_id = static_cast<ConfigId>(id);
    }
  }
  return best_id;
}

std::vector<ConfigId> ConfigSpace::lhs_sample(std::size_t n,
                                              util::Rng& rng) const {
  if (n > size()) {
    throw std::invalid_argument(
        "ConfigSpace::lhs_sample: more samples than valid configurations");
  }
  if (n == 0) return {};

  std::vector<std::size_t> level_counts(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    level_counts[d] = dims_[d].level_count();
  }
  // Uniqueness on the full grid is handled here (after validity repair),
  // so ask the sampler for raw, possibly-duplicated rows.
  const auto rows = math::latin_hypercube(level_counts, n, rng,
                                          /*unique=*/false);

  std::vector<ConfigId> out;
  out.reserve(n);
  std::set<ConfigId> used;
  for (const auto& row : rows) {
    ConfigId id = nearest_valid(row);
    if (used.count(id) > 0) {
      // Collision after repair: fall back to a random unused configuration,
      // preserving the sample count (the bootstrap budget accounting
      // depends on exactly N configurations being profiled).
      std::vector<ConfigId> unused;
      unused.reserve(size() - used.size());
      for (std::size_t cand = 0; cand < size(); ++cand) {
        if (used.count(static_cast<ConfigId>(cand)) == 0) {
          unused.push_back(static_cast<ConfigId>(cand));
        }
      }
      id = unused[static_cast<std::size_t>(rng.below(unused.size()))];
    }
    used.insert(id);
    out.push_back(id);
  }
  return out;
}

std::vector<ConfigId> ConfigSpace::all() const {
  std::vector<ConfigId> ids(size());
  for (std::size_t i = 0; i < size(); ++i) ids[i] = static_cast<ConfigId>(i);
  return ids;
}

}  // namespace lynceus::space

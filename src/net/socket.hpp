#pragma once

/// \file socket.hpp
/// Thin RAII + error-checked wrappers over the POSIX TCP calls the
/// network front-end needs (src/net/). No abstraction is attempted
/// beyond ownership and exceptions: the transport loops below work with
/// raw fds and poll(2) directly.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lynceus::net {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Owns one file descriptor; movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens on host:port (port 0 = ephemeral). Throws SocketError.
[[nodiscard]] Socket listen_tcp(const std::string& host, std::uint16_t port,
                                int backlog = 128);

/// Blocking connect to host:port. Throws SocketError.
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port);

/// The locally bound port of a socket (what an ephemeral bind got).
[[nodiscard]] std::uint16_t local_port(int fd);

void set_nonblocking(int fd, bool on);
/// Disables Nagle — the protocol is small request/reply frames where
/// coalescing only adds latency.
void set_nodelay(int fd);

}  // namespace lynceus::net

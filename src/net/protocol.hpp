#pragma once

/// \file protocol.hpp
/// The wire protocol of the network tuning service (src/net/): framing,
/// message codec, and the typed request/reply structures the transport
/// and service-loop threads exchange.
///
/// ## Framing
///
/// Every message is one frame: a 4-byte big-endian unsigned payload
/// length, then exactly that many bytes of UTF-8 JSON. A frame whose
/// declared length is zero or exceeds the receiver's `max_frame_bytes`
/// is a framing violation: the receiver replies with a typed `error`
/// frame (code "bad_frame") and closes the connection. Bytes that fail
/// to parse as JSON, parse deeper than util/json's 256-level nesting
/// bound, or form a JSON document that is not a valid protocol message
/// are equally fatal (code "bad_message"). A peer that disconnects
/// mid-frame is simply dropped — there is nothing left to reply to.
///
/// ## Messages
///
/// Client → server (every request carries a client-chosen `req` token,
/// echoed verbatim in the matching reply; `session` ids are
/// server-assigned and globally unique across shards):
///
///   {"type":"open","req":R,"spec":SPEC}
///       SPEC is a service::SessionSpec document (session_spec.hpp)
///       carrying a `problem` reference the server resolves against its
///       workload registry.                      reply: opened
///   {"type":"restore","req":R,"spec":SPEC,"snapshot":TEXT}
///       Reopens a snapshot (bare stepper snapshot or service-session
///       envelope) under a fresh id.             reply: opened
///   {"type":"tell","req":R,"session":S,"config":C,"result":RESULT}
///       One completed profiling run.            reply: told
///   {"type":"next_runs","req":R}
///       Nudges every shard to sweep its ready sessions (runs are pushed
///       unprompted after open/tell; this is for drivers that dropped
///       pushes, e.g. after restore).            reply: none
///   {"type":"snapshot","req":R,"session":S}     reply: snapshot
///   {"type":"result","req":R,"session":S}       reply: result
///   {"type":"close","req":R,"session":S}        reply: closed
///
/// Server → client:
///
///   {"type":"opened","req":R,"session":S}
///   {"type":"told","req":R,"session":S,"finished":B,"quarantined":B,
///    "stop_reason":TEXT}
///   {"type":"run","session":S,"config":C,"attempt":A,
///    "timeout_seconds":T?,"start_delay":D}      (pushed, no req)
///       One profiling run the client must execute and tell back — the
///       server never runs jobs itself; the remote driver owns the
///       cluster (or its replay table).
///   {"type":"snapshot","req":R,"session":S,"data":TEXT}
///   {"type":"result","req":R,"session":S,"finished":B,"quarantined":B,
///    "stop_reason":TEXT,"result":RESULT_DOC}
///   {"type":"closed","req":R,"session":S}
///   {"type":"error","req":R?,"code":TEXT,"message":TEXT,"fatal":B}
///       Codes: "bad_frame" (framing violation), "bad_message"
///       (unparseable or structurally invalid message), "bad_request"
///       (a well-formed request the service rejected: unknown session,
///       out-of-order tell, unresolvable problem reference, invalid
///       spec). All current errors are fatal: the server closes the
///       connection after sending, and every session owned by the
///       connection is closed.
///
/// Doubles cross the wire through JsonWriter::value_exact, so a result
/// told remotely is bit-identical to one told in process — the
/// determinism contract in tuning_server.hpp rests on this.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/types.hpp"
#include "service/session_spec.hpp"
#include "service/tuning_service.hpp"
#include "util/json.hpp"

namespace lynceus::net {

inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// A framing violation (zero-length or oversized declared payload). The
/// receiver reports `code` ("bad_frame") and closes the connection.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Prefixes `payload` with its 4-byte big-endian length.
[[nodiscard]] std::string encode_frame(const std::string& payload);

/// Incremental frame splitter for a byte-stream connection: feed() the
/// bytes read() returned, next() yields complete payloads. Throws
/// FrameError on a zero-length or oversized header — the connection is
/// then poisoned and must be closed (the internal cursor stops moving).
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t size);
  /// Extracts the next complete payload into `payload`; false when the
  /// buffered bytes do not yet hold a whole frame.
  bool next(std::string& payload);

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix of buffer_
};

/// A decoded client → server request.
struct Request {
  enum class Type { Open, Restore, Tell, NextRuns, Snapshot, Result, Close };

  Type type = Type::NextRuns;
  std::uint64_t req = 0;
  std::uint64_t session = 0;       ///< tell / snapshot / result / close
  core::ConfigId config = 0;       ///< tell
  core::RunResult result;          ///< tell
  service::SessionSpec spec;       ///< open / restore
  std::string snapshot;            ///< restore
};

/// Parses one request payload. Throws std::runtime_error (including
/// util/json parse errors) on anything structurally invalid — the
/// transport maps that to a fatal "bad_message" error reply.
[[nodiscard]] Request parse_request(const std::string& payload);

/// A decoded server → client message.
struct ServerMessage {
  enum class Type { Opened, Told, Run, Snapshot, Result, Closed, Error };

  Type type = Type::Error;
  std::uint64_t req = 0;
  std::uint64_t session = 0;
  // told / result
  bool finished = false;
  bool quarantined = false;
  std::string stop_reason;
  // run
  service::PendingRun run;  ///< .session carries the wire session id
  // snapshot
  std::string data;
  // result
  core::OptimizerResult result;
  // error
  std::string code;
  std::string message;
  bool fatal = false;
};

[[nodiscard]] ServerMessage parse_server_message(const std::string& payload);

// --- Reply encoders (payloads; wrap with encode_frame before writing).

[[nodiscard]] std::string encode_open(std::uint64_t req,
                                      const service::SessionSpec& spec);
[[nodiscard]] std::string encode_restore(std::uint64_t req,
                                         const service::SessionSpec& spec,
                                         const std::string& snapshot);
[[nodiscard]] std::string encode_tell(std::uint64_t req, std::uint64_t session,
                                      core::ConfigId config,
                                      const core::RunResult& result);
[[nodiscard]] std::string encode_next_runs(std::uint64_t req);
[[nodiscard]] std::string encode_snapshot_request(std::uint64_t req,
                                                  std::uint64_t session);
[[nodiscard]] std::string encode_result_request(std::uint64_t req,
                                                std::uint64_t session);
[[nodiscard]] std::string encode_close(std::uint64_t req,
                                       std::uint64_t session);

[[nodiscard]] std::string encode_opened(std::uint64_t req,
                                        std::uint64_t session);
[[nodiscard]] std::string encode_told(std::uint64_t req, std::uint64_t session,
                                      bool finished, bool quarantined,
                                      const std::string& stop_reason);
/// `run.session` must already hold the wire (global) session id.
[[nodiscard]] std::string encode_run(const service::PendingRun& run);
[[nodiscard]] std::string encode_snapshot_reply(std::uint64_t req,
                                                std::uint64_t session,
                                                const std::string& data);
[[nodiscard]] std::string encode_result_reply(
    std::uint64_t req, std::uint64_t session, bool finished, bool quarantined,
    const std::string& stop_reason, const core::OptimizerResult& result);
[[nodiscard]] std::string encode_closed(std::uint64_t req,
                                        std::uint64_t session);
[[nodiscard]] std::string encode_error(std::uint64_t req,
                                       const std::string& code,
                                       const std::string& message, bool fatal);

// --- Shared sub-codecs (bit-exact doubles).

void run_result_to_json(util::JsonWriter& w, const core::RunResult& r);
[[nodiscard]] core::RunResult run_result_from_json(const util::JsonValue& v);

void optimizer_result_to_json(util::JsonWriter& w,
                              const core::OptimizerResult& r);
[[nodiscard]] core::OptimizerResult optimizer_result_from_json(
    const util::JsonValue& v);

}  // namespace lynceus::net

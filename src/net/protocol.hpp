#pragma once

/// \file protocol.hpp
/// The wire protocol of the network tuning service (src/net/): framing,
/// message codec, and the typed request/reply structures the transport
/// and service-loop threads exchange.
///
/// ## Framing
///
/// Every message is one frame: a 4-byte big-endian unsigned payload
/// length, then exactly that many bytes of body. A frame whose
/// declared length is zero or exceeds the receiver's `max_frame_bytes`
/// is a framing violation: the receiver replies with a typed `error`
/// frame (code "bad_frame") and closes the connection. The body is
/// UTF-8 JSON by default, or the compact binary encoding below once a
/// connection has negotiated it. Bytes that fail to parse as JSON,
/// parse deeper than util/json's 256-level nesting bound, fail to
/// decode as a binary message, or form a document that is not a valid
/// protocol message are equally fatal (code "bad_message"). A peer that
/// disconnects mid-frame is simply dropped — there is nothing left to
/// reply to.
///
/// ## Negotiation handshake
///
/// A connection starts in JSON. A client that wants the binary body (or
/// an explicit version check) sends a `hello` as its very FIRST frame:
///
///   {"type":"hello","req":R,"version":1,
///    "encodings":["binary","json"]}            (preference order)
///
/// The server answers in JSON with its pick — the first offered
/// encoding it is configured to speak:
///
///   {"type":"hello","req":R,"version":1,"encoding":"binary"}
///
/// and every subsequent frame in BOTH directions uses the chosen
/// encoding. A first frame that is not a hello fixes the connection to
/// JSON forever (the pre-negotiation protocol — old clients keep
/// working unchanged). Negotiation failures are fatal typed errors with
/// code "bad_negotiation": an unsupported `version`, an offer with no
/// encoding the server accepts, a hello on a server configured
/// binary-only when the client never negotiated, and a hello arriving
/// after the first frame (negotiation replay).
///
/// ## Binary frame grammar
///
/// The negotiated binary body (encoding "binary", kProtocolVersion = 1)
/// is a tag byte followed by fields in a fixed per-type order.
/// Primitives:
///
///   varint  := LEB128 unsigned (7 bits/byte, high bit = continue;
///              at most 10 bytes — a longer or truncated varint is a
///              fatal decode error)
///   double  := 8 bytes, IEEE-754 bit pattern little-endian (bit-exact:
///              the binary twin of JsonWriter::value_exact; +infinity
///              needs no omission trick here)
///   bool    := 1 byte, 0 or 1 (anything else is a decode error)
///   bytes   := varint length, then that many raw bytes
///
/// Requests (client → server; tag in parentheses):
///
///   open     (0x01) req:varint spec:bytes            spec = SPEC JSON
///   restore  (0x02) req:varint spec:bytes snapshot:bytes
///   tell     (0x03) req:varint session:varint config:varint
///                   result:RunResult
///   next_runs(0x04) req:varint
///   snapshot (0x05) req:varint session:varint
///   result   (0x06) req:varint session:varint
///   close    (0x07) req:varint session:varint
///
/// Server messages (tag = request tag | 0x80):
///
///   opened   (0x81) req session
///   told     (0x82) req session finished:bool quarantined:bool
///                   stop_reason:bytes
///   run      (0x83) session:varint config:varint attempt:varint
///                   timeout_seconds:double start_delay:double
///   snapshot (0x84) req session data:bytes
///   result   (0x85) req session finished quarantined stop_reason:bytes
///                   result:OptimizerResult
///   closed   (0x86) req session
///   error    (0x87) req code:bytes message:bytes fatal:bool
///
///   RunResult       := runtime_seconds:double cost:double
///                      timed_out:bool outcome:u8(0 ok|1 failed|
///                      2 timed_out) metrics:varint-count double*
///   OptimizerResult := has_recommendation:bool [recommendation:varint]
///                      recommendation_feasible:bool
///                      history:varint-count {id:varint runtime:double
///                        cost:double feasible:bool}*
///                      failures:varint-count {id:varint cost:double
///                        after_samples:varint}*
///                      budget_spent:double
///                      budget_spent_on_failures:double
///                      decision_seconds:double decisions:varint
///
/// Session specs and stepper snapshots stay JSON *documents* carried as
/// `bytes` — they cross the wire once per session (cold path) and their
/// JSON codecs are the determinism-pinned ones. An unknown tag, a
/// truncated field, or trailing bytes after a complete message are all
/// fatal "bad_message" errors. Hellos never appear in binary — by the
/// time binary is active, negotiation is over.
///
/// ## Messages
///
/// Client → server (every request carries a client-chosen `req` token,
/// echoed verbatim in the matching reply; `session` ids are
/// server-assigned and globally unique across shards):
///
///   {"type":"open","req":R,"spec":SPEC}
///       SPEC is a service::SessionSpec document (session_spec.hpp)
///       carrying a `problem` reference the server resolves against its
///       workload registry.                      reply: opened
///   {"type":"restore","req":R,"spec":SPEC,"snapshot":TEXT}
///       Reopens a snapshot (bare stepper snapshot or service-session
///       envelope) under a fresh id.             reply: opened
///   {"type":"tell","req":R,"session":S,"config":C,"result":RESULT}
///       One completed profiling run.            reply: told
///   {"type":"next_runs","req":R}
///       Nudges every shard to sweep its ready sessions (runs are pushed
///       unprompted after open/tell; this is for drivers that dropped
///       pushes, e.g. after restore).            reply: none
///   {"type":"snapshot","req":R,"session":S}     reply: snapshot
///   {"type":"result","req":R,"session":S}       reply: result
///   {"type":"close","req":R,"session":S}        reply: closed
///
/// Server → client:
///
///   {"type":"opened","req":R,"session":S}
///   {"type":"told","req":R,"session":S,"finished":B,"quarantined":B,
///    "stop_reason":TEXT}
///   {"type":"run","session":S,"config":C,"attempt":A,
///    "timeout_seconds":T?,"start_delay":D}      (pushed, no req)
///       One profiling run the client must execute and tell back — the
///       server never runs jobs itself; the remote driver owns the
///       cluster (or its replay table).
///   {"type":"snapshot","req":R,"session":S,"data":TEXT}
///   {"type":"result","req":R,"session":S,"finished":B,"quarantined":B,
///    "stop_reason":TEXT,"result":RESULT_DOC}
///   {"type":"closed","req":R,"session":S}
///   {"type":"error","req":R?,"code":TEXT,"message":TEXT,"fatal":B}
///       Codes: "bad_frame" (framing violation), "bad_message"
///       (unparseable or structurally invalid message), "bad_request"
///       (a well-formed request the service rejected: unknown session,
///       out-of-order tell, unresolvable problem reference, invalid
///       spec), "bad_negotiation" (hello handshake rejected — see the
///       negotiation section above). All current errors are fatal: the
///       server closes the connection after sending, and every session
///       owned by the connection is closed.
///
/// Doubles cross the wire through JsonWriter::value_exact, so a result
/// told remotely is bit-identical to one told in process — the
/// determinism contract in tuning_server.hpp rests on this.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "service/session_spec.hpp"
#include "service/tuning_service.hpp"
#include "util/json.hpp"

namespace lynceus::net {

inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Protocol version carried by the hello handshake. A hello with any
/// other version is rejected with "bad_negotiation".
inline constexpr std::uint64_t kProtocolVersion = 1;

/// The two negotiable frame-body encodings (see the handshake and
/// binary grammar sections above). JSON is the pre-negotiation default;
/// binary is opted into by the first frame. net/binary_codec.hpp holds
/// the binary implementation plus encoding-dispatching helpers.
enum class WireEncoding : std::uint8_t { kJson = 0, kBinary = 1 };

/// "json" / "binary" — the hello handshake's names for WireEncoding.
[[nodiscard]] const char* wire_encoding_name(WireEncoding e) noexcept;
/// Inverse of wire_encoding_name; empty optional-style contract via
/// bool return (the name may come off the wire or a CLI flag).
[[nodiscard]] bool wire_encoding_from_name(const std::string& name,
                                           WireEncoding& out) noexcept;

/// A framing violation (zero-length or oversized declared payload). The
/// receiver reports `code` ("bad_frame") and closes the connection.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Prefixes `payload` with its 4-byte big-endian length.
[[nodiscard]] std::string encode_frame(const std::string& payload);

/// Incremental frame splitter for a byte-stream connection: feed() the
/// bytes read() returned, next() yields complete payloads. Throws
/// FrameError on a zero-length or oversized header — the connection is
/// then poisoned and must be closed (the internal cursor stops moving).
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t size);
  /// Extracts the next complete payload into `payload`; false when the
  /// buffered bytes do not yet hold a whole frame.
  bool next(std::string& payload);

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix of buffer_
};

/// A decoded client → server request.
struct Request {
  enum class Type {
    Hello,
    Open,
    Restore,
    Tell,
    NextRuns,
    Snapshot,
    Result,
    Close
  };

  Type type = Type::NextRuns;
  std::uint64_t req = 0;
  std::uint64_t session = 0;       ///< tell / snapshot / result / close
  core::ConfigId config = 0;       ///< tell
  core::RunResult result;          ///< tell
  service::SessionSpec spec;       ///< open / restore
  std::string snapshot;            ///< restore
  // hello (always JSON — negotiation precedes any binary frame)
  std::uint64_t version = 0;
  std::vector<std::string> encodings;  ///< offered, preference order
};

/// Parses one request payload. Throws std::runtime_error (including
/// util/json parse errors) on anything structurally invalid — the
/// transport maps that to a fatal "bad_message" error reply.
[[nodiscard]] Request parse_request(const std::string& payload);

/// A decoded server → client message.
struct ServerMessage {
  enum class Type { Hello, Opened, Told, Run, Snapshot, Result, Closed, Error };

  Type type = Type::Error;
  std::uint64_t req = 0;
  std::uint64_t session = 0;
  // hello reply
  std::uint64_t version = 0;
  std::string encoding;  ///< the server's pick ("json" | "binary")
  // told / result
  bool finished = false;
  bool quarantined = false;
  std::string stop_reason;
  // run
  service::PendingRun run;  ///< .session carries the wire session id
  // snapshot
  std::string data;
  // result
  core::OptimizerResult result;
  // error
  std::string code;
  std::string message;
  bool fatal = false;
};

[[nodiscard]] ServerMessage parse_server_message(const std::string& payload);

// --- Reply encoders (payloads; wrap with encode_frame before writing).

/// The negotiation handshake (JSON on both sides, by definition).
[[nodiscard]] std::string encode_hello_request(
    std::uint64_t req, std::uint64_t version,
    const std::vector<std::string>& encodings);
[[nodiscard]] std::string encode_hello_reply(std::uint64_t req,
                                             std::uint64_t version,
                                             const std::string& encoding);

[[nodiscard]] std::string encode_open(std::uint64_t req,
                                      const service::SessionSpec& spec);
[[nodiscard]] std::string encode_restore(std::uint64_t req,
                                         const service::SessionSpec& spec,
                                         const std::string& snapshot);
[[nodiscard]] std::string encode_tell(std::uint64_t req, std::uint64_t session,
                                      core::ConfigId config,
                                      const core::RunResult& result);
[[nodiscard]] std::string encode_next_runs(std::uint64_t req);
[[nodiscard]] std::string encode_snapshot_request(std::uint64_t req,
                                                  std::uint64_t session);
[[nodiscard]] std::string encode_result_request(std::uint64_t req,
                                                std::uint64_t session);
[[nodiscard]] std::string encode_close(std::uint64_t req,
                                       std::uint64_t session);

[[nodiscard]] std::string encode_opened(std::uint64_t req,
                                        std::uint64_t session);
[[nodiscard]] std::string encode_told(std::uint64_t req, std::uint64_t session,
                                      bool finished, bool quarantined,
                                      const std::string& stop_reason);
/// `run.session` must already hold the wire (global) session id.
[[nodiscard]] std::string encode_run(const service::PendingRun& run);
[[nodiscard]] std::string encode_snapshot_reply(std::uint64_t req,
                                                std::uint64_t session,
                                                const std::string& data);
[[nodiscard]] std::string encode_result_reply(
    std::uint64_t req, std::uint64_t session, bool finished, bool quarantined,
    const std::string& stop_reason, const core::OptimizerResult& result);
[[nodiscard]] std::string encode_closed(std::uint64_t req,
                                        std::uint64_t session);
[[nodiscard]] std::string encode_error(std::uint64_t req,
                                       const std::string& code,
                                       const std::string& message, bool fatal);

// --- Shared sub-codecs (bit-exact doubles).

void run_result_to_json(util::JsonWriter& w, const core::RunResult& r);
[[nodiscard]] core::RunResult run_result_from_json(const util::JsonValue& v);

void optimizer_result_to_json(util::JsonWriter& w,
                              const core::OptimizerResult& r);
[[nodiscard]] core::OptimizerResult optimizer_result_from_json(
    const util::JsonValue& v);

}  // namespace lynceus::net

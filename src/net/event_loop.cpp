#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

namespace lynceus::net {

namespace {

[[noreturn]] void die(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

#ifdef __linux__

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) die("epoll_create1");
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

namespace {

epoll_event make_ev(std::uint64_t data, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) |
              EPOLLRDHUP;
  ev.data.u64 = data;
  return ev;
}

}  // namespace

void EventLoop::add(int fd, std::uint64_t data, bool want_read,
                    bool want_write) {
  epoll_event ev = make_ev(data, want_read, want_write);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) die("epoll_ctl add");
}

void EventLoop::modify(int fd, std::uint64_t data, bool want_read,
                       bool want_write) {
  epoll_event ev = make_ev(data, want_read, want_write);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) die("epoll_ctl mod");
}

void EventLoop::remove(int fd) {
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    die("epoll_ctl del");
  }
}

std::size_t EventLoop::wait(int timeout_ms) {
  constexpr std::size_t kMaxEvents = 256;
  if (raw_.size() < kMaxEvents * sizeof(epoll_event)) {
    raw_.resize(kMaxEvents * sizeof(epoll_event));
  }
  auto* evs = reinterpret_cast<epoll_event*>(raw_.data());
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, evs, static_cast<int>(kMaxEvents), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) die("epoll_wait");
  events_.clear();
  for (int i = 0; i < n; ++i) {
    Event e;
    e.data = evs[i].data.u64;
    e.readable = (evs[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0;
    e.writable = (evs[i].events & EPOLLOUT) != 0;
    e.broken = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    events_.push_back(e);
  }
  return events_.size();
}

WakeupFd::WakeupFd() {
  const int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd < 0) die("eventfd");
  read_fd_ = write_fd_ = fd;
}

WakeupFd::~WakeupFd() {
  if (read_fd_ >= 0) ::close(read_fd_);
}

void WakeupFd::notify(bool force) noexcept {
  if (!take_ring(force)) return;  // consumer awake: it will sweep lanes
  const std::uint64_t one = 1;
  // EAGAIN means the counter is saturated — the loop is already awake.
  [[maybe_unused]] ssize_t rc = ::write(write_fd_, &one, sizeof(one));
}

void WakeupFd::drain() noexcept {
  std::uint64_t count;
  [[maybe_unused]] ssize_t rc = ::read(read_fd_, &count, sizeof(count));
}

#else  // poll(2) fallback

EventLoop::EventLoop() = default;
EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint64_t data, bool want_read,
                    bool want_write) {
  interests_.push_back(Interest{fd, data, want_read, want_write});
}

void EventLoop::modify(int fd, std::uint64_t data, bool want_read,
                       bool want_write) {
  for (Interest& in : interests_) {
    if (in.fd == fd) {
      in = Interest{fd, data, want_read, want_write};
      return;
    }
  }
  throw std::runtime_error("EventLoop::modify: fd not registered");
}

void EventLoop::remove(int fd) {
  for (std::size_t i = 0; i < interests_.size(); ++i) {
    if (interests_[i].fd == fd) {
      interests_.erase(interests_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  throw std::runtime_error("EventLoop::remove: fd not registered");
}

std::size_t EventLoop::wait(int timeout_ms) {
  if (raw_.size() < interests_.size() * sizeof(pollfd)) {
    raw_.resize(interests_.size() * sizeof(pollfd));
  }
  auto* pfds = reinterpret_cast<pollfd*>(raw_.data());
  for (std::size_t i = 0; i < interests_.size(); ++i) {
    pfds[i].fd = interests_[i].fd;
    pfds[i].events = static_cast<short>(
        (interests_[i].want_read ? POLLIN : 0) |
        (interests_[i].want_write ? POLLOUT : 0));
    pfds[i].revents = 0;
  }
  int n;
  do {
    n = ::poll(pfds, static_cast<nfds_t>(interests_.size()), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) die("poll");
  events_.clear();
  for (std::size_t i = 0; i < interests_.size() && n > 0; ++i) {
    if (pfds[i].revents == 0) continue;
    Event e;
    e.data = interests_[i].data;
    e.readable = (pfds[i].revents & (POLLIN | POLLHUP)) != 0;
    e.writable = (pfds[i].revents & POLLOUT) != 0;
    e.broken = (pfds[i].revents & (POLLERR | POLLNVAL | POLLHUP)) != 0;
    events_.push_back(e);
  }
  return events_.size();
}

WakeupFd::WakeupFd() {
  int fds[2];
  if (::pipe(fds) != 0) die("pipe");
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  ::fcntl(read_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(write_fd_, F_SETFL, O_NONBLOCK);
}

WakeupFd::~WakeupFd() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
}

void WakeupFd::notify(bool force) noexcept {
  if (!take_ring(force)) return;  // consumer awake: it will sweep lanes
  const char one = 1;
  [[maybe_unused]] ssize_t rc = ::write(write_fd_, &one, 1);
}

void WakeupFd::drain() noexcept {
  char buf[256];
  while (::read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

#endif

}  // namespace lynceus::net

#pragma once

/// \file tuning_client.hpp
/// Blocking driver-side client for the network tuning service: one TCP
/// connection, any number of sessions. `net::TuningClient` owns the
/// socket, frames/unframes protocol messages, and buffers server-pushed
/// `run` frames that arrive while a request/reply round trip is in
/// flight (the server pushes runs unprompted after open and tell).
///
/// The client is intentionally synchronous — the remote driver's job is
/// "execute the run the server asked for, tell the result back", which
/// is a loop, not an event system. drain() implements that loop against
/// an eval::AsyncTableRunner for replayed datasets; real cluster drivers
/// use take_run()/tell() directly. Not thread-safe: one client per
/// driver thread (sessions of one client may still land on different
/// server shards).
///
/// Any server `error` frame surfaces as a thrown ProtocolError carrying
/// the typed code; since all current server errors are fatal, the
/// connection is unusable afterwards. A server that hangs up mid-read
/// raises SocketError.
///
/// By default the constructor negotiates the compact binary frame body
/// (the hello handshake of net/protocol.hpp) and falls back to JSON
/// against servers that only speak JSON. WireMode::kJson skips the
/// handshake entirely (legacy behavior); WireMode::kBinary offers only
/// binary, so a JSON-only server rejects the connection with a typed
/// "bad_negotiation" ProtocolError instead of a silent disconnect.
/// Negotiation never moves a trajectory byte — both encodings carry
/// doubles bit-exactly.

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

#include "core/types.hpp"
#include "eval/runner.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/session_spec.hpp"

namespace lynceus::net {

/// A typed `error` frame from the server.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(code + ": " + message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

class TuningClient {
 public:
  /// How the constructor settles the frame-body encoding.
  enum class WireMode {
    /// No hello handshake; plain JSON frames (legacy servers).
    kJson,
    /// Offer binary then JSON; accept whatever the server picks.
    kNegotiate,
    /// Offer only binary; a server that cannot (or will not) speak it
    /// rejects with a "bad_negotiation" ProtocolError.
    kBinary,
  };

  struct TellStatus {
    bool finished = false;
    bool quarantined = false;
    std::string stop_reason;
  };

  struct ResultReply {
    core::OptimizerResult result;
    bool finished = false;
    bool quarantined = false;
    std::string stop_reason;
  };

  TuningClient(const std::string& host, std::uint16_t port,
               std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
               WireMode wire = WireMode::kNegotiate);

  /// The encoding the connection settled on (kJson until/unless the
  /// handshake picked binary).
  [[nodiscard]] WireEncoding encoding() const noexcept { return enc_; }

  /// Opens a session; returns its wire (server-global) id. The spec must
  /// carry a `problem_ref` the server can resolve (an in-process
  /// `problem` pointer never crosses the wire).
  std::uint64_t open(const service::SessionSpec& spec);

  /// Reopens a snapshot under a fresh id (and nudges the server to
  /// re-push the restored session's outstanding runs).
  std::uint64_t restore(const service::SessionSpec& spec,
                        const std::string& snapshot);

  /// Reports one completed run; blocks for the `told` reply.
  TellStatus tell(std::uint64_t session, core::ConfigId config,
                  const core::RunResult& result);

  /// The session's snapshot_session() envelope.
  std::string snapshot(std::uint64_t session);

  ResultReply result(std::uint64_t session);

  void close_session(std::uint64_t session);

  /// Pops a buffered server-pushed run if one is available; when
  /// `wait`, blocks reading the socket until one arrives.
  std::optional<service::PendingRun> take_run(bool wait = false);

  /// Drives every open session of this client to completion against a
  /// replayed dataset: submit pushed runs to `runner`, tell completions
  /// back, repeat. Returns when every session is finished / quarantined /
  /// closed — or, mirroring service::drain(), when only forever-hung runs
  /// remain in flight (those sessions stay unfinished).
  void drain(eval::AsyncTableRunner& runner);

  /// Sessions opened on this client and not yet terminal.
  [[nodiscard]] const std::set<std::uint64_t>& active_sessions() const
      noexcept {
    return active_;
  }

  // --- Low-level escape hatches (protocol hardening tests) ---

  /// Writes raw bytes, bypassing framing entirely.
  void send_raw(const std::string& bytes);
  /// Blocking read of the next server message (pushed runs included — not
  /// buffered). Throws SocketError when the server closes the connection.
  ServerMessage read_message();
  /// True once recv() reported EOF (server closed the connection).
  [[nodiscard]] bool server_closed() const noexcept { return eof_; }

 private:
  /// Sends one framed payload.
  void send_payload(const std::string& payload);
  /// Reads messages (buffering pushed runs) until a non-`run` message
  /// carrying `req` arrives; throws ProtocolError on an `error` frame.
  ServerMessage await_reply(std::uint64_t req);

  Socket sock_;
  FrameAssembler frames_;
  WireEncoding enc_ = WireEncoding::kJson;
  std::uint64_t next_req_ = 1;
  std::deque<service::PendingRun> runs_;
  std::set<std::uint64_t> active_;
  bool eof_ = false;
};

}  // namespace lynceus::net

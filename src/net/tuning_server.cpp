#include "net/tuning_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "cloud/workloads.hpp"
#include "eval/experiment.hpp"
#include "service/tuning_service.hpp"
#include "util/json.hpp"

namespace lynceus::net {

namespace {

/// Keys for the problem registry; '\n' cannot appear in JSON string
/// values that reach us unescaped, so it is a safe separator.
std::string registry_key(const std::string& suite, const std::string& job) {
  return suite + '\n' + job;
}

std::string bundled_key(const std::string& suite, const std::string& job,
                        double b) {
  util::JsonWriter w;  // bit-exact double, reused as a map key
  w.value_exact(b);
  return suite + '\n' + job + '\n' + w.str();
}

}  // namespace

TuningServer::TuningServer() : TuningServer(Options{}) {}

TuningServer::TuningServer(Options options) : options_(std::move(options)) {
  if (options_.shards == 0) {
    throw std::invalid_argument("TuningServer: shards must be >= 1");
  }
  if (options_.lane_capacity == 0) {
    throw std::invalid_argument("TuningServer: lane_capacity must be >= 1");
  }
  options_.run_policy.validate();
  listener_ = listen_tcp(options_.host, options_.port);
  set_nonblocking(listener_.fd(), true);
  port_ = local_port(listener_.fd());

  const std::size_t k = options_.shards;
  accept_lanes_.reserve(k);
  request_lanes_.resize(k);
  reply_lanes_.resize(k);
  for (std::size_t t = 0; t < k; ++t) {
    accept_lanes_.push_back(
        std::make_unique<util::SpscQueue<NewConn>>(options_.lane_capacity));
    request_lanes_[t].reserve(k);
    reply_lanes_[t].reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      request_lanes_[t].push_back(std::make_unique<util::SpscQueue<ShardRequest>>(
          options_.lane_capacity));
      reply_lanes_[t].push_back(std::make_unique<util::SpscQueue<TransportReply>>(
          options_.lane_capacity));
    }
  }
  shard_opened_ = std::make_unique<std::atomic<std::size_t>[]>(k);
  for (std::size_t s = 0; s < k; ++s) shard_opened_[s].store(0);

  threads_.reserve(2 * k + 1);
  for (std::size_t s = 0; s < k; ++s) {
    threads_.emplace_back([this, s] { shard_loop(s); });
  }
  for (std::size_t t = 0; t < k; ++t) {
    threads_.emplace_back([this, t] { transport_loop(t); });
  }
  threads_.emplace_back([this] { acceptor_loop(); });
}

TuningServer::~TuningServer() { stop(); }

void TuningServer::stop() {
  if (stop_.exchange(true)) {
    return;
  }
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
  listener_.close();
}

std::vector<std::size_t> TuningServer::shard_session_counts() const {
  std::vector<std::size_t> counts(options_.shards, 0);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    counts[s] = shard_opened_[s].load();
  }
  return counts;
}

void TuningServer::register_problem(const std::string& suite,
                                    const std::string& job,
                                    core::OptimizationProblem problem) {
  problem.validate();
  std::lock_guard<std::mutex> lock(problems_mutex_);
  problems_[registry_key(suite, job)] =
      std::make_unique<core::OptimizationProblem>(std::move(problem));
}

const core::OptimizationProblem* TuningServer::resolve_problem(
    const service::SessionSpec& spec) {
  if (spec.problem != nullptr) {
    return spec.problem;
  }
  const service::ProblemRef& ref = spec.problem_ref;
  if (ref.empty()) {
    throw std::invalid_argument(
        "spec carries neither an in-process problem nor a problem reference");
  }
  std::lock_guard<std::mutex> lock(problems_mutex_);
  auto it = problems_.find(registry_key(ref.suite, ref.job));
  if (it != problems_.end()) {
    return it->second.get();
  }
  if (!options_.bundled_workloads) {
    throw std::invalid_argument("unknown problem '" + ref.suite + "/" +
                                ref.job + "' (bundled workloads disabled)");
  }
  const std::string key = bundled_key(ref.suite, ref.job, ref.budget_multiplier);
  it = problems_.find(key);
  if (it != problems_.end()) {
    return it->second.get();
  }
  std::vector<cloud::Dataset> datasets;
  if (ref.suite == "tf" || ref.suite == "tensorflow") {
    datasets = cloud::make_tensorflow_datasets();
  } else if (ref.suite == "scout") {
    datasets = cloud::make_scout_datasets();
  } else if (ref.suite == "cherrypick") {
    datasets = cloud::make_cherrypick_datasets();
  } else {
    throw std::invalid_argument("unknown workload suite '" + ref.suite + "'");
  }
  for (const cloud::Dataset& ds : datasets) {
    if (ds.job_name() == ref.job) {
      auto built = std::make_unique<core::OptimizationProblem>(
          eval::make_problem(ds, ref.budget_multiplier));
      const core::OptimizationProblem* out = built.get();
      problems_[key] = std::move(built);
      return out;
    }
  }
  throw std::invalid_argument("suite '" + ref.suite + "' has no job named '" +
                              ref.job + "'");
}

// --- Acceptor ---------------------------------------------------------------

void TuningServer::acceptor_loop() {
  std::uint64_t next_conn = 0;
  pollfd pfd{};
  pfd.fd = listener_.fd();
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_relaxed)) {
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 50);
    if (rc <= 0) continue;
    for (;;) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN / transient: poll again
      const std::uint64_t id = next_conn++;
      NewConn nc{fd, id};
      util::SpscQueue<NewConn>& lane = *accept_lanes_[id % options_.shards];
      util::Backoff backoff;
      while (!lane.try_push(NewConn(nc))) {
        if (stop_.load(std::memory_order_relaxed)) {
          ::close(fd);
          return;
        }
        backoff.spin();
      }
    }
  }
}

// --- Transport --------------------------------------------------------------

namespace {

/// Per-connection transport state: raw socket, incremental frame
/// assembler, pending output.
struct Conn {
  std::uint64_t id = 0;
  Socket sock;
  FrameAssembler frames;
  std::string outbuf;
  std::size_t out_off = 0;
  /// A fatal error reply is queued: flush outbuf, then close. No further
  /// input is read or decoded.
  bool closing = false;
  /// Ready to reap (peer hung up or flush finished a `closing` conn).
  bool dead = false;

  explicit Conn(std::uint64_t id_, int fd, std::size_t max_frame)
      : id(id_), sock(fd), frames(max_frame) {}

  [[nodiscard]] bool wants_write() const noexcept {
    return out_off < outbuf.size();
  }

  void queue(const std::string& frame) {
    if (out_off == outbuf.size()) {
      outbuf.clear();
      out_off = 0;
    }
    outbuf.append(frame);
  }
};

}  // namespace

void TuningServer::transport_loop(std::size_t t) {
  const std::size_t k = options_.shards;
  std::unordered_map<std::uint64_t, Conn> conns;
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;  // parallel to pfds

  // Blocking push to a request lane; gives up only on server stop.
  auto push_request = [&](std::size_t shard, ShardRequest&& req) {
    util::SpscQueue<ShardRequest>& lane = *request_lanes_[t][shard];
    util::Backoff backoff;
    while (!lane.try_push(std::move(req))) {
      if (stop_.load(std::memory_order_relaxed)) return;
      backoff.spin();
    }
  };

  auto notify_conn_closed = [&](std::uint64_t conn_id) {
    for (std::size_t s = 0; s < k; ++s) {
      ShardRequest req;
      req.kind = ShardRequest::Kind::ConnClosed;
      req.conn = conn_id;
      push_request(s, std::move(req));
    }
  };

  // Decodes one frame payload and routes it; on a malformed message,
  // queues a fatal error reply and marks the connection closing.
  auto handle_payload = [&](Conn& c, const std::string& payload) {
    Request request;
    try {
      request = parse_request(payload);
    } catch (const std::exception& e) {
      c.queue(encode_frame(encode_error(0, "bad_message", e.what(), true)));
      c.closing = true;
      return;
    }
    ShardRequest sr;
    sr.kind = ShardRequest::Kind::Request;
    sr.conn = c.id;
    switch (request.type) {
      case Request::Type::Open:
      case Request::Type::Restore: {
        // Allocate the global id here so the request can route to its
        // owning shard; the shard maps it to its local service id.
        sr.global_session = next_session_.fetch_add(1);
        const std::size_t shard = sr.global_session % k;
        sr.request = std::move(request);
        push_request(shard, std::move(sr));
        return;
      }
      case Request::Type::Tell:
      case Request::Type::Snapshot:
      case Request::Type::Result:
      case Request::Type::Close: {
        const std::size_t shard = request.session % k;
        sr.request = std::move(request);
        push_request(shard, std::move(sr));
        return;
      }
      case Request::Type::NextRuns: {
        for (std::size_t s = 0; s < k; ++s) {
          ShardRequest copy;
          copy.kind = ShardRequest::Kind::Request;
          copy.conn = c.id;
          copy.request = request;
          push_request(s, std::move(copy));
        }
        return;
      }
    }
  };

  auto read_conn = [&](Conn& c) {
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        c.frames.feed(buf, static_cast<std::size_t>(n));
        std::string payload;
        try {
          while (!c.closing && c.frames.next(payload)) {
            handle_payload(c, payload);
          }
        } catch (const FrameError& e) {
          c.queue(encode_frame(encode_error(0, "bad_frame", e.what(), true)));
          c.closing = true;
        }
        if (c.closing) return;
        continue;
      }
      if (n == 0) {  // peer closed; nothing left to reply to
        c.dead = true;
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      c.dead = true;  // hard socket error
      return;
    }
  };

  auto write_conn = [&](Conn& c) {
    while (c.wants_write()) {
      const ssize_t n = ::send(c.sock.fd(), c.outbuf.data() + c.out_off,
                               c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      c.dead = true;
      return;
    }
    if (c.closing) c.dead = true;  // error reply flushed: finish the close
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    bool busy = false;

    NewConn nc;
    while (accept_lanes_[t]->try_pop(nc)) {
      busy = true;
      try {
        set_nonblocking(nc.fd, true);
      } catch (const SocketError&) {
        ::close(nc.fd);
        continue;
      }
      set_nodelay(nc.fd);
      conns.emplace(nc.id, Conn(nc.id, nc.fd, options_.max_frame_bytes));
    }

    for (std::size_t s = 0; s < k; ++s) {
      TransportReply reply;
      while (reply_lanes_[s][t]->try_pop(reply)) {
        busy = true;
        auto it = conns.find(reply.conn);
        if (it == conns.end()) continue;  // conn died before the reply
        it->second.queue(reply.bytes);
        if (reply.close_conn) it->second.closing = true;
      }
    }

    pfds.clear();
    pfd_conn.clear();
    for (auto& [id, c] : conns) {
      if (c.dead) continue;
      pollfd p{};
      p.fd = c.sock.fd();
      p.events = static_cast<short>((c.closing ? 0 : POLLIN) |
                                    (c.wants_write() ? POLLOUT : 0));
      if (p.events == 0) {
        // closing with nothing left to flush
        c.dead = true;
        continue;
      }
      pfds.push_back(p);
      pfd_conn.push_back(id);
    }

    if (!pfds.empty()) {
      const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                            busy ? 0 : 1);
      if (rc > 0) {
        for (std::size_t i = 0; i < pfds.size(); ++i) {
          if (pfds[i].revents == 0) continue;
          busy = true;
          Conn& c = conns.at(pfd_conn[i]);
          if (pfds[i].revents & (POLLERR | POLLNVAL)) {
            c.dead = true;
            continue;
          }
          if (pfds[i].revents & POLLIN) read_conn(c);
          if (!c.dead && (pfds[i].revents & (POLLOUT | POLLHUP))) {
            if (pfds[i].revents & POLLOUT) write_conn(c);
            if ((pfds[i].revents & POLLHUP) && !c.wants_write()) c.dead = true;
          }
        }
      }
    } else if (!busy) {
      // No connections and no queue traffic: sleep a poll tick.
      struct timespec ts {0, 1'000'000};
      ::nanosleep(&ts, nullptr);
    }

    // Opportunistic flush for conns that queued output this iteration but
    // were not polled writable yet.
    for (auto& [id, c] : conns) {
      if (!c.dead && c.wants_write()) write_conn(c);
    }

    for (auto it = conns.begin(); it != conns.end();) {
      if (it->second.dead) {
        notify_conn_closed(it->first);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// --- Service loop (one shard) ----------------------------------------------

void TuningServer::shard_loop(std::size_t s) {
  const std::size_t k = options_.shards;

  service::TuningService::Options sopts;
  sopts.root_cache_capacity = options_.root_cache_capacity;
  sopts.cache_store_models = options_.cache_store_models;
  sopts.run_policy = options_.run_policy;
  service::TuningService svc(sopts);

  struct SessionInfo {
    service::SessionId local = 0;
    std::uint64_t conn = 0;
  };
  std::unordered_map<std::uint64_t, SessionInfo> by_global;
  std::unordered_map<service::SessionId, std::uint64_t> global_of_local;
  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> by_conn;

  auto send = [&](std::uint64_t conn, std::string frame, bool close_conn) {
    TransportReply reply{conn, std::move(frame), close_conn};
    util::SpscQueue<TransportReply>& lane = *reply_lanes_[s][conn % k];
    util::Backoff backoff;
    while (!lane.try_push(std::move(reply))) {
      if (stop_.load(std::memory_order_relaxed)) return;
      backoff.spin();
    }
  };

  // Drains the service's ready queue and pushes the asked runs to their
  // sessions' connections, rewriting local ids to wire ids.
  auto sweep = [&] {
    for (const service::PendingRun& run : svc.next_runs()) {
      const auto git = global_of_local.find(run.session);
      if (git == global_of_local.end()) continue;
      const auto sit = by_global.find(git->second);
      if (sit == by_global.end()) continue;
      service::PendingRun wire = run;
      wire.session = git->second;
      send(sit->second.conn, encode_frame(encode_run(wire)), false);
    }
  };

  auto drop_session = [&](std::uint64_t global) {
    const auto it = by_global.find(global);
    if (it == by_global.end()) return;
    by_conn[it->second.conn].erase(global);
    global_of_local.erase(it->second.local);
    by_global.erase(it);
  };

  auto handle = [&](ShardRequest& sr) {
    if (sr.kind == ShardRequest::Kind::ConnClosed) {
      const auto it = by_conn.find(sr.conn);
      if (it == by_conn.end()) return;
      // A dead connection abandons its sessions: close them so their
      // steppers (and any in-flight bookkeeping) are reclaimed.
      const std::set<std::uint64_t> owned = std::move(it->second);
      by_conn.erase(it);
      for (const std::uint64_t global : owned) {
        const auto bit = by_global.find(global);
        if (bit == by_global.end()) continue;
        svc.close(bit->second.local);
        global_of_local.erase(bit->second.local);
        by_global.erase(bit);
      }
      return;
    }

    Request& req = sr.request;
    switch (req.type) {
      case Request::Type::Open:
      case Request::Type::Restore: {
        try {
          service::SessionSpec spec = req.spec;
          spec.problem = resolve_problem(spec);
          const service::SessionId local =
              req.type == Request::Type::Open
                  ? svc.open_session(spec)
                  : svc.restore_session(spec, req.snapshot);
          by_global[sr.global_session] = SessionInfo{local, sr.conn};
          global_of_local[local] = sr.global_session;
          by_conn[sr.conn].insert(sr.global_session);
          shard_opened_[s].fetch_add(1, std::memory_order_relaxed);
          send(sr.conn, encode_frame(encode_opened(req.req, sr.global_session)),
               false);
          sweep();
        } catch (const std::exception& e) {
          send(sr.conn,
               encode_frame(encode_error(req.req, "bad_request", e.what(), true)),
               true);
        }
        return;
      }
      case Request::Type::Tell: {
        const auto it = by_global.find(req.session);
        if (it == by_global.end() || it->second.conn != sr.conn) {
          send(sr.conn,
               encode_frame(encode_error(
                   req.req, "bad_request",
                   "unknown session " + std::to_string(req.session), true)),
               true);
          return;
        }
        try {
          svc.tell(it->second.local, req.config, req.result);
          // Sweep BEFORE reporting: a stepper only learns it is finished
          // when the post-tell ask happens, so the told reply would
          // otherwise claim finished=false with no further run coming —
          // wedging a driver that waits for pushes. Runs pushed here
          // arrive before the told frame; clients buffer them.
          sweep();
          const bool quarantined = svc.quarantined(it->second.local);
          const bool finished = quarantined || svc.finished(it->second.local);
          send(sr.conn,
               encode_frame(encode_told(req.req, req.session, finished,
                                        quarantined,
                                        svc.stop_reason(it->second.local))),
               false);
        } catch (const std::exception& e) {
          send(sr.conn,
               encode_frame(encode_error(req.req, "bad_request", e.what(), true)),
               true);
        }
        return;
      }
      case Request::Type::NextRuns: {
        sweep();
        return;
      }
      case Request::Type::Snapshot:
      case Request::Type::Result:
      case Request::Type::Close: {
        const auto it = by_global.find(req.session);
        if (it == by_global.end() || it->second.conn != sr.conn) {
          send(sr.conn,
               encode_frame(encode_error(
                   req.req, "bad_request",
                   "unknown session " + std::to_string(req.session), true)),
               true);
          return;
        }
        try {
          if (req.type == Request::Type::Snapshot) {
            send(sr.conn,
                 encode_frame(encode_snapshot_reply(
                     req.req, req.session,
                     svc.snapshot_session(it->second.local))),
                 false);
          } else if (req.type == Request::Type::Result) {
            send(sr.conn,
                 encode_frame(encode_result_reply(
                     req.req, req.session, svc.finished(it->second.local),
                     svc.quarantined(it->second.local),
                     svc.stop_reason(it->second.local),
                     svc.result(it->second.local))),
                 false);
          } else {
            svc.close(it->second.local);
            drop_session(req.session);
            send(sr.conn, encode_frame(encode_closed(req.req, req.session)),
                 false);
          }
        } catch (const std::exception& e) {
          send(sr.conn,
               encode_frame(encode_error(req.req, "bad_request", e.what(), true)),
               true);
        }
        return;
      }
    }
  };

  util::Backoff backoff;
  int idle_streak = 0;
  while (true) {
    bool busy = false;
    for (std::size_t t = 0; t < k; ++t) {
      ShardRequest sr;
      while (request_lanes_[t][s]->try_pop(sr)) {
        busy = true;
        handle(sr);
      }
    }
    if (busy) {
      backoff.reset();
      idle_streak = 0;
      continue;
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    // Spin hot briefly (low request latency under load), then sleep a
    // millisecond per miss so an idle server costs ~no CPU.
    if (++idle_streak < 256) {
      backoff.spin();
    } else {
      struct timespec ts {0, 1'000'000};
      ::nanosleep(&ts, nullptr);
    }
  }
}

}  // namespace lynceus::net

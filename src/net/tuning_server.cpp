#include "net/tuning_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "cloud/workloads.hpp"
#include "eval/experiment.hpp"
#include "net/binary_codec.hpp"
#include "service/tuning_service.hpp"
#include "util/affinity.hpp"
#include "util/json.hpp"

namespace lynceus::net {

namespace {

/// Keys for the problem registry; '\n' cannot appear in JSON string
/// values that reach us unescaped, so it is a safe separator.
std::string registry_key(const std::string& suite, const std::string& job) {
  return suite + '\n' + job;
}

std::string bundled_key(const std::string& suite, const std::string& job,
                        double b) {
  util::JsonWriter w;  // bit-exact double, reused as a map key
  w.value_exact(b);
  return suite + '\n' + job + '\n' + w.str();
}

}  // namespace

TuningServer::TuningServer() : TuningServer(Options{}) {}

TuningServer::TuningServer(Options options) : options_(std::move(options)) {
  if (options_.shards == 0) {
    throw std::invalid_argument("TuningServer: shards must be >= 1");
  }
  if (options_.lane_capacity == 0) {
    throw std::invalid_argument("TuningServer: lane_capacity must be >= 1");
  }
  options_.run_policy.validate();
  listener_ = listen_tcp(options_.host, options_.port);
  set_nonblocking(listener_.fd(), true);
  port_ = local_port(listener_.fd());

  const std::size_t k = options_.shards;
  accept_lanes_.reserve(k);
  request_lanes_.resize(k);
  reply_lanes_.resize(k);
  for (std::size_t t = 0; t < k; ++t) {
    accept_lanes_.push_back(
        std::make_unique<util::SpscQueue<NewConn>>(options_.lane_capacity));
    request_lanes_[t].reserve(k);
    reply_lanes_[t].reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      request_lanes_[t].push_back(std::make_unique<util::SpscQueue<ShardRequest>>(
          options_.lane_capacity));
      reply_lanes_[t].push_back(std::make_unique<util::SpscQueue<TransportReply>>(
          options_.lane_capacity));
    }
  }
  transport_wakeups_.reserve(k);
  shard_wakeups_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    transport_wakeups_.push_back(std::make_unique<WakeupFd>());
    shard_wakeups_.push_back(std::make_unique<WakeupFd>());
  }
  lane_stalls_ = std::make_unique<std::atomic<std::size_t>[]>(k * k);
  for (std::size_t i = 0; i < k * k; ++i) lane_stalls_[i].store(0);

  shard_opened_ = std::make_unique<std::atomic<std::size_t>[]>(k);
  for (std::size_t s = 0; s < k; ++s) shard_opened_[s].store(0);

  threads_.reserve(2 * k + 1);
  for (std::size_t s = 0; s < k; ++s) {
    threads_.emplace_back([this, s] { shard_loop(s); });
  }
  for (std::size_t t = 0; t < k; ++t) {
    threads_.emplace_back([this, t] { transport_loop(t); });
  }
  threads_.emplace_back([this] { acceptor_loop(); });
}

TuningServer::~TuningServer() { stop(); }

void TuningServer::stop() {
  if (stop_.exchange(true)) {
    return;
  }
  // Ring every doorbell so event loops and idle shards notice stop_ now
  // instead of at their next timeout tick. Forced: the armed-flag gate
  // would otherwise skip a consumer that is between arm() and block.
  for (const auto& w : transport_wakeups_) w->notify(/*force=*/true);
  for (const auto& w : shard_wakeups_) w->notify(/*force=*/true);
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
  listener_.close();
}

std::vector<std::size_t> TuningServer::shard_session_counts() const {
  std::vector<std::size_t> counts(options_.shards, 0);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    counts[s] = shard_opened_[s].load();
  }
  return counts;
}

std::vector<TuningServer::LaneStats> TuningServer::request_lane_stats() const {
  const std::size_t k = options_.shards;
  std::vector<LaneStats> out;
  out.reserve(k * k);
  for (std::size_t t = 0; t < k; ++t) {
    for (std::size_t s = 0; s < k; ++s) {
      LaneStats ls;
      ls.transport = t;
      ls.shard = s;
      ls.capacity = request_lanes_[t][s]->capacity();
      ls.high_water = request_lanes_[t][s]->high_water();
      ls.stalls = lane_stalls_[t * k + s].load(std::memory_order_relaxed);
      out.push_back(ls);
    }
  }
  return out;
}

void TuningServer::register_problem(const std::string& suite,
                                    const std::string& job,
                                    core::OptimizationProblem problem) {
  problem.validate();
  std::lock_guard<std::mutex> lock(problems_mutex_);
  problems_[registry_key(suite, job)] =
      std::make_unique<core::OptimizationProblem>(std::move(problem));
}

const core::OptimizationProblem* TuningServer::resolve_problem(
    const service::SessionSpec& spec) {
  if (spec.problem != nullptr) {
    return spec.problem;
  }
  const service::ProblemRef& ref = spec.problem_ref;
  if (ref.empty()) {
    throw std::invalid_argument(
        "spec carries neither an in-process problem nor a problem reference");
  }
  std::lock_guard<std::mutex> lock(problems_mutex_);
  auto it = problems_.find(registry_key(ref.suite, ref.job));
  if (it != problems_.end()) {
    return it->second.get();
  }
  if (!options_.bundled_workloads) {
    throw std::invalid_argument("unknown problem '" + ref.suite + "/" +
                                ref.job + "' (bundled workloads disabled)");
  }
  const std::string key = bundled_key(ref.suite, ref.job, ref.budget_multiplier);
  it = problems_.find(key);
  if (it != problems_.end()) {
    return it->second.get();
  }
  std::vector<cloud::Dataset> datasets;
  if (ref.suite == "tf" || ref.suite == "tensorflow") {
    datasets = cloud::make_tensorflow_datasets();
  } else if (ref.suite == "scout") {
    datasets = cloud::make_scout_datasets();
  } else if (ref.suite == "cherrypick") {
    datasets = cloud::make_cherrypick_datasets();
  } else {
    throw std::invalid_argument("unknown workload suite '" + ref.suite + "'");
  }
  for (const cloud::Dataset& ds : datasets) {
    if (ds.job_name() == ref.job) {
      auto built = std::make_unique<core::OptimizationProblem>(
          eval::make_problem(ds, ref.budget_multiplier));
      const core::OptimizationProblem* out = built.get();
      problems_[key] = std::move(built);
      return out;
    }
  }
  throw std::invalid_argument("suite '" + ref.suite + "' has no job named '" +
                              ref.job + "'");
}

// --- Acceptor ---------------------------------------------------------------

void TuningServer::acceptor_loop() {
  std::uint64_t next_conn = 0;
  // An accepted connection whose transport's lane was full; retried
  // before accepting more. While it waits, the acceptor simply stops
  // draining the kernel backlog — TCP's own backpressure.
  NewConn held{};
  bool holding = false;
  pollfd pfd{};
  pfd.fd = listener_.fd();
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (holding) {
      util::SpscQueue<NewConn>& lane =
          *accept_lanes_[held.id % options_.shards];
      if (!lane.try_push(NewConn(held))) {
        struct timespec ts {0, 1'000'000};
        ::nanosleep(&ts, nullptr);
        continue;
      }
      transport_wakeups_[held.id % options_.shards]->notify();
      holding = false;
    }
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 50);
    if (rc <= 0) continue;
    while (!holding) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN / transient: poll again
      const std::uint64_t id = next_conn++;
      NewConn nc{fd, id};
      util::SpscQueue<NewConn>& lane = *accept_lanes_[id % options_.shards];
      if (lane.try_push(NewConn(nc))) {
        transport_wakeups_[id % options_.shards]->notify();
      } else {
        held = nc;
        holding = true;
      }
    }
  }
  if (holding) ::close(held.fd);
}

// --- Transport --------------------------------------------------------------

void TuningServer::transport_loop(std::size_t t) {
  if (options_.pin_threads) util::pin_current_thread(options_.shards + t);
  const std::size_t k = options_.shards;
  // The wakeup fd's token in the event loop; connection ids are dense
  // from 0, so the max token is free.
  constexpr std::uint64_t kWakeToken = ~std::uint64_t{0};

  /// One decoded request that found its shard lane full — it waits here
  /// (in decode order) until the lane drains; the connection's read
  /// interest stays parked while any request waits.
  struct PendingReq {
    std::size_t shard = 0;
    ShardRequest req;
  };

  /// Per-connection transport state: raw socket, incremental frame
  /// assembler, pending output, negotiated encoding, parked requests.
  struct Conn {
    std::uint64_t id = 0;
    Socket sock;
    FrameAssembler frames;
    std::string outbuf;
    std::size_t out_off = 0;
    WireEncoding enc = WireEncoding::kJson;
    /// False until the first frame fixes the encoding (hello or not).
    bool saw_first_frame = false;
    /// A fatal error reply is queued: flush outbuf, then close. No
    /// further input is read or decoded.
    bool closing = false;
    /// recv() hit EOF or a hard error: no further reads.
    bool eof = false;
    /// ConnClosed notifications queued into `pending` (teardown begun).
    bool torn_down = false;
    /// Decoded-but-undeliverable requests (full shard lane).
    std::deque<PendingReq> pending;
    /// Interest currently registered with the event loop.
    bool reg_read = false;
    bool reg_write = false;

    Conn(std::uint64_t id_, int fd, std::size_t max_frame)
        : id(id_), sock(fd), frames(max_frame) {}

    [[nodiscard]] bool wants_write() const noexcept {
      return out_off < outbuf.size();
    }

    void queue(const std::string& frame) {
      if (out_off == outbuf.size()) {
        outbuf.clear();
        out_off = 0;
      }
      outbuf.append(frame);
    }
  };

  EventLoop loop;
  WakeupFd& wake = *transport_wakeups_[t];
  loop.add(wake.read_fd(), kWakeToken, /*want_read=*/true,
           /*want_write=*/false);

  std::unordered_map<std::uint64_t, Conn> conns;
  // Reused scratch: recv buffer and frame payload (framing stays
  // allocation-free in steady state — both keep their capacity).
  std::vector<char> rbuf(1 << 16);
  std::string payload;
  // Connections touched this iteration (deduplicated by flag-free
  // idiom: ids may repeat, the per-conn pass is idempotent).
  std::vector<std::uint64_t> dirty;
  // Connections with parked requests — retried every iteration.
  std::set<std::uint64_t> parked;

  auto try_push_request = [&](std::size_t shard, ShardRequest& req) -> bool {
    if (!request_lanes_[t][shard]->try_push(std::move(req))) return false;
    shard_wakeups_[shard]->notify();
    return true;
  };

  // Routes one decoded request: deliver now, or park it (and the
  // connection's read interest) on a full lane.
  auto route = [&](Conn& c, ShardRequest&& sr, std::size_t shard) {
    if (c.pending.empty() && try_push_request(shard, sr)) return;
    if (c.pending.empty()) {
      // Park transition: this request is the one that hit the wall.
      lane_stalls_[t * k + shard].fetch_add(1, std::memory_order_relaxed);
      parked.insert(c.id);
    }
    c.pending.push_back(PendingReq{shard, std::move(sr)});
  };

  auto queue_error = [&](Conn& c, std::uint64_t req, const char* code,
                         const std::string& message) {
    c.queue(encode_frame(encode_error_wire(c.enc, req, code, message, true)));
    c.closing = true;
  };

  // The hello handshake (first frame only; see net/protocol.hpp).
  auto negotiate = [&](Conn& c, const Request& hello) {
    if (hello.version != kProtocolVersion) {
      queue_error(c, hello.req, "bad_negotiation",
                  "unsupported protocol version " +
                      std::to_string(hello.version));
      return;
    }
    for (const std::string& name : hello.encodings) {
      WireEncoding e;
      if (!wire_encoding_from_name(name, e)) continue;
      if (e == WireEncoding::kBinary &&
          options_.wire == WirePolicy::kJsonOnly) {
        continue;
      }
      if (e == WireEncoding::kJson &&
          options_.wire == WirePolicy::kBinaryOnly) {
        continue;
      }
      // The reply itself is JSON — the switch applies to what follows.
      c.queue(encode_frame(encode_hello_reply(hello.req, kProtocolVersion,
                                              wire_encoding_name(e))));
      c.enc = e;
      return;
    }
    queue_error(c, hello.req, "bad_negotiation",
                "no mutually supported encoding");
  };

  // Decodes one frame payload and routes it; on a malformed message,
  // queues a fatal error reply and marks the connection closing.
  auto handle_payload = [&](Conn& c, const std::string& body) {
    Request request;
    try {
      if (!c.saw_first_frame) {
        c.saw_first_frame = true;
        // The first frame is JSON by definition: either a hello or a
        // plain request that fixes the connection to JSON.
        request = parse_request(body);
        if (request.type == Request::Type::Hello) {
          negotiate(c, request);
          return;
        }
        if (options_.wire == WirePolicy::kBinaryOnly) {
          queue_error(c, request.req, "bad_negotiation",
                      "server requires negotiated binary framing");
          return;
        }
      } else {
        request = parse_request_wire(c.enc, body);
        if (request.type == Request::Type::Hello) {
          queue_error(c, request.req, "bad_negotiation",
                      "negotiation replay: hello after the first frame");
          return;
        }
      }
    } catch (const std::exception& e) {
      queue_error(c, 0, "bad_message", e.what());
      return;
    }
    ShardRequest sr;
    sr.kind = ShardRequest::Kind::Request;
    sr.conn = c.id;
    sr.enc = c.enc;
    switch (request.type) {
      case Request::Type::Hello:
        return;  // handled above; unreachable
      case Request::Type::Open:
      case Request::Type::Restore: {
        // Allocate the global id here so the request can route to its
        // owning shard; the shard maps it to its local service id.
        sr.global_session = next_session_.fetch_add(1);
        const std::size_t shard = sr.global_session % k;
        sr.request = std::move(request);
        route(c, std::move(sr), shard);
        return;
      }
      case Request::Type::Tell:
      case Request::Type::Snapshot:
      case Request::Type::Result:
      case Request::Type::Close: {
        const std::size_t shard = request.session % k;
        sr.request = std::move(request);
        route(c, std::move(sr), shard);
        return;
      }
      case Request::Type::NextRuns: {
        for (std::size_t s = 0; s < k; ++s) {
          ShardRequest copy;
          copy.kind = ShardRequest::Kind::Request;
          copy.conn = c.id;
          copy.enc = c.enc;
          copy.request = request;
          route(c, std::move(copy), s);
        }
        return;
      }
    }
  };

  // Drains complete frames from the assembler until input is exhausted,
  // the connection is closing, or a request parks.
  auto drain_frames = [&](Conn& c) {
    try {
      while (!c.closing && c.pending.empty() && c.frames.next(payload)) {
        handle_payload(c, payload);
      }
    } catch (const FrameError& e) {
      c.queue(encode_frame(
          encode_error_wire(c.enc, 0, "bad_frame", e.what(), true)));
      c.closing = true;
    }
  };

  auto read_conn = [&](Conn& c) {
    while (!c.closing && !c.eof && c.pending.empty()) {
      const ssize_t n = ::recv(c.sock.fd(), rbuf.data(), rbuf.size(), 0);
      if (n > 0) {
        c.frames.feed(rbuf.data(), static_cast<std::size_t>(n));
        drain_frames(c);
        continue;
      }
      if (n == 0) {  // peer closed; decode what already arrived
        c.eof = true;
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      c.eof = true;  // hard socket error
      return;
    }
  };

  auto write_conn = [&](Conn& c) {
    while (c.wants_write()) {
      const ssize_t n = ::send(c.sock.fd(), c.outbuf.data() + c.out_off,
                               c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      c.eof = true;
      return;
    }
  };

  // Per-connection progress pass: flush parked requests, resume
  // decoding, begin/advance teardown, sync event-loop interest.
  // Idempotent — safe to run for a conn any number of times per
  // iteration. Returns false when the conn was erased.
  auto advance = [&](std::uint64_t id) -> bool {
    const auto it = conns.find(id);
    if (it == conns.end()) return false;
    Conn& c = it->second;

    while (!c.pending.empty()) {
      PendingReq& p = c.pending.front();
      if (!try_push_request(p.shard, p.req)) break;
      c.pending.pop_front();
    }
    if (c.pending.empty()) {
      parked.erase(c.id);
      if (!c.torn_down) drain_frames(c);
    }

    if (c.wants_write()) write_conn(c);

    // A closing conn is done once its error reply is flushed; an eof'd
    // conn once its buffered frames are decoded and delivered. Either
    // way the owning shards are told — after every request the conn
    // already decoded, so close-order is preserved.
    const bool finished =
        (c.closing && !c.wants_write()) || (c.eof && !c.closing);
    if (finished && !c.torn_down && c.pending.empty()) {
      c.torn_down = true;
      for (std::size_t s = 0; s < k; ++s) {
        ShardRequest req;
        req.kind = ShardRequest::Kind::ConnClosed;
        req.conn = c.id;
        if (!try_push_request(s, req)) {
          c.pending.push_back(PendingReq{s, std::move(req)});
        }
      }
      if (!c.pending.empty()) parked.insert(c.id);
    }
    if (c.torn_down && c.pending.empty()) {
      parked.erase(c.id);
      loop.remove(c.sock.fd());
      conns.erase(it);
      return false;
    }

    const bool want_read =
        !c.closing && !c.eof && !c.torn_down && c.pending.empty();
    const bool want_write = c.wants_write();
    if (want_read != c.reg_read || want_write != c.reg_write) {
      loop.modify(c.sock.fd(), c.id, want_read, want_write);
      c.reg_read = want_read;
      c.reg_write = want_write;
    }
    return true;
  };

  // Armed-doorbell re-check (see WakeupFd): any lane already holding
  // work means a producer raced the arm() and skipped its ring — poll
  // the sockets without blocking instead of sleeping on a stale bell.
  const auto lanes_ready = [&]() -> bool {
    if (!accept_lanes_[t]->empty()) return true;
    for (std::size_t s = 0; s < k; ++s) {
      if (!reply_lanes_[s][t]->empty()) return true;
    }
    return false;
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    // Parked conns poll their lanes: the wake that frees them is the
    // shard's reply traffic, but a short tick bounds the worst case.
    wake.arm();
    const int tick = parked.empty() ? 50 : 1;
    const std::size_t n = loop.wait(
        stop_.load(std::memory_order_relaxed) || lanes_ready() ? 0 : tick);
    wake.disarm();
    if (stop_.load(std::memory_order_relaxed)) break;

    dirty.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const EventLoop::Event& ev = loop.events()[i];
      if (ev.data == kWakeToken) {
        wake.drain();
        continue;
      }
      const auto it = conns.find(ev.data);
      if (it == conns.end()) continue;
      Conn& c = it->second;
      if (ev.readable && !c.closing && !c.eof) read_conn(c);
      if (ev.writable) write_conn(c);
      if (ev.broken && !ev.readable) c.eof = true;
      dirty.push_back(c.id);
    }

    NewConn nc;
    while (accept_lanes_[t]->try_pop(nc)) {
      try {
        set_nonblocking(nc.fd, true);
      } catch (const SocketError&) {
        ::close(nc.fd);
        continue;
      }
      set_nodelay(nc.fd);
      auto [it, inserted] =
          conns.emplace(nc.id, Conn(nc.id, nc.fd, options_.max_frame_bytes));
      loop.add(nc.fd, nc.id, /*want_read=*/true, /*want_write=*/false);
      it->second.reg_read = true;
      dirty.push_back(nc.id);
    }

    for (std::size_t s = 0; s < k; ++s) {
      TransportReply reply;
      while (reply_lanes_[s][t]->try_pop(reply)) {
        auto it = conns.find(reply.conn);
        if (it == conns.end()) continue;  // conn died before the reply
        it->second.queue(reply.bytes);
        if (reply.close_conn) it->second.closing = true;
        dirty.push_back(reply.conn);
      }
    }

    // Progress every touched conn, then every parked conn (advance()
    // mutates `parked`, so iterate a snapshot).
    for (const std::uint64_t id : dirty) advance(id);
    if (!parked.empty()) {
      const std::vector<std::uint64_t> snapshot(parked.begin(), parked.end());
      for (const std::uint64_t id : snapshot) advance(id);
    }
  }
}

// --- Service loop (one shard) ----------------------------------------------

void TuningServer::shard_loop(std::size_t s) {
  if (options_.pin_threads) util::pin_current_thread(s);
  const std::size_t k = options_.shards;

  service::TuningService::Options sopts;
  sopts.root_cache_capacity = options_.root_cache_capacity;
  sopts.cache_store_models = options_.cache_store_models;
  sopts.run_policy = options_.run_policy;
  service::TuningService svc(sopts);

  struct SessionInfo {
    service::SessionId local = 0;
    std::uint64_t conn = 0;
    /// The owning connection's negotiated encoding — pushed `run`
    /// frames for this session are encoded with it.
    WireEncoding enc = WireEncoding::kJson;
  };
  std::unordered_map<std::uint64_t, SessionInfo> by_global;
  std::unordered_map<service::SessionId, std::uint64_t> global_of_local;
  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> by_conn;

  // Replies that found their lane full wait here (per transport, FIFO)
  // instead of spin-blocking the whole shard; flushed ahead of new work.
  std::vector<std::deque<TransportReply>> overflow(k);

  // Retries a transport's overflow queue; true when fully drained.
  auto flush_overflow = [&](std::size_t t) -> bool {
    std::deque<TransportReply>& q = overflow[t];
    while (!q.empty()) {
      if (!reply_lanes_[s][t]->try_push(std::move(q.front()))) return false;
      q.pop_front();
      transport_wakeups_[t]->notify();
    }
    return true;
  };

  auto send = [&](std::uint64_t conn, std::string frame, bool close_conn) {
    const std::size_t t = conn % k;
    TransportReply reply{conn, std::move(frame), close_conn};
    // Older overflow must go first to keep per-connection reply order.
    if (flush_overflow(t) && reply_lanes_[s][t]->try_push(std::move(reply))) {
      transport_wakeups_[t]->notify();
      return;
    }
    overflow[t].push_back(std::move(reply));
  };

  // Drains the service's ready queue and pushes the asked runs to their
  // sessions' connections, rewriting local ids to wire ids.
  auto sweep = [&] {
    for (const service::PendingRun& run : svc.next_runs()) {
      const auto git = global_of_local.find(run.session);
      if (git == global_of_local.end()) continue;
      const auto sit = by_global.find(git->second);
      if (sit == by_global.end()) continue;
      service::PendingRun wire = run;
      wire.session = git->second;
      send(sit->second.conn,
           encode_frame(encode_run_wire(sit->second.enc, wire)), false);
    }
  };

  auto drop_session = [&](std::uint64_t global) {
    const auto it = by_global.find(global);
    if (it == by_global.end()) return;
    by_conn[it->second.conn].erase(global);
    global_of_local.erase(it->second.local);
    by_global.erase(it);
  };

  auto handle = [&](ShardRequest& sr) {
    if (sr.kind == ShardRequest::Kind::ConnClosed) {
      const auto it = by_conn.find(sr.conn);
      if (it == by_conn.end()) return;
      // A dead connection abandons its sessions: close them so their
      // steppers (and any in-flight bookkeeping) are reclaimed.
      const std::set<std::uint64_t> owned = std::move(it->second);
      by_conn.erase(it);
      for (const std::uint64_t global : owned) {
        const auto bit = by_global.find(global);
        if (bit == by_global.end()) continue;
        svc.close(bit->second.local);
        global_of_local.erase(bit->second.local);
        by_global.erase(bit);
      }
      return;
    }

    Request& req = sr.request;
    switch (req.type) {
      case Request::Type::Hello:
        return;  // transport-level; never reaches a shard
      case Request::Type::Open:
      case Request::Type::Restore: {
        try {
          service::SessionSpec spec = req.spec;
          spec.problem = resolve_problem(spec);
          const service::SessionId local =
              req.type == Request::Type::Open
                  ? svc.open_session(spec)
                  : svc.restore_session(spec, req.snapshot);
          by_global[sr.global_session] = SessionInfo{local, sr.conn, sr.enc};
          global_of_local[local] = sr.global_session;
          by_conn[sr.conn].insert(sr.global_session);
          shard_opened_[s].fetch_add(1, std::memory_order_relaxed);
          send(sr.conn,
               encode_frame(
                   encode_opened_wire(sr.enc, req.req, sr.global_session)),
               false);
          sweep();
        } catch (const std::exception& e) {
          send(sr.conn,
               encode_frame(encode_error_wire(sr.enc, req.req, "bad_request",
                                              e.what(), true)),
               true);
        }
        return;
      }
      case Request::Type::Tell: {
        const auto it = by_global.find(req.session);
        if (it == by_global.end() || it->second.conn != sr.conn) {
          send(sr.conn,
               encode_frame(encode_error_wire(
                   sr.enc, req.req, "bad_request",
                   "unknown session " + std::to_string(req.session), true)),
               true);
          return;
        }
        try {
          svc.tell(it->second.local, req.config, req.result);
          // Sweep BEFORE reporting: a stepper only learns it is finished
          // when the post-tell ask happens, so the told reply would
          // otherwise claim finished=false with no further run coming —
          // wedging a driver that waits for pushes. Runs pushed here
          // arrive before the told frame; clients buffer them.
          sweep();
          const bool quarantined = svc.quarantined(it->second.local);
          const bool finished = quarantined || svc.finished(it->second.local);
          send(sr.conn,
               encode_frame(encode_told_wire(
                   sr.enc, req.req, req.session, finished, quarantined,
                   svc.stop_reason(it->second.local))),
               false);
        } catch (const std::exception& e) {
          send(sr.conn,
               encode_frame(encode_error_wire(sr.enc, req.req, "bad_request",
                                              e.what(), true)),
               true);
        }
        return;
      }
      case Request::Type::NextRuns: {
        sweep();
        return;
      }
      case Request::Type::Snapshot:
      case Request::Type::Result:
      case Request::Type::Close: {
        const auto it = by_global.find(req.session);
        if (it == by_global.end() || it->second.conn != sr.conn) {
          send(sr.conn,
               encode_frame(encode_error_wire(
                   sr.enc, req.req, "bad_request",
                   "unknown session " + std::to_string(req.session), true)),
               true);
          return;
        }
        try {
          if (req.type == Request::Type::Snapshot) {
            send(sr.conn,
                 encode_frame(encode_snapshot_reply_wire(
                     sr.enc, req.req, req.session,
                     svc.snapshot_session(it->second.local))),
                 false);
          } else if (req.type == Request::Type::Result) {
            send(sr.conn,
                 encode_frame(encode_result_reply_wire(
                     sr.enc, req.req, req.session,
                     svc.finished(it->second.local),
                     svc.quarantined(it->second.local),
                     svc.stop_reason(it->second.local),
                     svc.result(it->second.local))),
                 false);
          } else {
            svc.close(it->second.local);
            drop_session(req.session);
            send(sr.conn,
                 encode_frame(
                     encode_closed_wire(sr.enc, req.req, req.session)),
                 false);
          }
        } catch (const std::exception& e) {
          send(sr.conn,
               encode_frame(encode_error_wire(sr.enc, req.req, "bad_request",
                                              e.what(), true)),
               true);
        }
        return;
      }
    }
  };

  util::Backoff backoff;
  int idle_streak = 0;
  while (true) {
    bool busy = false;
    bool overflowing = false;
    for (std::size_t t = 0; t < k; ++t) {
      if (!flush_overflow(t)) overflowing = true;
    }
    for (std::size_t t = 0; t < k; ++t) {
      ShardRequest sr;
      while (request_lanes_[t][s]->try_pop(sr)) {
        busy = true;
        handle(sr);
      }
    }
    if (busy) {
      backoff.reset();
      idle_streak = 0;
      continue;
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    // Spin hot briefly (low request latency under load), then sleep on
    // the shard's doorbell so an idle server costs ~no CPU. Undelivered
    // overflow keeps the tick short: the consuming transport does not
    // ring this doorbell when it drains a reply lane.
    if (++idle_streak < 256) {
      backoff.spin();
    } else {
      // Armed doorbell (see WakeupFd): declare the sleep, then re-check
      // every request lane — a transport that pushed before the flag
      // flipped skipped its ring, so blocking now would lose the wake.
      shard_wakeups_[s]->arm();
      bool raced = stop_.load(std::memory_order_relaxed);
      for (std::size_t t = 0; t < k && !raced; ++t) {
        raced = !request_lanes_[t][s]->empty();
      }
      if (!raced) {
        pollfd pfd{};
        pfd.fd = shard_wakeups_[s]->read_fd();
        pfd.events = POLLIN;
        ::poll(&pfd, 1, overflowing ? 1 : 50);
        shard_wakeups_[s]->drain();
      }
      shard_wakeups_[s]->disarm();
    }
  }
}

}  // namespace lynceus::net

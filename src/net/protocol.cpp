#include "net/protocol.hpp"

#include <cmath>
#include <cstring>

namespace lynceus::net {

namespace {

const char* outcome_name(core::RunOutcome outcome) {
  switch (outcome) {
    case core::RunOutcome::kOk: return "ok";
    case core::RunOutcome::kFailed: return "failed";
    case core::RunOutcome::kTimedOut: return "timed_out";
  }
  return "ok";
}

core::RunOutcome outcome_from_name(const std::string& name) {
  if (name == "ok") return core::RunOutcome::kOk;
  if (name == "failed") return core::RunOutcome::kFailed;
  if (name == "timed_out") return core::RunOutcome::kTimedOut;
  throw std::runtime_error("protocol: unknown run outcome '" + name + "'");
}

std::uint64_t req_of(const util::JsonValue& v) {
  return v.at("req").as_uint();
}

std::uint64_t session_of(const util::JsonValue& v) {
  return v.at("session").as_uint();
}

}  // namespace

const char* wire_encoding_name(WireEncoding e) noexcept {
  return e == WireEncoding::kBinary ? "binary" : "json";
}

bool wire_encoding_from_name(const std::string& name,
                             WireEncoding& out) noexcept {
  if (name == "json") {
    out = WireEncoding::kJson;
    return true;
  }
  if (name == "binary") {
    out = WireEncoding::kBinary;
    return true;
  }
  return false;
}

std::string encode_frame(const std::string& payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out += payload;
  return out;
}

void FrameAssembler::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

bool FrameAssembler::next(std::string& payload) {
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  if (buffer_.size() - offset_ < kFrameHeaderBytes) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data()) +
                  offset_;
  const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                          (static_cast<std::uint32_t>(p[1]) << 16) |
                          (static_cast<std::uint32_t>(p[2]) << 8) |
                          static_cast<std::uint32_t>(p[3]);
  if (n == 0) {
    throw FrameError("zero-length frame");
  }
  if (n > max_frame_bytes_) {
    throw FrameError("frame of " + std::to_string(n) +
                     " bytes exceeds the " +
                     std::to_string(max_frame_bytes_) + "-byte limit");
  }
  if (buffer_.size() - offset_ < kFrameHeaderBytes + n) return false;
  payload.assign(buffer_, offset_ + kFrameHeaderBytes, n);
  offset_ += kFrameHeaderBytes + n;
  return true;
}

Request parse_request(const std::string& payload) {
  const util::JsonValue v = util::parse_json(payload);
  if (v.type() != util::JsonValue::Type::Object) {
    throw std::runtime_error("protocol: request is not a JSON object");
  }
  const std::string& type = v.at("type").as_string();
  Request r;
  if (type == "hello") {
    r.type = Request::Type::Hello;
    r.req = req_of(v);
    r.version = v.at("version").as_uint();
    for (const util::JsonValue& e : v.at("encodings").items()) {
      r.encodings.push_back(e.as_string());
    }
  } else if (type == "open") {
    r.type = Request::Type::Open;
    r.req = req_of(v);
    r.spec = service::SessionSpec::from_json(v.at("spec"));
  } else if (type == "restore") {
    r.type = Request::Type::Restore;
    r.req = req_of(v);
    r.spec = service::SessionSpec::from_json(v.at("spec"));
    r.snapshot = v.at("snapshot").as_string();
  } else if (type == "tell") {
    r.type = Request::Type::Tell;
    r.req = req_of(v);
    r.session = session_of(v);
    r.config = static_cast<core::ConfigId>(v.at("config").as_uint());
    r.result = run_result_from_json(v.at("result"));
  } else if (type == "next_runs") {
    r.type = Request::Type::NextRuns;
    r.req = req_of(v);
  } else if (type == "snapshot") {
    r.type = Request::Type::Snapshot;
    r.req = req_of(v);
    r.session = session_of(v);
  } else if (type == "result") {
    r.type = Request::Type::Result;
    r.req = req_of(v);
    r.session = session_of(v);
  } else if (type == "close") {
    r.type = Request::Type::Close;
    r.req = req_of(v);
    r.session = session_of(v);
  } else {
    throw std::runtime_error("protocol: unknown request type '" + type + "'");
  }
  return r;
}

ServerMessage parse_server_message(const std::string& payload) {
  const util::JsonValue v = util::parse_json(payload);
  if (v.type() != util::JsonValue::Type::Object) {
    throw std::runtime_error("protocol: message is not a JSON object");
  }
  const std::string& type = v.at("type").as_string();
  ServerMessage m;
  if (type == "hello") {
    m.type = ServerMessage::Type::Hello;
    m.req = req_of(v);
    m.version = v.at("version").as_uint();
    m.encoding = v.at("encoding").as_string();
  } else if (type == "opened") {
    m.type = ServerMessage::Type::Opened;
    m.req = req_of(v);
    m.session = session_of(v);
  } else if (type == "told") {
    m.type = ServerMessage::Type::Told;
    m.req = req_of(v);
    m.session = session_of(v);
    m.finished = v.at("finished").as_bool();
    m.quarantined = v.at("quarantined").as_bool();
    m.stop_reason = v.at("stop_reason").as_string();
  } else if (type == "run") {
    m.type = ServerMessage::Type::Run;
    m.session = session_of(v);
    m.run.session = m.session;
    m.run.config = static_cast<core::ConfigId>(v.at("config").as_uint());
    m.run.attempt = v.at("attempt").as_uint();
    if (const auto* t = v.find("timeout_seconds")) {
      m.run.timeout_seconds = t->as_double();
    }
    m.run.start_delay = v.at("start_delay").as_double();
  } else if (type == "snapshot") {
    m.type = ServerMessage::Type::Snapshot;
    m.req = req_of(v);
    m.session = session_of(v);
    m.data = v.at("data").as_string();
  } else if (type == "result") {
    m.type = ServerMessage::Type::Result;
    m.req = req_of(v);
    m.session = session_of(v);
    m.finished = v.at("finished").as_bool();
    m.quarantined = v.at("quarantined").as_bool();
    m.stop_reason = v.at("stop_reason").as_string();
    m.result = optimizer_result_from_json(v.at("result"));
  } else if (type == "closed") {
    m.type = ServerMessage::Type::Closed;
    m.req = req_of(v);
    m.session = session_of(v);
  } else if (type == "error") {
    m.type = ServerMessage::Type::Error;
    if (const auto* r = v.find("req")) m.req = r->as_uint();
    m.code = v.at("code").as_string();
    m.message = v.at("message").as_string();
    m.fatal = v.at("fatal").as_bool();
  } else {
    throw std::runtime_error("protocol: unknown message type '" + type + "'");
  }
  return m;
}

std::string encode_hello_request(std::uint64_t req, std::uint64_t version,
                                 const std::vector<std::string>& encodings) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("hello");
  w.key("req").value(req);
  w.key("version").value(version);
  w.key("encodings").begin_array();
  for (const std::string& e : encodings) w.value(e);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string encode_hello_reply(std::uint64_t req, std::uint64_t version,
                               const std::string& encoding) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("hello");
  w.key("req").value(req);
  w.key("version").value(version);
  w.key("encoding").value(encoding);
  w.end_object();
  return w.str();
}

std::string encode_open(std::uint64_t req, const service::SessionSpec& spec) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("open");
  w.key("req").value(req);
  w.key("spec");
  spec.to_json(w);
  w.end_object();
  return w.str();
}

std::string encode_restore(std::uint64_t req,
                           const service::SessionSpec& spec,
                           const std::string& snapshot) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("restore");
  w.key("req").value(req);
  w.key("spec");
  spec.to_json(w);
  w.key("snapshot").value(snapshot);
  w.end_object();
  return w.str();
}

std::string encode_tell(std::uint64_t req, std::uint64_t session,
                        core::ConfigId config,
                        const core::RunResult& result) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("tell");
  w.key("req").value(req);
  w.key("session").value(session);
  w.key("config").value(static_cast<std::uint64_t>(config));
  w.key("result");
  run_result_to_json(w, result);
  w.end_object();
  return w.str();
}

std::string encode_next_runs(std::uint64_t req) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("next_runs");
  w.key("req").value(req);
  w.end_object();
  return w.str();
}

std::string encode_snapshot_request(std::uint64_t req, std::uint64_t session) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("snapshot");
  w.key("req").value(req);
  w.key("session").value(session);
  w.end_object();
  return w.str();
}

std::string encode_result_request(std::uint64_t req, std::uint64_t session) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("result");
  w.key("req").value(req);
  w.key("session").value(session);
  w.end_object();
  return w.str();
}

std::string encode_close(std::uint64_t req, std::uint64_t session) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("close");
  w.key("req").value(req);
  w.key("session").value(session);
  w.end_object();
  return w.str();
}

std::string encode_opened(std::uint64_t req, std::uint64_t session) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("opened");
  w.key("req").value(req);
  w.key("session").value(session);
  w.end_object();
  return w.str();
}

std::string encode_told(std::uint64_t req, std::uint64_t session,
                        bool finished, bool quarantined,
                        const std::string& stop_reason) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("told");
  w.key("req").value(req);
  w.key("session").value(session);
  w.key("finished").value(finished);
  w.key("quarantined").value(quarantined);
  w.key("stop_reason").value(stop_reason);
  w.end_object();
  return w.str();
}

std::string encode_run(const service::PendingRun& run) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("run");
  w.key("session").value(run.session);
  w.key("config").value(static_cast<std::uint64_t>(run.config));
  w.key("attempt").value(run.attempt);
  // +infinity (no timeout) is encoded by omission, as in RunPolicy.
  if (std::isfinite(run.timeout_seconds)) {
    w.key("timeout_seconds").value_exact(run.timeout_seconds);
  }
  w.key("start_delay").value_exact(run.start_delay);
  w.end_object();
  return w.str();
}

std::string encode_snapshot_reply(std::uint64_t req, std::uint64_t session,
                                  const std::string& data) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("snapshot");
  w.key("req").value(req);
  w.key("session").value(session);
  w.key("data").value(data);
  w.end_object();
  return w.str();
}

std::string encode_result_reply(std::uint64_t req, std::uint64_t session,
                                bool finished, bool quarantined,
                                const std::string& stop_reason,
                                const core::OptimizerResult& result) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("result");
  w.key("req").value(req);
  w.key("session").value(session);
  w.key("finished").value(finished);
  w.key("quarantined").value(quarantined);
  w.key("stop_reason").value(stop_reason);
  w.key("result");
  optimizer_result_to_json(w, result);
  w.end_object();
  return w.str();
}

std::string encode_closed(std::uint64_t req, std::uint64_t session) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("closed");
  w.key("req").value(req);
  w.key("session").value(session);
  w.end_object();
  return w.str();
}

std::string encode_error(std::uint64_t req, const std::string& code,
                         const std::string& message, bool fatal) {
  util::JsonWriter w;
  w.begin_object();
  w.key("type").value("error");
  w.key("req").value(req);
  w.key("code").value(code);
  w.key("message").value(message);
  w.key("fatal").value(fatal);
  w.end_object();
  return w.str();
}

void run_result_to_json(util::JsonWriter& w, const core::RunResult& r) {
  w.begin_object();
  w.key("runtime_seconds").value_exact(r.runtime_seconds);
  w.key("cost").value_exact(r.cost);
  w.key("timed_out").value(r.timed_out);
  w.key("outcome").value(outcome_name(r.outcome));
  if (!r.metrics.empty()) {
    w.key("metrics").begin_array();
    for (double m : r.metrics) w.value_exact(m);
    w.end_array();
  }
  w.end_object();
}

core::RunResult run_result_from_json(const util::JsonValue& v) {
  core::RunResult r;
  r.runtime_seconds = v.at("runtime_seconds").as_double();
  r.cost = v.at("cost").as_double();
  r.timed_out = v.at("timed_out").as_bool();
  r.outcome = outcome_from_name(v.at("outcome").as_string());
  if (const auto* m = v.find("metrics")) {
    for (const util::JsonValue& x : m->items()) {
      r.metrics.push_back(x.as_double());
    }
  }
  return r;
}

void optimizer_result_to_json(util::JsonWriter& w,
                              const core::OptimizerResult& r) {
  w.begin_object();
  if (r.recommendation.has_value()) {
    w.key("recommendation")
        .value(static_cast<std::uint64_t>(*r.recommendation));
  } else {
    w.key("recommendation").null();
  }
  w.key("recommendation_feasible").value(r.recommendation_feasible);
  w.key("history").begin_array();
  for (const core::Sample& s : r.history) {
    w.begin_object();
    w.key("id").value(static_cast<std::uint64_t>(s.id));
    w.key("runtime_seconds").value_exact(s.runtime_seconds);
    w.key("cost").value_exact(s.cost);
    w.key("feasible").value(s.feasible);
    w.end_object();
  }
  w.end_array();
  w.key("failures").begin_array();
  for (const core::FailureRecord& f : r.failures) {
    w.begin_object();
    w.key("id").value(static_cast<std::uint64_t>(f.id));
    w.key("cost").value_exact(f.cost);
    w.key("after_samples").value(static_cast<std::uint64_t>(f.after_samples));
    w.end_object();
  }
  w.end_array();
  w.key("budget_spent").value_exact(r.budget_spent);
  w.key("budget_spent_on_failures").value_exact(r.budget_spent_on_failures);
  w.key("decision_seconds").value_exact(r.decision_seconds);
  w.key("decisions").value(static_cast<std::uint64_t>(r.decisions));
  w.end_object();
}

core::OptimizerResult optimizer_result_from_json(const util::JsonValue& v) {
  core::OptimizerResult r;
  const util::JsonValue& rec = v.at("recommendation");
  if (!rec.is_null()) {
    r.recommendation = static_cast<core::ConfigId>(rec.as_uint());
  }
  r.recommendation_feasible = v.at("recommendation_feasible").as_bool();
  for (const util::JsonValue& s : v.at("history").items()) {
    core::Sample sample;
    sample.id = static_cast<core::ConfigId>(s.at("id").as_uint());
    sample.runtime_seconds = s.at("runtime_seconds").as_double();
    sample.cost = s.at("cost").as_double();
    sample.feasible = s.at("feasible").as_bool();
    r.history.push_back(sample);
  }
  for (const util::JsonValue& f : v.at("failures").items()) {
    core::FailureRecord rec2;
    rec2.id = static_cast<core::ConfigId>(f.at("id").as_uint());
    rec2.cost = f.at("cost").as_double();
    rec2.after_samples =
        static_cast<std::size_t>(f.at("after_samples").as_uint());
    r.failures.push_back(rec2);
  }
  r.budget_spent = v.at("budget_spent").as_double();
  r.budget_spent_on_failures = v.at("budget_spent_on_failures").as_double();
  r.decision_seconds = v.at("decision_seconds").as_double();
  r.decisions = static_cast<std::size_t>(v.at("decisions").as_uint());
  return r;
}

}  // namespace lynceus::net

#include "net/tuning_client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "net/binary_codec.hpp"

namespace lynceus::net {

TuningClient::TuningClient(const std::string& host, std::uint16_t port,
                           std::size_t max_frame_bytes, WireMode wire)
    : sock_(connect_tcp(host, port)), frames_(max_frame_bytes) {
  if (wire == WireMode::kJson) return;
  // The hello handshake (net/protocol.hpp): both the request and the
  // reply are JSON; the chosen encoding applies to everything after.
  std::vector<std::string> offer;
  offer.emplace_back(wire_encoding_name(WireEncoding::kBinary));
  if (wire == WireMode::kNegotiate) {
    offer.emplace_back(wire_encoding_name(WireEncoding::kJson));
  }
  const std::uint64_t req = next_req_++;
  send_payload(encode_hello_request(req, kProtocolVersion, offer));
  const ServerMessage m = await_reply(req);
  if (m.type != ServerMessage::Type::Hello) {
    throw ProtocolError("bad_message", "expected hello reply");
  }
  if (m.version != kProtocolVersion) {
    throw ProtocolError("bad_negotiation",
                        "server negotiated unsupported protocol version " +
                            std::to_string(m.version));
  }
  WireEncoding chosen;
  if (!wire_encoding_from_name(m.encoding, chosen)) {
    throw ProtocolError("bad_negotiation",
                        "server picked unknown encoding '" + m.encoding + "'");
  }
  enc_ = chosen;
}

void TuningClient::send_raw(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(sock_.fd(), bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw SocketError(std::string("send: ") + std::strerror(errno));
  }
}

void TuningClient::send_payload(const std::string& payload) {
  send_raw(encode_frame(payload));
}

ServerMessage TuningClient::read_message() {
  std::string payload;
  while (!frames_.next(payload)) {
    char buf[16384];
    const ssize_t n = ::recv(sock_.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      frames_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = (n == 0);
    throw SocketError(n == 0 ? "connection closed by server"
                             : std::string("recv: ") + std::strerror(errno));
  }
  return parse_server_message_wire(enc_, payload);
}

ServerMessage TuningClient::await_reply(std::uint64_t req) {
  for (;;) {
    ServerMessage m = read_message();
    if (m.type == ServerMessage::Type::Run) {
      runs_.push_back(m.run);
      continue;
    }
    if (m.type == ServerMessage::Type::Error) {
      throw ProtocolError(m.code, m.message);
    }
    if (m.req == req) return m;
    // A reply to someone else's request on a single-driver connection is
    // a protocol breach; fail loudly rather than mis-route it.
    throw ProtocolError("bad_message",
                        "reply for unexpected req " + std::to_string(m.req));
  }
}

std::uint64_t TuningClient::open(const service::SessionSpec& spec) {
  const std::uint64_t req = next_req_++;
  send_payload(encode_open_wire(enc_, req, spec));
  const ServerMessage m = await_reply(req);
  if (m.type != ServerMessage::Type::Opened) {
    throw ProtocolError("bad_message", "expected opened reply");
  }
  active_.insert(m.session);
  return m.session;
}

std::uint64_t TuningClient::restore(const service::SessionSpec& spec,
                                    const std::string& snapshot) {
  const std::uint64_t req = next_req_++;
  send_payload(encode_restore_wire(enc_, req, spec, snapshot));
  const ServerMessage m = await_reply(req);
  if (m.type != ServerMessage::Type::Opened) {
    throw ProtocolError("bad_message", "expected opened reply");
  }
  active_.insert(m.session);
  // A restored session's outstanding runs predate this connection; ask
  // the server to re-push whatever the session is still waiting on.
  send_payload(encode_next_runs_wire(enc_, next_req_++));
  return m.session;
}

TuningClient::TellStatus TuningClient::tell(std::uint64_t session,
                                            core::ConfigId config,
                                            const core::RunResult& result) {
  const std::uint64_t req = next_req_++;
  send_payload(encode_tell_wire(enc_, req, session, config, result));
  const ServerMessage m = await_reply(req);
  if (m.type != ServerMessage::Type::Told) {
    throw ProtocolError("bad_message", "expected told reply");
  }
  if (m.finished || m.quarantined) active_.erase(session);
  return TellStatus{m.finished, m.quarantined, m.stop_reason};
}

std::string TuningClient::snapshot(std::uint64_t session) {
  const std::uint64_t req = next_req_++;
  send_payload(encode_snapshot_request_wire(enc_, req, session));
  const ServerMessage m = await_reply(req);
  if (m.type != ServerMessage::Type::Snapshot) {
    throw ProtocolError("bad_message", "expected snapshot reply");
  }
  return m.data;
}

TuningClient::ResultReply TuningClient::result(std::uint64_t session) {
  const std::uint64_t req = next_req_++;
  send_payload(encode_result_request_wire(enc_, req, session));
  const ServerMessage m = await_reply(req);
  if (m.type != ServerMessage::Type::Result) {
    throw ProtocolError("bad_message", "expected result reply");
  }
  return ResultReply{m.result, m.finished, m.quarantined, m.stop_reason};
}

void TuningClient::close_session(std::uint64_t session) {
  const std::uint64_t req = next_req_++;
  send_payload(encode_close_wire(enc_, req, session));
  const ServerMessage m = await_reply(req);
  if (m.type != ServerMessage::Type::Closed) {
    throw ProtocolError("bad_message", "expected closed reply");
  }
  active_.erase(session);
  // Drop buffered runs of the closed session: the server will never
  // accept a tell for them.
  for (auto it = runs_.begin(); it != runs_.end();) {
    it = it->session == session ? runs_.erase(it) : std::next(it);
  }
}

std::optional<service::PendingRun> TuningClient::take_run(bool wait) {
  for (;;) {
    if (!runs_.empty()) {
      service::PendingRun run = runs_.front();
      runs_.pop_front();
      return run;
    }
    if (!wait) return std::nullopt;
    const ServerMessage m = read_message();
    if (m.type == ServerMessage::Type::Run) {
      runs_.push_back(m.run);
    } else if (m.type == ServerMessage::Type::Error) {
      throw ProtocolError(m.code, m.message);
    } else {
      throw ProtocolError("bad_message", "unsolicited non-run message");
    }
  }
}

void TuningClient::drain(eval::AsyncTableRunner& runner) {
  // Runs submitted to the runner but not yet completed, per session —
  // needed to distinguish "waiting on the simulator" from "waiting on a
  // server push".
  std::size_t outstanding = 0;
  while (!active_.empty()) {
    while (!runs_.empty()) {
      const service::PendingRun run = runs_.front();
      runs_.pop_front();
      eval::AsyncTableRunner::SubmitOptions opts;
      opts.timeout_seconds = run.timeout_seconds;
      opts.attempt = run.attempt;
      opts.start_delay = run.start_delay;
      runner.submit(run.session, run.config, opts);
      ++outstanding;
    }
    if (outstanding > 0) {
      const std::optional<eval::AsyncTableRunner::Completion> done =
          runner.next_completion();
      if (!done.has_value()) {
        // Only forever-hung runs remain: their sessions can never
        // finish. Mirror service::drain() and leave them unfinished.
        return;
      }
      --outstanding;
      if (active_.count(done->tag) == 0) continue;  // session closed late
      tell(done->tag, done->config, done->result);
      continue;
    }
    if (active_.empty()) break;
    // No local work: the server owes pushes (e.g. right after an open).
    // Re-queue the popped run so the submit loop above picks it up.
    std::optional<service::PendingRun> pushed = take_run(/*wait=*/true);
    if (pushed.has_value()) runs_.push_front(*pushed);
  }
}

}  // namespace lynceus::net

#pragma once

/// \file binary_codec.hpp
/// The compact binary frame body of the wire protocol — the negotiated
/// alternative to JSON (grammar and handshake: net/protocol.hpp). One
/// tag byte, varint (LEB128) integers and lengths, and raw
/// little-endian IEEE-754 doubles, so config ids and run results cross
/// the wire without any text formatting or parsing. Doubles travel as
/// bit patterns: the binary twin of JsonWriter::value_exact, so the
/// determinism contract (remote trajectory byte-identical to solo)
/// holds under either encoding. Session specs and snapshots remain JSON
/// documents carried as length-prefixed bytes — they cross once per
/// session and their JSON codecs are the pinned ones.
///
/// Decoding throws std::runtime_error on anything malformed (unknown
/// tag, truncated varint/double/bytes, over-long varint, non-0/1 bool,
/// trailing bytes after a complete message); the transport maps that to
/// a fatal "bad_message" error, exactly like a JSON parse failure.
///
/// The `*_wire` helpers dispatch on WireEncoding so the server's shard
/// loops and the client encode each message in whatever the connection
/// negotiated without branching at every call site.

#include <cstdint>
#include <string>

#include "core/types.hpp"
#include "net/protocol.hpp"
#include "service/session_spec.hpp"

namespace lynceus::net {

// --- Binary parsers (counterparts of parse_request / parse_server_message).

[[nodiscard]] Request parse_binary_request(const std::string& payload);
[[nodiscard]] ServerMessage parse_binary_server_message(
    const std::string& payload);

// --- Binary encoders (payloads; wrap with encode_frame before writing).

[[nodiscard]] std::string binary_encode_open(std::uint64_t req,
                                             const service::SessionSpec& spec);
[[nodiscard]] std::string binary_encode_restore(
    std::uint64_t req, const service::SessionSpec& spec,
    const std::string& snapshot);
[[nodiscard]] std::string binary_encode_tell(std::uint64_t req,
                                             std::uint64_t session,
                                             core::ConfigId config,
                                             const core::RunResult& result);
[[nodiscard]] std::string binary_encode_next_runs(std::uint64_t req);
[[nodiscard]] std::string binary_encode_snapshot_request(std::uint64_t req,
                                                         std::uint64_t session);
[[nodiscard]] std::string binary_encode_result_request(std::uint64_t req,
                                                       std::uint64_t session);
[[nodiscard]] std::string binary_encode_close(std::uint64_t req,
                                              std::uint64_t session);

[[nodiscard]] std::string binary_encode_opened(std::uint64_t req,
                                               std::uint64_t session);
[[nodiscard]] std::string binary_encode_told(std::uint64_t req,
                                             std::uint64_t session,
                                             bool finished, bool quarantined,
                                             const std::string& stop_reason);
/// `run.session` must already hold the wire (global) session id.
[[nodiscard]] std::string binary_encode_run(const service::PendingRun& run);
[[nodiscard]] std::string binary_encode_snapshot_reply(std::uint64_t req,
                                                       std::uint64_t session,
                                                       const std::string& data);
[[nodiscard]] std::string binary_encode_result_reply(
    std::uint64_t req, std::uint64_t session, bool finished, bool quarantined,
    const std::string& stop_reason, const core::OptimizerResult& result);
[[nodiscard]] std::string binary_encode_closed(std::uint64_t req,
                                               std::uint64_t session);
[[nodiscard]] std::string binary_encode_error(std::uint64_t req,
                                              const std::string& code,
                                              const std::string& message,
                                              bool fatal);

// --- Encoding-dispatching helpers (JSON or binary per the connection).

[[nodiscard]] Request parse_request_wire(WireEncoding e,
                                         const std::string& payload);
[[nodiscard]] ServerMessage parse_server_message_wire(
    WireEncoding e, const std::string& payload);

[[nodiscard]] std::string encode_open_wire(WireEncoding e, std::uint64_t req,
                                           const service::SessionSpec& spec);
[[nodiscard]] std::string encode_restore_wire(WireEncoding e, std::uint64_t req,
                                              const service::SessionSpec& spec,
                                              const std::string& snapshot);
[[nodiscard]] std::string encode_tell_wire(WireEncoding e, std::uint64_t req,
                                           std::uint64_t session,
                                           core::ConfigId config,
                                           const core::RunResult& result);
[[nodiscard]] std::string encode_next_runs_wire(WireEncoding e,
                                                std::uint64_t req);
[[nodiscard]] std::string encode_snapshot_request_wire(WireEncoding e,
                                                       std::uint64_t req,
                                                       std::uint64_t session);
[[nodiscard]] std::string encode_result_request_wire(WireEncoding e,
                                                     std::uint64_t req,
                                                     std::uint64_t session);
[[nodiscard]] std::string encode_close_wire(WireEncoding e, std::uint64_t req,
                                            std::uint64_t session);

[[nodiscard]] std::string encode_opened_wire(WireEncoding e, std::uint64_t req,
                                             std::uint64_t session);
[[nodiscard]] std::string encode_told_wire(WireEncoding e, std::uint64_t req,
                                           std::uint64_t session, bool finished,
                                           bool quarantined,
                                           const std::string& stop_reason);
[[nodiscard]] std::string encode_run_wire(WireEncoding e,
                                          const service::PendingRun& run);
[[nodiscard]] std::string encode_snapshot_reply_wire(WireEncoding e,
                                                     std::uint64_t req,
                                                     std::uint64_t session,
                                                     const std::string& data);
[[nodiscard]] std::string encode_result_reply_wire(
    WireEncoding e, std::uint64_t req, std::uint64_t session, bool finished,
    bool quarantined, const std::string& stop_reason,
    const core::OptimizerResult& result);
[[nodiscard]] std::string encode_closed_wire(WireEncoding e, std::uint64_t req,
                                             std::uint64_t session);
[[nodiscard]] std::string encode_error_wire(WireEncoding e, std::uint64_t req,
                                            const std::string& code,
                                            const std::string& message,
                                            bool fatal);

}  // namespace lynceus::net

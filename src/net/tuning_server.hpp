#pragma once

/// \file tuning_server.hpp
/// The TCP front-end of the tuning service: `net::TuningServer` turns the
/// single-process `service::TuningService` into a sharded network server
/// speaking the length-prefixed JSON protocol of net/protocol.hpp. The
/// step from "concurrent library" to "server" on the ROADMAP.
///
/// ## Thread-per-role layout
///
/// One server runs 2·K + 1 threads for K shards, wired exclusively by
/// bounded lock-free SPSC queues (util/spsc_queue.hpp) — each lane has
/// exactly one writer and one reader by construction, so no lock is ever
/// taken on the request path:
///
///   * **1 acceptor** owns the listening socket and assigns each accepted
///     connection to transport `conn_id % K` over an acceptor→transport
///     lane. When a transport's accept lane is full, the acceptor simply
///     stops accepting — the kernel backlog is the natural backpressure.
///   * **K transport threads** do framing and decode ONLY: each runs an
///     epoll readiness loop (net/event_loop.hpp) over its connections
///     plus a wakeup fd, splits byte streams into frames, parses each
///     frame into a typed Request (JSON or negotiated binary —
///     net/protocol.hpp, net/binary_codec.hpp), and pushes it down a
///     transport→shard lane — never touching optimizer state. One
///     transport thread multiplexes hundreds to thousands of
///     connections; read buffers and frame scratch are reused so
///     steady-state framing is allocation-free. Completions (encoded
///     reply frames) come back over shard→transport lanes and are
///     flushed to the owning connection. Malformed input (bad frame,
///     bad JSON/binary, unknown message, broken handshake) is answered
///     with a typed fatal `error` frame and the connection is closed —
///     the service loops never see it.
///   * **K service-loop threads** each own one `service::TuningService`
///     (FIFO event loop, per-shard RootCache): pop requests, apply them,
///     sweep `next_runs()`, and push replies + server-initiated `run`
///     frames back to the transports. The server itself executes no
///     profiling runs — remote drivers own their clusters (or replay
///     tables) and tell results back.
///
/// ## Backpressure (parked readers, never blocking spins)
///
/// No thread ever spin-blocks on a full SPSC lane. When a transport
/// cannot push a decoded request because its lane into the owning shard
/// is full, it *parks* the connection: the request waits in a
/// per-connection pending queue, the connection's read interest is
/// dropped (so the kernel's TCP window throttles the remote driver),
/// and decoding resumes — in order — once the lane drains. Each park is
/// counted per lane and surfaced with the lane's high-water mark via
/// request_lane_stats(), so saturation is observable instead of silent.
/// In the reverse direction a shard never blocks either: replies that
/// do not fit their lane overflow into a shard-local queue flushed
/// ahead of new work. Threads sleep on wakeup fds / the event loop when
/// idle, and are poked by their producers — no busy ticks.
///
/// ## Sharding
///
/// Session ids are allocated from one global counter at decode time and
/// hash-partitioned across shards by `id % K`, so every request for a
/// session deterministically routes to the shard owning it and ids are
/// unique across the server. A connection's sessions may live on any
/// subset of shards; when a connection dies, every shard closes the
/// sessions it owned for it.
///
/// ## Determinism contract
///
/// A session opened over the wire is byte-identical to the same
/// SessionSpec opened in process: specs, results and snapshots cross the
/// wire through the bit-exact codec (JsonWriter::value_exact), each
/// session lives entirely on one single-threaded shard loop, and the
/// per-session trajectory contract of service/tuning_service.hpp is
/// interleaving-independent — so neither the transport threads, the
/// shard count, nor the number of concurrent connections can move a byte
/// of any trajectory. tests/test_net_service.cpp pins 64 remote sessions
/// across shards against their solo in-process runs.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/types.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/session_spec.hpp"
#include "util/spsc_queue.hpp"

namespace lynceus::net {

class TuningServer {
 public:
  /// Which frame-body encodings the server will negotiate (the hello
  /// handshake in net/protocol.hpp). kNegotiate accepts both and takes
  /// the client's first offered preference; kJsonOnly never picks
  /// binary; kBinaryOnly rejects connections that do not negotiate
  /// binary (including legacy clients that skip the hello) with a
  /// typed "bad_negotiation" error.
  enum class WirePolicy { kNegotiate, kJsonOnly, kBinaryOnly };

  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral (query the bound port with port()).
    std::uint16_t port = 0;
    /// Independent service loops (>= 1); sessions are partitioned by
    /// `session_id % shards`.
    std::size_t shards = 2;
    /// Per-shard RootCache capacity (0 = off). Sessions sharing a shard
    /// AND a recurrent problem warm-start each other, exactly as in the
    /// in-process service; trajectories are unaffected.
    std::size_t root_cache_capacity = 0;
    bool cache_store_models = false;
    /// Default failure policy for sessions whose spec carries none.
    service::RunPolicy run_policy;
    /// Frames larger than this are a fatal protocol error.
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Capacity of each SPSC lane. Requests/replies queue here while the
    /// peer thread is busy; a full request lane parks the connection's
    /// read interest (see "Backpressure" above) instead of blocking.
    std::size_t lane_capacity = 1024;
    /// Resolve `problem_ref`s naming the bundled evaluation suites
    /// ("tf" | "scout" | "cherrypick") by building the replay dataset on
    /// first use. Off = only problems injected via register_problem().
    bool bundled_workloads = true;
    /// Encodings the hello handshake may pick (default: both).
    WirePolicy wire = WirePolicy::kNegotiate;
    /// Pin shard s to core s and transport t to core K+t (mod cores) —
    /// opt-in cache/lane locality (util/affinity.hpp). Trajectories are
    /// unaffected either way.
    bool pin_threads = false;
  };

  /// Saturation counters of one transport→shard request lane
  /// (request_lane_stats()).
  struct LaneStats {
    std::size_t transport = 0;
    std::size_t shard = 0;
    std::size_t capacity = 0;
    /// Highest occupancy any push observed (SpscQueue::high_water).
    std::size_t high_water = 0;
    /// Requests that found the lane full and parked their connection.
    std::size_t stalls = 0;
  };

  /// Binds, spawns the acceptor/transport/shard threads, and serves until
  /// stop() or destruction.
  TuningServer();
  explicit TuningServer(Options options);
  ~TuningServer();

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Registers `problem` under (suite, job) for ProblemRef resolution —
  /// how embedders (and tests) serve problems the bundled suites do not
  /// cover. A registered problem's budget is its own; the ref's
  /// budget_multiplier is ignored for it. Thread-safe; typically called
  /// before clients connect.
  void register_problem(const std::string& suite, const std::string& job,
                        core::OptimizationProblem problem);

  /// The bound listening port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, closes every connection, joins all threads. Open
  /// sessions are discarded (snapshot first for a graceful drain).
  /// Idempotent.
  void stop();

  /// Sessions ever opened per shard (monitoring/tests; racy snapshot).
  [[nodiscard]] std::vector<std::size_t> shard_session_counts() const;

  /// Per-lane saturation stats for all K·K transport→shard request
  /// lanes (monitoring/tests; racy snapshot). Ordered [t][s] flattened.
  [[nodiscard]] std::vector<LaneStats> request_lane_stats() const;

 private:
  /// A connection handed from the acceptor to its transport thread.
  struct NewConn {
    int fd = -1;
    std::uint64_t id = 0;
  };

  /// One decoded request on a transport→shard lane.
  struct ShardRequest {
    enum class Kind { Request, ConnClosed };
    Kind kind = Kind::Request;
    std::uint64_t conn = 0;
    /// The connection's negotiated frame encoding — the shard encodes
    /// every reply (and every pushed run for sessions this request
    /// opens) with it.
    WireEncoding enc = WireEncoding::kJson;
    /// Pre-allocated global session id (Open/Restore only; the transport
    /// allocates so it can route the request to `id % shards`).
    std::uint64_t global_session = 0;
    Request request;
  };

  /// One encoded reply (or pushed run) on a shard→transport lane.
  struct TransportReply {
    std::uint64_t conn = 0;
    std::string bytes;  ///< already framed
    /// Fatal: flush, then close the connection.
    bool close_conn = false;
  };

  void acceptor_loop();
  void transport_loop(std::size_t t);
  void shard_loop(std::size_t s);

  /// Resolves the spec's problem against the registry / bundled suites.
  /// Returned pointer is stable for the server's lifetime. Throws
  /// std::invalid_argument when unresolvable.
  const core::OptimizationProblem* resolve_problem(
      const service::SessionSpec& spec);

  Options options_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> next_session_{0};

  std::vector<std::unique_ptr<util::SpscQueue<NewConn>>> accept_lanes_;
  /// request_lanes_[t][s]: transport t → shard s.
  std::vector<std::vector<std::unique_ptr<util::SpscQueue<ShardRequest>>>>
      request_lanes_;
  /// reply_lanes_[s][t]: shard s → transport t.
  std::vector<std::vector<std::unique_ptr<util::SpscQueue<TransportReply>>>>
      reply_lanes_;
  /// Doorbells: producers ring these after pushing onto a lane so the
  /// consumer (transport event loop / idle shard) wakes immediately.
  std::vector<std::unique_ptr<WakeupFd>> transport_wakeups_;
  std::vector<std::unique_ptr<WakeupFd>> shard_wakeups_;
  /// Park events per request lane, flattened [t * shards + s].
  std::unique_ptr<std::atomic<std::size_t>[]> lane_stalls_;

  mutable std::mutex problems_mutex_;
  /// Stable-address problem storage, keyed "suite\njob" (registered) or
  /// "suite\njob\nb" (bundled, built on first use).
  std::map<std::string, std::unique_ptr<core::OptimizationProblem>> problems_;

  std::unique_ptr<std::atomic<std::size_t>[]> shard_opened_;
  std::vector<std::thread> threads_;
};

}  // namespace lynceus::net

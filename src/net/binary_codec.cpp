#include "net/binary_codec.hpp"

#include <cstring>
#include <stdexcept>

#include "util/json.hpp"

namespace lynceus::net {

namespace {

// Message tags (net/protocol.hpp "Binary frame grammar"). Server tags
// are the request tag with the high bit set.
enum : std::uint8_t {
  kTagOpen = 0x01,
  kTagRestore = 0x02,
  kTagTell = 0x03,
  kTagNextRuns = 0x04,
  kTagSnapshotReq = 0x05,
  kTagResultReq = 0x06,
  kTagClose = 0x07,
  kTagOpened = 0x81,
  kTagTold = 0x82,
  kTagRun = 0x83,
  kTagSnapshotReply = 0x84,
  kTagResultReply = 0x85,
  kTagClosed = 0x86,
  kTagError = 0x87,
};

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("binary codec: ") + what);
}

/// Append-only encoder over a std::string (varint/double/bytes per the
/// grammar in protocol.hpp).
class Writer {
 public:
  explicit Writer(std::uint8_t tag) { out_.push_back(static_cast<char>(tag)); }

  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<char>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<char>(v));
  }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    char raw[8];
    for (int i = 0; i < 8; ++i) {
      raw[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
    }
    out_.append(raw, sizeof(raw));
  }

  void boolean(bool v) { out_.push_back(v ? '\1' : '\0'); }

  void byte(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void bytes(const std::string& v) {
    varint(v.size());
    out_.append(v);
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked decoder; every read throws on truncation.
class Reader {
 public:
  explicit Reader(const std::string& payload)
      : p_(payload.data()), n_(payload.size()) {}

  std::uint8_t byte() {
    if (off_ >= n_) fail("truncated message");
    return static_cast<std::uint8_t>(p_[off_++]);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (off_ >= n_) fail("truncated varint");
      const auto b = static_cast<std::uint8_t>(p_[off_++]);
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        // The 10th byte may only contribute the top bit of a u64.
        if (shift == 63 && b > 1) fail("over-long varint");
        return v;
      }
    }
    fail("over-long varint");
  }

  double f64() {
    if (n_ - off_ < 8) fail("truncated double");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(p_[off_ + i]))
              << (8 * i);
    }
    off_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() {
    const std::uint8_t b = byte();
    if (b > 1) fail("bool byte is not 0 or 1");
    return b == 1;
  }

  std::string bytes() {
    const std::uint64_t len = varint();
    if (len > n_ - off_) fail("bytes length exceeds the frame");
    std::string out(p_ + off_, static_cast<std::size_t>(len));
    off_ += static_cast<std::size_t>(len);
    return out;
  }

  /// A complete message must consume the whole frame: the frame header
  /// already carries the length, so slack bytes mean a corrupt peer.
  void expect_end() const {
    if (off_ != n_) fail("trailing bytes after message");
  }

 private:
  const char* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

std::uint8_t outcome_code(core::RunOutcome o) {
  switch (o) {
    case core::RunOutcome::kOk: return 0;
    case core::RunOutcome::kFailed: return 1;
    case core::RunOutcome::kTimedOut: return 2;
  }
  return 0;
}

core::RunOutcome outcome_from_code(std::uint8_t c) {
  switch (c) {
    case 0: return core::RunOutcome::kOk;
    case 1: return core::RunOutcome::kFailed;
    case 2: return core::RunOutcome::kTimedOut;
    default: fail("unknown run outcome code");
  }
}

void put_run_result(Writer& w, const core::RunResult& r) {
  w.f64(r.runtime_seconds);
  w.f64(r.cost);
  w.boolean(r.timed_out);
  w.byte(outcome_code(r.outcome));
  w.varint(r.metrics.size());
  for (double m : r.metrics) w.f64(m);
}

core::RunResult get_run_result(Reader& r) {
  core::RunResult out;
  out.runtime_seconds = r.f64();
  out.cost = r.f64();
  out.timed_out = r.boolean();
  out.outcome = outcome_from_code(r.byte());
  const std::uint64_t metrics = r.varint();
  out.metrics.reserve(static_cast<std::size_t>(metrics));
  for (std::uint64_t i = 0; i < metrics; ++i) out.metrics.push_back(r.f64());
  return out;
}

void put_optimizer_result(Writer& w, const core::OptimizerResult& r) {
  w.boolean(r.recommendation.has_value());
  if (r.recommendation.has_value()) {
    w.varint(static_cast<std::uint64_t>(*r.recommendation));
  }
  w.boolean(r.recommendation_feasible);
  w.varint(r.history.size());
  for (const core::Sample& s : r.history) {
    w.varint(static_cast<std::uint64_t>(s.id));
    w.f64(s.runtime_seconds);
    w.f64(s.cost);
    w.boolean(s.feasible);
  }
  w.varint(r.failures.size());
  for (const core::FailureRecord& f : r.failures) {
    w.varint(static_cast<std::uint64_t>(f.id));
    w.f64(f.cost);
    w.varint(static_cast<std::uint64_t>(f.after_samples));
  }
  w.f64(r.budget_spent);
  w.f64(r.budget_spent_on_failures);
  w.f64(r.decision_seconds);
  w.varint(static_cast<std::uint64_t>(r.decisions));
}

core::OptimizerResult get_optimizer_result(Reader& r) {
  core::OptimizerResult out;
  if (r.boolean()) {
    out.recommendation = static_cast<core::ConfigId>(r.varint());
  }
  out.recommendation_feasible = r.boolean();
  const std::uint64_t history = r.varint();
  out.history.reserve(static_cast<std::size_t>(history));
  for (std::uint64_t i = 0; i < history; ++i) {
    core::Sample s;
    s.id = static_cast<core::ConfigId>(r.varint());
    s.runtime_seconds = r.f64();
    s.cost = r.f64();
    s.feasible = r.boolean();
    out.history.push_back(s);
  }
  const std::uint64_t failures = r.varint();
  out.failures.reserve(static_cast<std::size_t>(failures));
  for (std::uint64_t i = 0; i < failures; ++i) {
    core::FailureRecord f;
    f.id = static_cast<core::ConfigId>(r.varint());
    f.cost = r.f64();
    f.after_samples = static_cast<std::size_t>(r.varint());
    out.failures.push_back(f);
  }
  out.budget_spent = r.f64();
  out.budget_spent_on_failures = r.f64();
  out.decision_seconds = r.f64();
  out.decisions = static_cast<std::size_t>(r.varint());
  return out;
}

std::string spec_json(const service::SessionSpec& spec) {
  util::JsonWriter w;
  spec.to_json(w);
  return w.str();
}

service::SessionSpec spec_from_bytes(const std::string& doc) {
  return service::SessionSpec::from_json(util::parse_json(doc));
}

}  // namespace

// --- Parsers ----------------------------------------------------------------

Request parse_binary_request(const std::string& payload) {
  Reader r(payload);
  Request out;
  const std::uint8_t tag = r.byte();
  switch (tag) {
    case kTagOpen:
      out.type = Request::Type::Open;
      out.req = r.varint();
      out.spec = spec_from_bytes(r.bytes());
      break;
    case kTagRestore:
      out.type = Request::Type::Restore;
      out.req = r.varint();
      out.spec = spec_from_bytes(r.bytes());
      out.snapshot = r.bytes();
      break;
    case kTagTell:
      out.type = Request::Type::Tell;
      out.req = r.varint();
      out.session = r.varint();
      out.config = static_cast<core::ConfigId>(r.varint());
      out.result = get_run_result(r);
      break;
    case kTagNextRuns:
      out.type = Request::Type::NextRuns;
      out.req = r.varint();
      break;
    case kTagSnapshotReq:
      out.type = Request::Type::Snapshot;
      out.req = r.varint();
      out.session = r.varint();
      break;
    case kTagResultReq:
      out.type = Request::Type::Result;
      out.req = r.varint();
      out.session = r.varint();
      break;
    case kTagClose:
      out.type = Request::Type::Close;
      out.req = r.varint();
      out.session = r.varint();
      break;
    default:
      fail("unknown request tag");
  }
  r.expect_end();
  return out;
}

ServerMessage parse_binary_server_message(const std::string& payload) {
  Reader r(payload);
  ServerMessage out;
  const std::uint8_t tag = r.byte();
  switch (tag) {
    case kTagOpened:
      out.type = ServerMessage::Type::Opened;
      out.req = r.varint();
      out.session = r.varint();
      break;
    case kTagTold:
      out.type = ServerMessage::Type::Told;
      out.req = r.varint();
      out.session = r.varint();
      out.finished = r.boolean();
      out.quarantined = r.boolean();
      out.stop_reason = r.bytes();
      break;
    case kTagRun:
      out.type = ServerMessage::Type::Run;
      out.session = r.varint();
      out.run.session = out.session;
      out.run.config = static_cast<core::ConfigId>(r.varint());
      out.run.attempt = r.varint();
      out.run.timeout_seconds = r.f64();
      out.run.start_delay = r.f64();
      break;
    case kTagSnapshotReply:
      out.type = ServerMessage::Type::Snapshot;
      out.req = r.varint();
      out.session = r.varint();
      out.data = r.bytes();
      break;
    case kTagResultReply:
      out.type = ServerMessage::Type::Result;
      out.req = r.varint();
      out.session = r.varint();
      out.finished = r.boolean();
      out.quarantined = r.boolean();
      out.stop_reason = r.bytes();
      out.result = get_optimizer_result(r);
      break;
    case kTagClosed:
      out.type = ServerMessage::Type::Closed;
      out.req = r.varint();
      out.session = r.varint();
      break;
    case kTagError:
      out.type = ServerMessage::Type::Error;
      out.req = r.varint();
      out.code = r.bytes();
      out.message = r.bytes();
      out.fatal = r.boolean();
      break;
    default:
      fail("unknown message tag");
  }
  r.expect_end();
  return out;
}

// --- Encoders ---------------------------------------------------------------

std::string binary_encode_open(std::uint64_t req,
                               const service::SessionSpec& spec) {
  Writer w(kTagOpen);
  w.varint(req);
  w.bytes(spec_json(spec));
  return w.take();
}

std::string binary_encode_restore(std::uint64_t req,
                                  const service::SessionSpec& spec,
                                  const std::string& snapshot) {
  Writer w(kTagRestore);
  w.varint(req);
  w.bytes(spec_json(spec));
  w.bytes(snapshot);
  return w.take();
}

std::string binary_encode_tell(std::uint64_t req, std::uint64_t session,
                               core::ConfigId config,
                               const core::RunResult& result) {
  Writer w(kTagTell);
  w.varint(req);
  w.varint(session);
  w.varint(static_cast<std::uint64_t>(config));
  put_run_result(w, result);
  return w.take();
}

std::string binary_encode_next_runs(std::uint64_t req) {
  Writer w(kTagNextRuns);
  w.varint(req);
  return w.take();
}

std::string binary_encode_snapshot_request(std::uint64_t req,
                                           std::uint64_t session) {
  Writer w(kTagSnapshotReq);
  w.varint(req);
  w.varint(session);
  return w.take();
}

std::string binary_encode_result_request(std::uint64_t req,
                                         std::uint64_t session) {
  Writer w(kTagResultReq);
  w.varint(req);
  w.varint(session);
  return w.take();
}

std::string binary_encode_close(std::uint64_t req, std::uint64_t session) {
  Writer w(kTagClose);
  w.varint(req);
  w.varint(session);
  return w.take();
}

std::string binary_encode_opened(std::uint64_t req, std::uint64_t session) {
  Writer w(kTagOpened);
  w.varint(req);
  w.varint(session);
  return w.take();
}

std::string binary_encode_told(std::uint64_t req, std::uint64_t session,
                               bool finished, bool quarantined,
                               const std::string& stop_reason) {
  Writer w(kTagTold);
  w.varint(req);
  w.varint(session);
  w.boolean(finished);
  w.boolean(quarantined);
  w.bytes(stop_reason);
  return w.take();
}

std::string binary_encode_run(const service::PendingRun& run) {
  Writer w(kTagRun);
  w.varint(run.session);
  w.varint(static_cast<std::uint64_t>(run.config));
  w.varint(run.attempt);
  // No omission trick needed: +infinity has a bit pattern like any
  // other double.
  w.f64(run.timeout_seconds);
  w.f64(run.start_delay);
  return w.take();
}

std::string binary_encode_snapshot_reply(std::uint64_t req,
                                         std::uint64_t session,
                                         const std::string& data) {
  Writer w(kTagSnapshotReply);
  w.varint(req);
  w.varint(session);
  w.bytes(data);
  return w.take();
}

std::string binary_encode_result_reply(std::uint64_t req,
                                       std::uint64_t session, bool finished,
                                       bool quarantined,
                                       const std::string& stop_reason,
                                       const core::OptimizerResult& result) {
  Writer w(kTagResultReply);
  w.varint(req);
  w.varint(session);
  w.boolean(finished);
  w.boolean(quarantined);
  w.bytes(stop_reason);
  put_optimizer_result(w, result);
  return w.take();
}

std::string binary_encode_closed(std::uint64_t req, std::uint64_t session) {
  Writer w(kTagClosed);
  w.varint(req);
  w.varint(session);
  return w.take();
}

std::string binary_encode_error(std::uint64_t req, const std::string& code,
                                const std::string& message, bool fatal) {
  Writer w(kTagError);
  w.varint(req);
  w.bytes(code);
  w.bytes(message);
  w.boolean(fatal);
  return w.take();
}

// --- Wire dispatch ----------------------------------------------------------

Request parse_request_wire(WireEncoding e, const std::string& payload) {
  return e == WireEncoding::kBinary ? parse_binary_request(payload)
                                    : parse_request(payload);
}

ServerMessage parse_server_message_wire(WireEncoding e,
                                        const std::string& payload) {
  return e == WireEncoding::kBinary ? parse_binary_server_message(payload)
                                    : parse_server_message(payload);
}

std::string encode_open_wire(WireEncoding e, std::uint64_t req,
                             const service::SessionSpec& spec) {
  return e == WireEncoding::kBinary ? binary_encode_open(req, spec)
                                    : encode_open(req, spec);
}

std::string encode_restore_wire(WireEncoding e, std::uint64_t req,
                                const service::SessionSpec& spec,
                                const std::string& snapshot) {
  return e == WireEncoding::kBinary
             ? binary_encode_restore(req, spec, snapshot)
             : encode_restore(req, spec, snapshot);
}

std::string encode_tell_wire(WireEncoding e, std::uint64_t req,
                             std::uint64_t session, core::ConfigId config,
                             const core::RunResult& result) {
  return e == WireEncoding::kBinary
             ? binary_encode_tell(req, session, config, result)
             : encode_tell(req, session, config, result);
}

std::string encode_next_runs_wire(WireEncoding e, std::uint64_t req) {
  return e == WireEncoding::kBinary ? binary_encode_next_runs(req)
                                    : encode_next_runs(req);
}

std::string encode_snapshot_request_wire(WireEncoding e, std::uint64_t req,
                                         std::uint64_t session) {
  return e == WireEncoding::kBinary
             ? binary_encode_snapshot_request(req, session)
             : encode_snapshot_request(req, session);
}

std::string encode_result_request_wire(WireEncoding e, std::uint64_t req,
                                       std::uint64_t session) {
  return e == WireEncoding::kBinary
             ? binary_encode_result_request(req, session)
             : encode_result_request(req, session);
}

std::string encode_close_wire(WireEncoding e, std::uint64_t req,
                              std::uint64_t session) {
  return e == WireEncoding::kBinary ? binary_encode_close(req, session)
                                    : encode_close(req, session);
}

std::string encode_opened_wire(WireEncoding e, std::uint64_t req,
                               std::uint64_t session) {
  return e == WireEncoding::kBinary ? binary_encode_opened(req, session)
                                    : encode_opened(req, session);
}

std::string encode_told_wire(WireEncoding e, std::uint64_t req,
                             std::uint64_t session, bool finished,
                             bool quarantined,
                             const std::string& stop_reason) {
  return e == WireEncoding::kBinary
             ? binary_encode_told(req, session, finished, quarantined,
                                  stop_reason)
             : encode_told(req, session, finished, quarantined, stop_reason);
}

std::string encode_run_wire(WireEncoding e, const service::PendingRun& run) {
  return e == WireEncoding::kBinary ? binary_encode_run(run) : encode_run(run);
}

std::string encode_snapshot_reply_wire(WireEncoding e, std::uint64_t req,
                                       std::uint64_t session,
                                       const std::string& data) {
  return e == WireEncoding::kBinary
             ? binary_encode_snapshot_reply(req, session, data)
             : encode_snapshot_reply(req, session, data);
}

std::string encode_result_reply_wire(WireEncoding e, std::uint64_t req,
                                     std::uint64_t session, bool finished,
                                     bool quarantined,
                                     const std::string& stop_reason,
                                     const core::OptimizerResult& result) {
  return e == WireEncoding::kBinary
             ? binary_encode_result_reply(req, session, finished, quarantined,
                                          stop_reason, result)
             : encode_result_reply(req, session, finished, quarantined,
                                   stop_reason, result);
}

std::string encode_closed_wire(WireEncoding e, std::uint64_t req,
                               std::uint64_t session) {
  return e == WireEncoding::kBinary ? binary_encode_closed(req, session)
                                    : encode_closed(req, session);
}

std::string encode_error_wire(WireEncoding e, std::uint64_t req,
                              const std::string& code,
                              const std::string& message, bool fatal) {
  return e == WireEncoding::kBinary
             ? binary_encode_error(req, code, message, fatal)
             : encode_error(req, code, message, fatal);
}

}  // namespace lynceus::net

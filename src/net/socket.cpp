#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lynceus::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

/// Resolves a host string to an IPv4 address. Numeric dotted quads go
/// through inet_pton; everything else (e.g. "localhost") through
/// getaddrinfo.
in_addr resolve_ipv4(const std::string& host) {
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw SocketError("cannot resolve host '" + host +
                      "': " + gai_strerror(rc));
  }
  addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return addr;
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const int one = 1;
  if (setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolve_ipv4(host);
  if (bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (listen(sock.fd(), backlog) != 0) throw_errno("listen");
  return sock;
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolve_ipv4(host);
  if (connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_nodelay(sock.fd());
  return sock;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

void set_nonblocking(int fd, bool on) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: some transports (e.g. AF_UNIX in future tests) lack it.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace lynceus::net

#pragma once

/// \file event_loop.hpp
/// Readiness multiplexing for the transport threads of the tuning
/// server: one `EventLoop` per transport thread watches every
/// connection it owns (hundreds to thousands of sockets) plus a
/// `WakeupFd` the acceptor and shard loops poke when they enqueue work
/// on an SPSC lane — so the transport blocks in one `wait()` call
/// instead of rebuilding a pollfd array per iteration and busy-ticking
/// for lane traffic.
///
/// On Linux the loop is epoll (O(ready) dispatch, interest registered
/// once per state change); elsewhere it degrades to poll(2) over an
/// interest map kept by the same add/modify/remove API, so the
/// transport code is platform-independent. The `WakeupFd` is an eventfd
/// on Linux and a self-pipe elsewhere; `notify()` is cheap, thread-safe
/// and coalescing (N notifies before a drain wake the loop once).
///
/// Not thread-safe (except WakeupFd::notify): each EventLoop belongs to
/// exactly one transport thread, matching the thread-per-role layout of
/// tuning_server.hpp.

#include <atomic>
#include <cstdint>
#include <vector>

namespace lynceus::net {

class EventLoop {
 public:
  struct Event {
    std::uint64_t data = 0;  ///< the token passed to add()/modify()
    bool readable = false;
    bool writable = false;
    /// Error or hangup on the fd — the owner should read to EOF / reap.
    bool broken = false;
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest; `data` comes back verbatim
  /// in Event::data (connection id, or a sentinel for the wakeup fd).
  void add(int fd, std::uint64_t data, bool want_read, bool want_write);
  /// Updates interest/token for an already-registered fd.
  void modify(int fd, std::uint64_t data, bool want_read, bool want_write);
  /// Deregisters; must be called before the fd is closed.
  void remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and fills events().
  /// Returns the number of ready events (0 on timeout). EINTR is
  /// retried internally.
  std::size_t wait(int timeout_ms);
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<Event> events_;
#ifdef __linux__
  int epoll_fd_ = -1;
  std::vector<char> raw_;  ///< epoll_event scratch, sized in wait()
#else
  struct Interest {
    int fd;
    std::uint64_t data;
    bool want_read;
    bool want_write;
  };
  std::vector<Interest> interests_;
  std::vector<char> raw_;  ///< pollfd scratch
#endif
};

/// A doorbell another thread can ring to wake an EventLoop::wait().
/// Register read_fd() with the loop; ring with notify(); clear with
/// drain() once woken. Multiple notifies coalesce into one readable
/// event.
///
/// The bell is ARMED: notify() pays its write(2) only when the consumer
/// has declared itself (about to be) blocked via arm(). A busy consumer
/// sweeps its lanes every iteration anyway, so ringing it would be a
/// wasted syscall per enqueue — on a loaded server that is the dominant
/// wire cost after the frame bodies themselves. The protocol is the
/// classic sleep/wake handshake:
///
///   consumer: arm(); re-check ALL work sources; if empty, block on
///             read_fd(); on wake drain() then disarm().
///   producer: push work; notify().
///
/// arm() and notify() are both seq_cst read-modify-writes, so either
/// the producer's notify() sees the armed flag (and rings), or the
/// consumer's post-arm() re-check sees the pushed work (and skips the
/// block). The consumer MUST re-check after arming — arming after the
/// check reintroduces the lost-wake race. notify(true) forces the ring
/// regardless of the flag (shutdown paths, where the consumer's
/// re-check list may not include the stop flag yet).
class WakeupFd {
 public:
  WakeupFd();
  ~WakeupFd();

  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  [[nodiscard]] int read_fd() const noexcept { return read_fd_; }
  /// Thread-safe; never blocks (a full pipe already guarantees a wake).
  /// Rings only when armed, unless `force`.
  void notify(bool force = false) noexcept;
  /// Owner-thread only: declare intent to block. Re-check every work
  /// source AFTER this call and before actually blocking.
  void arm() noexcept { armed_.exchange(true, std::memory_order_seq_cst); }
  /// Owner-thread only: back awake (with or without having blocked).
  void disarm() noexcept { armed_.store(false, std::memory_order_relaxed); }
  /// Owner-thread only: consume pending notifications.
  void drain() noexcept;

 private:
  /// Producer claims the ring: true -> false exactly once per sleep.
  [[nodiscard]] bool take_ring(bool force) noexcept {
    return force || armed_.exchange(false, std::memory_order_seq_cst);
  }

  std::atomic<bool> armed_{false};
  int read_fd_ = -1;
  int write_fd_ = -1;  ///< == read_fd_ for eventfd
};

}  // namespace lynceus::net

#pragma once

/// \file spsc_queue.hpp
/// A bounded lock-free single-producer/single-consumer ring buffer — the
/// sibling of the MPMC run queue in mpmc_queue.hpp, specialized for the
/// point-to-point lanes of the network front-end (src/net/): each
/// transport thread owns exactly one request lane into each service-loop
/// shard and each shard owns one completion lane back, so every lane has
/// one writer and one reader by construction and the CAS traffic of the
/// MPMC design buys nothing.
///
/// Design: classic Lamport ring with cached cursors. The producer owns
/// `tail_` and keeps a private copy of the consumer's `head_` (refreshed
/// only when the ring looks full); the consumer mirrors that with `tail_`.
/// In steady state a push is one relaxed load, one store, one release
/// store — no shared-line ping-pong until the ring actually fills or
/// drains.
///
/// Properties:
///   * `try_push` / `try_pop` are wait-free; neither blocks nor allocates
///     after construction.
///   * Strict FIFO (single producer, single consumer — there is no race to
///     order).
///   * Bounded: `try_push` returns false when full (the value is only
///     moved from on success), `try_pop` returns false when empty.
///   * `size()` is approximate under concurrency — monitoring only.
///
/// Thread-safety contract: at most ONE thread may call try_push/size
/// concurrently, and at most ONE thread may call try_pop concurrently.
/// Distinct queues are fully independent. Violating the single-writer /
/// single-reader rule is a data race; use MpmcQueue when either side has
/// more than one thread.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "util/mpmc_queue.hpp"  // kCacheLineSize

namespace lynceus::util {

template <typename T>
class SpscQueue {
 public:
  /// Builds a ring holding at most `capacity` elements (rounded up to the
  /// next power of two so index arithmetic is a mask). Capacity must be
  /// >= 1.
  explicit SpscQueue(std::size_t capacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<T[]>(capacity_)) {
    if (capacity == 0) {
      throw std::invalid_argument("SpscQueue: capacity must be >= 1");
    }
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Enqueues by move. Returns false (leaving `value` untouched) when the
  /// ring is full. Producer thread only.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      // Ring looks full against the cached head — refresh from the
      // consumer's published cursor before giving up.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    cells_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    // High-water tracking, producer-side. The cached head gives a free
    // occupancy *upper bound*; only when that bound would raise the
    // watermark is the consumer's real cursor loaded to confirm — so
    // steady state pays one compare on producer-local values and the
    // cached-cursor design keeps its no-ping-pong property.
    const std::uint64_t occ_bound = tail + 1 - head_cache_;
    if (occ_bound > high_water_.load(std::memory_order_relaxed)) {
      const std::uint64_t occ =
          tail + 1 - head_.load(std::memory_order_relaxed);
      if (occ > high_water_.load(std::memory_order_relaxed)) {
        high_water_.store(occ, std::memory_order_relaxed);
      }
    }
    return true;
  }

  bool try_push(const T& value) {
    T copy = value;
    return try_push(std::move(copy));
  }

  /// Dequeues into `out`. Returns false when the ring is empty. Consumer
  /// thread only.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head >= tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head >= tail_cache_) return false;
    }
    out = std::move(cells_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// True when there is nothing to pop. Consumer thread only — this is
  /// the cheap lane probe behind the transport/shard armed-doorbell
  /// sleep (arm, re-check every lane with empty(), then block).
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_relaxed) >=
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy (racy snapshot of both cursors).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  /// Highest occupancy ever observed at a push (monitoring; the
  /// saturation signal behind TuningServer's per-lane stats). Updated
  /// by the producer, readable from any thread.
  [[nodiscard]] std::size_t high_water() const noexcept {
    return static_cast<std::size_t>(
        high_water_.load(std::memory_order_relaxed));
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> cells_;
  /// Producer-owned line: tail cursor + cached consumer head.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  /// Producer-updated watermark (see high_water()); off the hot lines.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> high_water_{0};
  /// Consumer-owned line: head cursor + cached producer tail.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace lynceus::util

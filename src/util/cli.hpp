#pragma once

/// \file cli.hpp
/// Minimal command-line flag parsing for the bench and example binaries.
///
/// Supports `--name=value`, `--name value`, and boolean `--name` /
/// `--no-name` forms. Unknown flags raise `std::invalid_argument` so typos
/// in experiment invocations fail loudly instead of silently running the
/// default configuration; so does giving one flag twice (including the
/// conflicting `--x ... --no-x` pair), which would otherwise silently
/// resolve last-one-wins.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lynceus::util {

/// True when the environment variable `name` is set to a truthy value
/// ("1", "true", "on", "yes", case-insensitive); false when unset, empty,
/// or anything else. Used for opt-in toggles that must reach every binary
/// without per-tool flag plumbing (e.g. LYNCEUS_INCREMENTAL_REFIT, which
/// flips the optimizers' incremental-refit default so CI can run the whole
/// suite once with the flag on).
[[nodiscard]] bool env_flag(const char* name) noexcept;

class CliFlags {
 public:
  /// Parses `argv`. `spec` lists the accepted flag names (without dashes);
  /// any other flag is an error.
  CliFlags(int argc, const char* const* argv,
           const std::vector<std::string>& spec);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lynceus::util

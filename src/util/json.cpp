#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.hpp"

namespace lynceus::util {

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::begin_value() {
  if (done_) {
    throw std::logic_error("JsonWriter: document already complete");
  }
  if (!scopes_.empty() && scopes_.back() == Scope::Object && !have_key_) {
    throw std::logic_error("JsonWriter: object member needs a key first");
  }
  if (need_comma_ && !have_key_) out_.push_back(',');
  need_comma_ = false;
  have_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_.push_back('{');
  scopes_.push_back(Scope::Object);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::Object || have_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  scopes_.pop_back();
  out_.push_back('}');
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_.push_back('[');
  scopes_.push_back(Scope::Array);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::Array) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  scopes_.pop_back();
  out_.push_back(']');
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (scopes_.empty() || scopes_.back() != Scope::Object) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (have_key_) throw std::logic_error("JsonWriter: duplicate key call");
  if (need_comma_) out_.push_back(',');
  out_ += json_escape(name);
  out_.push_back(':');
  need_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  begin_value();
  out_ += json_escape(v);
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  begin_value();
  if (std::isfinite(v)) {
    out_ += format("%.12g", v);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_exact(double v) {
  if (!std::isfinite(v)) {
    // value(double) silently degrades NaN/Inf to null (fine for bench
    // output); an *exact* value is requested precisely when the document
    // must restore bit-for-bit — emitting null there would produce a
    // snapshot that serializes fine and can never be loaded. Fail at
    // save time, where the caller can still react.
    throw std::invalid_argument(
        "JsonWriter::value_exact: non-finite values cannot round-trip");
  }
  begin_value();
  out_ += format("%.17g", v);
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  begin_value();
  out_ += format("%lld", static_cast<long long>(v));
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_ += format("%llu", static_cast<unsigned long long>(v));
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_value();
  out_ += "null";
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !scopes_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

// --------------------------------------------------------------- parser

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw std::runtime_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::Number) {
    throw std::runtime_error("JsonValue: not a number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(scalar_.c_str(), &end);
  if (end == scalar_.c_str() || *end != '\0') {
    throw std::runtime_error("JsonValue: malformed number '" + scalar_ + "'");
  }
  return v;
}

std::int64_t JsonValue::as_int() const {
  if (type_ != Type::Number) {
    throw std::runtime_error("JsonValue: not a number");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (end == scalar_.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error("JsonValue: not a 64-bit integer '" + scalar_ +
                             "'");
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t JsonValue::as_uint() const {
  if (type_ != Type::Number) {
    throw std::runtime_error("JsonValue: not a number");
  }
  if (!scalar_.empty() && scalar_[0] == '-') {
    throw std::runtime_error("JsonValue: negative value for as_uint '" +
                             scalar_ + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (end == scalar_.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error("JsonValue: not a 64-bit integer '" + scalar_ +
                             "'");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) {
    throw std::runtime_error("JsonValue: not a string");
  }
  return scalar_;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::Array) return items_.size();
  if (type_ == Type::Object) return members_.size();
  throw std::runtime_error("JsonValue: size() on a scalar");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (type_ != Type::Array) throw std::runtime_error("JsonValue: not an array");
  if (index >= items_.size()) {
    throw std::runtime_error("JsonValue: array index out of range");
  }
  return items_[index];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) throw std::runtime_error("JsonValue: not an array");
  return items_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) {
    throw std::runtime_error("JsonValue: not an object");
  }
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JsonValue: missing key '" + key + "'");
  }
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue root = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("parse_json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    // Recursive descent: bound the nesting so a corrupt or hostile
    // document (e.g. a snapshot file fed to --resume) reports an error
    // instead of overflowing the stack.
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        v.scalar_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("invalid literal");
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("invalid literal");
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // The writer only \u-escapes control characters (< 0x20); encode
          // anything beyond Latin-1 as UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("invalid number");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    v.scalar_ = text_.substr(start, pos_ - start);
    return v;
  }

  static constexpr std::size_t kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace lynceus::util

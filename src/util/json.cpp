#include "util/json.hpp"

#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace lynceus::util {

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::begin_value() {
  if (done_) {
    throw std::logic_error("JsonWriter: document already complete");
  }
  if (!scopes_.empty() && scopes_.back() == Scope::Object && !have_key_) {
    throw std::logic_error("JsonWriter: object member needs a key first");
  }
  if (need_comma_ && !have_key_) out_.push_back(',');
  need_comma_ = false;
  have_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_.push_back('{');
  scopes_.push_back(Scope::Object);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::Object || have_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  scopes_.pop_back();
  out_.push_back('}');
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_.push_back('[');
  scopes_.push_back(Scope::Array);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::Array) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  scopes_.pop_back();
  out_.push_back(']');
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (scopes_.empty() || scopes_.back() != Scope::Object) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (have_key_) throw std::logic_error("JsonWriter: duplicate key call");
  if (need_comma_) out_.push_back(',');
  out_ += json_escape(name);
  out_.push_back(':');
  need_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  begin_value();
  out_ += json_escape(v);
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  begin_value();
  if (std::isfinite(v)) {
    out_ += format("%.12g", v);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  begin_value();
  out_ += format("%lld", static_cast<long long>(v));
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_ += format("%llu", static_cast<unsigned long long>(v));
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_value();
  out_ += "null";
  need_comma_ = true;
  if (scopes_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !scopes_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

}  // namespace lynceus::util

#include "util/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace lynceus::util {

bool env_flag(const char* name) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  std::string v(raw);
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

CliFlags::CliFlags(int argc, const char* const* argv,
                   const std::vector<std::string>& spec) {
  auto known = [&spec](const std::string& name) {
    return std::find(spec.begin(), spec.end(), name) != spec.end();
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (arg.rfind("no-", 0) == 0 && known(arg.substr(3))) {
      name = arg.substr(3);
      value = "false";
    } else {
      name = arg;
      // `--flag value` form: consume the next token if it is not a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!known(name)) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    // Repeated (or conflicting, e.g. `--x ... --no-x`) flags are a hard
    // error: last-one-wins silence hides typos in long experiment command
    // lines, where the dropped value can invalidate hours of results.
    if (!values_.emplace(name, value).second) {
      throw std::invalid_argument(
          "flag --" + name +
          " given more than once (conflicting or repeated values)");
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  // Checked full-string parse: a bare std::stoll would throw an uncaught
  // bare "stoll" on `--la=abc` / `--la=` (and silently accept `--la=2x`),
  // which surfaces as a crash instead of a usage error in the tools.
  std::size_t consumed = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(it->second, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (it->second.empty() || consumed != it->second.size()) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
  return parsed;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(it->second, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (it->second.empty() || consumed != it->second.size()) {
    throw std::invalid_argument("flag --" + name +
                                " expects a number, got '" + it->second +
                                "'");
  }
  return parsed;
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

}  // namespace lynceus::util

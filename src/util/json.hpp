#pragma once

/// \file json.hpp
/// A minimal streaming JSON writer (no parser): nested objects/arrays,
/// string escaping, and locale-independent number formatting. Used by the
/// bench binaries to emit machine-readable result files next to the CSVs,
/// so notebooks can consume experiment output without CSV-schema guessing.
///
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("job").value("cnn");
///   w.key("cnos").begin_array();
///   for (double c : cnos) w.value(c);
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();
///
/// Structural misuse (closing the wrong scope, a value without a key
/// inside an object, ...) throws std::logic_error.

#include <cstdint>
#include <string>
#include <vector>

namespace lynceus::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Introduces the next member of the current object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document. Throws std::logic_error if scopes remain open
  /// or nothing was written.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Scope { Object, Array };

  void begin_value();

  std::string out_;
  std::vector<Scope> scopes_;
  bool need_comma_ = false;
  bool have_key_ = false;
  bool done_ = false;
};

/// Escapes a string for inclusion in a JSON document (adds the quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace lynceus::util

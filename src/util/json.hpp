#pragma once

/// \file json.hpp
/// A minimal streaming JSON writer plus a small recursive-descent parser.
/// The writer emits nested objects/arrays with string escaping and
/// locale-independent number formatting; the bench binaries use it for
/// machine-readable result files, and the tuning-session snapshots
/// (core/stepper.hpp, src/service/) use it together with the parser for
/// byte-exact save/restore round trips.
///
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("job").value("cnn");
///   w.key("cnos").begin_array();
///   for (double c : cnos) w.value(c);
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();
///
/// Structural misuse (closing the wrong scope, a value without a key
/// inside an object, ...) throws std::logic_error.

#include <cstdint>
#include <string>
#include <vector>

namespace lynceus::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Introduces the next member of the current object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  /// Like value(double) but with round-trip precision (%.17g): the value
  /// parsed back by parse_json()'s as_double() is bit-identical to `v`.
  /// The default value(double) prints 12 significant digits for readable
  /// bench output; snapshots that must restore exactly use this instead.
  /// Non-finite values throw std::invalid_argument — they cannot
  /// round-trip through JSON, and degrading them to null (as value(double)
  /// does) would yield a snapshot that saves fine but can never restore.
  JsonWriter& value_exact(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document. Throws std::logic_error if scopes remain open
  /// or nothing was written.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Scope { Object, Array };

  void begin_value();

  std::string out_;
  std::vector<Scope> scopes_;
  bool need_comma_ = false;
  bool have_key_ = false;
  bool done_ = false;
};

/// Escapes a string for inclusion in a JSON document (adds the quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// A parsed JSON document node. Numbers keep their source token so integer
/// accessors read the digits exactly (a 64-bit RNG word must not round-trip
/// through a double) and as_double() converts with strtod's correct
/// rounding — together with JsonWriter::value_exact this makes
/// write→parse→read bit-exact for doubles and 64-bit integers.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }

  /// Typed accessors; each throws std::runtime_error on a type mismatch
  /// (or an out-of-range / malformed number).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object access: find() returns nullptr when the key is absent, at()
  /// throws. Member order is preserved from the document.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::Null;
  bool bool_ = false;
  std::string scalar_;  ///< number token or string payload
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (the whole string must be consumed, bar
/// trailing whitespace). Throws std::runtime_error with a byte offset on
/// malformed input, including documents nested deeper than 256 levels
/// (the recursive-descent parser bounds its stack).
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace lynceus::util

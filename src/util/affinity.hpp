#pragma once

/// \file affinity.hpp
/// Best-effort core pinning for the server's transport and shard
/// threads (TuningServer::Options::pin_threads). Pinning removes the
/// scheduler's freedom to migrate a hot thread mid-burst — cache- and
/// lane-locality for the SPSC wiring — at the cost of load-balancing
/// freedom, so it is opt-in. A failed or unsupported pin is reported by
/// return value and otherwise ignored: affinity is a performance hint,
/// never a correctness requirement (trajectories are pinned by the
/// determinism contract, not by cores).

#include <cstddef>

namespace lynceus::util {

/// Pins the calling thread to `cpu % hardware cores`. Returns false
/// when the platform has no affinity API or the syscall failed.
bool pin_current_thread(std::size_t cpu) noexcept;

}  // namespace lynceus::util

#pragma once

/// \file mpmc_queue.hpp
/// A bounded lock-free multi-producer/multi-consumer queue (Vyukov's
/// array-based design): each cell carries an atomic sequence number that
/// encodes whose turn it is — a producer may fill cell i on the lap where
/// `seq == i`, a consumer may drain it on the lap where `seq == i + 1` —
/// so producers and consumers contend only on their own cursor CAS, never
/// on a shared lock. The throughput-mode service scheduler
/// (service::TuningService::run_throughput) uses one of these as its run
/// queue: workers push and pop whole session-step tasks concurrently.
///
/// Properties:
///   * `try_push` / `try_pop` are wait-free apart from the cursor CAS
///     retry loop; neither ever blocks or allocates after construction.
///   * FIFO per producer; total order across producers is whatever the
///     CAS race decides (consumers observe a linearizable interleaving).
///   * Bounded: `try_push` returns false when the queue is full (the
///     value is NOT consumed — it is only moved from on success), and
///     `try_pop` returns false when empty. Callers decide whether to
///     retry, back off, or treat full/empty as terminal.
///   * `size()` is approximate under concurrency (a snapshot of two
///     racing cursors) — fine for monitoring, not for emptiness tests.
///
/// The queue does not provide blocking waits by design: the service's
/// workers interleave queue polling with completion-pump checks, so a
/// blocked pop would deadlock the stall detector. `Backoff` below is the
/// polite spin helper those poll loops share.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

namespace lynceus::util {

/// Destructive-interference distance for cursor padding. A constant 64
/// rather than std::hardware_destructive_interference_size: the standard
/// value is an ABI hazard GCC warns about (-Winterference-size), and 64
/// is correct for every target this builds on.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class MpmcQueue {
 public:
  /// Builds a queue holding at most `capacity` elements (rounded up to the
  /// next power of two; the sequence-number scheme needs a pow2 ring so
  /// lap arithmetic is a mask). Capacity must be >= 1.
  explicit MpmcQueue(std::size_t capacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    if (capacity == 0) {
      throw std::invalid_argument("MpmcQueue: capacity must be >= 1");
    }
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Enqueues by move. Returns false (leaving `value` untouched) when the
  /// queue is full at the attempted cell.
  bool try_push(T&& value) {
    Cell* cell;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // Our turn to fill this cell — claim the slot via the tail CAS.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        // The cell still holds last lap's element: the queue is full.
        return false;
      } else {
        // Another producer claimed this position; reload and retry.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    // Publishing seq = pos + 1 hands the cell to the consumer side.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) {
    T copy = value;
    return try_push(std::move(copy));
  }

  /// Dequeues into `out`. Returns false when the queue is empty at the
  /// attempted cell.
  bool try_pop(T& out) {
    Cell* cell;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        // The cell has not been filled this lap: the queue is empty.
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    // seq = pos + capacity hands the cell back to producers for next lap.
    cell->seq.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Approximate occupancy (racy snapshot of both cursors).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  /// Producer and consumer cursors on separate cache lines so pushes and
  /// pops do not false-share.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
};

/// Polite spin for poll loops over MpmcQueue: a few pause-style hot spins,
/// then yields to the OS scheduler so an oversubscribed host still makes
/// progress. Reset it after useful work.
class Backoff {
 public:
  void spin() noexcept {
    if (count_ < kHotSpins) {
      ++count_;
      for (int i = 0; i < (1 << count_); ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
      }
      return;
    }
    std::this_thread::yield();
  }

  void reset() noexcept { count_ = 0; }

 private:
  static constexpr int kHotSpins = 6;
  int count_ = 0;
};

}  // namespace lynceus::util

#pragma once

/// \file alloc_count.hpp
/// Opt-in global-allocation counting for the zero-allocation guarantees of
/// the hot paths (the lookahead simulation engine most of all).
///
/// The counters are driven by replacement `operator new`/`operator delete`
/// definitions in `alloc_count.cpp`, which is deliberately *not* part of
/// the `lynceus` library (no other consumer should pay for the counting):
/// a binary that uses this header (the test suite, `bench_micro`) must
/// compile `alloc_count.cpp` in as one of its own sources.

#include <cstdint>

namespace lynceus::util {

/// Number of heap allocations (operator new calls) performed by this thread
/// since it started. Monotone; take deltas around the region of interest.
[[nodiscard]] std::uint64_t alloc_count() noexcept;

/// Number of heap allocations performed by the whole process (every
/// thread) since it started. The branch-parallel zero-allocation
/// assertions use this: work fanned out across a thread pool allocates —
/// if at all — on the *worker* threads, which the calling thread's
/// per-thread counter cannot see. Monotone; relaxed atomic, so a delta
/// taken around a region that is quiescent at both ends (all pool workers
/// idle) is exact.
[[nodiscard]] std::uint64_t alloc_count_all_threads() noexcept;

/// True when the counting operator new/delete replacements are linked into
/// this binary.
[[nodiscard]] bool alloc_count_available() noexcept;

/// RAII delta counter:
///   AllocCountGuard g;
///   hot_path();
///   EXPECT_EQ(g.delta(), 0);
class AllocCountGuard {
 public:
  AllocCountGuard() noexcept : start_(alloc_count()) {}
  [[nodiscard]] std::uint64_t delta() const noexcept {
    return alloc_count() - start_;
  }

 private:
  std::uint64_t start_;
};

/// Process-wide variant of AllocCountGuard (see alloc_count_all_threads).
class AllocCountAllThreadsGuard {
 public:
  AllocCountAllThreadsGuard() noexcept : start_(alloc_count_all_threads()) {}
  [[nodiscard]] std::uint64_t delta() const noexcept {
    return alloc_count_all_threads() - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace lynceus::util

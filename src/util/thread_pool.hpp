#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool with a blocking `parallel_for`.
///
/// Lynceus simulates the exploration paths rooted at distinct candidate
/// configurations independently (paper §4.3: "the simulation of exploration
/// paths rooted at different untested configurations are independent
/// problems that can be resolved in parallel"). The optimizer takes an
/// optional `ThreadPool*`; with a null pool, or a pool of one worker, work
/// runs inline on the calling thread, so single-threaded determinism is the
/// default and parallelism is strictly opt-in.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lynceus::util {

class ThreadPool {
 public:
  /// Creates a pool with `workers` background threads. `workers == 0` is
  /// allowed and makes every submission run inline in `parallel_for`.
  explicit ThreadPool(std::size_t workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Runs `body(i)` for every `i` in `[0, n)` and blocks until all
  /// iterations complete. Iterations are distributed dynamically in chunks;
  /// the calling thread participates. Exceptions thrown by `body` are
  /// rethrown (the first one observed) after all workers drain.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// Convenience: runs `body` over `[0, n)` on `pool` if non-null, else
/// sequentially on the calling thread.
void maybe_parallel_for(ThreadPool* pool, std::size_t n,
                        const std::function<void(std::size_t)>& body);

/// Default pool size for entry points that opt into parallelism (the CLI
/// tuner, examples, benches): one worker per hardware thread beyond the
/// calling thread, so a pool of this size saturates the host without
/// oversubscribing it. 0 — i.e. a pool that runs everything inline — on
/// single-core hosts or when hardware_concurrency is unknown. Trajectories
/// do not depend on the pool size (root simulations are independent and
/// their results are merged in root order), so defaulting entry points to
/// this keeps runs reproducible across machines.
[[nodiscard]] std::size_t default_worker_count() noexcept;

/// The pure sizing rule behind default_worker_count(), exposed for tests:
/// `hw` is std::thread::hardware_concurrency()'s report. Returns hw - 1
/// for multi-core hosts, and 0 — a pool that runs everything inline on
/// the calling thread — both for single-core hosts (hw == 1) and when the
/// hardware concurrency is unknown (hw == 0, which the standard permits).
/// Consumers of a 0-worker pool (e.g. the bench's pooled_decision entry,
/// which records `workers`) therefore measure pool overhead rather than
/// scaling; tools/compare_bench.py skips such entries.
[[nodiscard]] constexpr std::size_t worker_count_for(unsigned hw) noexcept {
  return hw > 1 ? hw - 1 : 0;
}

}  // namespace lynceus::util

#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool with a blocking `parallel_for`.
///
/// Lynceus simulates the exploration paths rooted at distinct candidate
/// configurations independently (paper §4.3: "the simulation of exploration
/// paths rooted at different untested configurations are independent
/// problems that can be resolved in parallel"). The optimizer takes an
/// optional `ThreadPool*`; with a null pool, or a pool of one worker, work
/// runs inline on the calling thread, so single-threaded determinism is the
/// default and parallelism is strictly opt-in.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lynceus::util {

class ThreadPool {
 public:
  /// Plain-function body of `parallel_ranges`: called once per claimed
  /// part with the part index and its half-open index range.
  using RangeBody = void (*)(void* ctx, std::size_t part, std::size_t begin,
                             std::size_t end);

  /// Preallocated control block for `parallel_ranges`. One section object
  /// may be reused across any number of calls (the engines keep one per
  /// workspace); distinct *concurrent* sections need distinct objects.
  /// Immovable — embed it behind a pointer when the owner must move.
  class RangeSection {
   public:
    RangeSection() = default;
    RangeSection(const RangeSection&) = delete;
    RangeSection& operator=(const RangeSection&) = delete;

   private:
    friend class ThreadPool;
    std::atomic<std::size_t> next_part_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<std::size_t> holders_{0};
    std::size_t parts_ = 0;
    std::size_t n_ = 0;
    RangeBody body_ = nullptr;
    void* ctx_ = nullptr;
    RangeSection* next_ = nullptr;  ///< intrusive FIFO link (pool mutex)
    bool listed_ = false;           ///< on the pool's section list
    std::exception_ptr first_error_;
    std::mutex mutex_;
    std::condition_variable cv_;
  };

  /// Creates a pool with `workers` background threads. `workers == 0` is
  /// allowed and makes every submission run inline in `parallel_for`.
  explicit ThreadPool(std::size_t workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Runs `body(i)` for every `i` in `[0, n)` and blocks until all
  /// iterations complete. Iterations are distributed dynamically in chunks;
  /// the calling thread participates. Exceptions thrown by `body` are
  /// rethrown (the first one observed) after all workers drain.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Deterministic static range partition — the allocation-free variant
  /// the lookahead engines fan their intra-root branch work out with.
  ///
  /// Splits [0, n) into `parts = min(max_parts, n, worker_count() + 1)`
  /// contiguous ranges by pure index arithmetic (part p covers
  /// [p·n/parts, (p+1)·n/parts)) and runs `body(ctx, p, begin, end)` once
  /// per part. The partition depends only on (n, parts) — never on
  /// scheduling — so callers that give each part its own output slots and
  /// reduce them in fixed part order get bitwise-identical results
  /// regardless of which thread ran what. Parts are claimed dynamically
  /// (idle workers help; the calling thread always participates and is
  /// guaranteed to make progress even when every worker is busy), and the
  /// call blocks until every part has finished.
  ///
  /// Performs no heap allocation: all coordination state lives in the
  /// caller-owned `section`. Safe to call from inside a pool task (nested
  /// sections and sections concurrent with parallel_for compose; the
  /// claiming protocol cannot deadlock because the caller can always drain
  /// its own section). With `parts <= 1` or a worker-less pool the body
  /// runs inline as one part covering [0, n). Exceptions thrown by `body`
  /// are rethrown (first observed) after the section completes.
  void parallel_ranges(RangeSection& section, std::size_t n,
                       std::size_t max_parts, RangeBody body, void* ctx);

 private:
  void worker_loop();
  void run_one_part(RangeSection& s, std::size_t part) noexcept;
  /// Removes `s` from the section list if still present (pool mutex held).
  void unlink_section(RangeSection& s) noexcept;

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  RangeSection* sections_head_ = nullptr;  ///< intrusive FIFO (mutex_)
  RangeSection* sections_tail_ = nullptr;
  bool stop_ = false;
};

/// Convenience: runs `body` over `[0, n)` on `pool` if non-null, else
/// sequentially on the calling thread.
void maybe_parallel_for(ThreadPool* pool, std::size_t n,
                        const std::function<void(std::size_t)>& body);

/// Default pool size for entry points that opt into parallelism (the CLI
/// tuner, examples, benches): one worker per hardware thread beyond the
/// calling thread, so a pool of this size saturates the host without
/// oversubscribing it. 0 — i.e. a pool that runs everything inline — on
/// single-core hosts or when hardware_concurrency is unknown. Trajectories
/// do not depend on the pool size (root simulations are independent and
/// their results are merged in root order), so defaulting entry points to
/// this keeps runs reproducible across machines.
[[nodiscard]] std::size_t default_worker_count() noexcept;

/// The pure sizing rule behind default_worker_count(), exposed for tests:
/// `hw` is std::thread::hardware_concurrency()'s report. Returns hw - 1
/// for multi-core hosts, and 0 — a pool that runs everything inline on
/// the calling thread — both for single-core hosts (hw == 1) and when the
/// hardware concurrency is unknown (hw == 0, which the standard permits).
/// Consumers of a 0-worker pool (e.g. the bench's pooled_decision entry,
/// which records `workers`) therefore measure pool overhead rather than
/// scaling; tools/compare_bench.py skips such entries.
[[nodiscard]] constexpr std::size_t worker_count_for(unsigned hw) noexcept {
  return hw > 1 ? hw - 1 : 0;
}

}  // namespace lynceus::util

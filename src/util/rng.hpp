#pragma once

/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// Every stochastic component in the library (bootstrap sampling, tree
/// randomization, Latin-hypercube sampling, the RND optimizer, the synthetic
/// workload generators) draws from an explicitly seeded `Rng`. Experiment
/// reproducibility depends on *never* touching global random state, so the
/// library provides no default-seeded constructor: a seed is always required.

#include <cstdint>
#include <limits>
#include <vector>

namespace lynceus::util {

/// SplitMix64 step. Used to derive well-mixed seeds from small integers
/// (run ids, stream ids) and as the seeding routine for `Rng`.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Hash-combines a seed with a stream identifier, producing an independent
/// seed. `derive_seed(s, i) != derive_seed(s, j)` for `i != j` with
/// overwhelming probability.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

/// xoshiro256** — a small, fast, high-quality PRNG.
///
/// Satisfies the C++ `UniformRandomBitGenerator` concept so it can be used
/// with `<random>` distributions, although the library prefers the explicit
/// helpers below for reproducibility across standard-library versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose state is derived from `seed` via
  /// SplitMix64 (so nearby seeds yield unrelated streams).
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires `lo <= hi`.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires `n > 0`. Uses Lemire's unbiased
  /// bounded-rejection method.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires `lo <= hi`.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal variate (Marsaglia polar method, cached spare).
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation
  /// (`stddev >= 0`).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Poisson(λ=1) draw by CDF inversion of one uniform() — the resampling
  /// rate of Oza–Russell online bagging, which the incremental ensemble
  /// refit uses to decide how many copies of an appended sample enter each
  /// tree's bootstrap. Exactly one uniform() is consumed per call, and the
  /// inversion uses only +,*,/ on exactly representable pmf recurrences, so
  /// the draw is bit-deterministic across platforms.
  [[nodiscard]] unsigned poisson1() noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, 1, ..., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Forks an independent child generator; the parent stream advances by
  /// one draw. Children forked in sequence are mutually independent.
  [[nodiscard]] Rng split() noexcept;

  /// Serializable generator state (tuning-session snapshot/restore, see
  /// core/stepper.hpp). `set_state(state())` is an exact no-op: the stream
  /// continues bit-identically, including a cached spare normal variate.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double spare_normal = 0.0;
    bool has_spare = false;
  };
  [[nodiscard]] State state() const noexcept;
  void set_state(const State& state) noexcept;

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace lynceus::util

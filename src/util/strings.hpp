#pragma once

/// \file strings.hpp
/// Small string utilities shared by the reporting and dataset code.

#include <string>
#include <vector>

namespace lynceus::util {

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string trim(const std::string& s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-width, human-readable rendering of a double (e.g. "1.234",
/// "12.3k"). Used by the ASCII report tables.
[[nodiscard]] std::string human(double v, int precision = 3);

}  // namespace lynceus::util

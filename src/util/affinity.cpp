#include "util/affinity.hpp"

#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace lynceus::util {

bool pin_current_thread(std::size_t cpu) noexcept {
#ifdef __linux__
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % cores, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace lynceus::util

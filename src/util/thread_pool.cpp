#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace lynceus::util {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    RangeSection* sec = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] {
        return stop_ || !tasks_.empty() || sections_head_ != nullptr;
      });
      if (stop_ && tasks_.empty() && sections_head_ == nullptr) return;
      if (sections_head_ != nullptr) {
        // Sections are latency-critical inner fan-outs (a simulate() call
        // is blocked on them); serve them before queued tasks. The hold
        // count is raised under the pool mutex, so the section's owner can
        // wait for holders to drain after unlinking before reusing it.
        sec = sections_head_;
        sec->holders_.fetch_add(1, std::memory_order_relaxed);
      } else {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (sec != nullptr) {
      // Claim exactly one part per grab, then return to the wait loop: a
      // worker never touches a section it does not freshly hold, which is
      // what makes caller-side reuse (after holders drain) safe.
      const std::size_t part =
          sec->next_part_.fetch_add(1, std::memory_order_relaxed);
      if (part < sec->parts_) {
        run_one_part(*sec, part);
      } else {
        std::lock_guard lock(mutex_);
        unlink_section(*sec);
      }
      // Drop the hold and notify *while holding the section mutex*: the
      // owner's wait predicate reads holders_ under this mutex, so it
      // cannot observe holders_ == 0 and return (allowing the section to
      // be reused or destroyed) until this worker's last touch of the
      // section — the unlock below — has completed.
      {
        std::lock_guard lk(sec->mutex_);
        sec->holders_.fetch_sub(1, std::memory_order_release);
        sec->cv_.notify_all();
      }
    } else {
      task();
    }
  }
}

void ThreadPool::run_one_part(RangeSection& s, std::size_t part) noexcept {
  const std::size_t begin = part * s.n_ / s.parts_;
  const std::size_t end = (part + 1) * s.n_ / s.parts_;
  try {
    s.body_(s.ctx_, part, begin, end);
  } catch (...) {
    std::lock_guard lk(s.mutex_);
    if (!s.first_error_) s.first_error_ = std::current_exception();
  }
  s.done_.fetch_add(1, std::memory_order_acq_rel);
}

void ThreadPool::unlink_section(RangeSection& s) noexcept {
  if (!s.listed_) return;
  RangeSection** link = &sections_head_;
  RangeSection* prev = nullptr;
  while (*link != nullptr && *link != &s) {
    prev = *link;
    link = &(*link)->next_;
  }
  if (*link == &s) {
    *link = s.next_;
    if (sections_tail_ == &s) sections_tail_ = prev;
  }
  s.next_ = nullptr;
  s.listed_ = false;
}

void ThreadPool::parallel_ranges(RangeSection& s, std::size_t n,
                                 std::size_t max_parts, RangeBody body,
                                 void* ctx) {
  if (n == 0 || body == nullptr) return;
  std::size_t parts = std::min(max_parts, n);
  parts = std::min(parts, threads_.size() + 1);
  if (parts <= 1 || threads_.empty()) {
    body(ctx, 0, 0, n);
    return;
  }
  s.n_ = n;
  s.parts_ = parts;
  s.body_ = body;
  s.ctx_ = ctx;
  s.next_part_.store(0, std::memory_order_relaxed);
  s.done_.store(0, std::memory_order_relaxed);
  s.first_error_ = nullptr;
  {
    std::lock_guard lock(mutex_);
    s.next_ = nullptr;
    s.listed_ = true;
    if (sections_tail_ != nullptr) {
      sections_tail_->next_ = &s;
    } else {
      sections_head_ = &s;
    }
    sections_tail_ = &s;
  }
  cv_.notify_all();

  // The calling thread participates until every part is claimed — the
  // section therefore completes even if no worker ever picks it up.
  for (;;) {
    const std::size_t part =
        s.next_part_.fetch_add(1, std::memory_order_relaxed);
    if (part >= parts) break;
    run_one_part(s, part);
  }
  {
    std::lock_guard lock(mutex_);
    unlink_section(s);
  }
  // Wait for outstanding parts *and* for every worker still holding the
  // section to let go — after this the section object is free for reuse.
  {
    std::unique_lock lk(s.mutex_);
    s.cv_.wait(lk, [&] {
      return s.done_.load(std::memory_order_acquire) == parts &&
             s.holders_.load(std::memory_order_acquire) == 0;
    });
  }
  if (s.first_error_) {
    const std::exception_ptr e = s.first_error_;
    s.first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Helper tasks may still be dequeued *after* this call returns (a worker
  // can pop a task once all indices are already claimed), so everything
  // they touch lives in a shared control block, not on this stack frame.
  // Such late tasks observe next >= n and exit without calling the body.
  struct Control {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    std::function<void(std::size_t)> body;
    std::exception_ptr first_error;
    std::mutex mutex;
    std::condition_variable done_cv;
  };
  auto ctl = std::make_shared<Control>();
  ctl->n = n;
  ctl->body = body;

  auto drain = [ctl] {
    for (;;) {
      const std::size_t i = ctl->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctl->n) break;
      try {
        ctl->body(i);
      } catch (...) {
        std::lock_guard lock(ctl->mutex);
        if (!ctl->first_error) ctl->first_error = std::current_exception();
      }
      if (ctl->done.fetch_add(1, std::memory_order_acq_rel) + 1 == ctl->n) {
        std::lock_guard lock(ctl->mutex);
        ctl->done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(threads_.size(), n - 1);
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.push(drain);
  }
  cv_.notify_all();

  drain();  // The calling thread participates.

  {
    std::unique_lock lock(ctl->mutex);
    ctl->done_cv.wait(lock, [&] {
      return ctl->done.load(std::memory_order_acquire) >= ctl->n;
    });
  }
  if (ctl->first_error) std::rethrow_exception(ctl->first_error);
}

void maybe_parallel_for(ThreadPool* pool, std::size_t n,
                        const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

std::size_t default_worker_count() noexcept {
  return worker_count_for(std::thread::hardware_concurrency());
}

}  // namespace lynceus::util

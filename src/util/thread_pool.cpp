#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace lynceus::util {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Helper tasks may still be dequeued *after* this call returns (a worker
  // can pop a task once all indices are already claimed), so everything
  // they touch lives in a shared control block, not on this stack frame.
  // Such late tasks observe next >= n and exit without calling the body.
  struct Control {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    std::function<void(std::size_t)> body;
    std::exception_ptr first_error;
    std::mutex mutex;
    std::condition_variable done_cv;
  };
  auto ctl = std::make_shared<Control>();
  ctl->n = n;
  ctl->body = body;

  auto drain = [ctl] {
    for (;;) {
      const std::size_t i = ctl->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctl->n) break;
      try {
        ctl->body(i);
      } catch (...) {
        std::lock_guard lock(ctl->mutex);
        if (!ctl->first_error) ctl->first_error = std::current_exception();
      }
      if (ctl->done.fetch_add(1, std::memory_order_acq_rel) + 1 == ctl->n) {
        std::lock_guard lock(ctl->mutex);
        ctl->done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(threads_.size(), n - 1);
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.push(drain);
  }
  cv_.notify_all();

  drain();  // The calling thread participates.

  {
    std::unique_lock lock(ctl->mutex);
    ctl->done_cv.wait(lock, [&] {
      return ctl->done.load(std::memory_order_acquire) >= ctl->n;
    });
  }
  if (ctl->first_error) std::rethrow_exception(ctl->first_error);
}

void maybe_parallel_for(ThreadPool* pool, std::size_t n,
                        const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

std::size_t default_worker_count() noexcept {
  return worker_count_for(std::thread::hardware_concurrency());
}

}  // namespace lynceus::util

#include "util/rng.hpp"

#include <cmath>

namespace lynceus::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t state = seed ^ (0xA0761D6478BD642FULL + stream * 0xE7037ED1A0B428DBULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::State Rng::state() const noexcept {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.spare_normal = spare_normal_;
  st.has_spare = has_spare_;
  return st;
}

void Rng::set_state(const State& state) noexcept {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  spare_normal_ = state.spare_normal;
  has_spare_ = state.has_spare;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 significant bits, uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased for any n > 0.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * scale;
  has_spare_ = true;
  return u * scale;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

unsigned Rng::poisson1() noexcept {
  // P(k) = e^{-1}/k!; walk the CDF until it covers the uniform draw. The
  // tail beyond k=12 has probability < 1e-13 — return 12 there rather than
  // looping on denormals.
  const double u = uniform();
  double pmf = 0.36787944117144232160;  // e^{-1}
  double cdf = pmf;
  unsigned k = 0;
  while (u >= cdf && k < 12) {
    ++k;
    pmf /= static_cast<double>(k);
    cdf += pmf;
  }
  return k;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

Rng Rng::split() noexcept { return Rng((*this)()); }

}  // namespace lynceus::util

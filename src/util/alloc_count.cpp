/// Replacement operator new/delete that count allocations per thread.
/// Compiled only into binaries that assert allocation behavior (see
/// alloc_count.hpp); never part of the lynceus library itself.

#include "util/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
thread_local std::uint64_t g_alloc_count = 0;
std::atomic<std::uint64_t> g_alloc_count_all{0};

void count_one() noexcept {
  ++g_alloc_count;
  g_alloc_count_all.fetch_add(1, std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  count_one();
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

namespace lynceus::util {
std::uint64_t alloc_count() noexcept { return g_alloc_count; }
std::uint64_t alloc_count_all_threads() noexcept {
  return g_alloc_count_all.load(std::memory_order_relaxed);
}
bool alloc_count_available() noexcept { return true; }
}  // namespace lynceus::util

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  count_one();
  if (size == 0) size = 1;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) -
                                         1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  count_one();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  count_one();
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#pragma once

/// \file lynceus.hpp
/// The Lynceus optimizer (paper §4, Algorithms 1 and 2): budget-aware,
/// long-sighted Bayesian optimization.
///
/// Per decision, Lynceus:
///  1. filters the untested configurations to the budget-viable set
///     Γ = {x : P(c(x) <= β) >= 0.99} (Algorithm 1, line 23);
///  2. for every root x ∈ Γ, simulates an exploration path of up to LA
///     further steps: the speculated cost of each step is discretized into
///     K Gauss–Hermite branches, each branch refits the model with the
///     fantasy sample and continues greedily (argmax EIc) from the updated
///     state (Algorithm 2);
///  3. profiles the root of the path maximizing the ratio of the
///     γ-discounted cumulative reward to the cumulative expected cost
///     (Algorithm 1, line 28).
///
/// LA = 0 degenerates to the cost-normalized myopic policy EIc(x)/E[c(x)]
/// (the paper's "Lynceus, LA=0" baseline); setting γ = 0 likewise collapses
/// the lookahead to the greedy policy.
///
/// Optional extensions (§4.4): a setup-cost function charged when the
/// deployed configuration changes, both in reality and inside simulated
/// paths. (Multiple constraints live in constraints.hpp.)
///
/// The path simulation itself — delta-maintained states, candidate-pruned
/// subset prediction, fused acquisition — lives in core/lookahead.hpp; this
/// class runs the outer optimization loop (bootstrap, stop rules, root
/// screening, profiling) on top of that engine.

#include <functional>
#include <memory>
#include <optional>

#include "core/lookahead.hpp"
#include "core/stepper.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "model/regressor.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace lynceus::core {

struct LynceusOptions {
  /// Lookahead window LA (paper default: 2).
  unsigned lookahead = 2;
  /// Gauss–Hermite nodes K per simulated step. The paper leaves K
  /// unspecified; 3 captures mean and spread and keeps the K^LA branching
  /// factor low (see bench_ablation for the sensitivity).
  unsigned gh_points = 3;
  /// Reward discount γ for steps deeper in the path (paper: 0.9).
  double gamma = 0.9;
  /// Budget-viability quantile of the Γ filter (paper: 0.99).
  double feasibility_quantile = 0.99;
  /// Cost-model factory; defaults to the bagging ensemble of 10 random
  /// trees (paper §5.2).
  model::ModelFactory model_factory;
  /// Implementation approximation (see DESIGN.md §5): when more than this
  /// many roots are budget-viable, only the `screen_width` best roots by
  /// the one-step EIc/E[cost] score are path-simulated. 0 = simulate every
  /// viable root (paper-faithful).
  unsigned screen_width = 0;
  /// Optional early stop when max EIc drops below this fraction of the
  /// incumbent cost (0 = run until the budget is exhausted, as in §5.2).
  double ei_stop_fraction = 0.0;
  /// Optional parallelism across root candidates (§4.3: root paths are
  /// independent). Null = single-threaded.
  util::ThreadPool* pool = nullptr;
  /// Also parallelize *inside* each root simulation: the depth-0
  /// fantasy-branch fan-out is statically partitioned across `pool` with
  /// per-worker workspace replicas and a fixed reduction order, so
  /// trajectories stay byte-identical to serial runs (see the
  /// pooled-determinism contract in core/lookahead.hpp). No effect when
  /// `pool` is null or has zero workers. Useful when viable roots are
  /// fewer than cores, or to cut single-decision tail latency. Defaults
  /// to the LYNCEUS_BRANCH_PARALLEL environment toggle (false when
  /// unset).
  bool branch_parallel = util::env_flag("LYNCEUS_BRANCH_PARALLEL");
  /// Optional setup-cost extension (§4.4).
  SetupCostFn setup_cost;
  /// Optional root cache (see RootCache in core/lookahead.hpp): share one
  /// instance across optimize() runs so warm-started re-runs of the same
  /// job skip the root fit + full-space prediction of repeated decisions.
  /// Null disables caching (within one run the cache can never hit, so
  /// there is nothing to pay either). Not owned.
  RootCache* root_cache = nullptr;
  /// Opt-in incremental ensemble refit of simulated branches (see the
  /// "Incremental-refit determinism contract" in core/lookahead.hpp):
  /// ~1.5-2x faster cold decisions at lookahead >= 1, trajectories
  /// internally deterministic but not bit-identical to the flag-off golden
  /// path. Defaults to the LYNCEUS_INCREMENTAL_REFIT environment toggle
  /// (false when unset) so CI can run the whole suite once with the flag
  /// on; tests pinning the golden flag-off semantics set it explicitly.
  bool incremental_refit = util::env_flag("LYNCEUS_INCREMENTAL_REFIT");
  /// Blacklist configurations whose profiling run FAILED
  /// (core::RunOutcome::kFailed) from future proposals; see
  /// LoopState::blacklist_failed. Irrelevant for fault-free runs.
  bool blacklist_failed = true;
  /// Optional observer notified of bootstrap samples, decisions, run
  /// outcomes (including failures, via on_failure) and the stop reason
  /// (see core/trace.hpp). Not owned.
  OptimizerObserver* observer = nullptr;

  void validate() const;
};

class LynceusOptimizer final : public Optimizer {
 public:
  explicit LynceusOptimizer(LynceusOptions options = {});

  /// Thin drive loop over make_stepper() — bit-identical to the classic
  /// closed-loop implementation (see core/stepper.hpp).
  [[nodiscard]] OptimizerResult optimize(const OptimizationProblem& problem,
                                         JobRunner& runner,
                                         std::uint64_t seed) override;

  /// The suspend/resume (ask/tell) form of one Lynceus run — what the
  /// tuning service multiplexes (src/service/). `problem` must outlive
  /// the stepper; so must any pool/cache/observer wired into options().
  [[nodiscard]] std::unique_ptr<OptimizerStepper> make_stepper(
      const OptimizationProblem& problem, std::uint64_t seed) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const LynceusOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Impl;
  LynceusOptions options_;
};

}  // namespace lynceus::core

#pragma once

/// \file acquisition.hpp
/// Acquisition functions (paper §3): expected improvement EI for cost
/// minimization, the constrained variant EIc = EI · P(T(x) <= Tmax), and
/// the incumbent (y*) selection rule, including the paper's fallback when
/// no feasible configuration has been profiled yet.

#include <vector>

#include "core/types.hpp"
#include "model/regressor.hpp"

namespace lynceus::core {

/// EI(x) for *minimization*:
///   EI = (y* − µ)·Φ(z) + σ·φ(z),  z = (y* − µ)/σ.
/// Degenerates to max(y* − µ, 0) when σ = 0. Never negative.
[[nodiscard]] double expected_improvement(double y_star,
                                          const model::Prediction& pred);

/// P(C(x) <= cap) under the Gaussian predictive distribution. With the cap
/// set to Tmax·U(x) this is the paper's PC(x) = P(T(x) <= Tmax), reusing
/// the cost model instead of training a separate runtime model.
[[nodiscard]] double prob_within(double cap, const model::Prediction& pred);

/// EIc(x) = EI(x) · P(C(x) <= feasibility_cap).
[[nodiscard]] double constrained_ei(double y_star,
                                    const model::Prediction& pred,
                                    double feasibility_cap);

/// The incumbent y*: cost of the cheapest *feasible* sample. If no sample
/// is feasible, the paper's fallback [39]: the cost of the most expensive
/// sample plus three times the maximum predictive stddev over the
/// `untested` rows (given by ids into `predictions`).
/// Requires at least one sample.
[[nodiscard]] double incumbent_cost(
    const std::vector<Sample>& samples,
    const std::vector<model::Prediction>& predictions,
    const std::vector<ConfigId>& untested);

}  // namespace lynceus::core

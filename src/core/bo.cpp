#include "core/bo.hpp"

#include <limits>

#include "core/acquisition.hpp"
#include "core/sequential.hpp"

namespace lynceus::core {

model::ModelFactory default_tree_model_factory(
    const space::ConfigSpace& space, unsigned trees) {
  model::BaggingOptions opts;
  opts.trees = trees;
  opts.tree.features_per_split =
      model::BaggingOptions::weka_features_per_split(space.dim_count());
  return [opts] { return std::make_unique<model::BaggingEnsemble>(opts); };
}

BayesianOptimizer::BayesianOptimizer(BoOptions options)
    : options_(std::move(options)) {}

OptimizerResult BayesianOptimizer::optimize(
    const OptimizationProblem& problem, JobRunner& runner,
    std::uint64_t seed) {
  LoopState st(problem, runner, seed);
  DecisionTimer timer;
  st.bootstrap();
  if (options_.observer != nullptr) {
    for (const auto& s : st.samples) options_.observer->on_bootstrap(s);
  }

  model::ModelFactory factory =
      options_.model_factory
          ? options_.model_factory
          : default_tree_model_factory(*problem.space);
  auto model = factory();
  const model::FeatureMatrix fm(*problem.space);

  std::vector<std::uint32_t> rows;
  std::vector<double> y;
  std::vector<model::Prediction> preds;
  std::uint64_t fit_counter = 0;

  while (!st.budget.exhausted() && !st.untested.empty()) {
    timer.start();
    rows.clear();
    y.clear();
    for (const auto& s : st.samples) {
      rows.push_back(s.id);
      y.push_back(s.cost);
    }
    model->fit(fm, rows, y, util::derive_seed(seed, ++fit_counter));
    model->predict_all(fm, preds);

    const double y_star = incumbent_cost(st.samples, preds, st.untested);
    double best_acq = -std::numeric_limits<double>::infinity();
    ConfigId best_id = st.untested.front();
    for (ConfigId id : st.untested) {
      const double acq =
          constrained_ei(y_star, preds[id], problem.feasibility_cost_cap(id));
      if (acq > best_acq) {
        best_acq = acq;
        best_id = id;
      }
    }
    if (options_.ei_stop_fraction > 0.0 &&
        best_acq < options_.ei_stop_fraction * y_star) {
      timer.discard();
      if (options_.observer != nullptr) {
        options_.observer->on_stop("expected improvement below threshold");
      }
      break;  // expected improvement everywhere marginal
    }
    timer.stop();

    if (options_.observer != nullptr) {
      DecisionEvent event;
      event.iteration = static_cast<std::size_t>(fit_counter);
      event.viable_count = st.untested.size();  // BO has no budget filter
      event.chosen = best_id;
      event.predicted_cost = preds[best_id].mean;
      event.incumbent = y_star;
      event.remaining_budget = st.budget.remaining();
      event.best_ratio = best_acq;
      options_.observer->on_decision(event);
    }
    const Sample& ran = st.profile(best_id);
    if (options_.observer != nullptr) options_.observer->on_run(ran);
  }

  if (options_.observer != nullptr) {
    if (st.untested.empty()) {
      options_.observer->on_stop("search space exhausted");
    } else if (st.budget.exhausted()) {
      options_.observer->on_stop("budget depleted");
    }
  }
  OptimizerResult out = st.finalize();
  timer.write_to(out);
  return out;
}

}  // namespace lynceus::core

#include "core/bo.hpp"

#include <limits>

#include "core/acquisition.hpp"
#include "core/sequential.hpp"

namespace lynceus::core {

model::ModelFactory default_tree_model_factory(
    const space::ConfigSpace& space, unsigned trees) {
  model::BaggingOptions opts;
  opts.trees = trees;
  opts.tree.features_per_split =
      model::BaggingOptions::weka_features_per_split(space.dim_count());
  return [opts] { return std::make_unique<model::BaggingEnsemble>(opts); };
}

BayesianOptimizer::BayesianOptimizer(BoOptions options)
    : options_(std::move(options)) {}

namespace {

/// The greedy BO loop as an ask/tell state machine (see core/stepper.hpp);
/// bit-identical to the pre-ask/tell closed loop. The snapshot embeds the
/// fitted cost model (Regressor::save_fit) when the model supports it —
/// not needed for trajectory identity (every decision refits
/// deterministically) but it restores the in-memory state exactly.
class BoStepper final : public OptimizerStepper {
 public:
  BoStepper(const BoOptions& options, const OptimizationProblem& problem,
            std::uint64_t seed)
      : OptimizerStepper(problem, seed, options.observer),
        options_(options),
        seed_(seed),
        model_(options_.model_factory
                   ? options_.model_factory()
                   : default_tree_model_factory(*problem.space)()),
        fm_(*problem.space) {}

  [[nodiscard]] std::string name() const override { return "BO"; }

 protected:
  std::optional<ConfigId> decide(std::string& stop_reason) override {
    if (st_.budget.exhausted() || st_.untested.empty()) {
      stop_reason = st_.untested.empty() ? "search space exhausted"
                                         : "budget depleted";
      return std::nullopt;
    }
    timer_.start();
    rows_.clear();
    y_.clear();
    for (const auto& s : st_.samples) {
      rows_.push_back(s.id);
      y_.push_back(s.cost);
    }
    model_->fit(fm_, rows_, y_, util::derive_seed(seed_, ++fit_counter_));
    model_->predict_all(fm_, preds_);

    const double y_star = incumbent_cost(st_.samples, preds_, st_.untested);
    double best_acq = -std::numeric_limits<double>::infinity();
    ConfigId best_id = st_.untested.front();
    for (ConfigId id : st_.untested) {
      const double acq = constrained_ei(
          y_star, preds_[id], st_.problem->feasibility_cost_cap(id));
      if (acq > best_acq) {
        best_acq = acq;
        best_id = id;
      }
    }
    if (options_.ei_stop_fraction > 0.0 &&
        best_acq < options_.ei_stop_fraction * y_star) {
      timer_.discard();
      stop_reason = "expected improvement below threshold";
      return std::nullopt;  // expected improvement everywhere marginal
    }
    timer_.stop();

    if (observer_ != nullptr) {
      DecisionEvent event;
      event.iteration = static_cast<std::size_t>(fit_counter_);
      event.viable_count = st_.untested.size();  // BO has no budget filter
      event.chosen = best_id;
      event.predicted_cost = preds_[best_id].mean;
      event.incumbent = y_star;
      event.remaining_budget = st_.budget.remaining();
      event.best_ratio = best_acq;
      observer_->on_decision(event);
    }
    return best_id;
  }

  void save_extra(util::JsonWriter& w) const override {
    w.key("fit_counter").value(fit_counter_);
    if (fit_counter_ > 0) {
      w.key("model");
      if (!model_->save_fit(w)) w.null();
    }
  }
  void load_extra(const util::JsonValue& extra) override {
    fit_counter_ = extra.at("fit_counter").as_uint();
    const util::JsonValue* model = extra.find("model");
    if (model != nullptr && !model->is_null()) {
      (void)model_->load_fit(*model);
    }
  }

 private:
  const BoOptions options_;
  const std::uint64_t seed_;
  std::unique_ptr<model::Regressor> model_;
  const model::FeatureMatrix fm_;
  std::uint64_t fit_counter_ = 0;
  std::vector<std::uint32_t> rows_;
  std::vector<double> y_;
  std::vector<model::Prediction> preds_;
};

}  // namespace

std::unique_ptr<OptimizerStepper> BayesianOptimizer::make_stepper(
    const OptimizationProblem& problem, std::uint64_t seed) const {
  return std::make_unique<BoStepper>(options_, problem, seed);
}

OptimizerResult BayesianOptimizer::optimize(
    const OptimizationProblem& problem, JobRunner& runner,
    std::uint64_t seed) {
  auto stepper = make_stepper(problem, seed);
  return drive(*stepper, runner);
}

}  // namespace lynceus::core

#include "core/lookahead.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include <cmath>

#include "core/acquisition.hpp"
#include "math/distributions.hpp"
#include "util/rng.hpp"

namespace lynceus::core {

namespace {

/// Incumbent for a simulated state: cheapest feasible sample, or the
/// paper's fallback (max sampled cost + 3 · max predictive stddev over the
/// untested candidates). Shared by both engines; the scan order replicates
/// the naive references exactly.
double state_incumbent(const std::vector<double>& y,
                       const std::vector<char>& feasible,
                       const std::vector<model::Prediction>& cand_preds) {
  bool any = false;
  double best = 0.0;
  double most_expensive = y.front();
  for (std::size_t i = 0; i < y.size(); ++i) {
    most_expensive = std::max(most_expensive, y[i]);
    if (feasible[i] != 0 && (!any || y[i] < best)) {
      best = y[i];
      any = true;
    }
  }
  if (any) return best;
  double max_stddev = 0.0;
  for (const auto& pred : cand_preds) {
    max_stddev = std::max(max_stddev, pred.stddev);
  }
  return most_expensive + 3.0 * max_stddev;
}

constexpr double kPhi0 = 0.3989422804014326779;  // φ(0) = 1/√(2π)

}  // namespace

// ---------------------------------------------------------------------------
// RootCache
// ---------------------------------------------------------------------------

RootCache::RootCache() : RootCache(Options{}) {}

RootCache::RootCache(Options options) : options_(options) {
  entries_.reserve(options_.capacity);
}

bool RootCache::key_matches(
    const Entry& e, const std::vector<std::uint32_t>& rows,
    const std::vector<const std::vector<double>*>& targets,
    std::uint64_t fit_seed, std::size_t space_rows) const {
  if (e.fit_seed != fit_seed || e.space_rows != space_rows ||
      e.rows != rows || e.targets.size() != targets.size()) {
    return false;
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (e.targets[i] != *targets[i]) return false;
  }
  return true;
}

bool RootCache::is_prefix_of(
    const Entry& e, const std::vector<std::uint32_t>& rows,
    const std::vector<const std::vector<double>*>& targets) const {
  if (e.rows.size() > rows.size() || e.targets.size() != targets.size()) {
    return false;
  }
  if (!std::equal(e.rows.begin(), e.rows.end(), rows.begin())) return false;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (e.targets[i].size() != e.rows.size() ||
        e.targets[i].size() > targets[i]->size()) {
      return false;
    }
    if (!std::equal(e.targets[i].begin(), e.targets[i].end(),
                    targets[i]->begin())) {
      return false;
    }
  }
  return true;
}

const RootCache::Entry* RootCache::lookup(
    const std::vector<std::uint32_t>& rows,
    const std::vector<const std::vector<double>*>& targets,
    std::uint64_t fit_seed, std::size_t space_rows) {
  if (options_.capacity == 0) return nullptr;
  // Drop diverged entries first (an exact match always survives this
  // sweep, so the pointer returned below stays valid): an entry with the
  // probe's objective count that shares the probe's row-id prefix but
  // disagrees on the shared target values records a diverged history
  // ("sample append mismatch") and can never hit again. Entries of a
  // different shape (objective count or space size) belong to another
  // engine sharing the cache and are left alone.
  for (std::size_t i = 0; i < entries_.size();) {
    const Entry& e = entries_[i];
    if (e.targets.size() == targets.size() && e.space_rows == space_rows &&
        e.rows.size() <= rows.size() &&
        std::equal(e.rows.begin(), e.rows.end(), rows.begin()) &&
        !is_prefix_of(e, rows, targets)) {
      ++stats_.invalidations;
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
  for (Entry& e : entries_) {
    if (key_matches(e, rows, targets, fit_seed, space_rows)) {
      e.tick = ++tick_;
      ++stats_.hits;
      return &e;
    }
  }
  ++stats_.misses;
  return nullptr;
}

void RootCache::store(
    const std::vector<std::uint32_t>& rows,
    const std::vector<const std::vector<double>*>& targets,
    std::uint64_t fit_seed,
    const std::vector<const std::vector<model::Prediction>*>& preds,
    const std::vector<const model::Regressor*>& models) {
  if (options_.capacity == 0) return;
  if (preds.size() != targets.size() || preds.empty()) {
    throw std::logic_error("RootCache::store: preds/targets size mismatch");
  }
  const std::size_t space_rows = preds.front()->size();
  for (const Entry& e : entries_) {
    if (key_matches(e, rows, targets, fit_seed, space_rows)) {
      return;  // already cached
    }
  }
  // Fill the spare entry (recycled from the last eviction, so steady-state
  // stores reuse its buffers instead of reallocating).
  Entry e = std::move(spare_);
  spare_ = Entry{};
  e.rows.assign(rows.begin(), rows.end());
  e.fit_seed = fit_seed;
  e.space_rows = space_rows;
  e.tick = ++tick_;
  e.targets.resize(targets.size());
  e.preds.resize(preds.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    e.targets[i].assign(targets[i]->begin(), targets[i]->end());
    e.preds[i].assign(preds[i]->begin(), preds[i]->end());
  }
  e.models.clear();
  if (options_.store_models) {
    e.models.resize(models.size());
    for (std::size_t i = 0; i < models.size(); ++i) {
      if (models[i] != nullptr) e.models[i] = models[i]->clone();
    }
  }
  if (entries_.size() >= options_.capacity) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].tick < entries_[lru].tick) lru = i;
    }
    spare_ = std::move(entries_[lru]);
    entries_[lru] = std::move(e);
  } else {
    entries_.push_back(std::move(e));
  }
}

void RootCache::clear() { entries_.clear(); }

// ---------------------------------------------------------------------------
// LookaheadEngine
// ---------------------------------------------------------------------------

LookaheadEngine::LookaheadEngine(const OptimizationProblem& problem,
                                 Options options,
                                 const model::ModelFactory& factory,
                                 std::size_t workers)
    : problem_(problem),
      options_(std::move(options)),
      fm_(*problem.space),
      quadrature_(options_.gh_points) {
  if (workers == 0) {
    throw std::invalid_argument("LookaheadEngine: need at least one worker");
  }
  viable_z_ = math::norm_cdf_ge_boundary(options_.feasibility_quantile);
  cache_ = options_.root_cache;
  const std::size_t space = problem_.space->size();
  root_model_ = factory();
  if (options_.incremental_refit && options_.lookahead > 0) {
    // A path appends at most `lookahead` fantasy samples; enabling capture
    // pre-reserves for exactly that. At lookahead 0 no branch model ever
    // exists, so capture would be pure per-fit overhead and stays off.
    // Models without an incremental path (the GP) decline, and the engine
    // falls back to from-scratch refits.
    incremental_ok_ = root_model_->enable_incremental(options_.lookahead);
  }
  root_rows_.reserve(space);
  root_y_.reserve(space);
  root_feasible_.reserve(space);
  root_cands_.reserve(space);
  tested_.reserve(space);
  viable_.reserve(space);
  eic_by_id_.resize(space, 0.0);

  // Static partitions of the depth-0 branch fan-out (pooled-determinism
  // contract): at most one per pool thread plus the caller, never more
  // than there are branches. 1 = serial, no replicas built at all.
  if (options_.branch_pool != nullptr && options_.lookahead > 0) {
    branch_parts_ = std::min<std::size_t>(
        options_.branch_pool->worker_count() + 1, quadrature_.size());
    if (branch_parts_ == 0) branch_parts_ = 1;
  }

  const auto init_workspace = [&](Workspace& ws) {
    ws.model = factory();
    // A path never holds more than every real sample plus one fantasy
    // sample per lookahead step.
    ws.rows.reserve(space + options_.lookahead + 1);
    ws.y.reserve(space + options_.lookahead + 1);
    ws.feasible.reserve(space + options_.lookahead + 1);
    ws.levels.resize(options_.lookahead);
    for (auto& lvl : ws.levels) {
      lvl.cands.reserve(space);
      lvl.preds.reserve(space);
      lvl.nodes.resize(quadrature_.size());
      if (incremental_ok_) {
        lvl.inc_model = factory();
        incremental_ok_ = lvl.inc_model->enable_incremental(options_.lookahead);
      }
    }
  };

  workspaces_.resize(workers);
  for (auto& ws : workspaces_) {
    init_workspace(ws);
    if (branch_parts_ > 1) {
      ws.branch_value.resize(quadrature_.size());
      ws.branch_taken.resize(quadrature_.size(), 0);
      ws.section = std::make_unique<util::ThreadPool::RangeSection>();
    }
  }
  if (branch_parts_ > 1) {
    // Shared replica pool: at most (pool workers + concurrent simulate
    // callers) partitions can execute at any instant, and never more than
    // every primary's partitions together — far below one replica set per
    // primary (O(workers²)).
    const std::size_t replicas =
        std::min(options_.branch_pool->worker_count() + workers,
                 workers * branch_parts_);
    branch_workspaces_.resize(replicas);
    free_branch_.resize(replicas);
    for (std::size_t i = 0; i < replicas; ++i) {
      branch_workspaces_[i] = std::make_unique<Workspace>();
      init_workspace(*branch_workspaces_[i]);
      free_branch_[i] = branch_workspaces_[i].get();
    }
    branch_free_ = replicas;
  }
  free_workspaces_.reserve(workers);
  for (auto& ws : workspaces_) free_workspaces_.push_back(&ws);
}

LookaheadEngine::Workspace* LookaheadEngine::acquire_branch_workspace() {
  std::unique_lock lock(branch_mutex_);
  branch_cv_.wait(lock, [&] { return branch_free_ > 0; });
  Workspace* ws = free_branch_[branch_head_];
  branch_head_ = (branch_head_ + 1) % free_branch_.size();
  --branch_free_;
  return ws;
}

void LookaheadEngine::release_branch_workspace(Workspace* ws) {
  {
    std::lock_guard lock(branch_mutex_);
    free_branch_[(branch_head_ + branch_free_) % free_branch_.size()] = ws;
    ++branch_free_;
  }
  branch_cv_.notify_one();
}

void LookaheadEngine::begin_decision(const std::vector<Sample>& samples,
                                     double remaining_budget,
                                     std::uint64_t fit_seed) {
  ++epoch_;
  const std::size_t space = problem_.space->size();

  root_rows_.clear();
  root_y_.clear();
  root_feasible_.clear();
  for (const auto& s : samples) {
    root_rows_.push_back(s.id);
    root_y_.push_back(s.cost);
    root_feasible_.push_back(s.feasible ? 1 : 0);
  }
  root_beta_ = remaining_budget;
  root_chi_ = samples.empty() ? std::nullopt
                              : std::optional<ConfigId>(samples.back().id);

  // Ascending untested candidate list — the only place testedness is
  // materialized; the recursion shrinks the list instead of re-deriving it.
  tested_.assign(space, 0);
  for (const auto& s : samples) tested_[s.id] = 1;
  root_cands_.clear();
  for (std::size_t id = 0; id < space; ++id) {
    if (tested_[id] == 0) root_cands_.push_back(static_cast<ConfigId>(id));
  }

  // Root fit + full-space prediction, or a RootCache hit that skips both
  // (exact key match only, so the predictions are bitwise identical to the
  // refit's — see the RootCache class comment).
  const RootCache::Entry* hit = nullptr;
  if (cache_ != nullptr) {
    key_targets_.assign(1, &root_y_);
    hit = cache_->lookup(root_rows_, key_targets_, fit_seed, fm_.rows());
  }
  if (hit != nullptr) {
    root_preds_ = hit->preds.front();
    if (incremental_ok_) {
      // Incremental branches extend the fitted root model, so a hit must
      // also restore it: from the cached snapshot when it carries bootstrap
      // membership, else by refitting — the fit is deterministic in
      // (rows, y, fit_seed), so either route yields the identical model
      // and trajectories stay independent of what the cache stored.
      const bool restored = !hit->models.empty() &&
                            hit->models.front() != nullptr &&
                            root_model_->assign_fitted(*hit->models.front()) &&
                            root_model_->incremental_ready();
      if (!restored) root_model_->fit(fm_, root_rows_, root_y_, fit_seed);
    }
  } else {
    root_model_->fit(fm_, root_rows_, root_y_, fit_seed);
    root_model_->predict_all(fm_, root_preds_);
    if (cache_ != nullptr) {
      key_preds_.assign(1, &root_preds_);
      key_models_.assign(1, root_model_.get());
      cache_->store(root_rows_, key_targets_, fit_seed, key_preds_,
                    key_models_);
    }
  }

  // Incumbent y*: cheapest feasible sample, else the paper's fallback.
  {
    bool any = false;
    double best = 0.0;
    double most_expensive = root_y_.front();
    for (std::size_t i = 0; i < root_y_.size(); ++i) {
      most_expensive = std::max(most_expensive, root_y_[i]);
      if (root_feasible_[i] != 0 && (!any || root_y_[i] < best)) {
        best = root_y_[i];
        any = true;
      }
    }
    if (any) {
      y_star_ = best;
    } else {
      double max_stddev = 0.0;
      for (ConfigId id : root_cands_) {
        max_stddev = std::max(max_stddev, root_preds_[id].stddev);
      }
      y_star_ = most_expensive + 3.0 * max_stddev;
    }
  }

  // Fused root acquisition pass: one sweep computes P(c ≤ β) and EIc per
  // untested candidate; the Γ filter, the stop rule's max EIc and the
  // screening score all read the stored results.
  viable_.clear();
  max_viable_eic_ = 0.0;
  for (ConfigId id : root_cands_) {
    if (!budget_viable(root_beta_, root_preds_[id])) continue;
    const double e = constrained_ei(y_star_, root_preds_[id],
                                    problem_.feasibility_cost_cap(id));
    viable_.push_back(id);
    eic_by_id_[id] = e;
    max_viable_eic_ = std::max(max_viable_eic_, e);
  }
}

void LookaheadEngine::screened_roots(unsigned width,
                                     std::vector<ConfigId>& out) const {
  out.assign(viable_.begin(), viable_.end());
  if (width == 0 || out.size() <= width) return;
  std::partial_sort(
      out.begin(), out.begin() + width, out.end(),
      [&](ConfigId a, ConfigId b) {
        const double sa =
            eic_by_id_[a] / std::max(root_preds_[a].mean, 1e-12);
        const double sb =
            eic_by_id_[b] / std::max(root_preds_[b].mean, 1e-12);
        return sa > sb;
      });
  out.resize(width);
}

LookaheadEngine::Workspace* LookaheadEngine::acquire_workspace() {
  std::lock_guard lock(pool_mutex_);
  if (free_workspaces_.empty()) {
    throw std::logic_error(
        "LookaheadEngine: more concurrent simulations than workers");
  }
  Workspace* ws = free_workspaces_.back();
  free_workspaces_.pop_back();
  return ws;
}

void LookaheadEngine::release_workspace(Workspace* ws) {
  std::lock_guard lock(pool_mutex_);
  free_workspaces_.push_back(ws);
}

void LookaheadEngine::sync_workspace(Workspace& ws) {
  // Sync the workspace's path state Σ with this decision's root once; the
  // recursion fully reverts its deltas, so the state stays at the root
  // between uses within one decision.
  if (ws.epoch != epoch_) {
    ws.rows.assign(root_rows_.begin(), root_rows_.end());
    ws.y.assign(root_y_.begin(), root_y_.end());
    ws.feasible.assign(root_feasible_.begin(), root_feasible_.end());
  }
  // Invalid while the recursion holds un-reverted deltas: if fit/predict
  // throws mid-path, the next use of this workspace must resync instead
  // of trusting a corrupted state. Callers restore `epoch` on success.
  ws.epoch = 0;
}

PathValue LookaheadEngine::simulate(ConfigId root, std::uint64_t path_seed) {
  Workspace* ws = acquire_workspace();
  struct Release {
    LookaheadEngine* self;
    Workspace* ws;
    ~Release() { self->release_workspace(ws); }
  } release{this, ws};

  sync_workspace(*ws);

  const model::Prediction& pred = root_preds_[root];
  const PathValue v =
      explore(*ws, 0, root, pred.mean, pred.stddev, eic_by_id_[root],
              root_beta_, root_chi_, root_cands_, options_.lookahead,
              path_seed);
  ws->epoch = epoch_;
  return v;
}

PathValue LookaheadEngine::explore(Workspace& ws, std::size_t depth,
                                   ConfigId x, double x_mean, double x_stddev,
                                   double x_eic, double beta,
                                   const std::optional<ConfigId>& chi,
                                   const std::vector<std::uint32_t>& cands,
                                   unsigned steps_left,
                                   std::uint64_t path_seed) {
  const double switch_cost = setup_cost(chi, x);
  PathValue v;
  v.reward = x_eic;
  v.cost = x_mean + switch_cost;
  if (steps_left == 0) return v;

  Level& lvl = ws.levels[depth];
  quadrature_.for_normal_into(x_mean, x_stddev, lvl.nodes.data());
  const double cap = problem_.feasibility_cost_cap(x);

  // Child candidate set: the parent's candidates minus x, which the branch
  // below speculatively tests. Ascending order is preserved, which keeps
  // the argmax tie-breaking identical to a full ascending-id scan.
  lvl.cands.clear();
  for (std::uint32_t id : cands) {
    if (id != x) lvl.cands.push_back(id);
  }

  const std::size_t k = lvl.nodes.size();
  if (depth == 0 && branch_parts_ > 1 && k > 1) {
    // Branch-parallel fan-out (pooled-determinism contract, see the
    // header): the k branches are statically range-partitioned across the
    // pool, each partition running on its own workspace replica against
    // the read-only shared node inputs (lvl.nodes / lvl.cands and the
    // root state). Each branch writes its contribution into its own slot;
    // the reduction below runs on this thread in ascending branch order,
    // reproducing the serial loop's accumulation order bit-for-bit.
    struct Ctx {
      LookaheadEngine* self;
      Workspace* ws;
      const Level* shared;
      ConfigId x;
      double x_mean, switch_cost, beta, cap;
      unsigned steps_left;
      std::uint64_t path_seed;
    } ctx{this, &ws, &lvl, x, x_mean, switch_cost, beta, cap, steps_left,
          path_seed};
    options_.branch_pool->parallel_ranges(
        *ws.section, k, branch_parts_,
        [](void* p, std::size_t, std::size_t b, std::size_t e) {
          auto& c = *static_cast<Ctx*>(p);
          Workspace* bw = c.self->acquire_branch_workspace();
          struct Release {
            LookaheadEngine* self;
            Workspace* ws;
            ~Release() { self->release_branch_workspace(ws); }
          } release{c.self, bw};
          c.self->sync_workspace(*bw);
          for (std::size_t i = b; i < e; ++i) {
            PathValue sub;
            c.ws->branch_taken[i] =
                c.self->explore_branch(*bw, 0, i, c.x, c.x_mean,
                                       c.switch_cost, c.beta, c.cap,
                                       *c.shared, c.steps_left, c.path_seed,
                                       sub)
                    ? 1
                    : 0;
            c.ws->branch_value[i] = sub;
          }
          bw->epoch = c.self->epoch_;
        },
        &ctx);
    for (std::size_t i = 0; i < k; ++i) {
      if (ws.branch_taken[i] == 0) continue;
      const double wi = lvl.nodes[i].weight;
      v.cost += wi * ws.branch_value[i].cost;
      v.reward += options_.gamma * wi * ws.branch_value[i].reward;
    }
    return v;
  }

  for (std::size_t i = 0; i < k; ++i) {
    PathValue sub;
    if (explore_branch(ws, depth, i, x, x_mean, switch_cost, beta, cap, lvl,
                       steps_left, path_seed, sub)) {
      const double wi = lvl.nodes[i].weight;
      v.cost += wi * sub.cost;
      v.reward += options_.gamma * wi * sub.reward;
    }
    // else: no viable continuation (lines 15-16) — the branch contributes
    // only the root step.
  }
  return v;
}

bool LookaheadEngine::explore_branch(Workspace& ws, std::size_t depth,
                                     std::size_t i, ConfigId x, double x_mean,
                                     double switch_cost, double beta,
                                     double cap, const Level& shared,
                                     unsigned steps_left,
                                     std::uint64_t path_seed, PathValue& out) {
  Level& lvl = ws.levels[depth];
  // Speculated cost: a run can never be free or negative; clamp to a
  // small fraction of the predicted mean.
  const double ci = std::max(shared.nodes[i].value, 0.001 * x_mean);

  // Apply the delta Σ → Σ' (Algorithm 2, lines 8-13): push the fantasy
  // sample instead of copying the state.
  ws.rows.push_back(x);
  ws.y.push_back(ci);
  ws.feasible.push_back(ci <= cap ? 1 : 0);
  const double child_beta = beta - ci - switch_cost;

  // Branch model: incremental mode copies the parent node's fitted
  // ensemble and appends the one fantasy sample (Σ' = Σ + {(x, ci)});
  // otherwise refit from scratch on the delta state. Same derive_seed
  // call structure either way (see the header's determinism contract).
  const std::uint64_t branch_seed = util::derive_seed(path_seed, i + 1);
  model::Regressor* node_model;
  if (incremental_ok_) {
    const model::Regressor& parent =
        depth == 0 ? *root_model_ : *ws.levels[depth - 1].inc_model;
    lvl.inc_model->assign_fitted(parent);
    lvl.inc_model->append_and_update(fm_, x, ci, branch_seed);
    node_model = lvl.inc_model.get();
  } else {
    ws.model->fit(fm_, ws.rows, ws.y, branch_seed);
    node_model = ws.model.get();
  }
  // One batched prediction over the shrinking candidate list. The bagging
  // ensemble serves this from its flat (structure-of-arrays) tree layout
  // with ensemble-owned scratch, so the call is allocation-free after the
  // model's first batch and bitwise equal to per-row predict() (the
  // Regressor batched-prediction contract the trajectory goldens pin).
  node_model->predict_subset(fm_, shared.cands, lvl.preds);
  const double y_star = state_incumbent(ws.y, ws.feasible, lvl.preds);

  // Fused NextStep (Algorithm 2, lines 21-25): one pass computes the
  // budget-viability probability and EIc per candidate and keeps the
  // running argmax. Since EI <= max(y*-µ, 0) + σ·φ(0) and the
  // feasibility factor is <= 1, a candidate whose cheap upper bound
  // cannot *strictly* beat the running best is skipped without
  // evaluating the cdf/pdf pair — the argmax (first index attaining the
  // max, ties broken by scan order) is unchanged. The bound holds with
  // slack >= σ·φ(0) (σ has a positive floor in both models), orders of
  // magnitude above floating-point error in the compared expressions.
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_j = shared.cands.size();
  for (std::size_t j = 0; j < shared.cands.size(); ++j) {
    const model::Prediction& p = lvl.preds[j];
    if (!budget_viable(child_beta, p)) continue;
    const double upper = std::max(y_star - p.mean, 0.0) + p.stddev * kPhi0;
    if (upper <= best) continue;
    const double acq = constrained_ei(
        y_star, p, problem_.feasibility_cost_cap(shared.cands[j]));
    if (acq > best) {
      best = acq;
      best_j = j;
    }
  }

  const bool taken = best_j != shared.cands.size();
  if (taken) {
    out = explore(ws, depth + 1, static_cast<ConfigId>(shared.cands[best_j]),
                  lvl.preds[best_j].mean, lvl.preds[best_j].stddev, best,
                  child_beta, x, shared.cands, steps_left - 1,
                  util::derive_seed(path_seed, 131 * (i + 1) + 7));
  }

  // Revert the delta: Σ' → Σ.
  ws.rows.pop_back();
  ws.y.pop_back();
  ws.feasible.pop_back();
  return taken;
}

// ---------------------------------------------------------------------------
// MultiConstraintEngine
// ---------------------------------------------------------------------------

MultiConstraintEngine::MultiConstraintEngine(
    const OptimizationProblem& problem, Options options,
    const model::ModelFactory& factory, std::size_t workers)
    : problem_(problem),
      options_(std::move(options)),
      fm_(*problem.space),
      quadrature_(options_.gh_points) {
  if (workers == 0) {
    throw std::invalid_argument(
        "MultiConstraintEngine: need at least one worker");
  }
  for (const auto& t : options_.thresholds) {
    if (!t) {
      throw std::invalid_argument(
          "MultiConstraintEngine: threshold function is required");
    }
  }
  viable_z_ = math::norm_cdf_ge_boundary(options_.feasibility_quantile);
  cache_ = options_.root_cache;

  const std::size_t space = problem_.space->size();
  const std::size_t n_constraints = options_.thresholds.size();
  const std::size_t vars = 1 + n_constraints;
  const std::size_t k = quadrature_.size();

  // Joint-speculation branching factor K^(I+1); the flat combo buffers are
  // sized for the unpruned worst case once, here.
  std::size_t combo_cap = 1;
  for (std::size_t v = 0; v < vars; ++v) {
    if (combo_cap > (std::size_t{1} << 16) / k) {
      throw std::invalid_argument(
          "MultiConstraintEngine: gh_points^(constraints+1) too large");
    }
    combo_cap *= k;
  }

  // Thresholds and feasibility caps are pure functions of the id —
  // evaluate them once instead of per candidate per node.
  caps_.resize(space);
  for (std::size_t id = 0; id < space; ++id) {
    caps_[id] = problem_.feasibility_cost_cap(static_cast<ConfigId>(id));
  }
  threshold_by_id_.resize(n_constraints);
  for (std::size_t c = 0; c < n_constraints; ++c) {
    threshold_by_id_[c].resize(space);
    for (std::size_t id = 0; id < space; ++id) {
      threshold_by_id_[c][id] =
          options_.thresholds[c](static_cast<ConfigId>(id));
    }
  }

  root_models_.reserve(vars);
  for (std::size_t obj = 0; obj < vars; ++obj) {
    root_models_.push_back(factory());
  }
  if (options_.incremental_refit && options_.lookahead > 0) {
    // Capture bootstrap membership on every objective model (skipped at
    // lookahead 0, where no branch model ever exists); a model without an
    // incremental path declines and the engine falls back to from-scratch
    // branch refits.
    incremental_ok_ = true;
    for (auto& m : root_models_) {
      incremental_ok_ =
          incremental_ok_ && m->enable_incremental(options_.lookahead);
    }
  }
  root_preds_.resize(vars);
  root_rows_.reserve(space);
  root_y_cost_.reserve(space);
  root_feasible_.reserve(space);
  root_y_metric_.resize(n_constraints);
  for (auto& m : root_y_metric_) m.reserve(space);
  root_cands_.reserve(space);
  tested_.reserve(space);
  viable_.reserve(space);
  eic_by_id_.resize(space, 0.0);
  root_mpred_scratch_.resize(n_constraints);
  key_targets_.reserve(vars);
  key_preds_.reserve(vars);
  key_models_.reserve(vars);

  // Static partitions of the depth-0 combo fan-out (pooled-determinism
  // contract): never more than the worst-case unpruned combo count.
  if (options_.branch_pool != nullptr && options_.lookahead > 0) {
    branch_parts_ = std::min<std::size_t>(
        options_.branch_pool->worker_count() + 1, combo_cap);
    if (branch_parts_ == 0) branch_parts_ = 1;
  }

  const auto init_workspace = [&](Workspace& ws) {
    ws.models.reserve(vars);
    for (std::size_t obj = 0; obj < vars; ++obj) {
      ws.models.push_back(factory());
    }
    const std::size_t max_samples = space + options_.lookahead + 1;
    ws.rows.reserve(max_samples);
    ws.y_cost.reserve(max_samples);
    ws.feasible.reserve(max_samples);
    ws.y_metric.resize(n_constraints);
    for (auto& m : ws.y_metric) m.reserve(max_samples);
    ws.root_x_pred.resize(vars);
    ws.levels.resize(options_.lookahead);
    for (auto& lvl : ws.levels) {
      lvl.cands.reserve(space);
      lvl.cost_preds.reserve(space);
      lvl.metric_preds.resize(n_constraints);
      for (auto& m : lvl.metric_preds) m.reserve(space);
      lvl.nodes.resize(vars * k);
      lvl.radix.resize(vars);
      lvl.combo_cost.reserve(combo_cap);
      lvl.combo_weight.reserve(combo_cap);
      lvl.combo_metric.reserve(combo_cap * n_constraints);
      lvl.x_pred.resize(vars);
      if (incremental_ok_) {
        lvl.inc_models.resize(vars);
        for (std::size_t obj = 0; obj < vars; ++obj) {
          lvl.inc_models[obj] = factory();
          incremental_ok_ =
              incremental_ok_ &&
              lvl.inc_models[obj]->enable_incremental(options_.lookahead);
        }
      }
    }
  };

  workspaces_.resize(workers);
  for (auto& ws : workspaces_) {
    init_workspace(ws);
    if (branch_parts_ > 1) {
      ws.branch_value.resize(combo_cap);
      ws.branch_taken.resize(combo_cap, 0);
      ws.section = std::make_unique<util::ThreadPool::RangeSection>();
    }
  }
  if (branch_parts_ > 1) {
    // Shared replica pool (see LookaheadEngine): sized to the maximum
    // number of simultaneously executing partitions, not per primary.
    const std::size_t replicas =
        std::min(options_.branch_pool->worker_count() + workers,
                 workers * branch_parts_);
    branch_workspaces_.resize(replicas);
    free_branch_.resize(replicas);
    for (std::size_t i = 0; i < replicas; ++i) {
      branch_workspaces_[i] = std::make_unique<Workspace>();
      init_workspace(*branch_workspaces_[i]);
      free_branch_[i] = branch_workspaces_[i].get();
    }
    branch_free_ = replicas;
  }
  free_workspaces_.reserve(workers);
  for (auto& ws : workspaces_) free_workspaces_.push_back(&ws);
}

MultiConstraintEngine::Workspace*
MultiConstraintEngine::acquire_branch_workspace() {
  std::unique_lock lock(branch_mutex_);
  branch_cv_.wait(lock, [&] { return branch_free_ > 0; });
  Workspace* ws = free_branch_[branch_head_];
  branch_head_ = (branch_head_ + 1) % free_branch_.size();
  --branch_free_;
  return ws;
}

void MultiConstraintEngine::release_branch_workspace(Workspace* ws) {
  {
    std::lock_guard lock(branch_mutex_);
    free_branch_[(branch_head_ + branch_free_) % free_branch_.size()] = ws;
    ++branch_free_;
  }
  branch_cv_.notify_one();
}

void MultiConstraintEngine::begin_decision(
    const std::vector<std::uint32_t>& rows, const std::vector<double>& y_cost,
    const std::vector<std::vector<double>>& y_metric,
    const std::vector<char>& feasible, double remaining_budget,
    std::uint64_t fit_seed) {
  const std::size_t n_constraints = options_.thresholds.size();
  if (y_metric.size() != n_constraints || rows.size() != y_cost.size() ||
      rows.size() != feasible.size() || rows.empty()) {
    throw std::invalid_argument(
        "MultiConstraintEngine::begin_decision: malformed root state");
  }
  ++epoch_;
  const std::size_t space = problem_.space->size();

  root_rows_.assign(rows.begin(), rows.end());
  root_y_cost_.assign(y_cost.begin(), y_cost.end());
  for (std::size_t c = 0; c < n_constraints; ++c) {
    root_y_metric_[c].assign(y_metric[c].begin(), y_metric[c].end());
  }
  root_feasible_.assign(feasible.begin(), feasible.end());
  root_beta_ = remaining_budget;

  tested_.assign(space, 0);
  for (std::uint32_t id : root_rows_) tested_[id] = 1;
  root_cands_.clear();
  for (std::size_t id = 0; id < space; ++id) {
    if (tested_[id] == 0) root_cands_.push_back(static_cast<ConfigId>(id));
  }

  // Root fits + full-space predictions for every objective, or one
  // RootCache hit that restores all of them (exact key match, so the
  // predictions are bitwise identical to the refits').
  const RootCache::Entry* hit = nullptr;
  if (cache_ != nullptr) {
    key_targets_.clear();
    key_targets_.push_back(&root_y_cost_);
    for (std::size_t c = 0; c < n_constraints; ++c) {
      key_targets_.push_back(&root_y_metric_[c]);
    }
    hit = cache_->lookup(root_rows_, key_targets_, fit_seed, fm_.rows());
  }
  if (hit != nullptr) {
    for (std::size_t obj = 0; obj < root_preds_.size(); ++obj) {
      root_preds_[obj] = hit->preds[obj];
    }
    if (incremental_ok_) {
      // Restore every fitted objective model for incremental branch
      // refits — from the cached snapshots when they carry membership,
      // else by deterministic refits (identical models either way; see
      // LookaheadEngine::begin_decision).
      bool restored = hit->models.size() == root_models_.size();
      for (std::size_t obj = 0; restored && obj < root_models_.size();
           ++obj) {
        restored = hit->models[obj] != nullptr &&
                   root_models_[obj]->assign_fitted(*hit->models[obj]) &&
                   root_models_[obj]->incremental_ready();
      }
      if (!restored) {
        root_models_[0]->fit(fm_, root_rows_, root_y_cost_,
                             util::derive_seed(fit_seed, 0));
        for (std::size_t c = 0; c < n_constraints; ++c) {
          root_models_[c + 1]->fit(fm_, root_rows_, root_y_metric_[c],
                                   util::derive_seed(fit_seed, c + 1));
        }
      }
    }
  } else {
    root_models_[0]->fit(fm_, root_rows_, root_y_cost_,
                         util::derive_seed(fit_seed, 0));
    root_models_[0]->predict_all(fm_, root_preds_[0]);
    for (std::size_t c = 0; c < n_constraints; ++c) {
      root_models_[c + 1]->fit(fm_, root_rows_, root_y_metric_[c],
                               util::derive_seed(fit_seed, c + 1));
      root_models_[c + 1]->predict_all(fm_, root_preds_[c + 1]);
    }
    if (cache_ != nullptr) {
      key_preds_.clear();
      key_models_.clear();
      for (std::size_t obj = 0; obj < root_preds_.size(); ++obj) {
        key_preds_.push_back(&root_preds_[obj]);
        key_models_.push_back(root_models_[obj].get());
      }
      cache_->store(root_rows_, key_targets_, fit_seed, key_preds_,
                    key_models_);
    }
  }

  // Incumbent y*: cheapest feasible sample, else the paper's fallback over
  // the untested cost predictions (replicates McSimulator::build_ctx).
  {
    bool any = false;
    double best = 0.0;
    double most_expensive = root_y_cost_.front();
    for (std::size_t i = 0; i < root_y_cost_.size(); ++i) {
      most_expensive = std::max(most_expensive, root_y_cost_[i]);
      if (root_feasible_[i] != 0 && (!any || root_y_cost_[i] < best)) {
        best = root_y_cost_[i];
        any = true;
      }
    }
    if (any) {
      y_star_ = best;
    } else {
      double max_stddev = 0.0;
      for (ConfigId id : root_cands_) {
        max_stddev = std::max(max_stddev, root_preds_[0][id].stddev);
      }
      y_star_ = most_expensive + 3.0 * max_stddev;
    }
  }

  // Fused root pass: the Γ filter plus the root EIc of every viable
  // candidate (the depth-0 reward of its simulated path).
  viable_.clear();
  for (ConfigId id : root_cands_) {
    if (!budget_viable(root_beta_, root_preds_[0][id])) continue;
    viable_.push_back(id);
    for (std::size_t c = 0; c < n_constraints; ++c) {
      root_mpred_scratch_[c] = root_preds_[c + 1][id];
    }
    eic_by_id_[id] = mc_eic(y_star_, id, root_preds_[0][id],
                            root_mpred_scratch_.data());
  }
}

double MultiConstraintEngine::mc_eic(
    double y_star, ConfigId x, const model::Prediction& cost_pred,
    const model::Prediction* metric_preds) const {
  double acq = expected_improvement(y_star, cost_pred);
  if (acq <= 0.0) return 0.0;
  acq *= prob_within(caps_[x], cost_pred);
  for (std::size_t c = 0; c < options_.thresholds.size(); ++c) {
    acq *= prob_within(threshold_by_id_[c][x], metric_preds[c]);
  }
  return acq;
}

std::size_t MultiConstraintEngine::speculate(
    Level& lvl, const model::Prediction* x_preds) const {
  const std::size_t n_constraints = options_.thresholds.size();
  const std::size_t vars = 1 + n_constraints;
  const std::size_t k = quadrature_.size();
  for (std::size_t obj = 0; obj < vars; ++obj) {
    quadrature_.for_normal_into(x_preds[obj].mean, x_preds[obj].stddev,
                                lvl.nodes.data() + obj * k);
  }
  const double cost_floor = 0.001 * std::max(x_preds[0].mean, 1e-12);

  lvl.combo_cost.clear();
  lvl.combo_weight.clear();
  lvl.combo_metric.clear();
  std::fill(lvl.radix.begin(), lvl.radix.end(), 0);
  double kept_mass = 0.0;
  for (;;) {
    const double cost = std::max(lvl.nodes[lvl.radix[0]].value, cost_floor);
    double w = lvl.nodes[lvl.radix[0]].weight;
    const std::size_t metric_base = lvl.combo_metric.size();
    for (std::size_t c = 0; c < n_constraints; ++c) {
      const auto& node = lvl.nodes[(c + 1) * k + lvl.radix[c + 1]];
      // Physical metrics (energy, latency, ...) are non-negative.
      lvl.combo_metric.push_back(std::max(node.value, 0.0));
      w *= node.weight;
    }
    if (w >= options_.prune_weight) {
      kept_mass += w;
      lvl.combo_cost.push_back(cost);
      lvl.combo_weight.push_back(w);
    } else {
      lvl.combo_metric.resize(metric_base);
    }
    // Advance the mixed-radix index (cost varies fastest, like the
    // reference's Cartesian loop).
    std::size_t d = 0;
    while (d < vars && ++lvl.radix[d] == k) {
      lvl.radix[d] = 0;
      ++d;
    }
    if (d == vars) break;
  }
  if (kept_mass > 0.0) {
    for (double& w : lvl.combo_weight) w /= kept_mass;
  }
  return lvl.combo_cost.size();
}

MultiConstraintEngine::Workspace* MultiConstraintEngine::acquire_workspace() {
  std::lock_guard lock(pool_mutex_);
  if (free_workspaces_.empty()) {
    throw std::logic_error(
        "MultiConstraintEngine: more concurrent simulations than workers");
  }
  Workspace* ws = free_workspaces_.back();
  free_workspaces_.pop_back();
  return ws;
}

void MultiConstraintEngine::release_workspace(Workspace* ws) {
  std::lock_guard lock(pool_mutex_);
  free_workspaces_.push_back(ws);
}

void MultiConstraintEngine::sync_workspace(Workspace& ws) {
  const std::size_t n_constraints = options_.thresholds.size();
  // Sync the workspace's path state Σ with this decision's root once; the
  // recursion fully reverts its deltas between uses within one decision.
  if (ws.epoch != epoch_) {
    ws.rows.assign(root_rows_.begin(), root_rows_.end());
    ws.y_cost.assign(root_y_cost_.begin(), root_y_cost_.end());
    for (std::size_t c = 0; c < n_constraints; ++c) {
      ws.y_metric[c].assign(root_y_metric_[c].begin(),
                            root_y_metric_[c].end());
    }
    ws.feasible.assign(root_feasible_.begin(), root_feasible_.end());
  }
  // Invalid while the recursion holds un-reverted deltas (see
  // LookaheadEngine::sync_workspace).
  ws.epoch = 0;
}

PathValue MultiConstraintEngine::simulate(ConfigId root,
                                          std::uint64_t path_seed) {
  Workspace* ws = acquire_workspace();
  struct Release {
    MultiConstraintEngine* self;
    Workspace* ws;
    ~Release() { self->release_workspace(ws); }
  } release{this, ws};

  sync_workspace(*ws);

  for (std::size_t obj = 0; obj < ws->root_x_pred.size(); ++obj) {
    ws->root_x_pred[obj] = root_preds_[obj][root];
  }
  const PathValue v =
      explore(*ws, 0, root, ws->root_x_pred.data(), eic_by_id_[root],
              root_beta_, root_cands_, options_.lookahead, path_seed);
  ws->epoch = epoch_;
  return v;
}

PathValue MultiConstraintEngine::explore(
    Workspace& ws, std::size_t depth, ConfigId x,
    const model::Prediction* x_preds, double x_eic, double beta,
    const std::vector<std::uint32_t>& cands, unsigned steps_left,
    std::uint64_t path_seed) {
  PathValue v;
  v.reward = x_eic;
  v.cost = x_preds[0].mean;
  if (steps_left == 0) return v;

  Level& lvl = ws.levels[depth];
  const std::size_t n_combos = speculate(lvl, x_preds);

  // Child candidate set: the parent's candidates minus x (ascending order
  // preserved — argmax tie-breaking stays identical to a full id scan).
  lvl.cands.clear();
  for (std::uint32_t id : cands) {
    if (id != x) lvl.cands.push_back(id);
  }

  const double cap_x = caps_[x];
  if (depth == 0 && branch_parts_ > 1 && n_combos > 1) {
    // Branch-parallel combo fan-out (pooled-determinism contract, see the
    // header): the pruned combos are statically range-partitioned across
    // the pool, each partition on its own workspace replica against the
    // read-only shared buffers (lvl.combo_*, lvl.cands, root state). The
    // reduction below runs on this thread in ascending combo order —
    // bit-for-bit the serial loop's accumulation order.
    struct Ctx {
      MultiConstraintEngine* self;
      Workspace* ws;
      const Level* shared;
      ConfigId x;
      double cap_x, beta;
      unsigned steps_left;
      std::uint64_t path_seed;
    } ctx{this, &ws, &lvl, x, cap_x, beta, steps_left, path_seed};
    options_.branch_pool->parallel_ranges(
        *ws.section, n_combos, branch_parts_,
        [](void* p, std::size_t, std::size_t b, std::size_t e) {
          auto& c = *static_cast<Ctx*>(p);
          Workspace* bw = c.self->acquire_branch_workspace();
          struct Release {
            MultiConstraintEngine* self;
            Workspace* ws;
            ~Release() { self->release_branch_workspace(ws); }
          } release{c.self, bw};
          c.self->sync_workspace(*bw);
          for (std::size_t i = b; i < e; ++i) {
            PathValue sub;
            c.ws->branch_taken[i] =
                c.self->explore_branch(*bw, 0, i, c.x, c.cap_x, c.beta,
                                       *c.shared, c.steps_left, c.path_seed,
                                       sub)
                    ? 1
                    : 0;
            c.ws->branch_value[i] = sub;
          }
          bw->epoch = c.self->epoch_;
        },
        &ctx);
    for (std::size_t i = 0; i < n_combos; ++i) {
      if (ws.branch_taken[i] == 0) continue;
      const double wi = lvl.combo_weight[i];
      v.cost += wi * ws.branch_value[i].cost;
      v.reward += options_.gamma * wi * ws.branch_value[i].reward;
    }
    return v;
  }

  for (std::size_t i = 0; i < n_combos; ++i) {
    PathValue sub;
    if (explore_branch(ws, depth, i, x, cap_x, beta, lvl, steps_left,
                       path_seed, sub)) {
      const double wi = lvl.combo_weight[i];
      v.cost += wi * sub.cost;
      v.reward += options_.gamma * wi * sub.reward;
    }
    // else: no viable continuation — the branch contributes only its root
    // step (replicates the reference's `continue`).
  }
  return v;
}

bool MultiConstraintEngine::explore_branch(Workspace& ws, std::size_t depth,
                                           std::size_t i, ConfigId x,
                                           double cap_x, double beta,
                                           const Level& shared,
                                           unsigned steps_left,
                                           std::uint64_t path_seed,
                                           PathValue& out) {
  const std::size_t n_constraints = options_.thresholds.size();
  Level& lvl = ws.levels[depth];
  const double ci = shared.combo_cost[i];
  const double* mi = shared.combo_metric.data() + i * n_constraints;

  bool feas = ci <= cap_x;
  for (std::size_t c = 0; feas && c < n_constraints; ++c) {
    if (mi[c] > threshold_by_id_[c][x]) feas = false;
  }

  // Apply the delta Σ → Σ': push the fantasy sample on every objective.
  ws.rows.push_back(x);
  ws.y_cost.push_back(ci);
  for (std::size_t c = 0; c < n_constraints; ++c) {
    ws.y_metric[c].push_back(mi[c]);
  }
  ws.feasible.push_back(feas ? 1 : 0);
  const double child_beta = beta - ci;

  // Refit every objective model with the fantasy sample (same derived
  // seed structure as McSimulator::build_ctx) and predict the shrinking
  // candidate subset per objective — O(candidates · (I+1)) batched work
  // instead of the reference's (I+1) full-space predictions plus state
  // copies. Incremental mode replaces each from-scratch refit with a
  // copy of the parent node's fitted model plus one appended sample
  // (see the header's determinism contract).
  const std::uint64_t branch_seed = util::derive_seed(path_seed, i + 1);
  if (incremental_ok_) {
    for (std::size_t obj = 0; obj < lvl.inc_models.size(); ++obj) {
      const model::Regressor& parent =
          depth == 0 ? *root_models_[obj]
                     : *ws.levels[depth - 1].inc_models[obj];
      lvl.inc_models[obj]->assign_fitted(parent);
      lvl.inc_models[obj]->append_and_update(
          fm_, x, obj == 0 ? ci : mi[obj - 1],
          util::derive_seed(branch_seed, obj));
    }
    lvl.inc_models[0]->predict_subset(fm_, shared.cands, lvl.cost_preds);
    for (std::size_t c = 0; c < n_constraints; ++c) {
      lvl.inc_models[c + 1]->predict_subset(fm_, shared.cands,
                                            lvl.metric_preds[c]);
    }
  } else {
    ws.models[0]->fit(fm_, ws.rows, ws.y_cost,
                      util::derive_seed(branch_seed, 0));
    ws.models[0]->predict_subset(fm_, shared.cands, lvl.cost_preds);
    for (std::size_t c = 0; c < n_constraints; ++c) {
      ws.models[c + 1]->fit(fm_, ws.rows, ws.y_metric[c],
                            util::derive_seed(branch_seed, c + 1));
      ws.models[c + 1]->predict_subset(fm_, shared.cands,
                                       lvl.metric_preds[c]);
    }
  }
  const double y_star = state_incumbent(ws.y_cost, ws.feasible,
                                        lvl.cost_preds);

  // Fused NextStep: budget viability via the exact cdf-boundary compare,
  // then the cost-only EI upper bound (every probability factor of the
  // multi-constraint EIc is <= 1, so the single-constraint bound holds a
  // fortiori). The EIc product only shrinks as factors are multiplied
  // in, so a partial product that cannot *strictly* beat the running
  // best exits the candidate without evaluating the remaining cdfs —
  // the argmax (first index attaining the max, ties broken by scan
  // order) is unchanged.
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_j = shared.cands.size();
  for (std::size_t j = 0; j < shared.cands.size(); ++j) {
    const model::Prediction& p = lvl.cost_preds[j];
    if (!budget_viable(child_beta, p)) continue;
    const double upper = std::max(y_star - p.mean, 0.0) + p.stddev * kPhi0;
    if (upper <= best) continue;
    const auto cid = static_cast<ConfigId>(shared.cands[j]);
    double acq = expected_improvement(y_star, p);
    if (acq > 0.0 && acq > best) {
      acq *= prob_within(caps_[cid], p);
      for (std::size_t c = 0; c < n_constraints && acq > best; ++c) {
        acq *= prob_within(threshold_by_id_[c][cid],
                           lvl.metric_preds[c][j]);
      }
    } else if (acq < 0.0) {
      acq = 0.0;
    }
    if (acq > best) {
      best = acq;
      best_j = j;
      lvl.x_pred[0] = p;
      for (std::size_t c = 0; c < n_constraints; ++c) {
        lvl.x_pred[c + 1] = lvl.metric_preds[c][j];
      }
    }
  }

  const bool taken = best_j != shared.cands.size();
  if (taken) {
    out = explore(ws, depth + 1, static_cast<ConfigId>(shared.cands[best_j]),
                  lvl.x_pred.data(), best, child_beta, shared.cands,
                  steps_left - 1, util::derive_seed(path_seed, 131 * i + 7));
  }

  // Revert the delta: Σ' → Σ.
  ws.rows.pop_back();
  ws.y_cost.pop_back();
  for (std::size_t c = 0; c < n_constraints; ++c) {
    ws.y_metric[c].pop_back();
  }
  ws.feasible.pop_back();
  return taken;
}

}  // namespace lynceus::core

#include "core/lookahead.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include <cmath>

#include "core/acquisition.hpp"
#include "math/distributions.hpp"
#include "util/rng.hpp"

namespace lynceus::core {

LookaheadEngine::LookaheadEngine(const OptimizationProblem& problem,
                                 Options options,
                                 const model::ModelFactory& factory,
                                 std::size_t workers)
    : problem_(problem),
      options_(std::move(options)),
      fm_(*problem.space),
      quadrature_(options_.gh_points) {
  if (workers == 0) {
    throw std::invalid_argument("LookaheadEngine: need at least one worker");
  }
  viable_z_ = math::norm_cdf_ge_boundary(options_.feasibility_quantile);
  const std::size_t space = problem_.space->size();
  root_model_ = factory();
  root_rows_.reserve(space);
  root_y_.reserve(space);
  root_feasible_.reserve(space);
  root_cands_.reserve(space);
  tested_.reserve(space);
  viable_.reserve(space);
  eic_by_id_.resize(space, 0.0);

  workspaces_.resize(workers);
  for (auto& ws : workspaces_) {
    ws.model = factory();
    // A path never holds more than every real sample plus one fantasy
    // sample per lookahead step.
    ws.rows.reserve(space + options_.lookahead + 1);
    ws.y.reserve(space + options_.lookahead + 1);
    ws.feasible.reserve(space + options_.lookahead + 1);
    ws.levels.resize(options_.lookahead);
    for (auto& lvl : ws.levels) {
      lvl.cands.reserve(space);
      lvl.preds.reserve(space);
      lvl.nodes.resize(quadrature_.size());
    }
  }
  free_workspaces_.reserve(workers);
  for (auto& ws : workspaces_) free_workspaces_.push_back(&ws);
}

void LookaheadEngine::begin_decision(const std::vector<Sample>& samples,
                                     double remaining_budget,
                                     std::uint64_t fit_seed) {
  ++epoch_;
  const std::size_t space = problem_.space->size();

  root_rows_.clear();
  root_y_.clear();
  root_feasible_.clear();
  for (const auto& s : samples) {
    root_rows_.push_back(s.id);
    root_y_.push_back(s.cost);
    root_feasible_.push_back(s.feasible ? 1 : 0);
  }
  root_beta_ = remaining_budget;
  root_chi_ = samples.empty() ? std::nullopt
                              : std::optional<ConfigId>(samples.back().id);

  // Ascending untested candidate list — the only place testedness is
  // materialized; the recursion shrinks the list instead of re-deriving it.
  tested_.assign(space, 0);
  for (const auto& s : samples) tested_[s.id] = 1;
  root_cands_.clear();
  for (std::size_t id = 0; id < space; ++id) {
    if (tested_[id] == 0) root_cands_.push_back(static_cast<ConfigId>(id));
  }

  root_model_->fit(fm_, root_rows_, root_y_, fit_seed);
  root_model_->predict_all(fm_, root_preds_);

  // Incumbent y*: cheapest feasible sample, else the paper's fallback.
  {
    bool any = false;
    double best = 0.0;
    double most_expensive = root_y_.front();
    for (std::size_t i = 0; i < root_y_.size(); ++i) {
      most_expensive = std::max(most_expensive, root_y_[i]);
      if (root_feasible_[i] != 0 && (!any || root_y_[i] < best)) {
        best = root_y_[i];
        any = true;
      }
    }
    if (any) {
      y_star_ = best;
    } else {
      double max_stddev = 0.0;
      for (ConfigId id : root_cands_) {
        max_stddev = std::max(max_stddev, root_preds_[id].stddev);
      }
      y_star_ = most_expensive + 3.0 * max_stddev;
    }
  }

  // Fused root acquisition pass: one sweep computes P(c ≤ β) and EIc per
  // untested candidate; the Γ filter, the stop rule's max EIc and the
  // screening score all read the stored results.
  viable_.clear();
  max_viable_eic_ = 0.0;
  for (ConfigId id : root_cands_) {
    if (!budget_viable(root_beta_, root_preds_[id])) continue;
    const double e = constrained_ei(y_star_, root_preds_[id],
                                    problem_.feasibility_cost_cap(id));
    viable_.push_back(id);
    eic_by_id_[id] = e;
    max_viable_eic_ = std::max(max_viable_eic_, e);
  }
}

void LookaheadEngine::screened_roots(unsigned width,
                                     std::vector<ConfigId>& out) const {
  out.assign(viable_.begin(), viable_.end());
  if (width == 0 || out.size() <= width) return;
  std::partial_sort(
      out.begin(), out.begin() + width, out.end(),
      [&](ConfigId a, ConfigId b) {
        const double sa =
            eic_by_id_[a] / std::max(root_preds_[a].mean, 1e-12);
        const double sb =
            eic_by_id_[b] / std::max(root_preds_[b].mean, 1e-12);
        return sa > sb;
      });
  out.resize(width);
}

LookaheadEngine::Workspace* LookaheadEngine::acquire_workspace() {
  std::lock_guard lock(pool_mutex_);
  if (free_workspaces_.empty()) {
    throw std::logic_error(
        "LookaheadEngine: more concurrent simulations than workers");
  }
  Workspace* ws = free_workspaces_.back();
  free_workspaces_.pop_back();
  return ws;
}

void LookaheadEngine::release_workspace(Workspace* ws) {
  std::lock_guard lock(pool_mutex_);
  free_workspaces_.push_back(ws);
}

double LookaheadEngine::state_incumbent(
    const std::vector<double>& y, const std::vector<char>& feasible,
    const std::vector<model::Prediction>& cand_preds) {
  bool any = false;
  double best = 0.0;
  double most_expensive = y.front();
  for (std::size_t i = 0; i < y.size(); ++i) {
    most_expensive = std::max(most_expensive, y[i]);
    if (feasible[i] != 0 && (!any || y[i] < best)) {
      best = y[i];
      any = true;
    }
  }
  if (any) return best;
  double max_stddev = 0.0;
  for (const auto& pred : cand_preds) {
    max_stddev = std::max(max_stddev, pred.stddev);
  }
  return most_expensive + 3.0 * max_stddev;
}

PathValue LookaheadEngine::simulate(ConfigId root, std::uint64_t path_seed) {
  Workspace* ws = acquire_workspace();
  struct Release {
    LookaheadEngine* self;
    Workspace* ws;
    ~Release() { self->release_workspace(ws); }
  } release{this, ws};

  // Sync the workspace's path state Σ with this decision's root once; the
  // recursion fully reverts its deltas, so the state stays at the root
  // between simulate() calls of the same decision.
  if (ws->epoch != epoch_) {
    ws->rows.assign(root_rows_.begin(), root_rows_.end());
    ws->y.assign(root_y_.begin(), root_y_.end());
    ws->feasible.assign(root_feasible_.begin(), root_feasible_.end());
  }
  // Invalid while the recursion holds un-reverted deltas: if fit/predict
  // throws mid-path, the next simulate() on this workspace must resync
  // instead of trusting a corrupted state.
  ws->epoch = 0;

  const model::Prediction& pred = root_preds_[root];
  const PathValue v =
      explore(*ws, 0, root, pred.mean, pred.stddev, eic_by_id_[root],
              root_beta_, root_chi_, root_cands_, options_.lookahead,
              path_seed);
  ws->epoch = epoch_;
  return v;
}

PathValue LookaheadEngine::explore(Workspace& ws, std::size_t depth,
                                   ConfigId x, double x_mean, double x_stddev,
                                   double x_eic, double beta,
                                   const std::optional<ConfigId>& chi,
                                   const std::vector<std::uint32_t>& cands,
                                   unsigned steps_left,
                                   std::uint64_t path_seed) {
  const double switch_cost = setup_cost(chi, x);
  PathValue v;
  v.reward = x_eic;
  v.cost = x_mean + switch_cost;
  if (steps_left == 0) return v;

  Level& lvl = ws.levels[depth];
  quadrature_.for_normal_into(x_mean, x_stddev, lvl.nodes.data());
  const double cap = problem_.feasibility_cost_cap(x);

  // Child candidate set: the parent's candidates minus x, which the branch
  // below speculatively tests. Ascending order is preserved, which keeps
  // the argmax tie-breaking identical to a full ascending-id scan.
  lvl.cands.clear();
  for (std::uint32_t id : cands) {
    if (id != x) lvl.cands.push_back(id);
  }

  for (std::size_t i = 0; i < lvl.nodes.size(); ++i) {
    // Speculated cost: a run can never be free or negative; clamp to a
    // small fraction of the predicted mean.
    const double ci = std::max(lvl.nodes[i].value, 0.001 * x_mean);
    const double wi = lvl.nodes[i].weight;

    // Apply the delta Σ → Σ' (Algorithm 2, lines 8-13): push the fantasy
    // sample instead of copying the state.
    ws.rows.push_back(x);
    ws.y.push_back(ci);
    ws.feasible.push_back(ci <= cap ? 1 : 0);
    const double child_beta = beta - ci - switch_cost;

    ws.model->fit(fm_, ws.rows, ws.y, util::derive_seed(path_seed, i + 1));
    ws.model->predict_subset(fm_, lvl.cands, lvl.preds);
    const double y_star = state_incumbent(ws.y, ws.feasible, lvl.preds);

    // Fused NextStep (Algorithm 2, lines 21-25): one pass computes the
    // budget-viability probability and EIc per candidate and keeps the
    // running argmax. Since EI <= max(y*-µ, 0) + σ·φ(0) and the
    // feasibility factor is <= 1, a candidate whose cheap upper bound
    // cannot *strictly* beat the running best is skipped without
    // evaluating the cdf/pdf pair — the argmax (first index attaining the
    // max, ties broken by scan order) is unchanged. The bound holds with
    // slack >= σ·φ(0) (σ has a positive floor in both models), orders of
    // magnitude above floating-point error in the compared expressions.
    constexpr double kPhi0 = 0.3989422804014326779;  // φ(0) = 1/√(2π)
    double best = -std::numeric_limits<double>::infinity();
    std::size_t best_j = lvl.cands.size();
    for (std::size_t j = 0; j < lvl.cands.size(); ++j) {
      const model::Prediction& p = lvl.preds[j];
      if (!budget_viable(child_beta, p)) continue;
      const double upper =
          std::max(y_star - p.mean, 0.0) + p.stddev * kPhi0;
      if (upper <= best) continue;
      const double acq = constrained_ei(
          y_star, p, problem_.feasibility_cost_cap(lvl.cands[j]));
      if (acq > best) {
        best = acq;
        best_j = j;
      }
    }

    if (best_j != lvl.cands.size()) {
      const PathValue sub = explore(
          ws, depth + 1, static_cast<ConfigId>(lvl.cands[best_j]),
          lvl.preds[best_j].mean, lvl.preds[best_j].stddev, best, child_beta,
          x, lvl.cands, steps_left - 1,
          util::derive_seed(path_seed, 131 * (i + 1) + 7));
      v.cost += wi * sub.cost;
      v.reward += options_.gamma * wi * sub.reward;
    }
    // else: no viable continuation (lines 15-16) — the branch contributes
    // only the root step.

    // Revert the delta: Σ' → Σ.
    ws.rows.pop_back();
    ws.y.pop_back();
    ws.feasible.pop_back();
  }
  return v;
}

}  // namespace lynceus::core

#include "core/random_search.hpp"

#include "core/sequential.hpp"

namespace lynceus::core {

namespace {

/// RND as an ask/tell state machine (see core/stepper.hpp): one uniform
/// draw from the untested list per decision, consuming the LoopState RNG
/// exactly as the classic loop did.
class RandomSearchStepper final : public OptimizerStepper {
 public:
  RandomSearchStepper(const OptimizationProblem& problem, std::uint64_t seed)
      : OptimizerStepper(problem, seed, nullptr) {}

  [[nodiscard]] std::string name() const override { return "RND"; }

 protected:
  std::optional<ConfigId> decide(std::string& stop_reason) override {
    if (st_.budget.exhausted() || st_.untested.empty()) {
      stop_reason = st_.untested.empty() ? "search space exhausted"
                                         : "budget depleted";
      return std::nullopt;
    }
    timer_.start();
    const ConfigId id = st_.untested[static_cast<std::size_t>(
        st_.rng.below(st_.untested.size()))];
    timer_.stop();
    return id;
  }
};

}  // namespace

std::unique_ptr<OptimizerStepper> RandomSearch::make_stepper(
    const OptimizationProblem& problem, std::uint64_t seed) const {
  return std::make_unique<RandomSearchStepper>(problem, seed);
}

OptimizerResult RandomSearch::optimize(const OptimizationProblem& problem,
                                       JobRunner& runner, std::uint64_t seed) {
  auto stepper = make_stepper(problem, seed);
  return drive(*stepper, runner);
}

}  // namespace lynceus::core

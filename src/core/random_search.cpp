#include "core/random_search.hpp"

#include "core/sequential.hpp"

namespace lynceus::core {

OptimizerResult RandomSearch::optimize(const OptimizationProblem& problem,
                                       JobRunner& runner, std::uint64_t seed) {
  LoopState st(problem, runner, seed);
  DecisionTimer timer;
  st.bootstrap();

  while (!st.budget.exhausted() && !st.untested.empty()) {
    timer.start();
    const ConfigId id = st.untested[static_cast<std::size_t>(
        st.rng.below(st.untested.size()))];
    timer.stop();
    st.profile(id);
  }

  OptimizerResult out = st.finalize();
  timer.write_to(out);
  return out;
}

}  // namespace lynceus::core

#include "core/budget.hpp"

namespace lynceus::core {

Budget::Budget(double total) : total_(total) {
  if (total < 0.0) {
    throw std::invalid_argument("Budget: total must be non-negative");
  }
}

void Budget::spend(double cost) {
  if (cost < 0.0) {
    throw std::invalid_argument("Budget::spend: cost must be non-negative");
  }
  spent_ += cost;
}

void Budget::spend_failed(double cost) {
  spend(cost);
  failed_spent_ += cost;
}

void Budget::set_spent(double spent, double failed_spent) {
  if (spent < 0.0) {
    throw std::invalid_argument("Budget::set_spent: spend must be non-negative");
  }
  if (failed_spent < 0.0 || failed_spent > spent) {
    throw std::invalid_argument(
        "Budget::set_spent: failed spend must lie in [0, spent]");
  }
  spent_ = spent;
  failed_spent_ = failed_spent;
}

}  // namespace lynceus::core

#pragma once

/// \file bo.hpp
/// The traditional greedy Bayesian-optimization baseline — the approach of
/// CherryPick [5] and Arrow [26] that the paper compares against (§5.2).
///
/// At every step BO fits the cost model on the samples gathered so far and
/// profiles the untested configuration maximizing the *one-step* acquisition
/// EIc(x). It is cost-unaware (the acquisition ignores how expensive the
/// profiling run itself will be) and short-sighted (no lookahead); it stops
/// when the budget is depleted, possibly overshooting on its last run.

#include <memory>

#include "core/stepper.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "model/bagging.hpp"
#include "model/regressor.hpp"

namespace lynceus::core {

struct BoOptions {
  /// Cost-model factory. Defaults to the paper's bagging ensemble of 10
  /// random trees (features-per-split chosen per space at fit time).
  model::ModelFactory model_factory;
  /// Optional CherryPick-style early stop: halt when max EIc falls below
  /// this fraction of the incumbent cost (0 disables it; the paper's BO
  /// baseline runs until the budget is gone).
  double ei_stop_fraction = 0.0;
  /// Optional observer (see core/trace.hpp). For BO, `viable_count` in the
  /// decision event is the number of untested configurations (BO has no
  /// budget filter) and `simulated_roots` is 0 (no path simulation);
  /// `best_ratio` carries the winning EIc value. Not owned.
  OptimizerObserver* observer = nullptr;
};

/// Builds the paper's default model factory for a given space: a bagging
/// ensemble of `trees` random trees with the Weka feature-subset rule.
[[nodiscard]] model::ModelFactory default_tree_model_factory(
    const space::ConfigSpace& space, unsigned trees = 10);

class BayesianOptimizer final : public Optimizer {
 public:
  explicit BayesianOptimizer(BoOptions options = {});

  /// Thin drive loop over make_stepper() — bit-identical to the classic
  /// closed-loop implementation (see core/stepper.hpp).
  [[nodiscard]] OptimizerResult optimize(const OptimizationProblem& problem,
                                         JobRunner& runner,
                                         std::uint64_t seed) override;

  /// The ask/tell form of one BO run (see core/stepper.hpp). `problem`
  /// must outlive the stepper. The BO stepper's snapshot embeds the
  /// fitted cost model via Regressor::save_fit when the model supports it.
  [[nodiscard]] std::unique_ptr<OptimizerStepper> make_stepper(
      const OptimizationProblem& problem, std::uint64_t seed) const override;

  [[nodiscard]] std::string name() const override { return "BO"; }

 private:
  BoOptions options_;
};

}  // namespace lynceus::core

#pragma once

/// \file setup_cost.hpp
/// The paper's §4.4 "Setup costs" extension: switching the deployed
/// configuration is not free — new VMs must boot, data must be loaded, the
/// system warms up — so trying the same configurations in different orders
/// can cost different amounts. Lynceus accounts for this by adding the
/// switch cost to the (real and simulated) cost of each exploration step.
///
/// This header provides an analytic cloud setup model of the kind the
/// paper suggests ("an additional cost is used to account for changes in
/// the cloud configuration"): booting VMs that are not already running is
/// charged at their hourly price for the boot duration, and any change of
/// cluster shape additionally pays a warm-up period on the whole new
/// cluster (data loading / cache warm-up).

#include <functional>

#include "core/lynceus.hpp"
#include "core/types.hpp"

namespace lynceus::core {

struct CloudSetupModel {
  /// Identifies the VM type of a configuration (configs with equal kind can
  /// reuse already-running VMs).
  std::function<int(ConfigId)> vm_kind;
  /// Number of VMs the configuration rents.
  std::function<double(ConfigId)> vm_count;
  /// Hourly price of one VM of the configuration's type.
  std::function<double(ConfigId)> per_vm_price_per_hour;
  /// Minutes to boot a fresh VM (billed while booting).
  double boot_minutes = 2.0;
  /// Minutes of warm-up (data loading etc.) billed on the whole new
  /// cluster whenever the deployed cluster shape changes.
  double warmup_minutes = 1.0;
};

/// Builds the SetupCostFn for LynceusOptions::setup_cost.
/// Semantics:
///  * same configuration as currently deployed: free;
///  * same VM kind, growing cluster: boot only the additional VMs + warm-up;
///  * same VM kind, shrinking cluster: warm-up only;
///  * different VM kind (or nothing deployed): boot the full cluster +
///    warm-up.
[[nodiscard]] SetupCostFn make_cloud_setup_cost(CloudSetupModel model);

}  // namespace lynceus::core

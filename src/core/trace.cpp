#include "core/trace.hpp"

#include <cmath>

namespace lynceus::core {

void TraceRecorder::on_bootstrap(const Sample& sample) {
  bootstrap_.push_back(sample);
}

void TraceRecorder::on_decision(const DecisionEvent& event) {
  decisions_.push_back(event);
}

void TraceRecorder::on_run(const Sample& sample) { runs_.push_back(sample); }

void TraceRecorder::on_failure(const FailureRecord& failure) {
  failures_.push_back(failure);
}

void TraceRecorder::on_stop(const std::string& reason) {
  stop_reason_ = reason;
}

std::vector<double> TraceRecorder::relative_prediction_errors() const {
  std::vector<double> out;
  const std::size_t n = std::min(decisions_.size(), runs_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double actual = runs_[i].cost;
    if (actual <= 0.0) continue;
    out.push_back(std::fabs(decisions_[i].predicted_cost - actual) / actual);
  }
  return out;
}

}  // namespace lynceus::core

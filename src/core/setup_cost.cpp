#include "core/setup_cost.hpp"

#include <algorithm>
#include <stdexcept>

namespace lynceus::core {

SetupCostFn make_cloud_setup_cost(CloudSetupModel model) {
  if (!model.vm_kind || !model.vm_count || !model.per_vm_price_per_hour) {
    throw std::invalid_argument(
        "make_cloud_setup_cost: all accessor functions are required");
  }
  if (model.boot_minutes < 0.0 || model.warmup_minutes < 0.0) {
    throw std::invalid_argument(
        "make_cloud_setup_cost: durations must be non-negative");
  }
  return [model = std::move(model)](std::optional<ConfigId> current,
                                    ConfigId next) {
    const int next_kind = model.vm_kind(next);
    const double next_count = model.vm_count(next);
    const double vm_price = model.per_vm_price_per_hour(next);

    double booted = next_count;
    if (current) {
      if (*current == next) return 0.0;
      if (model.vm_kind(*current) == next_kind) {
        booted = std::max(0.0, next_count - model.vm_count(*current));
      }
    }
    const double boot_charge = booted * vm_price * model.boot_minutes / 60.0;
    const double warmup_charge =
        next_count * vm_price * model.warmup_minutes / 60.0;
    return boot_charge + warmup_charge;
  };
}

}  // namespace lynceus::core

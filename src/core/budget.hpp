#pragma once

/// \file budget.hpp
/// Monetary budget accounting for the profiling phase. Tracks spend against
/// the budget B of the optimization problem; spending is allowed to
/// overshoot (a run's true cost is only known after it finishes — the
/// budget-aware optimizer bounds the *probability* of overshoot instead,
/// via the Γ filter of Algorithm 1).

#include <stdexcept>

namespace lynceus::core {

class Budget {
 public:
  /// `total >= 0`.
  explicit Budget(double total);

  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double spent() const noexcept { return spent_; }
  /// Remaining budget β; negative once overshot.
  [[nodiscard]] double remaining() const noexcept { return total_ - spent_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() <= 0.0; }

  /// Records a run's cost. `cost >= 0`.
  void spend(double cost);

  /// Records the partial cost of a FAILED profiling attempt
  /// (core::RunOutcome::kFailed): the money is gone — it counts against the
  /// budget exactly like spend() — but it bought no observation, so it is
  /// additionally accumulated in failed_spent() for reporting
  /// (OptimizerResult::budget_spent_on_failures). `cost >= 0`.
  void spend_failed(double cost);

  /// Total spend on failed attempts so far (subset of spent()).
  [[nodiscard]] double failed_spent() const noexcept { return failed_spent_; }

  /// Restores an accumulated spend verbatim (tuning-session
  /// snapshot/restore, see core/stepper.hpp). `spent >= failed_spent >= 0`;
  /// overshoot beyond the total is allowed, exactly as with spend().
  void set_spent(double spent, double failed_spent = 0.0);

 private:
  double total_ = 0.0;
  double spent_ = 0.0;
  double failed_spent_ = 0.0;
};

}  // namespace lynceus::core

#pragma once

/// \file budget.hpp
/// Monetary budget accounting for the profiling phase. Tracks spend against
/// the budget B of the optimization problem; spending is allowed to
/// overshoot (a run's true cost is only known after it finishes — the
/// budget-aware optimizer bounds the *probability* of overshoot instead,
/// via the Γ filter of Algorithm 1).

#include <stdexcept>

namespace lynceus::core {

class Budget {
 public:
  /// `total >= 0`.
  explicit Budget(double total);

  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double spent() const noexcept { return spent_; }
  /// Remaining budget β; negative once overshot.
  [[nodiscard]] double remaining() const noexcept { return total_ - spent_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() <= 0.0; }

  /// Records a run's cost. `cost >= 0`.
  void spend(double cost);

  /// Restores an accumulated spend verbatim (tuning-session
  /// snapshot/restore, see core/stepper.hpp). `spent >= 0`; overshoot
  /// beyond the total is allowed, exactly as with spend().
  void set_spent(double spent);

 private:
  double total_ = 0.0;
  double spent_ = 0.0;
};

}  // namespace lynceus::core

#include "core/stepper.hpp"

#include <stdexcept>

namespace lynceus::core {

const std::string OptimizerStepper::empty_;

OptimizerStepper::OptimizerStepper(const OptimizationProblem& problem,
                                   std::uint64_t seed,
                                   OptimizerObserver* observer)
    : st_(problem, seed), observer_(observer) {}

void OptimizerStepper::finish_bootstrap() {
  if (observer_ != nullptr) {
    for (const auto& s : st_.samples) observer_->on_bootstrap(s);
  }
  phase_ = Phase::Decide;
}

void OptimizerStepper::finish(const std::string& stop_reason) {
  phase_ = Phase::Finished;
  action_.kind = StepAction::Kind::Finished;
  action_.configs.clear();
  action_.stop_reason = stop_reason;
  told_.clear();
  told_count_ = 0;
  action_ready_ = true;
  if (observer_ != nullptr && !stop_reason.empty()) {
    observer_->on_stop(stop_reason);
  }
}

void OptimizerStepper::abort(const std::string& reason) {
  started_ = true;
  if (phase_ == Phase::Finished) return;
  finish(reason);
}

void OptimizerStepper::compute_next() {
  std::string stop_reason;
  const std::optional<ConfigId> choice = decide(stop_reason);
  if (!choice.has_value()) {
    finish(stop_reason);
    return;
  }
  action_.kind = StepAction::Kind::Profile;
  action_.configs.assign(1, *choice);
  action_.stop_reason.clear();
  told_.assign(1, std::nullopt);
  told_count_ = 0;
  action_ready_ = true;
}

const StepAction& OptimizerStepper::ask() {
  started_ = true;
  if (action_ready_) return action_;
  if (phase_ == Phase::Bootstrap) {
    std::vector<ConfigId> plan = st_.bootstrap_plan();
    if (!plan.empty()) {
      action_.kind = StepAction::Kind::Profile;
      action_.configs = std::move(plan);
      action_.stop_reason.clear();
      told_.assign(action_.configs.size(), std::nullopt);
      told_count_ = 0;
      action_ready_ = true;
      return action_;
    }
    // Warm-start priors replaced the LHS batch entirely.
    finish_bootstrap();
  }
  compute_next();
  return action_;
}

void OptimizerStepper::tell(ConfigId config, const RunResult& result) {
  started_ = true;
  if (!action_ready_ || action_.kind != StepAction::Kind::Profile) {
    throw std::logic_error(
        "OptimizerStepper::tell: no outstanding profiling request "
        "(call ask() first)");
  }
  std::size_t index = action_.configs.size();
  for (std::size_t i = 0; i < action_.configs.size(); ++i) {
    if (action_.configs[i] == config && !told_[i].has_value()) {
      index = i;
      break;
    }
  }
  if (index == action_.configs.size()) {
    throw std::invalid_argument(
        "OptimizerStepper::tell: configuration " + std::to_string(config) +
        " is not an untold member of the outstanding batch");
  }
  told_[index] = result;
  ++told_count_;
  if (told_count_ < action_.configs.size()) return;

  // Batch complete: apply in canonical ask() order, so the optimizer state
  // is independent of the order the tell()s arrived in. Failed runs are
  // dispatched to apply_failed_run in the same canonical position.
  if (phase_ == Phase::Bootstrap) {
    for (std::size_t i = 0; i < action_.configs.size(); ++i) {
      if (told_[i]->failed()) {
        apply_failed_run(action_.configs[i], *told_[i]);
      } else {
        apply_bootstrap_run(action_.configs[i], *told_[i]);
      }
    }
    if (st_.samples.empty()) {
      // Every bootstrap run failed: there is no training set to decide
      // from. Only reachable under fault injection.
      finish("no_successful_runs");
      return;
    }
    finish_bootstrap();
  } else {
    for (std::size_t i = 0; i < action_.configs.size(); ++i) {
      if (told_[i]->failed()) {
        apply_failed_run(action_.configs[i], *told_[i]);
      } else {
        apply_decision_run(action_.configs[i], *told_[i]);
      }
    }
  }
  action_ready_ = false;
  told_.clear();
  told_count_ = 0;
}

void OptimizerStepper::apply_bootstrap_run(ConfigId config,
                                           const RunResult& r) {
  st_.record(config, r);
}

void OptimizerStepper::apply_decision_run(ConfigId config,
                                          const RunResult& r) {
  const Sample& ran = st_.record(config, r);
  if (observer_ != nullptr) observer_->on_run(ran);
}

void OptimizerStepper::apply_failed_run(ConfigId config, const RunResult& r) {
  const FailureRecord& f = st_.record_failure(config, r);
  if (observer_ != nullptr) observer_->on_failure(f);
}

std::vector<ConfigId> OptimizerStepper::outstanding_configs() const {
  std::vector<ConfigId> out;
  if (action_ready_ && action_.kind == StepAction::Kind::Profile) {
    for (std::size_t i = 0; i < action_.configs.size(); ++i) {
      if (!told_[i].has_value()) out.push_back(action_.configs[i]);
    }
  }
  return out;
}

OptimizerResult OptimizerStepper::result() const {
  OptimizerResult out = st_.finalize();
  timer_.write_to(out);
  return out;
}

void OptimizerStepper::save_extra(util::JsonWriter& w) const { (void)w; }
void OptimizerStepper::load_extra(const util::JsonValue& extra) {
  (void)extra;
}

std::string OptimizerStepper::snapshot() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("format").value("lynceus-session");
  w.key("version").value(1);
  w.key("optimizer").value(name());
  w.key("space_rows")
      .value(static_cast<std::uint64_t>(st_.problem->space->size()));
  const char* phase = phase_ == Phase::Bootstrap
                          ? "bootstrap"
                          : phase_ == Phase::Decide ? "decide" : "finished";
  w.key("phase").value(phase);

  const util::Rng::State rng = st_.rng.state();
  w.key("rng").begin_object();
  w.key("s0").value(rng.s[0]);
  w.key("s1").value(rng.s[1]);
  w.key("s2").value(rng.s[2]);
  w.key("s3").value(rng.s[3]);
  w.key("spare").value_exact(rng.spare_normal);
  w.key("has_spare").value(rng.has_spare);
  w.end_object();

  w.key("budget_spent").value_exact(st_.budget.spent());
  // Failure-aware keys are emitted only when a fault actually occurred, so
  // fault-free snapshots stay byte-identical to the pre-failure format.
  if (st_.budget.failed_spent() != 0.0) {
    w.key("budget_failed").value_exact(st_.budget.failed_spent());
  }

  w.key("samples").begin_array();
  for (const Sample& s : st_.samples) {
    w.begin_object();
    w.key("id").value(static_cast<std::uint64_t>(s.id));
    w.key("runtime").value_exact(s.runtime_seconds);
    w.key("cost").value_exact(s.cost);
    w.key("feasible").value(s.feasible);
    w.end_object();
  }
  w.end_array();

  if (!st_.failures.empty()) {
    w.key("failures").begin_array();
    for (const FailureRecord& f : st_.failures) {
      w.begin_object();
      w.key("id").value(static_cast<std::uint64_t>(f.id));
      w.key("cost").value_exact(f.cost);
      w.key("seq").value(static_cast<std::uint64_t>(f.after_samples));
      w.end_object();
    }
    w.end_array();
  }

  w.key("pending").begin_array();
  if (action_ready_ && action_.kind == StepAction::Kind::Profile) {
    for (ConfigId id : action_.configs) {
      w.value(static_cast<std::uint64_t>(id));
    }
  }
  w.end_array();
  w.key("told").begin_array();
  if (action_ready_ && action_.kind == StepAction::Kind::Profile) {
    for (const auto& t : told_) {
      if (!t.has_value()) {
        w.null();
        continue;
      }
      w.begin_object();
      w.key("runtime").value_exact(t->runtime_seconds);
      w.key("cost").value_exact(t->cost);
      w.key("timed_out").value(t->timed_out);
      if (!t->ok()) {
        w.key("outcome").value(to_string(t->outcome));
      }
      w.key("metrics").begin_array();
      for (double m : t->metrics) w.value_exact(m);
      w.end_array();
      w.end_object();
    }
  }
  w.end_array();

  w.key("stop_reason")
      .value(phase_ == Phase::Finished ? action_.stop_reason : "");
  w.key("decisions").value(static_cast<std::uint64_t>(timer_.count()));
  w.key("decision_seconds").value_exact(timer_.total_seconds());

  w.key("extra").begin_object();
  save_extra(w);
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {
RunOutcome outcome_from_string(const std::string& s) {
  if (s == "ok") return RunOutcome::kOk;
  if (s == "failed") return RunOutcome::kFailed;
  if (s == "timed_out") return RunOutcome::kTimedOut;
  throw std::runtime_error("OptimizerStepper::restore: unknown outcome '" +
                           s + "'");
}
}  // namespace

void OptimizerStepper::restore(const std::string& snapshot_json) {
  if (started_ || !st_.samples.empty() || !st_.failures.empty()) {
    throw std::logic_error(
        "OptimizerStepper::restore: stepper already started — restore into "
        "a freshly constructed stepper");
  }
  const util::JsonValue v = util::parse_json(snapshot_json);
  if (v.at("format").as_string() != "lynceus-session" ||
      v.at("version").as_int() != 1) {
    throw std::runtime_error("OptimizerStepper::restore: not a version-1 "
                             "lynceus-session snapshot");
  }
  if (v.at("optimizer").as_string() != name()) {
    throw std::runtime_error(
        "OptimizerStepper::restore: snapshot was taken by '" +
        v.at("optimizer").as_string() + "', this stepper is '" + name() +
        "'");
  }
  if (v.at("space_rows").as_uint() != st_.problem->space->size()) {
    throw std::runtime_error(
        "OptimizerStepper::restore: configuration-space size mismatch");
  }

  // Replaying the samples — interleaved with any saved failures in their
  // original event order (`seq` = samples recorded when the failure was
  // applied) — rebuilds `tested` and the exact untested-list permutation;
  // budget and RNG are restored verbatim.
  std::vector<FailureRecord> failures;
  if (const util::JsonValue* fs = v.find("failures")) {
    std::size_t prev_seq = 0;
    for (const util::JsonValue& f : fs->items()) {
      FailureRecord rec;
      rec.id = static_cast<ConfigId>(f.at("id").as_uint());
      rec.cost = f.at("cost").as_double();
      rec.after_samples = static_cast<std::size_t>(f.at("seq").as_uint());
      if (rec.after_samples < prev_seq) {
        throw std::runtime_error(
            "OptimizerStepper::restore: failure records out of event order");
      }
      prev_seq = rec.after_samples;
      failures.push_back(rec);
    }
  }
  std::size_t fi = 0;
  std::size_t si = 0;
  for (const util::JsonValue& s : v.at("samples").items()) {
    while (fi < failures.size() && failures[fi].after_samples <= si) {
      st_.restore_failure(failures[fi]);
      ++fi;
    }
    Sample sample;
    sample.id = static_cast<ConfigId>(s.at("id").as_uint());
    sample.runtime_seconds = s.at("runtime").as_double();
    sample.cost = s.at("cost").as_double();
    sample.feasible = s.at("feasible").as_bool();
    st_.restore_sample(sample);
    ++si;
  }
  while (fi < failures.size()) {
    st_.restore_failure(failures[fi]);
    ++fi;
  }
  double budget_failed = 0.0;
  if (const util::JsonValue* bf = v.find("budget_failed")) {
    budget_failed = bf->as_double();
  }
  st_.budget.set_spent(v.at("budget_spent").as_double(), budget_failed);

  const util::JsonValue& rng = v.at("rng");
  util::Rng::State state;
  state.s[0] = rng.at("s0").as_uint();
  state.s[1] = rng.at("s1").as_uint();
  state.s[2] = rng.at("s2").as_uint();
  state.s[3] = rng.at("s3").as_uint();
  state.spare_normal = rng.at("spare").as_double();
  state.has_spare = rng.at("has_spare").as_bool();
  st_.rng.set_state(state);

  timer_.restore(v.at("decision_seconds").as_double(),
                 static_cast<std::size_t>(v.at("decisions").as_uint()));

  const std::string& phase = v.at("phase").as_string();
  if (phase == "bootstrap") {
    phase_ = Phase::Bootstrap;
  } else if (phase == "decide") {
    phase_ = Phase::Decide;
  } else if (phase == "finished") {
    phase_ = Phase::Finished;
  } else {
    throw std::runtime_error("OptimizerStepper::restore: unknown phase '" +
                             phase + "'");
  }

  const util::JsonValue& pending = v.at("pending");
  const util::JsonValue& told = v.at("told");
  if (phase_ == Phase::Finished) {
    action_.kind = StepAction::Kind::Finished;
    action_.configs.clear();
    action_.stop_reason = v.at("stop_reason").as_string();
    action_ready_ = true;
  } else if (pending.size() > 0) {
    if (told.size() != pending.size()) {
      throw std::runtime_error(
          "OptimizerStepper::restore: pending/told size mismatch");
    }
    action_.kind = StepAction::Kind::Profile;
    action_.configs.clear();
    action_.stop_reason.clear();
    told_.clear();
    told_count_ = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      action_.configs.push_back(
          static_cast<ConfigId>(pending.at(i).as_uint()));
      const util::JsonValue& t = told.at(i);
      if (t.is_null()) {
        told_.emplace_back(std::nullopt);
        continue;
      }
      RunResult r;
      r.runtime_seconds = t.at("runtime").as_double();
      r.cost = t.at("cost").as_double();
      r.timed_out = t.at("timed_out").as_bool();
      if (const util::JsonValue* oc = t.find("outcome")) {
        r.outcome = outcome_from_string(oc->as_string());
      }
      for (const util::JsonValue& m : t.at("metrics").items()) {
        r.metrics.push_back(m.as_double());
      }
      told_.emplace_back(std::move(r));
      ++told_count_;
    }
    action_ready_ = true;
  } else {
    action_ready_ = false;
  }

  load_extra(v.at("extra"));
  started_ = true;
}

OptimizerResult drive(OptimizerStepper& stepper, JobRunner& runner) {
  for (;;) {
    const StepAction& action = stepper.ask();
    if (action.kind == StepAction::Kind::Finished) break;
    // Profiling in batch order keeps the runner's observable call sequence
    // identical to the classic loop's.
    for (ConfigId id : action.configs) stepper.tell(id, runner.run(id));
  }
  return stepper.result();
}

}  // namespace lynceus::core
